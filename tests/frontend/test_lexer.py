"""Lexer tests."""

import pytest

from repro.errors import LexError
from repro.frontend import tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source) if t.kind != "eof"]


class TestTokens:
    def test_keywords_vs_identifiers(self):
        toks = kinds("func foo cilk_for spawn spawned")
        assert toks == [("keyword", "func"), ("ident", "foo"),
                        ("keyword", "cilk_for"), ("keyword", "spawn"),
                        ("ident", "spawned")]

    def test_integer_literals(self):
        assert kinds("0 42 0xFF") == [("int", "0"), ("int", "42"),
                                      ("int", "0xFF")]

    def test_float_literals(self):
        assert kinds("1.5 0.25") == [("float", "1.5"), ("float", "0.25")]

    def test_maximal_munch_operators(self):
        assert kinds("<= < << = ==") == [
            ("op", "<="), ("op", "<"), ("op", "<<"), ("op", "="), ("op", "==")]

    def test_arrow_not_minus_gt(self):
        assert kinds("->") == [("op", "->")]

    def test_positions_tracked(self):
        toks = tokenize("a\n  b")
        assert toks[0].line == 1 and toks[0].column == 1
        assert toks[1].line == 2 and toks[1].column == 3


class TestComments:
    def test_line_comment_skipped(self):
        assert kinds("a // comment\nb") == [("ident", "a"), ("ident", "b")]

    def test_block_comment_skipped(self):
        assert kinds("a /* x\ny */ b") == [("ident", "a"), ("ident", "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize("a /* never ends")


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize("a @ b")

    def test_malformed_number(self):
        with pytest.raises(LexError, match="malformed"):
            tokenize("12abc")

    def test_malformed_hex(self):
        with pytest.raises(LexError, match="malformed hex"):
            tokenize("0x")
