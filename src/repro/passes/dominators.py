"""Dominator analysis: dominator sets, immediate dominators, dominator tree.

Implemented as the classic iterative dataflow fixpoint — the CFGs this
toolchain sees are small (Table II: tens of instructions per task), so
clarity wins over the Lengauer-Tarjan asymptotics.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.passes.cfg import predecessor_map, reverse_post_order


class DominatorInfo:
    """Dominator sets plus the derived immediate-dominator tree."""

    def __init__(self, function: Function):
        self.function = function
        self.dominators: Dict[BasicBlock, Set[BasicBlock]] = {}
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self._compute()

    def _compute(self):
        function = self.function
        rpo = reverse_post_order(function)
        reachable = set(rpo)
        preds = predecessor_map(function)
        entry = function.entry

        dom: Dict[BasicBlock, Set[BasicBlock]] = {
            b: ({entry} if b is entry else set(reachable)) for b in rpo
        }
        changed = True
        while changed:
            changed = False
            for block in rpo:
                if block is entry:
                    continue
                reachable_preds = [p for p in preds[block] if p in reachable]
                if reachable_preds:
                    new = set.intersection(*(dom[p] for p in reachable_preds))
                else:
                    new = set()
                new = new | {block}
                if new != dom[block]:
                    dom[block] = new
                    changed = True
        self.dominators = dom

        # Immediate dominator: the strict dominator that every other
        # strict dominator dominates (i.e. the closest one).
        for block in rpo:
            if block is entry:
                self.idom[block] = None
                continue
            strict = dom[block] - {block}
            idom = None
            for candidate in strict:
                if all(other in dom[candidate] for other in strict):
                    idom = candidate
                    break
            self.idom[block] = idom

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if ``a`` dominates ``b`` (reflexive)."""
        return a in self.dominators.get(b, set())

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)


def compute_dominators(function: Function) -> DominatorInfo:
    return DominatorInfo(function)
