"""Affine memory-dependence analysis over the parallel IR.

The question the race detector needs answered is: *can these two memory
accesses touch overlapping bytes, given that they may run in parallel —
possibly in different dynamic instances of the same spawn site?*

Pointers in this IR are structurally simple — every address is a chain of
GEPs off an alloca, a function argument, or a global — so the analysis
models each access as an :class:`AddressExpr`:

    base_object + const + sum(coeff_i * value_i)

with the symbolic terms kept as IR values. Two accesses are compared by
cancelling terms bound to the same value, turning loop-carried induction
terms into a multiple of the instance distance ``d``, and solving the
resulting one-variable interval-overlap problem exactly. Anything the
affine model cannot express degrades soundly to "may alias".

Cross-function effects (fib/mergesort spawning themselves, dedup's chunk
helpers) are handled with per-function *effect summaries* computed to a
fixpoint over the call graph; callee frame slots become *instance-local*
roots, which are disjoint from everything because every task instance
gets a fresh frame.

Documented assumptions (see docs/analysis.md):

* distinct pointer **arguments** of the entry function do not alias each
  other or globals (C ``restrict`` style, matching how the host runtime
  allocates workload buffers);
* a "definite" verdict for cross-instance pairs assumes the spawn site
  runs at least two instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ir.function import Function
from repro.ir.instructions import (
    GEP,
    Alloca,
    BinaryOp,
    Call,
    Cast,
    Instruction,
    Load,
    Store,
)
from repro.ir.module import Module
from repro.ir.values import Argument, Constant, GlobalVariable, Value

# Root object classes of an address expression.
ROOT_ALLOCA = "alloca"        # frame slot of the function under analysis
ROOT_ARGUMENT = "argument"    # pointer argument of the function under analysis
ROOT_GLOBAL = "global"        # module global (shared-memory segment)
ROOT_INSTANCE = "instance"    # callee frame slot seen through a summary
ROOT_UNKNOWN = "unknown"      # pointer loaded from memory, etc.

# Alias verdicts.
MUST = "must"
MAY = "may"
DISJOINT = "disjoint"

_MAX_LINEAR_DEPTH = 8


class AddressExpr:
    """``root + const + sum(coeff * term)`` with byte units.

    ``exact=False`` means "somewhere inside root" (the TOP of the offset
    lattice — used when summaries widen or a term cannot be carried
    across a call boundary)."""

    def __init__(self, root_kind: str, root: Optional[Value], const: int = 0,
                 terms: Optional[Dict[Value, int]] = None, exact: bool = True):
        self.root_kind = root_kind
        self.root = root
        self.const = int(const)
        self.terms: Dict[Value, int] = {
            k: int(c) for k, c in (terms or {}).items() if int(c) != 0}
        self.exact = exact

    def widened(self) -> "AddressExpr":
        return AddressExpr(self.root_kind, self.root, 0, None, exact=False)

    def root_key(self) -> tuple:
        if self.root_kind == ROOT_UNKNOWN:
            return (ROOT_UNKNOWN,)
        return (self.root_kind, id(self.root))

    def state_key(self) -> tuple:
        """Structural identity, for fixpoint change detection."""
        if not self.exact:
            return self.root_key() + (False,)
        terms = tuple(sorted((id(k), c) for k, c in self.terms.items()))
        return self.root_key() + (True, self.const, terms)

    def root_desc(self) -> str:
        name = getattr(self.root, "name", None) or "?"
        if self.root_kind == ROOT_GLOBAL:
            return f"@{name}"
        if self.root_kind == ROOT_ARGUMENT:
            return f"%{name} (argument)"
        if self.root_kind == ROOT_ALLOCA:
            return f"%{name} (frame slot)"
        if self.root_kind == ROOT_INSTANCE:
            return f"%{name} (callee frame)"
        return "<unresolved pointer>"

    def __repr__(self):
        if not self.exact:
            return f"<AddressExpr {self.root_desc()}+TOP>"
        parts = [str(self.const)]
        parts += [f"{c}*{k.short()}" for k, c in self.terms.items()]
        return f"<AddressExpr {self.root_desc()}+{'+'.join(parts)}>"


@dataclass
class MemEffect:
    """One load/store footprint: an address expression plus access width.

    ``ops`` are the originating load/store instructions (provenance, kept
    small); ``via`` is the chain of caller-side call instructions the
    effect was imported through (outermost last)."""

    expr: AddressExpr
    size: Optional[int]
    is_write: bool
    ops: Tuple[Instruction, ...]
    via: Tuple[Instruction, ...] = ()

    def merge_key(self) -> tuple:
        return self.expr.root_key() + (self.is_write,)


class PointerResolver:
    """Resolves pointers/integers of one function into linear forms."""

    def __init__(self, function: Function):
        self.function = function
        self._slot_single_def: Optional[Dict[Alloca, Optional[Value]]] = None

    # -- scalar slots ------------------------------------------------------

    def _single_def(self, slot: Alloca) -> Optional[Value]:
        """If a register slot is stored exactly once with an Argument or
        Constant, that value — lets ``out[i]`` with ``i`` a parameter
        copied into a slot export cleanly through summaries."""
        if self._slot_single_def is None:
            stores: Dict[Alloca, List[Store]] = {}
            for block in self.function.blocks:
                for inst in block.instructions:
                    if isinstance(inst, Store) and isinstance(inst.pointer, Alloca):
                        stores.setdefault(inst.pointer, []).append(inst)
            self._slot_single_def = {}
            for found, insts in stores.items():
                value = insts[0].value if len(insts) == 1 else None
                if not isinstance(value, (Argument, Constant)):
                    value = None
                self._slot_single_def[found] = value
        return self._slot_single_def.get(slot)

    def _canonical(self, value: Value) -> Value:
        if isinstance(value, Load) and isinstance(value.pointer, Alloca) \
                and not value.pointer.in_frame:
            single = self._single_def(value.pointer)
            if single is not None:
                return single
        return value

    # -- linear decomposition ---------------------------------------------

    def linear(self, value: Value, depth: int = 0) -> Tuple[int, Dict[Value, int]]:
        """Decompose an integer value into ``const + sum(coeff * term)``."""
        value = self._canonical(value)
        if isinstance(value, Constant):
            return int(value.value), {}
        if depth >= _MAX_LINEAR_DEPTH:
            return 0, {value: 1}
        if isinstance(value, Cast) and value.kind in ("sext", "zext"):
            return self.linear(value.operands[0], depth + 1)
        if isinstance(value, BinaryOp):
            if value.op in ("add", "sub"):
                lc, lt = self.linear(value.lhs, depth + 1)
                rc, rt = self.linear(value.rhs, depth + 1)
                sign = 1 if value.op == "add" else -1
                for key, coeff in rt.items():
                    lt[key] = lt.get(key, 0) + sign * coeff
                return lc + sign * rc, {k: c for k, c in lt.items() if c}
            if value.op == "mul":
                for a, b in ((value.lhs, value.rhs), (value.rhs, value.lhs)):
                    a = self._canonical(a)
                    if isinstance(a, Constant):
                        scale = int(a.value)
                        c, t = self.linear(b, depth + 1)
                        return scale * c, {k: scale * x for k, x in t.items() if scale * x}
            if value.op == "shl":
                rhs = self._canonical(value.rhs)
                if isinstance(rhs, Constant) and 0 <= int(rhs.value) < 32:
                    scale = 1 << int(rhs.value)
                    c, t = self.linear(value.lhs, depth + 1)
                    return scale * c, {k: scale * x for k, x in t.items()}
        return 0, {value: 1}

    # -- pointer resolution ------------------------------------------------

    def resolve(self, pointer: Value) -> AddressExpr:
        const = 0
        terms: Dict[Value, int] = {}
        value = pointer
        for _ in range(64):
            if isinstance(value, GEP):
                for index, stride in zip(value.indices, value.strides):
                    c, t = self.linear(index)
                    const += c * stride
                    for key, coeff in t.items():
                        terms[key] = terms.get(key, 0) + coeff * stride
                value = value.base
                continue
            if isinstance(value, Cast) and value.kind == "bitcast":
                value = value.operands[0]
                continue
            break
        if isinstance(value, Alloca):
            return AddressExpr(ROOT_ALLOCA, value, const, terms)
        if isinstance(value, Argument):
            return AddressExpr(ROOT_ARGUMENT, value, const, terms)
        if isinstance(value, GlobalVariable):
            return AddressExpr(ROOT_GLOBAL, value, const, terms)
        return AddressExpr(ROOT_UNKNOWN, value, const, terms)


# ---------------------------------------------------------------------------
# Induction recognition
# ---------------------------------------------------------------------------

def induction_step(value: Value, context_blocks) -> Optional[int]:
    """If ``value`` is the load of a register slot that is updated exactly
    once inside ``context_blocks`` by ``slot = slot +/- C``, the signed
    per-instance step ``C``; otherwise None."""
    if not isinstance(value, Load):
        return None
    slot = value.pointer
    if not isinstance(slot, Alloca) or slot.in_frame:
        return None
    stores = [inst
              for block in context_blocks
              for inst in block.instructions
              if isinstance(inst, Store) and inst.pointer is slot]
    if len(stores) != 1:
        return None
    stored = stores[0].value
    if not isinstance(stored, BinaryOp) or stored.op not in ("add", "sub"):
        return None

    def is_slot_load(v):
        return isinstance(v, Load) and v.pointer is slot

    lhs, rhs = stored.lhs, stored.rhs
    if is_slot_load(lhs) and isinstance(rhs, Constant):
        step = int(rhs.value)
    elif stored.op == "add" and is_slot_load(rhs) and isinstance(lhs, Constant):
        step = int(lhs.value)
    else:
        return None
    if stored.op == "sub":
        step = -step
    return step or None


def _defined_in(value: Value, block_set) -> bool:
    return isinstance(value, Instruction) and value.parent in block_set


# ---------------------------------------------------------------------------
# The alias oracle
# ---------------------------------------------------------------------------

def _roots_verdict(a: AddressExpr, b: AddressExpr) -> Optional[str]:
    """Verdict decidable from roots alone; None means compare offsets."""
    if a.root_kind == ROOT_UNKNOWN or b.root_kind == ROOT_UNKNOWN:
        return MAY
    if a.root_kind == ROOT_INSTANCE or b.root_kind == ROOT_INSTANCE:
        # Callee frames are per-instance; nothing else can name them
        # (frame addresses never escape in this IR).
        return DISJOINT
    if a.root_kind != b.root_kind:
        # restrict-style assumption: entry arguments don't alias globals
        # or this function's own frame slots.
        return DISJOINT
    if a.root is not b.root:
        return DISJOINT  # distinct allocas/globals/arguments are disjoint
    return None


def compare_effects(a: MemEffect, b: MemEffect, context_blocks,
                    cross_instance_only: bool) -> str:
    """Can the two footprints overlap, given they run in parallel?

    ``context_blocks`` scopes invariance/induction checks: a term defined
    outside it is the same binding on both sides; a term recognised as an
    induction load contributes ``coeff * step * d`` where ``d`` is the
    (integer) instance distance. ``cross_instance_only`` excludes ``d=0``
    — used for two instances of the same spawn site.
    """
    verdict = _roots_verdict(a.expr, b.expr)
    if verdict is not None:
        return verdict
    if not a.expr.exact or not b.expr.exact:
        return MAY
    if a.size is None or b.size is None:
        return MAY

    context = set(context_blocks)
    delta = b.expr.const - a.expr.const
    gain = 0          # residual coefficient on the instance distance d
    solvable = True   # every term accounted for exactly

    keys = set(a.expr.terms) | set(b.expr.terms)
    for key in keys:
        ca = a.expr.terms.get(key, 0)
        cb = b.expr.terms.get(key, 0)
        if ca == cb:
            if not _defined_in(key, context):
                continue  # same binding on both sides: cancels
            step = induction_step(key, context)
            if step is None:
                solvable = False
                continue
            gain += ca * step
        else:
            solvable = False
    if not solvable:
        return MAY

    # The byte ranges [0, size_a) and [delta + gain*d, ... + size_b)
    # overlap iff -size_b < delta + gain*d < size_a for some allowed d.
    lo = -b.size + 1 - delta
    hi = a.size - 1 - delta
    if gain == 0:
        # Address difference is instance-independent; d is irrelevant.
        return MUST if lo <= 0 <= hi else DISJOINT
    g = abs(gain)
    d_lo = -(-lo // g)   # ceil(lo / g)
    d_hi = hi // g       # floor(hi / g)
    if d_lo > d_hi:
        return DISJOINT
    if cross_instance_only and d_lo == 0 == d_hi:
        return DISJOINT  # only the same instance would overlap
    return MUST


# ---------------------------------------------------------------------------
# Per-function effect summaries
# ---------------------------------------------------------------------------

def _effect_of_access(inst, resolver: PointerResolver) -> MemEffect:
    if isinstance(inst, Load):
        return MemEffect(resolver.resolve(inst.pointer),
                         inst.type.size_bytes, False, (inst,))
    return MemEffect(resolver.resolve(inst.pointer),
                     inst.value.type.size_bytes, True, (inst,))


def substitute_effect(effect: MemEffect, call: Call,
                      resolver: PointerResolver) -> MemEffect:
    """Rewrite a callee-summary effect into the caller's terms at ``call``."""
    expr = effect.expr
    via = effect.via + (call,)
    if expr.root_kind in (ROOT_UNKNOWN, ROOT_INSTANCE):
        return MemEffect(expr, effect.size, effect.is_write, effect.ops, via)
    if expr.root_kind == ROOT_ALLOCA:
        # the callee's own frame slot: a fresh frame per instance
        inst_expr = AddressExpr(ROOT_INSTANCE, expr.root, expr.const,
                                expr.terms, expr.exact)
        return MemEffect(inst_expr, effect.size, effect.is_write,
                         effect.ops, via)

    if expr.root_kind == ROOT_ARGUMENT:
        base = resolver.resolve(call.args[expr.root.index])
        root_kind, root = base.root_kind, base.root
        const = base.const + expr.const
        terms = dict(base.terms)
        exact = base.exact and expr.exact
    else:  # global: same object in every scope
        root_kind, root = ROOT_GLOBAL, expr.root
        const = expr.const
        terms = {}
        exact = expr.exact

    if exact:
        for key, coeff in expr.terms.items():
            if isinstance(key, Argument):
                c, t = resolver.linear(call.args[key.index])
                const += coeff * c
                for k2, c2 in t.items():
                    terms[k2] = terms.get(k2, 0) + coeff * c2
            else:
                exact = False  # callee-internal value: not expressible here
                break
    new = AddressExpr(root_kind, root, const, terms if exact else None, exact)
    return MemEffect(new, effect.size if exact else None,
                     effect.is_write, effect.ops, via)


def _merge_effect(table: Dict[tuple, MemEffect], effect: MemEffect):
    key = effect.merge_key()
    existing = table.get(key)
    if existing is None:
        table[key] = effect
        return
    ops = existing.ops
    for op in effect.ops:
        if len(ops) >= 4:
            break
        if op not in ops:
            ops = ops + (op,)
    if existing.expr.state_key() == effect.expr.state_key() \
            and existing.size == effect.size:
        table[key] = MemEffect(existing.expr, existing.size,
                               existing.is_write, ops, existing.via)
    else:
        table[key] = MemEffect(existing.expr.widened(), None,
                               existing.is_write, ops, existing.via)


def effects_of_blocks(blocks, resolver: PointerResolver,
                      summaries: Dict[Function, List[MemEffect]]) -> List[MemEffect]:
    """Direct loads/stores of ``blocks`` plus substituted callee summaries.
    Register-file traffic (scalar slot reads/writes) is excluded — those
    never reach the shared cache."""
    from repro.passes.dataflow_graph import is_register_access

    effects: List[MemEffect] = []
    for block in blocks:
        for inst in block.instructions:
            if isinstance(inst, (Load, Store)):
                if not is_register_access(inst):
                    effects.append(_effect_of_access(inst, resolver))
            elif isinstance(inst, Call):
                for effect in summaries.get(inst.callee, []):
                    effects.append(substitute_effect(effect, inst, resolver))
    return effects


def compute_summaries(module: Module) -> Dict[Function, List[MemEffect]]:
    """Fixpoint of per-function memory effects over the call graph.

    Terminates because effect tables only grow and offset expressions only
    move exact -> TOP (both finite)."""
    resolvers = {f: PointerResolver(f) for f in module.functions}
    summaries: Dict[Function, List[MemEffect]] = {f: [] for f in module.functions}
    states: Dict[Function, tuple] = {f: () for f in module.functions}
    changed = True
    while changed:
        changed = False
        for function in module.functions:
            table: Dict[tuple, MemEffect] = {}
            for effect in effects_of_blocks(function.blocks,
                                            resolvers[function], summaries):
                _merge_effect(table, effect)
            state = tuple(sorted(
                (key, eff.expr.state_key(), eff.size is None)
                for key, eff in table.items()))
            if state != states[function]:
                states[function] = state
                summaries[function] = list(table.values())
                changed = True
    return summaries
