"""Cross-validation of the static analyses against real executions.

Two soundness obligations, checked over the example-program matrix:

* every integer a task unit produces lies inside its statically inferred
  interval (``RangeChecker`` attached to every TXU tile), and
* the static "certain deadlock" verdict (TAP-NET-004 at error severity
  on the entry) agrees with the runtime deadlock detector — designs that
  simulate to completion are never statically condemned, and the one
  fixture that is condemned really does deadlock.
"""

import os

import pytest

from repro.accel import AcceleratorConfig, build_accelerator
from repro.analysis import lint_design
from repro.analysis.rangecheck import RangeChecker
from repro.cli import _default_profile_args
from repro.errors import DeadlockError
from repro.frontend import compile_source
from repro.workloads import REGISTRY

EXAMPLES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "..", "..", "examples", "programs")

#: every example that terminates (deadlock_ring, by design, does not)
RUNNABLE = ["dead_task", "double_all", "fib", "narrow_sum", "racy_sum",
            "saxpy"]


def _load(fixture):
    with open(os.path.join(EXAMPLES, fixture + ".cilk")) as handle:
        return compile_source(handle.read(), fixture)


def _run_checked(fixture, size, tiles=1):
    module = _load(fixture)
    entry = module.functions[0].name
    config = AcceleratorConfig(default_ntiles=tiles, analysis_level="none")
    accel = build_accelerator(module, config)
    checker = RangeChecker.for_accelerator(accel, entry=entry)
    fn = next(f for f in module.functions if f.name == entry)
    args = _default_profile_args(fn, accel.memory, size)
    result = accel.run(entry, args)
    return result, checker


@pytest.mark.parametrize("fixture", RUNNABLE)
@pytest.mark.parametrize("size", [4, 8])
def test_dynamic_values_stay_in_static_ranges(fixture, size):
    if fixture == "fib" and size > 4:
        size = 6  # keep the exponential fixture cheap
    result, checker = _run_checked(fixture, size)
    checker.assert_clean()
    assert checker.checked > 0


def test_checker_survives_multi_tile_runs():
    result, checker = _run_checked("saxpy", 8, tiles=4)
    checker.assert_clean()


@pytest.mark.parametrize("name", ["saxpy", "matrix_add"])
def test_workloads_stay_in_static_ranges(name):
    """The paper workloads run through the same probe: build, attach,
    offload at a small scale, assert the oracle result AND the ranges."""
    workload = REGISTRY.get(name)
    accel = workload.build(workload.default_config(ntiles=1,
                                                   analysis_level="none"))
    checker = RangeChecker.for_accelerator(accel, entry=workload.entry)
    prepared = workload.prepare(accel.memory, scale=1)
    result = accel.run(prepared.function, prepared.args)
    assert prepared.check(accel.memory, result.retval)
    checker.assert_clean()


# -- deadlock verdict cross-validation ---------------------------------------

def test_completing_designs_are_never_condemned():
    """Zero false positives: a design that simulates to completion must
    not carry a TAP-NET-004 error on its entry."""
    for fixture in RUNNABLE:
        module = _load(fixture)
        from repro.accel.generator import generate

        design = generate(module)
        report = lint_design(design, entry=module.functions[0].name)
        condemned = [d for d in report.diagnostics
                     if d.code == "TAP-NET-004" and d.severity == "error"]
        assert condemned == [], (fixture, [d.message for d in condemned])


def test_condemned_design_really_deadlocks():
    """The static error verdict is confirmed by the runtime detector:
    deadlock_ring stalls with a postmortem naming the ring."""
    module = _load("deadlock_ring")
    from repro.accel.generator import generate

    design = generate(module)
    report = lint_design(design, entry="pong")
    assert any(d.code == "TAP-NET-004" and d.severity == "error"
               for d in report.diagnostics)

    accel = build_accelerator(module,
                              AcceleratorConfig(analysis_level="none"))
    with pytest.raises(DeadlockError) as excinfo:
        accel.run("pong", [0], max_cycles=500_000)
    postmortem = excinfo.value.postmortem
    assert postmortem["stalled"]
    assert postmortem["cycle"] > 0
