"""Plain-text table/figure rendering for benchmark output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Fixed-width table, right-aligned numerics."""
    rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.rjust(w) if _numeric(c) else c.ljust(w)
                               for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(title: str, x_label: str, xs: Sequence,
                  series: List[tuple]) -> str:
    """A figure as labelled data series (one row per x value)."""
    headers = [x_label] + [name for name, _ in series]
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [values[i] for _, values in series])
    return render_table(headers, rows, title=title)


def bar_chart(title: str, labels: Sequence[str], values: Sequence[float],
              width: int = 50, unit: str = "") -> str:
    """ASCII horizontal bars — the quick-look form of the paper's figures."""
    peak = max(values) if values else 1.0
    label_w = max(len(label) for label in labels) if labels else 0
    lines = [title]
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(width * value / peak)) if peak > 0 else ""
        lines.append(f"{label.ljust(label_w)}  {value:>10.2f}{unit}  {bar}")
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def _numeric(cell: str) -> bool:
    try:
        float(cell.rstrip("x%"))
        return True
    except ValueError:
        return False
