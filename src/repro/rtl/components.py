"""The hardware component library the generated RTL instantiates.

Mirrors the paper's released Chisel library: task-queue, spawn/sync
ports, TXU dataflow nodes, data-box pieces. Each entry carries the
module name, its parameter list and a one-line description; the emitter
(`repro.rtl.emit`) instantiates them, and the resource model prices them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class ComponentDef:
    """One library module."""

    name: str
    params: Tuple[str, ...]
    description: str


LIBRARY: Dict[str, ComponentDef] = {
    "TaskQueue": ComponentDef(
        "TaskQueue", ("Entries", "ArgsBits"),
        "task queue: Args RAM, ParentID, Child# counters, entry states"),
    "SpawnPort": ComponentDef(
        "SpawnPort", ("ArgsBits",),
        "decoupled spawn interface (parent side)"),
    "SyncPort": ComponentDef(
        "SyncPort", (),
        "decoupled join interface routed by (SID, DyID)"),
    "TXU": ComponentDef(
        "TXU", ("Nodes",),
        "dynamically scheduled dataflow tile"),
    "DataBox": ComponentDef(
        "DataBox", ("Ports", "Entries"),
        "in-arbiter tree + allocator table + out-demux (Fig 8)"),
    "Cache": ComponentDef(
        "Cache", ("SizeBytes", "LineBytes", "Ways", "MSHRs"),
        "shared write-back L1, AXI master to DRAM"),
    "NastiMemSlave": ComponentDef(
        "NastiMemSlave", ("LatencyCycles",),
        "AXI DRAM model"),
    "TaskNetwork": ComponentDef(
        "TaskNetwork", ("Units",),
        "spawn/join crossbar routed by SID"),
    # dataflow node primitives (Fig 6)
    "ALU": ComponentDef("ALU", ("Op", "Bits"), "integer/logic unit"),
    "Mul": ComponentDef("Mul", ("Bits",), "pipelined multiplier"),
    "Div": ComponentDef("Div", ("Bits",), "iterative divider"),
    "FPU": ComponentDef("FPU", ("Op",), "single-precision FP unit"),
    "GEP": ComponentDef("GEP", ("Strides",), "address generator"),
    "Load": ComponentDef("Load", ("Bytes",), "load node -> data box"),
    "Store": ComponentDef("Store", ("Bytes",), "store node -> data box"),
    "RegSlot": ComponentDef("RegSlot", ("Bits",), "task-local register"),
    "Branch": ComponentDef("Branch", (), "control steering node"),
    "SpawnNode": ComponentDef("SpawnNode", ("ArgsBits",), "detach site"),
    "SyncNode": ComponentDef("SyncNode", (), "sync wait node"),
    "CallNode": ComponentDef("CallNode", ("ArgsBits",), "blocking call site"),
}

#: dataflow-node kind -> library module
KIND_TO_COMPONENT = {
    "alu": "ALU",
    "mul": "Mul",
    "div": "Div",
    "falu": "FPU",
    "fmul": "FPU",
    "fdiv": "FPU",
    "gep": "GEP",
    "load": "Load",
    "store": "Store",
    "regread": "RegSlot",
    "regwrite": "RegSlot",
    "nop": "RegSlot",
    "control": "Branch",
    "spawn": "SpawnNode",
    "sync": "SyncNode",
    "call": "CallNode",
}


def component_for_kind(kind: str) -> ComponentDef:
    return LIBRARY[KIND_TO_COMPONENT.get(kind, "ALU")]
