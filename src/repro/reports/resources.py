"""FPGA resource model: ALMs, registers, block RAMs per generated design.

Stands in for Quartus synthesis. The linear structure mirrors how the
TAPAS microarchitecture composes — per-design fixed logic, per-task-unit
control, per-tile datapath, per-operation functional units — and the
coefficients are calibrated against the paper's Table III points
(1/10 tiles x 1/50 ops on Cyclone V):

    ALM(t, i) ~ 670 + 610*t + 33.5*t*i
    Reg(t, i) ~ 633 + 749*t + 42.8*t*i

Block RAM follows the task queues (entry storage + suspended-context
state) and per-instance frame memory — which is exactly where the
paper's recursive benchmarks spend their 62-74 M20Ks (Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.accel.accelerator import Accelerator
from repro.ir.values import Value

M20K_BITS = 20 * 1024

#: ALMs per dataflow operation, by functional-unit class
ALM_PER_OP = {
    "alu": 33, "gep": 25, "mul": 150, "div": 400,
    "falu": 430, "fmul": 390, "fdiv": 880,
    "load": 110, "store": 110,
    "regread": 18, "regwrite": 18, "nop": 8,
    "control": 18, "spawn": 48, "sync": 28, "call": 48,
}
#: registers per operation (pipeline staging of the ready/valid fabric)
REG_PER_OP = {
    "alu": 43, "gep": 34, "mul": 120, "div": 300,
    "falu": 350, "fmul": 330, "fdiv": 700,
    "load": 130, "store": 130,
    "regread": 24, "regwrite": 24, "nop": 10,
    "control": 26, "spawn": 60, "sync": 36, "call": 60,
}

ALM_TILE_BASE = 130         # handshake FSMs, issue logic per tile
ALM_MEMNET_PER_TILE = 135   # data-box share + global arbitration slice
ALM_UNIT_CTRL = 120         # task queue control, spawn/sync ports
ALM_DESIGN_BASE = 150       # AXI interface, host mailbox, clocking

REG_TILE_BASE = 200
REG_MEMNET_PER_TILE = 140
REG_UNIT_CTRL = 140
REG_DESIGN_BASE = 120

#: bytes of queue metadata per entry beyond the Args RAM
QUEUE_META_BYTES = 16
#: bytes reserved per entry for suspended execution context (env + regs)
SUSPEND_STATE_BYTES = 32


@dataclass
class UnitResources:
    """Per-task-unit accounting, for the Fig 14 breakdown."""

    name: str
    ntiles: int
    ctrl_alms: int
    tile_alms: int          # all tiles together
    memnet_alms: int
    ctrl_regs: int
    tile_regs: int
    memnet_regs: int
    ram_bits: int           # queue entries + frames; pooled into M20Ks
    is_spawner: bool        # loop-control / parent units vs leaf workers


@dataclass
class ResourceReport:
    """Design-level totals plus the Fig 14 sub-block breakdown."""

    alms: int
    regs: int
    brams: int
    units: List[UnitResources] = field(default_factory=list)
    cache_brams: int = 0

    def breakdown(self) -> Dict[str, int]:
        """ALMs by sub-block, Fig 14's categories."""
        tiles = sum(u.tile_alms for u in self.units if not u.is_spawner)
        parallel_for = sum(u.tile_alms for u in self.units if u.is_spawner)
        task_ctrl = sum(u.ctrl_alms for u in self.units)
        mem_arb = sum(u.memnet_alms for u in self.units)
        misc = self.alms - tiles - parallel_for - task_ctrl - mem_arb
        return {
            "tiles": tiles,
            "parallel_for": parallel_for,
            "task_ctrl": task_ctrl,
            "mem_arb": mem_arb,
            "misc": misc,
        }

    def chip_percent(self, alm_capacity: int) -> float:
        return 100.0 * self.alms / alm_capacity


def _value_bytes(value: Value, ranges=None) -> int:
    if ranges is not None:
        bits = ranges.bits_of(value)
        if bits is not None:
            return max(1, min(-(-bits // 8), value.type.size_bytes))
    return max(1, value.type.size_bytes)


#: functional-unit classes whose datapath scales with operand width;
#: FP units, memory ports and control FSMs are fixed-width blocks
WIDTH_SCALED_OPS = frozenset({"alu", "mul", "div", "regread", "regwrite"})
#: narrowest datapath worth instantiating separately
MIN_OP_BITS = 4


def _node_bits(node, ranges) -> Optional[int]:
    """Datapath width of one DFG node under the inferred ranges: the
    widest of its (integer) result and operands, None when nothing
    integer-typed is involved."""
    from repro.ir.instructions import Load
    from repro.ir.types import IntType

    inst = node.inst
    widths = []
    if node.kind in ("regread", "regwrite"):
        cell = inst.pointer
        bits = ranges.cell_bits(cell)
        if bits is not None:
            widths.append(bits)
        if isinstance(inst, Load) and isinstance(inst.type, IntType):
            declared = inst.type.bits
            widths = [min(w, declared) for w in widths] or [declared]
    else:
        values = [inst] + list(inst.operands)
        for value in values:
            if not isinstance(value.type, IntType):
                continue
            bits = ranges.bits_of(value)
            declared = value.type.bits
            widths.append(min(bits, declared) if bits else declared)
    if not widths:
        return None
    return max(MIN_OP_BITS, max(widths))


def _op_cost(node, table, default, ranges) -> int:
    cost = table.get(node.kind, default)
    if ranges is None or node.kind not in WIDTH_SCALED_OPS:
        return cost
    bits = _node_bits(node, ranges)
    if bits is None:
        return cost
    # LUT/carry-chain area of integer datapaths grows ~linearly in width;
    # 32 bits is the calibration point of the coefficient table
    return max(1, round(cost * bits / 32.0))


def _unit_resources(unit, include_suspend_state: bool = True,
                    ranges=None) -> UnitResources:
    compiled = unit.compiled
    op_alms = 0
    op_regs = 0
    for dfg in compiled.dfgs.values():
        for node in dfg.nodes:
            op_alms += _op_cost(node, ALM_PER_OP, 30, ranges)
            op_regs += _op_cost(node, REG_PER_OP, 40, ranges)

    ntiles = len(unit.tiles)
    tile_alms = ntiles * (ALM_TILE_BASE + op_alms)
    tile_regs = ntiles * (REG_TILE_BASE + op_regs)
    memnet_alms = ntiles * ALM_MEMNET_PER_TILE
    memnet_regs = ntiles * REG_MEMNET_PER_TILE

    # queue storage: Args RAM + metadata + suspended context, in M20Ks
    args_bytes = sum(_value_bytes(v, ranges) for v in compiled.arg_values)
    entry_bytes = args_bytes + QUEUE_META_BYTES
    if include_suspend_state and compiled.task.spawns_anything():
        entry_bytes += SUSPEND_STATE_BYTES
    queue_bits = unit.queue.depth * entry_bytes * 8
    frame_bits = unit.queue.depth * compiled.frame_size * 8

    return UnitResources(
        name=compiled.name,
        ntiles=ntiles,
        ctrl_alms=ALM_UNIT_CTRL,
        tile_alms=tile_alms,
        memnet_alms=memnet_alms,
        ctrl_regs=REG_UNIT_CTRL,
        tile_regs=tile_regs,
        memnet_regs=memnet_regs,
        ram_bits=queue_bits + frame_bits,
        is_spawner=compiled.task.spawns_anything(),
    )


def estimate_resources(accel: Accelerator,
                       include_cache: bool = False,
                       width_aware: bool = False,
                       ranges=None) -> ResourceReport:
    """Estimate post-synthesis resources for an elaborated accelerator.

    ``include_cache`` adds the shared L1's data-array M20Ks (Table V
    reports them; Table III/IV count only the task logic).

    ``width_aware`` sizes integer datapaths and Args RAM entries by the
    bitwidths the value-range analysis proves sufficient instead of the
    declared (uniform 32/64-bit) type widths; pass ``ranges`` to reuse an
    existing :class:`~repro.analysis.ranges.ModuleRanges`.
    """
    if width_aware and ranges is None:
        from repro.analysis.ranges import infer_design_ranges

        ranges = infer_design_ranges(accel.design)
    if not width_aware:
        ranges = None
    units = [_unit_resources(u, ranges=ranges) for u in accel.units]
    alms = ALM_DESIGN_BASE + sum(u.ctrl_alms + u.tile_alms + u.memnet_alms
                                 for u in units)
    regs = REG_DESIGN_BASE + sum(u.ctrl_regs + u.tile_regs + u.memnet_regs
                                 for u in units)
    # queue/frame storage pools into shared M20K blocks at design level
    brams = max(1, -(-sum(u.ram_bits for u in units) // M20K_BITS))
    cache_brams = 0
    if include_cache and accel.cache is not None:
        cache_bits = accel.cache.params.size_bytes * 8
        cache_brams = -(-cache_bits // M20K_BITS)
        brams += cache_brams
    return ResourceReport(alms=alms, regs=regs, brams=brams, units=units,
                          cache_brams=cache_brams)
