"""Ablation: the memory-system design choices DESIGN.md calls out.

The paper's §VI names the cache hierarchy as the main bottleneck
("limited support for multiple outstanding cache misses"). These
ablations quantify that on our model: MSHR count, data-box staging
entries, and cache capacity.
"""

import pytest

from dataclasses import replace

from repro.accel import AcceleratorConfig, TaskUnitParams
from repro.memory.cache import CacheParams
from repro.reports import bench_record, render_table
from repro.workloads import REGISTRY


def run_with(name, scale=2, ntiles=4, cache=None, databox_entries=8):
    workload = REGISTRY.get(name)
    config = workload.default_config(ntiles=ntiles)
    if cache is not None:
        config = replace(config, cache=cache)
    if databox_entries != 8:
        config = replace(config, unit_params={}, default_ntiles=ntiles)
        # apply the databox depth to every unit by pre-registering params
        from repro.accel.generator import generate

        design = generate(workload.fresh_module())
        config.unit_params = {
            ct.name: TaskUnitParams(ntiles=ntiles,
                                    databox_entries=databox_entries)
            for ct in design.compiled
        }
    result = workload.run(config=config, scale=scale)
    assert result.correct, name
    return result.cycles


def test_ablation_mshr_count(benchmark, save_result, save_json):
    """More MSHRs overlap more misses; 1 MSHR serialises DRAM traffic."""

    def run():
        rows = {}
        for mshrs in (1, 2, 4, 8):
            cache = CacheParams(mshr_count=mshrs)
            rows[mshrs] = {
                "saxpy": run_with("saxpy", cache=cache),
                "matrix_add": run_with("matrix_add", cache=cache),
            }
        return rows

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[m, d["saxpy"], d["matrix_add"]] for m, d in data.items()]
    text = render_table(["MSHRs", "saxpy cycles", "matrix cycles"], rows,
                        title="Ablation — MSHR count (memory-bound kernels)")
    save_result("ablation_mshr", text)
    save_json("ablation_mshr", [
        bench_record(name, config={"ntiles": 4, "mshrs": mshrs, "scale": 2},
                     cycles=cycles)
        for mshrs, d in data.items() for name, cycles in d.items()])

    # fewer MSHRs must not be faster; 1 MSHR visibly hurts streaming codes
    assert data[1]["saxpy"] > data[4]["saxpy"] * 1.1
    assert data[8]["saxpy"] <= data[1]["saxpy"]
    assert data[8]["matrix_add"] <= data[1]["matrix_add"]


def test_ablation_cache_size(benchmark, save_result, save_json):
    """The paper's 16K L1 vs smaller: once the matrices stop fitting,
    conflict misses start costing AXI round trips."""

    def run():
        rows = {}
        for kb in (1, 4, 16):
            cache = CacheParams(size_bytes=kb * 1024)
            rows[kb] = run_with("matrix_add", cache=cache)
        return rows

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[kb, cycles] for kb, cycles in data.items()]
    text = render_table(["L1 KB", "matrix_add cycles"], rows,
                        title="Ablation — shared L1 capacity")
    save_result("ablation_cache_size", text)
    save_json("ablation_cache_size", [
        bench_record("matrix_add",
                     config={"ntiles": 4, "l1_kb": kb, "scale": 2},
                     cycles=cycles)
        for kb, cycles in data.items()])
    assert data[16] < data[1]   # 3 matrices thrash a 1 KB L1
    assert data[16] <= data[4]


def test_ablation_databox_entries(benchmark, save_result, save_json):
    """The Fig 8 allocator table bounds memory parallelism per unit: a
    single staging entry serialises every tile's memory operations."""

    def run():
        return {entries: run_with("matrix_add", databox_entries=entries)
                for entries in (1, 2, 8)}

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[e, c] for e, c in data.items()]
    text = render_table(["Entries", "matrix cycles"], rows,
                        title="Ablation — data-box staging entries")
    save_result("ablation_databox", text)
    save_json("ablation_databox", [
        bench_record("matrix_add",
                     config={"ntiles": 4, "databox_entries": entries,
                             "scale": 2},
                     cycles=cycles)
        for entries, cycles in data.items()])
    assert data[8] < data[1]
