"""Execution tracing: a lightweight event log for debugging and for the
execution-flow figures (paper Fig 5 / Fig 7 style traces)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional


@dataclass
class TraceEvent:
    cycle: int
    source: str
    kind: str
    detail: str

    def __str__(self):
        return f"[{self.cycle:>8}] {self.source:<20} {self.kind:<10} {self.detail}"


class Trace:
    """Collects events; disabled by default so the hot path stays cheap."""

    def __init__(self, enabled: bool = False,
                 filter_: Optional[Callable[[TraceEvent], bool]] = None):
        self.enabled = enabled
        self.events: List[TraceEvent] = []
        self.filter = filter_

    def emit(self, cycle: int, source: str, kind: str, detail: str = ""):
        if not self.enabled:
            return
        event = TraceEvent(cycle, source, kind, detail)
        if self.filter is None or self.filter(event):
            self.events.append(event)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def render(self, limit: int = 200) -> str:
        lines = [str(e) for e in self.events[:limit]]
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)

    def __len__(self):
        return len(self.events)


#: shared no-op trace used when callers don't supply one
NULL_TRACE = Trace(enabled=False)
