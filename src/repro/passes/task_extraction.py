"""Task extraction: Tapir markers -> explicit task graph (paper Fig 9).

The pass walks each function's CFG. Detach edges open a new task region;
reattach edges close it. A region that consists of nothing but a single
call (plus an optional store of its result) collapses to a *direct spawn*
of the callee's task unit — this is how ``cilk_spawn f(...)`` and recursive
parallelism (mergesort, fib) map onto hardware without intermediate units.
"""

from __future__ import annotations

from typing import List, Set

from repro.errors import PassError
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Call,
    Detach,
    Instruction,
    Reattach,
    Ret,
    Store,
)
from repro.ir.module import Module
from repro.ir.values import Argument
from repro.passes.liveness import region_live_ins
from repro.passes.taskgraph import (
    DETACHED,
    FUNCTION_ROOT,
    DirectSpawn,
    Task,
    TaskGraph,
)


def _region_blocks(entry: BasicBlock, continuation: BasicBlock) -> List[BasicBlock]:
    """Blocks belonging to one task region.

    Traversal starts at the region entry; detached sub-regions are skipped
    (a Detach contributes only its continuation edge — the detached blocks
    belong to the child task); a Reattach to ``continuation`` closes the
    region. ``continuation=None`` means a function root region, closed by
    ``ret``.
    """
    owned: List[BasicBlock] = []
    seen: Set[BasicBlock] = set()
    stack = [entry]
    while stack:
        block = stack.pop()
        if block in seen or block is continuation:
            continue
        seen.add(block)
        owned.append(block)
        term = block.terminator
        if term is None:
            raise PassError(f"unterminated block {block.name} during extraction")
        if isinstance(term, Reattach):
            if continuation is None:
                raise PassError(
                    f"reattach outside any detached region in {block.name}")
            continue  # region closed on this path
        if isinstance(term, Ret):
            continue
        if isinstance(term, Detach):
            stack.append(term.continuation)  # detached blocks go to the child
            continue
        stack.extend(term.successors())
    # deterministic order: function block order
    order = {b: i for i, b in enumerate(entry.parent.blocks)}
    owned.sort(key=lambda b: order[b])
    return owned


def _match_direct_spawn(region: List[BasicBlock], detach: Detach):
    """Recognise a region of shape ``[call f(...) (, store result, ptr)?,
    reattach]`` in a single block; returns a DirectSpawn or None."""
    if len(region) != 1:
        return None
    block = region[0]
    body = block.body()
    if not isinstance(block.terminator, Reattach):
        return None
    if len(body) == 1 and isinstance(body[0], Call):
        return DirectSpawn(detach, body[0].callee, list(body[0].args))
    if (len(body) == 2 and isinstance(body[0], Call)
            and isinstance(body[1], Store) and body[1].value is body[0]):
        ptr = body[1].pointer
        # the pointer must come from outside the region, else the region
        # has real local computation and must stay a task of its own.
        if isinstance(ptr, Instruction) and ptr.parent is block:
            return None
        return DirectSpawn(detach, body[0].callee, list(body[0].args), ret_ptr=ptr)
    return None


def _value_order_key(function: Function):
    """Deterministic ordering for task argument lists: function arguments
    first (by index), then instructions in (block, position) order."""
    positions = {}
    for bi, block in enumerate(function.blocks):
        for ii, inst in enumerate(block.instructions):
            positions[inst] = (1, bi, ii)

    def key(value):
        if isinstance(value, Argument):
            return (0, value.index, 0)
        return positions.get(value, (2, 0, 0))

    return key


def _extract_region(graph: TaskGraph, task: Task, continuation):
    """Populate ``task`` with its blocks, then recurse into nested detaches."""
    task.blocks = _region_blocks(task.entry, continuation)
    for block in task.blocks:
        term = block.terminator
        if isinstance(term, Detach):
            child_region = _region_blocks(term.detached, term.continuation)
            direct = _match_direct_spawn(child_region, term)
            if direct is not None:
                task.direct_spawns[term] = direct
                continue
            child = graph.new_task(
                f"{task.name}.t{len(task.children)}", task.function,
                term.detached, DETACHED)
            child.parent = task
            task.children.append(child)
            task.region_spawns[term] = child
            _extract_region(graph, child, term.continuation)
        for inst in block.body():
            if isinstance(inst, Call):
                task.calls.append(inst)

    # Task arguments: live-ins of the region *including* nested regions —
    # a value a grandchild needs must flow through this task's Args RAM.
    all_blocks = list(task.blocks)
    stack = list(task.children)
    while stack:
        child = stack.pop()
        all_blocks.extend(child.blocks)
        stack.extend(child.children)
    live = region_live_ins(all_blocks)
    if task.kind == FUNCTION_ROOT:
        task.args = list(task.function.arguments)
    else:
        task.args = sorted(live, key=_value_order_key(task.function))


def extract_tasks(module: Module) -> TaskGraph:
    """Run Stage-1 task extraction over a whole module."""
    graph = TaskGraph(module)
    for function in module.functions:
        root = graph.new_task(function.name, function, function.entry,
                              FUNCTION_ROOT)
        _extract_region(graph, root, None)

    # sanity: every direct spawn / call target must be in the module
    for task in graph.tasks:
        for spawn in task.direct_spawns.values():
            if spawn.callee not in graph.root_for_function:
                raise PassError(
                    f"direct spawn of unknown function {spawn.callee.name}")
        for call in task.calls:
            if call.callee not in graph.root_for_function:
                raise PassError(f"call to unknown function {call.callee.name}")
    return graph
