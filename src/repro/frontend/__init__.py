"""Cilk-like language frontend: lexer, parser, semantic analysis, lowering."""

from repro.frontend.lexer import Lexer, Token, tokenize
from repro.frontend.lower import compile_source, lower_program
from repro.frontend.parser import Parser, parse
from repro.frontend.sema import Sema, analyze

__all__ = [
    "Lexer", "Token", "tokenize",
    "compile_source", "lower_program",
    "Parser", "parse",
    "Sema", "analyze",
]
