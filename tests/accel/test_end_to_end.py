"""End-to-end accelerator tests: the full toolchain on the paper's
running examples, checking both results and architectural behaviours."""

import pytest

from repro.accel import AcceleratorConfig, TaskUnitParams, build_accelerator
from repro.ir.types import I32

from tests.irprograms import (
    build_fib_module,
    build_matrix_add_module,
    build_scale_module,
    build_serial_sum_module,
)


def fib(n):
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a


class TestScaleAccelerator:
    """Fig 12 microbenchmark end to end."""

    def run_scale(self, n=24, config=None):
        acc = build_accelerator(build_scale_module(), config)
        base = acc.memory.alloc_array(I32, range(n))
        result = acc.run("scale", [base, n])
        return acc, base, result, n

    def test_increments_every_element(self):
        acc, base, result, n = self.run_scale()
        assert acc.memory.read_array(base, I32, n) == [i + 1 for i in range(n)]

    def test_zero_iterations(self):
        acc, base, result, _ = self.run_scale(n=0)
        assert result.cycles < 100  # just spawn + loop test + sync

    def test_single_iteration(self):
        acc, base, result, _ = self.run_scale(n=1)
        assert acc.memory.read_array(base, I32, 1) == [1]

    def test_all_children_spawned_and_joined(self):
        acc, base, result, n = self.run_scale()
        body_unit = acc.units[1]
        assert body_unit.stats()["spawns_accepted"] == n
        assert body_unit.stats()["completed"] == n

    def test_more_tiles_is_faster(self):
        _, _, one_tile, _ = self.run_scale(n=32)
        cfg = AcceleratorConfig(default_ntiles=4)
        _, _, four_tiles, _ = self.run_scale(n=32, config=cfg)
        assert four_tiles.cycles < one_tile.cycles

    def test_run_twice_reuses_accelerator(self):
        acc = build_accelerator(build_scale_module())
        base = acc.memory.alloc_array(I32, [0] * 8)
        acc.run("scale", [base, 8])
        acc.run("scale", [base, 8])
        assert acc.memory.read_array(base, I32, 8) == [2] * 8


class TestMatrixAddAccelerator:
    """The Fig 3 nested-loop example: three task units."""

    def setup_method(self):
        self.n = 8
        self.module = build_matrix_add_module(rows_stride=self.n)
        self.acc = build_accelerator(self.module)
        count = self.n * self.n
        self.A = self.acc.memory.alloc_array(I32, range(count))
        self.B = self.acc.memory.alloc_array(I32, range(100, 100 + count))
        self.C = self.acc.memory.alloc_array(I32, [0] * count)

    def test_three_task_units(self):
        assert len(self.acc.units) == 3

    def test_result_correct(self):
        self.acc.run("matrix_add", [self.A, self.B, self.C, self.n])
        got = self.acc.memory.read_array(self.C, I32, self.n * self.n)
        assert got == [100 + 2 * i for i in range(self.n * self.n)]

    def test_n_squared_body_instances(self):
        self.acc.run("matrix_add", [self.A, self.B, self.C, self.n])
        body = self.acc.units[2]
        assert body.stats()["completed"] == self.n * self.n

    def test_inner_unit_spawned_n_times(self):
        self.acc.run("matrix_add", [self.A, self.B, self.C, self.n])
        inner = self.acc.units[1]
        assert inner.stats()["spawns_accepted"] == self.n


class TestRecursiveAccelerator:
    """Fib: recursion through direct self-spawns + frame return slots."""

    @pytest.mark.parametrize("n", [0, 1, 2, 5, 10, 12])
    def test_fib_values(self, n):
        acc = build_accelerator(build_fib_module())
        result = acc.run("fib", [n])
        assert result.retval == fib(n)

    def test_recursive_unit_uses_lifo_policy(self):
        acc = build_accelerator(build_fib_module())
        assert acc.units[0].queue.policy == "lifo"

    def test_frame_region_allocated(self):
        acc = build_accelerator(build_fib_module())
        assert acc.units[0].frame_size == 8  # two i32 slots
        assert acc.units[0].frame_base > 0

    def test_deep_recursion_with_modest_queue_still_completes(self):
        """A queue covering the whole spawn tree (fib(12) = 465 dynamic
        tasks) can never hit the circular wait."""
        cfg = AcceleratorConfig(
            unit_params={"fib": TaskUnitParams(ntiles=2, queue_depth=512)})
        acc = build_accelerator(build_fib_module(), cfg)
        result = acc.run("fib", [12])
        assert result.retval == fib(12)

    def test_undersized_queue_reports_livelock(self):
        """A queue too shallow for the live spawn tree is a circular wait;
        the engine must surface it as a DeadlockError, not hang."""
        from repro.errors import DeadlockError

        cfg = AcceleratorConfig(
            unit_params={"fib": TaskUnitParams(ntiles=2, queue_depth=4)})
        acc = build_accelerator(build_fib_module(), cfg)
        with pytest.raises(DeadlockError, match="queue"):
            acc.run("fib", [12])


class TestSerialAccelerator:
    def test_serial_function_single_unit(self):
        acc = build_accelerator(build_serial_sum_module())
        assert len(acc.units) == 1
        base = acc.memory.alloc_array(I32, range(30))
        result = acc.run("sum", [base, 30])
        assert result.retval == sum(range(30))

    def test_loop_carried_register_state(self):
        """The accumulator lives in the register file, not memory."""
        acc = build_accelerator(build_serial_sum_module())
        base = acc.memory.alloc_array(I32, [5] * 10)
        result = acc.run("sum", [base, 10])
        assert result.retval == 50
        # only the array loads touch the cache: 10 loads, no acc traffic
        assert acc.cache.stats()["loads"] == 10
        assert acc.cache.stats()["stores"] == 0


class TestSpawnLatency:
    """§V-A: tasks can be spawned in ~10 cycles."""

    def test_single_spawn_end_to_end_latency(self):
        acc = build_accelerator(build_scale_module())
        base = acc.memory.alloc_array(I32, [0])
        acc.run("scale", [base, 1])
        root, body = acc.units
        spawn_to_dispatch = (body.first_dispatch_cycle
                             - root.first_dispatch_cycle)
        # root must execute its loop header first (~a few cycles); the
        # spawn handshake itself lands within the paper's ~10-cycle claim
        assert spawn_to_dispatch < 40

    def test_sustained_spawn_rate(self):
        """Fine-grain tasks issue every few cycles, not every ~100 like
        a software runtime (Fig 13's 'Software' line)."""
        n = 64
        cfg = AcceleratorConfig(default_ntiles=4)
        acc = build_accelerator(build_scale_module(), cfg)
        base = acc.memory.alloc_array(I32, [0] * n)
        result = acc.run("scale", [base, n])
        cycles_per_spawn = result.cycles / n
        assert cycles_per_spawn < 15


class TestStatsPlumbing:
    def test_run_result_contains_stats(self):
        acc = build_accelerator(build_scale_module())
        base = acc.memory.alloc_array(I32, [0] * 4)
        result = acc.run("scale", [base, 4])
        assert "cache" in result.stats
        assert "units" in result.stats
        assert result.time_seconds(mhz=150.0) == pytest.approx(
            result.cycles / 150e6)
