"""Make the repository root importable so tests can share IR builders.

Also points the persistent run registry at a throwaway directory:
tests exercising ``--stats-json`` / ``repro history`` must never append
to the checkout's real ``results/history/runs.jsonl``.
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

os.environ.setdefault("REPRO_HISTORY_DIR",
                      tempfile.mkdtemp(prefix="repro-test-history-"))
