"""Parser and semantic-analysis tests."""

import pytest

from repro.errors import ParseError, SemanticError
from repro.frontend import analyze, parse
from repro.frontend import ast
from repro.ir.types import F32, I1, I32, I64, PointerType


def check(source):
    return analyze(parse(source))


class TestParser:
    def test_function_signature(self):
        p = parse("func f(a: i32, b: f32*) -> i64 { return 0; }")
        f = p.functions[0]
        assert f.name == "f"
        assert f.params[0].type == I32
        assert f.params[1].type == PointerType(F32)
        assert f.return_type == I64

    def test_global_declaration(self):
        p = parse("global buf: i32[128];")
        g = p.globals[0]
        assert g.name == "buf" and g.count == 128 and g.element_type == I32

    def test_precedence(self):
        p = parse("func f() -> i32 { return 1 + 2 * 3; }")
        expr = p.functions[0].body.statements[0].value
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.rhs, ast.Binary) and expr.rhs.op == "*"

    def test_comparison_binds_looser_than_arith(self):
        p = parse("func f(a: i32) -> i32 { return a + 1 < a * 2; }")
        expr = p.functions[0].body.statements[0].value
        assert expr.op == "<"

    def test_nested_if_else_chain(self):
        p = parse("""
        func f(a: i32) {
          if (a < 0) { } else if (a == 0) { } else { }
        }
        """)
        stmt = p.functions[0].body.statements[0]
        assert isinstance(stmt.else_body, ast.If)

    def test_cilk_for_parsed_as_parallel(self):
        p = parse("""
        func f(n: i32) {
          cilk_for (var i: i32 = 0; i < n; i = i + 1) { }
          for (var j: i32 = 0; j < n; j = j + 1) { }
        }
        """)
        loops = p.functions[0].body.statements
        assert loops[0].parallel and not loops[1].parallel

    def test_spawn_forms(self):
        p = parse("""
        func g() { }
        func f() {
          spawn g();
          spawn { g(); }
          var x: i32 = spawn h();
          sync;
        }
        func h() -> i32 { return 1; }
        """)
        stmts = p.functions[1].body.statements
        assert stmts[0].call is not None
        assert stmts[1].block is not None
        assert stmts[2].spawn_init is not None
        assert isinstance(stmts[3], ast.SyncStmt)

    def test_address_of(self):
        p = parse("func f(a: i32*) -> i32* { return &a[3]; }")
        expr = p.functions[0].body.statements[0].value
        assert isinstance(expr, ast.AddrOf)

    def test_missing_semicolon(self):
        with pytest.raises(ParseError, match="expected"):
            parse("func f() { var x: i32 = 1 }")

    def test_spawn_requires_call_or_block(self):
        with pytest.raises(ParseError, match="spawn target"):
            parse("func f() { spawn 42; }")


class TestSema:
    def test_valid_program_passes(self):
        check("""
        global buf: i32[16];
        func f(a: i32*, n: i32) -> i32 {
          var total: i32 = 0;
          for (var i: i32 = 0; i < n; i = i + 1) {
            total = total + a[i] + buf[i];
          }
          return total;
        }
        """)

    def test_expression_types_annotated(self):
        p = check("func f(a: i32) -> i32 { return a + 1; }")
        ret = p.functions[0].body.statements[0]
        assert ret.value.type == I32

    def test_comparison_is_boolean(self):
        p = check("func f(a: i32) { if (a < 3) { } }")
        cond = p.functions[0].body.statements[0].condition
        assert cond.type == I1

    def test_literal_adopts_i64_context(self):
        p = check("func f(a: i64) -> i64 { return a + 1; }")
        ret = p.functions[0].body.statements[0]
        assert ret.value.type == I64

    def test_undefined_variable(self):
        with pytest.raises(SemanticError, match="undefined variable"):
            check("func f() { var x: i32 = y; }")

    def test_undefined_function(self):
        with pytest.raises(SemanticError, match="undefined function"):
            check("func f() { g(); }")

    def test_type_mismatch_assign(self):
        with pytest.raises(SemanticError, match="cannot assign"):
            check("func f() { var x: i32 = 0; x = 1.5; }")

    def test_call_arity(self):
        with pytest.raises(SemanticError, match="takes 1 arguments"):
            check("func g(a: i32) { } func f() { g(); }")

    def test_call_arg_type(self):
        with pytest.raises(SemanticError, match="argument type"):
            check("func g(a: i32*) { } func f() { g(3); }")

    def test_return_type_mismatch(self):
        with pytest.raises(SemanticError, match="return type"):
            check("func f() -> i32 { return 1.5; }")

    def test_void_return_with_value(self):
        with pytest.raises(SemanticError, match="void function"):
            check("func f() { return 3; }")

    def test_assign_to_parameter_rejected(self):
        with pytest.raises(SemanticError, match="parameter"):
            check("func f(a: i32) { a = 1; }")

    def test_indexing_non_pointer(self):
        with pytest.raises(SemanticError, match="pointer"):
            check("func f(a: i32) -> i32 { return a[0]; }")

    def test_spawn_region_cannot_write_outer_local(self):
        with pytest.raises(SemanticError, match="captured by value"):
            check("""
            func f() {
              var x: i32 = 0;
              spawn { x = 1; }
              sync;
            }
            """)

    def test_cilk_for_body_cannot_write_outer_local(self):
        with pytest.raises(SemanticError, match="captured by value"):
            check("""
            func f(n: i32) {
              var total: i32 = 0;
              cilk_for (var i: i32 = 0; i < n; i = i + 1) {
                total = total + i;
              }
            }
            """)

    def test_spawn_region_can_write_own_locals(self):
        check("""
        func f(a: i32*, n: i32) {
          cilk_for (var i: i32 = 0; i < n; i = i + 1) {
            var t: i32 = a[i];
            t = t + 1;
            a[i] = t;
          }
        }
        """)

    def test_return_inside_spawn_rejected(self):
        with pytest.raises(SemanticError, match="return inside"):
            check("func f() { spawn { return; } sync; }")

    def test_spawn_result_type_checked(self):
        with pytest.raises(SemanticError, match="does not match"):
            check("""
            func g() -> i64 { return 0; }
            func f() { var x: i32 = spawn g(); sync; }
            """)

    def test_spawn_of_void_function_as_result_rejected(self):
        with pytest.raises(SemanticError, match="returns"):
            check("""
            func g() { }
            func f() { var x: i32 = spawn g(); sync; }
            """)

    def test_duplicate_declarations(self):
        with pytest.raises(SemanticError, match="redeclaration"):
            check("func f() { var x: i32 = 0; var x: i32 = 1; }")
        with pytest.raises(SemanticError, match="duplicate function"):
            check("func f() { } func f() { }")

    def test_expression_statement_must_be_call(self):
        # a bare variable parses as an ExprStmt; sema rejects non-calls
        with pytest.raises(SemanticError, match="must be calls"):
            check("func f(a: i32) { a; }")

    def test_arbitrary_expression_statement_is_a_parse_error(self):
        with pytest.raises(ParseError):
            check("func f(a: i32) { a + 1; }")
