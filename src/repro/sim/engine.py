"""The cycle engine: a two-phase clock over components and channels.

Two engines share one contract:

* ``engine="dense"`` — the original oracle loop: every component ticks
  and every channel commits on every cycle.
* ``engine="event"`` (default) — an event-driven kernel. Components
  declare *sensitivity* (the channels they read/write) and an optional
  self-wake timer (:meth:`Component.next_wake`); the engine keeps a
  current-cycle wake set, a channel ``commit()`` wakes subscribers, and
  only woken components tick. When the wake set runs dry but timers are
  armed (DRAM in flight, cache fills counting down) the clock jumps
  straight to the next deadline — *quiescent fast-forward*.

The contract between them is **bit-identical cycle counts and stats**:
TAPAS designs are latency-insensitive (every inter-block interface is a
registered ready/valid handshake, reads observe start-of-cycle state),
so a tick of a component whose inputs did not change and whose timers
have not expired is a pure no-op, and skipping it cannot be observed.
Components that do not implement the sensitivity contract default to
being woken every cycle, which degrades to dense behaviour and is
therefore always safe. Differential tests over every example program and
benchmark config enforce the bit-identity.
"""

from __future__ import annotations

import heapq
import time
from typing import Callable, Dict, List, Optional

from repro.errors import DeadlockError, SimulationError
from repro.sim.channel import Channel
from repro.sim.component import NEVER, Component

#: cycles of total inactivity tolerated before declaring deadlock; must
#: exceed the worst-case quiet period of any component (DRAM latency).
DEADLOCK_WINDOW = 2048

#: cycles without ANY channel movement tolerated even while components
#: report busy — catches livelocks where stalled units retry forever
#: (e.g. a task-queue-full circular wait in deep recursion).
STALL_WINDOW = 32768

ENGINES = ("event", "dense")


class Simulator:
    """Owns the clock, all components and all channels."""

    def __init__(self, name: str = "sim", engine: str = "event"):
        if engine not in ENGINES:
            raise SimulationError(
                f"unknown engine {engine!r} (expected one of {ENGINES})")
        self.name = name
        self.engine = engine
        self.cycle = 0
        self.components: List[Component] = []
        self.channels: List[Channel] = []
        self._idle_cycles = 0
        self._quiet_cycles = 0  # no channel movement, busy or not
        self._activity_flag = False
        #: optional per-cycle sampler (repro.obs.Observer); None keeps the
        #: hot loop at a single pointer test per cycle
        self.observer = None
        # -- event-engine state ------------------------------------------
        #: channels with a pending push/pop this cycle (self-registered)
        self._dirty_channels: List[Channel] = []
        #: components due on the very next cycle — the common case, kept
        #: out of the heap so steady-state scheduling is list appends
        self._due_list: List[Component] = []
        self._heap: List[tuple] = []          # (wake_cycle, component index)
        self._finalized_shape = (-1, -1)      # (n components, n channels)
        # -- host wall-clock accounting ----------------------------------
        self.host_seconds = 0.0
        self._cycles_simulated = 0
        self._ticks_executed = 0
        self._component_ticks = 0
        self._fast_forwarded_cycles = 0

    # -- construction -----------------------------------------------------

    def add_component(self, component: Component) -> Component:
        component.sim = self
        component._sim_index = len(self.components)
        component._wake_cycle = NEVER
        self.components.append(component)
        return component

    def add_channel(self, name: str, capacity: int = 2) -> Channel:
        channel = Channel(name, capacity)
        channel.sim = self
        self.channels.append(channel)
        return channel

    def attach_observer(self, observer):
        """Install a per-cycle sampler (see :mod:`repro.obs`)."""
        self.observer = observer
        return observer

    # -- clock ---------------------------------------------------------------

    def note_activity(self):
        """Components call this when they make internal progress that does
        not show up as channel traffic (e.g. register-only dataflow firings),
        so livelock detection doesn't misfire on long compute loops."""
        self._activity_flag = True

    def tick(self):
        """Advance one cycle densely: all components observe start-of-cycle
        channel state, then every channel commits its handshake. This is
        the oracle step — always correct for either engine (over-waking a
        quiescent component is a no-op)."""
        executed = self.cycle
        for component in self.components:
            component.tick(executed)
        self._ticks_executed += 1
        self._component_ticks += len(self.components)
        moved = False
        for channel in self.channels:
            if channel.commit():
                moved = True
        self._dirty_channels.clear()
        self.cycle += 1
        self._account(moved)
        if self.observer is not None:
            self.observer.on_cycle(self, executed)

    def _account(self, moved: bool):
        """Shared post-commit bookkeeping for both engines."""
        if moved or self._activity_flag:
            self._quiet_cycles = 0
        else:
            self._quiet_cycles += 1
        self._activity_flag = False
        if moved or any(c.is_busy() for c in self.components):
            self._idle_cycles = 0
        else:
            self._idle_cycles += 1

    def run(self, done: Callable[[], bool], max_cycles: int = 10_000_000) -> int:
        """Run until ``done()`` is true; returns the cycle count.

        ``done`` must be a pure function of simulation state (the event
        engine only evaluates it when state can have changed). Raises
        :class:`DeadlockError` if nothing moves for a full inactivity
        window, and :class:`SimulationError` on timeout.
        """
        start = self.cycle
        t0 = time.perf_counter()
        try:
            if self.engine == "dense":
                self._run_dense(done, start, max_cycles)
            else:
                self._run_event(done, start, max_cycles)
        finally:
            self.host_seconds += time.perf_counter() - t0
            self._cycles_simulated += self.cycle - start
        return self.cycle - start

    def _check_stalls(self):
        if self._idle_cycles > DEADLOCK_WINDOW:
            raise DeadlockError(self.cycle, self._describe_stall(),
                                postmortem=self.postmortem())
        if self._quiet_cycles > STALL_WINDOW:
            raise DeadlockError(
                self.cycle,
                "components busy but no channel movement (livelock — "
                "likely a task-queue-full circular wait; increase "
                "queue_depth). " + self._describe_stall(),
                postmortem=self.postmortem())

    def _run_dense(self, done, start, max_cycles):
        while not done():
            if self.cycle - start >= max_cycles:
                raise SimulationError(
                    f"simulation exceeded {max_cycles} cycles without finishing")
            self.tick()
            self._check_stalls()

    # -- the event-driven kernel -------------------------------------------

    def _finalize_event(self):
        """(Re)build the channel-subscription map. A component whose
        sensitivity() is None — or that watches a channel this simulator
        does not own — runs in dense-fallback mode: woken every cycle."""
        for channel in self.channels:
            channel._subscribers = []
        for component in self.components:
            channels = component.sensitivity()
            if channels is None:
                component._event_aware = False
                continue
            channels = list(channels)
            if any(ch.sim is not self for ch in channels):
                component._event_aware = False
                continue
            component._event_aware = True
            for channel in channels:
                channel._subscribers.append(component)
        self._finalized_shape = (len(self.components), len(self.channels))

    def _next_event_cycle(self) -> Optional[int]:
        """Earliest scheduled wake, discarding stale heap entries."""
        heap = self._heap
        components = self.components
        while heap:
            cyc, idx = heap[0]
            if components[idx]._wake_cycle == cyc:
                return cyc
            heapq.heappop(heap)
        return None

    def _tick_event(self):
        """One event-driven cycle: tick the woken set, commit the dirty
        channels, wake their subscribers."""
        executed = self.cycle
        heap = self._heap
        components = self.components
        # consume the due list and any due heap entries in one pass; the
        # _wake_cycle check drops stale heap entries and deduplicates
        # components present in both
        woken = []
        for component in self._due_list:
            if component._wake_cycle == executed:
                component._wake_cycle = NEVER
                woken.append(component)
        self._due_list = []
        while heap and heap[0][0] <= executed:
            cyc, idx = heapq.heappop(heap)
            component = components[idx]
            if component._wake_cycle == cyc:
                component._wake_cycle = NEVER
                woken.append(component)
        if len(woken) > 1:
            # tick order never changes behaviour (two-phase clock), but
            # keep registration order for determinism of trace/obs output
            woken.sort(key=lambda c: c._sim_index)
        next_cycle = executed + 1
        due = self._due_list
        for component in woken:
            component.tick(executed)
            if component._event_aware:
                wake = component.next_wake(executed)
                if wake <= next_cycle:
                    if next_cycle < component._wake_cycle:
                        component._wake_cycle = next_cycle
                        due.append(component)
                elif wake < NEVER:
                    if wake < component._wake_cycle:
                        component._wake_cycle = wake
                        heapq.heappush(heap, (wake, component._sim_index))
            elif next_cycle < component._wake_cycle:
                component._wake_cycle = next_cycle
                due.append(component)
        self._ticks_executed += 1
        self._component_ticks += len(woken)

        moved = False
        if self._dirty_channels:
            dirty = self._dirty_channels
            self._dirty_channels = []
            for channel in dirty:
                if channel.commit():
                    moved = True
                    for subscriber in channel._subscribers:
                        if next_cycle < subscriber._wake_cycle:
                            subscriber._wake_cycle = next_cycle
                            due.append(subscriber)
        self.cycle = next_cycle
        self._account(moved)
        if self.observer is not None:
            self.observer.on_cycle(self, executed)

    def _fast_forward(self, start, max_cycles):
        """The wake set is empty and no channel is pending: nothing can
        change until the next armed timer. Jump the clock there in one
        step, stopping early at any deadlock/livelock/timeout boundary so
        those still fire at exactly the dense engine's cycle."""
        target = self._next_event_cycle()
        limit = start + max_cycles  # timeout boundary (checked at loop top)
        target = limit if target is None else min(target, limit)
        # during the span nothing moves and no state changes, so the
        # inactivity counters advance linearly — stop where they trip
        busy = any(c.is_busy() for c in self.components)
        if not busy:
            target = min(target,
                         self.cycle + DEADLOCK_WINDOW + 1 - self._idle_cycles)
        target = min(target,
                     self.cycle + STALL_WINDOW + 1 - self._quiet_cycles)
        span = target - self.cycle
        if span <= 0:  # a wake is due right now — run a normal cycle
            self._tick_event()
            return
        first_skipped = self.cycle
        self.cycle = target
        self._quiet_cycles += span
        if not busy:
            self._idle_cycles += span
        self._fast_forwarded_cycles += span
        if self.observer is not None:
            synth = getattr(self.observer, "on_quiet_span", None)
            if synth is not None:
                synth(self, first_skipped, span)
            else:  # third-party observer: exact per-cycle replay
                for cyc in range(first_skipped, target):
                    self.observer.on_cycle(self, cyc)

    def _run_event(self, done, start, max_cycles):
        if self._finalized_shape != (len(self.components), len(self.channels)):
            self._finalize_event()
        # wake everything once: captures externally staged pushes (the
        # host spawn) and matches the dense engine's universal first tick
        for component in self.components:
            if self.cycle < component._wake_cycle:
                component._wake_cycle = self.cycle
                self._due_list.append(component)
        while not done():
            if self.cycle - start >= max_cycles:
                raise SimulationError(
                    f"simulation exceeded {max_cycles} cycles without finishing")
            if (self._due_list or self._dirty_channels
                    or self._next_event_cycle() == self.cycle):
                self._tick_event()
            else:
                self._fast_forward(start, max_cycles)
            self._check_stalls()

    def postmortem(self) -> dict:
        """Per-component stall attribution plus stuck-channel inventory —
        the deadlock post-mortem attached to :class:`DeadlockError`."""
        from repro.obs.observer import stall_snapshot

        return stall_snapshot(self)

    def _describe_stall(self) -> str:
        from repro.obs.observer import render_stall_snapshot

        return render_stall_snapshot(self.postmortem())

    # -- reporting --------------------------------------------------------

    def engine_stats(self) -> Dict[str, object]:
        """Host-side performance of the simulation itself (never part of
        the bit-identical architectural stats)."""
        seconds = self.host_seconds
        return {
            "name": self.engine,
            "host_seconds": round(seconds, 6),
            "sim_cycles_per_host_second":
                round(self._cycles_simulated / seconds) if seconds > 0 else None,
            "cycles_simulated": self._cycles_simulated,
            "ticks_executed": self._ticks_executed,
            "component_ticks": self._component_ticks,
            "fast_forwarded_cycles": self._fast_forwarded_cycles,
        }

    def stats(self) -> Dict[str, dict]:
        """Architectural stats plus engine metadata.

        Every component is reported (even when its own counters are empty
        — its channels may still have moved), alongside the unconditional
        ``cycles`` and ``engine`` keys. Everything except ``engine`` is
        bit-identical across engines.
        """
        out: Dict[str, dict] = {
            "cycles": self.cycle,
            "engine": self.engine_stats(),
        }
        for component in self.components:
            out[component.name] = component.stats()
        channels = {
            ch.name: {"pushed": ch.total_pushed, "popped": ch.total_popped,
                      "capacity": ch.capacity, "occupancy": ch.occupancy}
            for ch in self.channels if ch.total_pushed or ch.total_popped
        }
        if channels:
            out["channels"] = channels
        return out

    def __repr__(self):
        return (f"<Simulator {self.name} engine={self.engine} "
                f"cycle={self.cycle} {len(self.components)} components>")
