"""Module: the compilation unit handed to the TAPAS toolchain."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import IRError
from repro.ir.function import Function
from repro.ir.types import Type
from repro.ir.values import GlobalVariable


class Module:
    """A set of functions plus globals. One module = one accelerator."""

    def __init__(self, name: str):
        self.name = name
        self.functions: List[Function] = []
        self._functions_by_name: Dict[str, Function] = {}
        self.globals: List[GlobalVariable] = []
        self._globals_by_name: Dict[str, GlobalVariable] = {}

    def add_function(self, function: Function) -> Function:
        if function.name in self._functions_by_name:
            raise IRError(f"duplicate function: {function.name}")
        function.parent = self
        self.functions.append(function)
        self._functions_by_name[function.name] = function
        return function

    def add_global(self, name: str, type_: Type, size_bytes: int) -> GlobalVariable:
        if name in self._globals_by_name:
            raise IRError(f"duplicate global: {name}")
        var = GlobalVariable(type_, name, size_bytes)
        self.globals.append(var)
        self._globals_by_name[name] = var
        return var

    def function(self, name: str) -> Optional[Function]:
        return self._functions_by_name.get(name)

    def remove_function(self, function: Function):
        """Drop a function (used by the inliner's dead-function pruning)."""
        if self._functions_by_name.get(function.name) is not function:
            raise IRError(f"{function.name} is not in module {self.name}")
        self.functions.remove(function)
        del self._functions_by_name[function.name]
        function.parent = None

    def global_(self, name: str) -> Optional[GlobalVariable]:
        return self._globals_by_name.get(name)

    def __repr__(self):
        return (f"<Module {self.name}: {len(self.functions)} functions, "
                f"{len(self.globals)} globals>")
