"""Tests for the command-line driver."""

import pytest

from repro.cli import main


@pytest.fixture
def kernel_file(tmp_path):
    path = tmp_path / "kernel.tapas"
    path.write_text("""
    func double_all(a: i32*, n: i32) {
      cilk_for (var i: i32 = 0; i < n; i = i + 1) {
        a[i] = a[i] * 2;
      }
    }
    """)
    return str(path)


@pytest.fixture
def racy_file(tmp_path):
    path = tmp_path / "racy.tapas"
    path.write_text("""
    func racy_sum(a: i32*, out: i32*, n: i32) {
      cilk_for (var i: i32 = 0; i < n; i = i + 1) {
        out[0] = out[0] + a[i];
      }
    }
    """)
    return str(path)


class TestCommands:
    def test_compile_prints_ir(self, kernel_file, capsys):
        assert main(["compile", kernel_file]) == 0
        out = capsys.readouterr().out
        assert "detach" in out and "sync" in out

    def test_taskgraph_summary(self, kernel_file, capsys):
        assert main(["taskgraph", kernel_file]) == 0
        out = capsys.readouterr().out
        assert "task graph" in out
        assert "spawns" in out

    def test_taskgraph_dot(self, kernel_file, capsys):
        assert main(["taskgraph", kernel_file, "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_analyze_clean_program(self, kernel_file, capsys):
        assert main(["analyze", kernel_file]) == 0
        assert "clean (no findings)" in capsys.readouterr().out

    def test_analyze_racy_program_fails(self, racy_file, capsys):
        assert main(["analyze", racy_file]) == 1
        out = capsys.readouterr().out
        assert "TAP-RACE-001" in out
        assert "spawn site at line" in out

    def test_analyze_json_format(self, racy_file, capsys):
        import json

        assert main(["analyze", racy_file, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["module"] == "racy"
        assert payload["summary"]["errors"] == 2

    def test_analyze_fail_on_warning(self, kernel_file, tmp_path, capsys):
        # a possible (warning-level) race: symbolic stride the affine
        # model cannot prove disjoint
        path = tmp_path / "warned.tapas"
        path.write_text("""
        func rows(a: i32*, n: i32, m: i32) {
          cilk_for (var i: i32 = 0; i < n; i = i + 1) {
            a[i * m] = i;
          }
        }
        """)
        assert main(["analyze", str(path)]) == 0
        capsys.readouterr()
        assert main(["analyze", str(path), "--fail-on", "warning"]) == 1
        assert "TAP-RACE-002" in capsys.readouterr().out

    def test_analyze_shipped_example_programs(self, capsys):
        """The examples/programs fixtures behave as advertised: racy_*
        fail the gate, everything else is clean — the contract CI runs."""
        import glob
        import os

        root = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "examples", "programs")
        programs = sorted(glob.glob(os.path.join(root, "*.cilk")))
        assert programs, "examples/programs/*.cilk fixtures missing"
        for program in programs:
            code = main(["analyze", program, "--fail-on", "error"])
            capsys.readouterr()
            if "racy_" in os.path.basename(program):
                assert code == 1, f"{program} should fail the analyzer"
            else:
                assert code == 0, f"{program} should be race-free"

    def test_emit_chisel(self, kernel_file, capsys):
        assert main(["emit", kernel_file]) == 0
        assert "TaskUnit" in capsys.readouterr().out

    def test_emit_verilog(self, kernel_file, capsys):
        assert main(["emit", kernel_file, "--language", "verilog"]) == 0
        out = capsys.readouterr().out
        assert "module" in out and "endmodule" in out

    def test_estimate(self, kernel_file, capsys):
        assert main(["estimate", kernel_file, "--tiles", "2"]) == 0
        out = capsys.readouterr().out
        assert "Cyclone V" in out and "Arria 10" in out
        assert "ALM breakdown" in out

    def test_run_workload(self, capsys):
        assert main(["run", "saxpy"]) == 0
        out = capsys.readouterr().out
        assert "saxpy: OK" in out

    def test_workloads_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("matrix_add", "dedup", "mergesort"):
            assert name in out


class TestPredict:
    def test_predict_text(self, kernel_file, capsys):
        assert main(["predict", kernel_file, "--tiles", "2",
                     "--size", "8"]) == 0
        out = capsys.readouterr().out
        assert "predicted cycles for double_all" in out
        assert "ranked bottlenecks" in out
        assert "per-task work model" in out

    def test_predict_json(self, kernel_file, capsys):
        import json

        assert main(["predict", kernel_file, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert payload["predicted_cycles"] > 0
        assert payload["bottlenecks"]
        assert payload["tiles"] == 1

    def test_predict_out_file(self, kernel_file, tmp_path, capsys):
        import json

        out_path = tmp_path / "prediction.json"
        assert main(["predict", kernel_file, "--out", str(out_path)]) == 0
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        assert payload["predicted_cycles"] > 0

    def test_predict_unknown_entry(self, kernel_file, capsys):
        assert main(["predict", kernel_file, "--entry", "nope"]) == 1
        assert "no entry function" in capsys.readouterr().err

    def test_predict_is_engine_free(self, kernel_file, capsys,
                                    monkeypatch):
        """predict must never tick a simulation engine."""
        from repro.sim.engine import Simulator

        def boom(self, *args, **kwargs):
            raise AssertionError("predict ran the simulator")

        monkeypatch.setattr(Simulator, "run", boom)
        assert main(["predict", kernel_file]) == 0
        capsys.readouterr()


class TestObservability:
    def test_profile_command(self, kernel_file, capsys):
        assert main(["profile", kernel_file, "--size", "6"]) == 0
        out = capsys.readouterr().out
        assert "Cycle accounting (per component)" in out
        assert "Tile occupancy" in out

    def test_profile_trace_out_is_valid_perfetto_json(self, kernel_file,
                                                      tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        trace_path = tmp_path / "trace.json"
        assert main(["profile", kernel_file, "--size", "6",
                     "--trace-out", str(trace_path)]) == 0
        capsys.readouterr()
        document = json.loads(trace_path.read_text())
        assert validate_chrome_trace(document) == []
        assert document["traceEvents"]

    def test_profile_host_report(self, kernel_file, capsys):
        assert main(["profile", kernel_file, "--size", "6", "--host"]) == 0
        out = capsys.readouterr().out
        assert "Host profile:" in out
        assert "Host seconds by component class" in out
        assert "TaskUnit" in out
        assert "engine.schedule" in out
        assert "coverage=" in out
        assert "Toolchain phases (host spans)" in out

    def test_profile_host_stats_json(self, kernel_file, tmp_path, capsys):
        import json

        stats_path = tmp_path / "stats.json"
        assert main(["profile", kernel_file, "--size", "6", "--host",
                     "--stats-json", str(stats_path)]) == 0
        capsys.readouterr()
        record = json.loads(stats_path.read_text())
        profile = record["host_profile"]
        assert profile["schema"] == 1
        assert profile["coverage"] >= 0.9
        assert profile["wall_seconds"] > 0
        assert any(row["class"] == "TaskUnit" for row in profile["classes"])

    def test_profile_trace_out_carries_host_spans(self, kernel_file,
                                                  tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.json"
        assert main(["profile", kernel_file, "--size", "6",
                     "--trace-out", str(trace_path)]) == 0
        capsys.readouterr()
        document = json.loads(trace_path.read_text())
        events = document["traceEvents"]
        assert any(e["ph"] == "M"
                   and e["args"].get("name") == "host toolchain"
                   for e in events)
        host_names = {e["name"] for e in events
                      if e.get("cat", "").startswith("host:")}
        assert {"elaborate", "simulate"} <= host_names

    def test_profile_invalid_trace_exits_nonzero(self, kernel_file,
                                                 tmp_path, capsys,
                                                 monkeypatch):
        import repro.obs

        monkeypatch.setattr(repro.obs, "validate_chrome_trace",
                            lambda document: ["event 0: missing ph"])
        assert main(["profile", kernel_file, "--size", "6",
                     "--trace-out", str(tmp_path / "trace.json")]) == 1
        assert "missing ph" in capsys.readouterr().err

    def test_run_stats_json_schema(self, tmp_path, capsys):
        import json

        from repro.reports.benchjson import RECORD_KEYS

        stats_path = tmp_path / "stats.json"
        assert main(["run", "saxpy", "--stats-json", str(stats_path)]) == 0
        capsys.readouterr()
        record = json.loads(stats_path.read_text())
        for key in RECORD_KEYS:
            assert key in record, f"stats json missing {key!r}"
        assert record["workload"] == "saxpy"
        assert record["cycles"] > 0
        assert record["utilization"]
        assert isinstance(record["stalls"], dict)
        # schema-4 host telemetry: flat keys plus the registry pointer
        assert record["host_seconds"] > 0
        assert record["sim_cycles_per_host_second"] > 0
        assert record["history"]["path"].endswith("runs.jsonl")
        assert isinstance(record["history"]["seq"], int)

    def test_run_check_repro(self, capsys):
        assert main(["run", "saxpy", "--check-repro"]) == 0
        out = capsys.readouterr().out
        assert "reproducible" in out
        assert "observability off and on" in out

    def test_run_profile_flag(self, capsys):
        assert main(["run", "saxpy", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "saxpy: OK" in out
        assert "Cycle accounting (per component)" in out

    def test_sweep_runs_grid_and_caches(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "sweep.json"
        argv = ["sweep", "--workloads", "fibonacci", "--tiles", "1,2",
                "--cache-dir", str(tmp_path / "cache"),
                "--out", str(out_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "2 points" in cold and "0 cache hit(s)" in cold
        document = json.loads(out_path.read_text())
        assert document["schema"] == 4
        assert document["sweep"]["cache_misses"] == 2
        assert all(r["cycles"] > 0 for r in document["records"])
        # schema-4 document blocks: sweep telemetry + history pointer
        assert document["telemetry"]["point_seconds"]["count"] == 2
        assert document["telemetry"]["workers"]
        assert document["telemetry"]["cache"]["misses"] >= 2
        assert document["history"]["path"].endswith("runs.jsonl")
        # second run: every point served from the cache
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "2 cache hit(s)" in warm
        warm_doc = json.loads(out_path.read_text())
        assert warm_doc["sweep"]["cache_hits"] == 2
        assert [r["cycles"] for r in warm_doc["records"]] == \
            [r["cycles"] for r in document["records"]]

    def test_sweep_no_cache(self, tmp_path, capsys):
        argv = ["sweep", "--workloads", "saxpy", "--no-cache",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        assert main(argv) == 0
        assert "1 cache hit(s)" not in capsys.readouterr().out

    def test_sweep_static_evaluator(self, capsys):
        assert main(["sweep", "--workloads", "saxpy,matrix_add",
                     "--tiles", "1,4", "--evaluator", "static",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "4 points" in out and "0 error(s)" in out
        assert "static" in out  # engine column reflects the evaluator

    def test_sweep_rejects_unknown_workload(self, capsys):
        assert main(["sweep", "--workloads", "nope"]) == 1
        assert "unknown workload" in capsys.readouterr().err

    def test_sweep_rejects_bad_scales(self, capsys):
        assert main(["sweep", "--workloads", "saxpy",
                     "--scales", "bogus"]) == 1
        assert "bad --scales entry" in capsys.readouterr().err


class TestDiff:
    def test_three_engine_matrix_agrees(self, kernel_file, capsys):
        assert main(["diff", kernel_file]) == 0
        out = capsys.readouterr().out
        assert "engines agree (dense, event, compiled)" in out

    def test_engine_pair_selection(self, kernel_file, capsys):
        assert main(["diff", kernel_file, "--engines", "dense,compiled"]) == 0
        assert "engines agree (dense, compiled)" in capsys.readouterr().out

    def test_rejects_single_or_unknown_engine(self, kernel_file, capsys):
        assert main(["diff", kernel_file, "--engines", "dense"]) == 1
        assert "--engines needs" in capsys.readouterr().err
        assert main(["diff", kernel_file, "--engines", "dense,magic"]) == 1
        assert "--engines needs" in capsys.readouterr().err

    def test_first_movement_divergence_attribution(self):
        """The divergence reporter names the first cycle two logs
        disagree on, the channels involved, and their drivers."""
        from repro.cli import _first_movement_divergence

        base = [(5, ("a.req",)), (9, ("a.req", "b.resp"))]
        other = [(5, ("a.req",)), (9, ("a.req",)), (11, ("b.resp",))]
        where = _first_movement_divergence(
            base, other, "dense", "compiled", {"b.resp": "unit0"})
        assert where == (9, "b.resp (driven by unit0) moved under "
                            "dense only")
        assert _first_movement_divergence(
            base, list(base), "dense", "compiled", {}) is None

    def test_divergence_reported_with_cycle(self, kernel_file, capsys,
                                            monkeypatch):
        """Force one engine to lie about its movement log and outcome:
        diff must fail and point at the first divergent cycle."""
        from repro.accel import accelerator as accel_mod

        real_run = accel_mod.Accelerator.run

        def crooked_run(self, *args, **kwargs):
            result = real_run(self, *args, **kwargs)
            if self.sim.engine == "compiled":
                log = self.sim._movement_log
                if log:
                    cycle, names = log[-1]
                    log[-1] = (cycle, names + ("phantom.ch",))
                result.cycles += 2
            return result

        monkeypatch.setattr(accel_mod.Accelerator, "run", crooked_run)
        assert main(["diff", kernel_file,
                     "--engines", "dense,compiled"]) == 1
        err = capsys.readouterr().err
        assert "dense vs compiled diverge" in err
        assert "first divergent cycle" in err
        assert "phantom.ch" in err


class TestErrors:
    def test_missing_file(self, capsys):
        assert main(["compile", "/nonexistent.tapas"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_source_reports_error(self, tmp_path, capsys):
        path = tmp_path / "bad.tapas"
        path.write_text("func f( {")
        assert main(["compile", str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_workload(self, capsys):
        assert main(["run", "nope"]) == 1
        assert "unknown workload" in capsys.readouterr().err


class TestLint:
    @staticmethod
    def _fixture(name):
        import os

        return os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "examples", "programs",
            name + ".cilk")

    def test_lint_clean_program(self, kernel_file, capsys):
        assert main(["lint", kernel_file]) == 0
        out = capsys.readouterr().out
        assert "double_all" in out or "clean" in out

    def test_lint_deadlock_fixture_fails(self, capsys):
        assert main(["lint", self._fixture("deadlock_ring")]) == 1
        out = capsys.readouterr().out
        assert "TAP-NET-004" in out

    def test_lint_dead_task_fails_on_warning(self, capsys):
        fixture = self._fixture("dead_task")
        assert main(["lint", fixture]) == 0  # dead task is only a warning
        capsys.readouterr()
        assert main(["lint", fixture, "--fail-on", "warning"]) == 1
        assert "TAP-NET-002" in capsys.readouterr().out

    def test_lint_fail_on_note(self, capsys):
        # narrow_sum lints clean of warnings but carries width infos
        fixture = self._fixture("narrow_sum")
        assert main(["lint", fixture]) == 0
        capsys.readouterr()
        assert main(["lint", fixture, "--fail-on", "note"]) == 1
        assert "TAP-WIDTH-002" in capsys.readouterr().out

    def test_lint_json_format(self, capsys):
        import json

        assert main(["lint", self._fixture("deadlock_ring"),
                     "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] >= 1
        assert any(d["code"] == "TAP-NET-004"
                   for d in payload["diagnostics"])

    def test_lint_queue_depth_override_warns(self, capsys):
        fixture = self._fixture("fib")
        assert main(["lint", fixture, "--queue-depth", "4",
                     "--fail-on", "warning"]) == 1
        assert "TAP-NET-003" in capsys.readouterr().out

    def test_lint_no_netlist(self, kernel_file, capsys):
        assert main(["lint", kernel_file, "--no-netlist"]) == 0

    def test_lint_entry_selects_function(self, capsys):
        # with orphan as the entry, triple_sum becomes the dead task
        assert main(["lint", self._fixture("dead_task"), "--entry",
                     "orphan", "--fail-on", "warning"]) == 1
        out = capsys.readouterr().out
        assert "triple_sum" in out

    def test_lint_unknown_entry_errors(self, kernel_file, capsys):
        assert main(["lint", kernel_file, "--entry", "nope"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_analyze_fail_on_note(self, tmp_path, capsys):
        path = tmp_path / "warned.tapas"
        path.write_text("""
        func rows(a: i32*, n: i32, m: i32) {
          cilk_for (var i: i32 = 0; i < n; i = i + 1) {
            a[i * m] = i;
          }
        }
        """)
        assert main(["analyze", str(path), "--fail-on", "note"]) == 1

    def test_estimate_width_aware(self, capsys):
        fixture = self._fixture("narrow_sum")
        assert main(["estimate", fixture]) == 0
        uniform = capsys.readouterr().out
        assert main(["estimate", fixture, "--width-aware"]) == 0
        aware = capsys.readouterr().out
        assert uniform != aware
