"""Structured diagnostics for the static-analysis stage.

Every analysis result is a :class:`Diagnostic`: a stable code, a severity,
a message, and whatever source provenance the frontend threaded onto the
IR (``Instruction.loc``). A :class:`DiagnosticReport` collects them and
renders either a human-readable listing or JSON for tooling.

Codes are namespaced like rustc lints:

==============  ========  ====================================================
code            severity  meaning
==============  ========  ====================================================
TAP-RACE-001    error     definite determinacy race: two parallel accesses
                          provably overlap and at least one writes
TAP-RACE-002    warning   possible determinacy race: the analysis cannot
                          prove the parallel accesses disjoint
TAP-MEM-001     info      a pointer could not be resolved to a base object;
                          dependence answers involving it are conservative
TAP-SYNC-001    warning   a spawn subtree is never joined by a sync on some
                          path (reserved; structural syncs are also checked
                          by the IR verifier)
TAP-NET-001     error     spawn-channel endpoint mismatch (return pointer or
                          argument type disagrees with the callee task)
TAP-NET-002     warning   dead task: a function's task unit is never spawned
                          or called from the designated entry
TAP-NET-003     varies    channel cycle through the spawn network; info when
                          the task queues are sized for recursion, warning
                          when the configured depth is below the sizing
                          pass's recommendation (under-buffered cycle)
TAP-NET-004     error     certain deadlock: every execution of the entry
                          must spawn an unboundedly recursive task chain
TAP-NET-005     info      static task-queue occupancy bound derived from the
                          spawn structure
TAP-NET-006     warning   netlist structure: dangling channel or component
                          unreachable from the host interface
TAP-WIDTH-001   info      spawn-channel payload provably narrower than its
                          declared width (channel narrowing opportunity)
TAP-WIDTH-002   info      register/frame cell provably narrower than its
                          declared type (datapath narrowing opportunity)
TAP-WIDTH-003   warning   possibly lossy trunc: the inferred source range
                          does not fit the target type
==============  ========  ====================================================

The ``TAP-NET-*`` / ``TAP-WIDTH-*`` rules are produced by the hardware
lint layer (:mod:`repro.analysis.lint`) on top of the value-range and
netlist analyses; ``repro lint`` is their CLI surface.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

SEVERITY_INFO = "info"
SEVERITY_WARNING = "warning"
SEVERITY_ERROR = "error"

_SEVERITY_RANK = {SEVERITY_INFO: 0, SEVERITY_WARNING: 1, SEVERITY_ERROR: 2}

#: registry of known diagnostic codes -> (default severity, short title)
CODES: Dict[str, Tuple[str, str]] = {
    "TAP-RACE-001": (SEVERITY_ERROR, "definite determinacy race"),
    "TAP-RACE-002": (SEVERITY_WARNING, "possible determinacy race"),
    "TAP-MEM-001": (SEVERITY_INFO, "unresolved pointer"),
    "TAP-SYNC-001": (SEVERITY_WARNING, "unjoined spawn subtree"),
}


def severity_rank(severity: str) -> int:
    return _SEVERITY_RANK.get(severity, 0)


@dataclass
class Diagnostic:
    """One analysis finding, with provenance.

    ``related`` lines carry the per-access detail (who reads, who writes,
    from which task/spawn site); ``suggestion`` is the "help:" line; ``data``
    holds machine-readable extras that survive into the JSON rendering;
    ``ops`` keeps the offending IR instructions for in-process consumers
    (the dynamic cross-validator) and is *not* serialized.
    """

    code: str
    message: str
    severity: str = ""
    function: Optional[str] = None
    loc: Optional[int] = None
    related: List[str] = field(default_factory=list)
    suggestion: Optional[str] = None
    data: Dict[str, object] = field(default_factory=dict)
    ops: tuple = ()

    def __post_init__(self):
        if not self.severity:
            self.severity = CODES.get(self.code, (SEVERITY_WARNING, ""))[0]

    @property
    def title(self) -> str:
        return CODES.get(self.code, ("", self.code))[1]

    def to_dict(self) -> dict:
        out = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.function is not None:
            out["function"] = self.function
        if self.loc is not None:
            out["line"] = self.loc
        if self.related:
            out["related"] = list(self.related)
        if self.suggestion is not None:
            out["suggestion"] = self.suggestion
        if self.data:
            out["data"] = dict(self.data)
        return out

    def render(self) -> str:
        where = ""
        if self.function is not None:
            where = f" [{self.function}"
            if self.loc is not None:
                where += f":{self.loc}"
            where += "]"
        lines = [f"{self.severity}[{self.code}]{where}: {self.message}"]
        lines.extend(f"    {line}" for line in self.related)
        if self.suggestion:
            lines.append(f"    help: {self.suggestion}")
        return "\n".join(lines)


class DiagnosticReport:
    """An ordered collection of diagnostics with severity accounting."""

    def __init__(self, diagnostics: Optional[List[Diagnostic]] = None):
        self.diagnostics: List[Diagnostic] = list(diagnostics or [])

    def add(self, diagnostic: Diagnostic) -> Diagnostic:
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, diagnostics) -> "DiagnosticReport":
        self.diagnostics.extend(diagnostics)
        return self

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self):
        return len(self.diagnostics)

    def count(self, severity: str) -> int:
        return sum(1 for d in self.diagnostics if d.severity == severity)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == SEVERITY_WARNING]

    def max_severity(self) -> Optional[str]:
        if not self.diagnostics:
            return None
        return max((d.severity for d in self.diagnostics), key=severity_rank)

    def fails(self, threshold: str) -> bool:
        """True if any diagnostic is at/above ``threshold`` severity."""
        bar = severity_rank(threshold)
        return any(severity_rank(d.severity) >= bar for d in self.diagnostics)

    def sorted(self) -> List[Diagnostic]:
        return sorted(
            self.diagnostics,
            key=lambda d: (-severity_rank(d.severity), d.code,
                           d.function or "", d.loc if d.loc is not None else -1))

    # -- renderers -----------------------------------------------------------

    def render_text(self, module_name: str = "") -> str:
        head = f"analysis of '{module_name}'" if module_name else "analysis"
        if not self.diagnostics:
            return f"{head}: clean (no findings)"
        lines = [f"{head}: {len(self.diagnostics)} finding(s)"]
        for diagnostic in self.sorted():
            lines.append(diagnostic.render())
        lines.append(
            f"{self.count(SEVERITY_ERROR)} error(s), "
            f"{self.count(SEVERITY_WARNING)} warning(s), "
            f"{self.count(SEVERITY_INFO)} note(s)")
        return "\n".join(lines)

    def render_json(self, module_name: str = "") -> str:
        payload = {
            "module": module_name,
            "summary": {
                "errors": self.count(SEVERITY_ERROR),
                "warnings": self.count(SEVERITY_WARNING),
                "notes": self.count(SEVERITY_INFO),
            },
            "diagnostics": [d.to_dict() for d in self.sorted()],
        }
        return json.dumps(payload, indent=2)
