"""Command-line driver: ``python -m repro <command> ...``.

Subcommands mirror the toolchain stages:

* ``compile``   — source file -> printed parallel IR
* ``taskgraph`` — source file -> task-graph summary (or DOT with --dot)
* ``analyze``   — source file -> static race/dependence diagnostics
* ``emit``      — source file -> Chisel-flavoured or Verilog RTL
* ``estimate``  — source file -> resources / fmax / power per board
* ``run``       — execute a registered workload and report cycles
* ``workloads`` — list the paper's benchmark suite
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.accel import (
    ARRIA_10,
    BOARDS,
    CYCLONE_V,
    AcceleratorConfig,
    build_accelerator,
    generate,
)
from repro.errors import TapasError
from repro.frontend import compile_source
from repro.ir import print_module
from repro.reports import (
    estimate_mhz,
    estimate_resources,
    fpga_power_watts,
    render_table,
    task_graph_dot,
)
from repro.rtl import emit_design, emit_top_verilog


def _load_module(path: str):
    with open(path) as handle:
        source = handle.read()
    name = os.path.splitext(os.path.basename(path))[0]
    return compile_source(source, name)


def cmd_compile(args) -> int:
    print(print_module(_load_module(args.source)))
    return 0


def cmd_taskgraph(args) -> int:
    design = generate(_load_module(args.source))
    if args.dot:
        print(task_graph_dot(design.graph))
    else:
        print(design.graph.describe())
    return 0


def cmd_analyze(args) -> int:
    from repro.analysis import analyze_design

    module = _load_module(args.source)
    design = generate(module)
    report = analyze_design(design)
    if args.format == "json":
        print(report.render_json(module.name))
    else:
        print(report.render_text(module.name))
    return 1 if report.fails(args.fail_on) else 0


def cmd_emit(args) -> int:
    design = generate(_load_module(args.source))
    if args.language == "verilog":
        print(emit_top_verilog(design))
    else:
        print(emit_design(design))
    return 0


def cmd_estimate(args) -> int:
    module = _load_module(args.source)
    config = AcceleratorConfig(default_ntiles=args.tiles)
    accel = build_accelerator(module, config)
    report = estimate_resources(accel, include_cache=args.include_cache)
    rows = []
    for board in (CYCLONE_V, ARRIA_10):
        mhz = estimate_mhz(board, report.alms)
        watts = fpga_power_watts(report.alms, report.brams, mhz)
        rows.append([board.name, report.alms, report.regs, report.brams,
                     round(mhz, 1), round(watts, 2),
                     round(report.chip_percent(board.alm_capacity), 1)])
    print(render_table(
        ["Board", "ALMs", "Regs", "BRAM", "MHz", "Power W", "%Chip"],
        rows, title=f"Estimate for {module.name} ({args.tiles} tiles/unit)"))
    print("\nALM breakdown:", report.breakdown())
    return 0


def cmd_run(args) -> int:
    from repro.workloads import REGISTRY

    workload = REGISTRY.get(args.workload)
    config = workload.default_config(
        ntiles=args.tiles if args.tiles else None)
    result = workload.run(config=config, scale=args.scale)
    status = "OK" if result.correct else "WRONG RESULT"
    print(f"{workload.name}: {status}, {result.cycles} cycles for "
          f"{result.work_items} work items "
          f"({result.cycles_per_item:.1f} cycles/item)")
    if not result.correct:
        return 1
    return 0


def cmd_workloads(_args) -> int:
    from repro.workloads import REGISTRY

    rows = [[w.name, w.challenge, w.memory_pattern, w.paper_tiles]
            for w in REGISTRY.all()]
    print(render_table(["Name", "HLS challenge", "Memory", "Tiles (Table IV)"],
                       rows, title="Benchmark suite (paper Table II)"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TAPAS reproduction toolchain (MICRO 2018)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="print the parallel IR for a source file")
    p.add_argument("source")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("taskgraph", help="show the extracted task graph")
    p.add_argument("source")
    p.add_argument("--dot", action="store_true", help="emit GraphViz DOT")
    p.set_defaults(func=cmd_taskgraph)

    p = sub.add_parser("analyze",
                       help="static determinacy-race / dependence analysis")
    p.add_argument("source")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--fail-on", choices=["warning", "error"], default="error",
                   help="exit nonzero if any diagnostic at or above this "
                        "severity is reported")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("emit", help="emit generated RTL")
    p.add_argument("source")
    p.add_argument("--language", choices=["chisel", "verilog"],
                   default="chisel")
    p.set_defaults(func=cmd_emit)

    p = sub.add_parser("estimate", help="resource/fmax/power estimate")
    p.add_argument("source")
    p.add_argument("--tiles", type=int, default=1)
    p.add_argument("--include-cache", action="store_true")
    p.set_defaults(func=cmd_estimate)

    p = sub.add_parser("run", help="run a registered workload")
    p.add_argument("workload")
    p.add_argument("--tiles", type=int, default=0)
    p.add_argument("--scale", type=int, default=1)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("workloads", help="list the benchmark suite")
    p.set_defaults(func=cmd_workloads)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except TapasError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
