"""Instruction set of the Tapir-style parallel IR.

The instruction set is a small LLVM subset plus the three parallel
instructions Tapir adds — ``detach``, ``reattach`` and ``sync`` — which is
exactly what the TAPAS toolchain consumes (paper §III-F). An instruction is
itself a :class:`~repro.ir.values.Value` (its result), LLVM-style.

Terminators: ``br``, ``condbr``, ``ret``, ``detach``, ``reattach``, ``sync``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import IRError
from repro.ir.types import I1, VOID, PointerType, Type
from repro.ir.values import Value

# Integer binary opcodes, with division latency/area modelled separately.
INT_BINOPS = {
    "add", "sub", "mul", "sdiv", "srem",
    "and", "or", "xor", "shl", "ashr", "lshr",
    "smin", "smax",
}
FLOAT_BINOPS = {"fadd", "fsub", "fmul", "fdiv", "fmin", "fmax"}
ICMP_PREDICATES = {"eq", "ne", "slt", "sle", "sgt", "sge"}
FCMP_PREDICATES = {"oeq", "one", "olt", "ole", "ogt", "oge"}
CAST_KINDS = {"trunc", "sext", "zext", "sitofp", "fptosi", "bitcast"}


class Instruction(Value):
    """Base class; ``operands`` is the ordered list of input values."""

    #: class-level opcode string, overridden by subclasses
    opcode = "<abstract>"

    def __init__(self, type_: Type, operands: List[Value], name: str = ""):
        super().__init__(type_, name)
        self.operands = list(operands)
        self.parent = None  # set when appended to a BasicBlock
        self.loc = None  # source line threaded from the frontend (or None)

    def is_terminator(self) -> bool:
        return False

    def successors(self):
        """Successor basic blocks (terminators only)."""
        return []

    def replace_operand(self, old: Value, new: Value) -> int:
        """Replace every occurrence of ``old`` in operands; returns count."""
        count = 0
        for i, op in enumerate(self.operands):
            if op is old:
                self.operands[i] = new
                count += 1
        return count

    def __repr__(self):
        return f"<{type(self).__name__} {self.short()}>"


class BinaryOp(Instruction):
    """Integer or floating-point arithmetic/logic with two operands."""

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = ""):
        if op not in INT_BINOPS and op not in FLOAT_BINOPS:
            raise IRError(f"unknown binary opcode: {op}")
        if lhs.type != rhs.type:
            raise IRError(f"binary operand type mismatch: {lhs.type!r} vs {rhs.type!r}")
        super().__init__(lhs.type, [lhs, rhs], name)
        self.op = op

    @property
    def opcode(self):
        return self.op

    @property
    def lhs(self):
        return self.operands[0]

    @property
    def rhs(self):
        return self.operands[1]


class ICmp(Instruction):
    """Signed integer (or pointer) comparison producing i1."""

    opcode = "icmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in ICMP_PREDICATES:
            raise IRError(f"unknown icmp predicate: {predicate}")
        if lhs.type != rhs.type:
            raise IRError(f"icmp operand type mismatch: {lhs.type!r} vs {rhs.type!r}")
        super().__init__(I1, [lhs, rhs], name)
        self.predicate = predicate

    @property
    def lhs(self):
        return self.operands[0]

    @property
    def rhs(self):
        return self.operands[1]


class FCmp(Instruction):
    """Ordered floating-point comparison producing i1."""

    opcode = "fcmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in FCMP_PREDICATES:
            raise IRError(f"unknown fcmp predicate: {predicate}")
        if lhs.type != rhs.type:
            raise IRError("fcmp operand type mismatch")
        super().__init__(I1, [lhs, rhs], name)
        self.predicate = predicate


class Select(Instruction):
    """``select cond, a, b`` — multiplexer."""

    opcode = "select"

    def __init__(self, cond: Value, if_true: Value, if_false: Value, name: str = ""):
        if cond.type != I1:
            raise IRError("select condition must be i1")
        if if_true.type != if_false.type:
            raise IRError("select arm type mismatch")
        super().__init__(if_true.type, [cond, if_true, if_false], name)


class Cast(Instruction):
    """Width/representation conversion (trunc/sext/zext/sitofp/fptosi/bitcast)."""

    def __init__(self, kind: str, value: Value, to_type: Type, name: str = ""):
        if kind not in CAST_KINDS:
            raise IRError(f"unknown cast kind: {kind}")
        super().__init__(to_type, [value], name)
        self.kind = kind

    @property
    def opcode(self):
        return self.kind


class Alloca(Instruction):
    """Declare a task-local slot.

    Scalar allocas become registers in the generated TXU ("Stack RAM" /
    register file in Fig 4); the frontend lowers every mutable local
    variable to an alloca plus loads/stores.

    Frame allocas (``in_frame=True``) instead live in the task instance's
    frame in shared memory — this is how spawn return values travel from a
    child back to its parent ("return values are passed through the shared
    cache", paper §IV-C): the parent passes ``&frame_slot`` to the child,
    the child stores through it, the parent loads after ``sync``.
    """

    opcode = "alloca"

    def __init__(self, allocated_type: Type, name: str = "", in_frame: bool = False):
        super().__init__(PointerType(allocated_type), [], name)
        self.allocated_type = allocated_type
        self.in_frame = in_frame
        self.frame_offset = None  # assigned by the frame-layout pass


class GEP(Instruction):
    """Address arithmetic: ``base + sum(index_i * stride_i bytes)``.

    A flattened form of LLVM's getelementptr sufficient for the paper's
    workloads (1-D and 2-D array indexing). Strides are byte counts fixed at
    construction; indices are runtime values.
    """

    opcode = "gep"

    def __init__(self, base: Value, indices: List[Value], strides: List[int], name: str = ""):
        if not base.type.is_pointer():
            raise IRError("gep base must be a pointer")
        if len(indices) != len(strides):
            raise IRError("gep needs one stride per index")
        if not indices:
            raise IRError("gep needs at least one index")
        for stride in strides:
            if int(stride) <= 0:
                raise IRError("gep strides must be positive byte counts")
        super().__init__(base.type, [base] + list(indices), name)
        self.strides = [int(s) for s in strides]

    @property
    def base(self):
        return self.operands[0]

    @property
    def indices(self):
        return self.operands[1:]


class Load(Instruction):
    """Load through a pointer. Non-alloca addresses go through the data box."""

    opcode = "load"

    def __init__(self, pointer: Value, name: str = ""):
        if not pointer.type.is_pointer():
            raise IRError("load operand must be a pointer")
        super().__init__(pointer.type.pointee, [pointer], name)

    @property
    def pointer(self):
        return self.operands[0]


class Store(Instruction):
    """Store through a pointer; produces no value."""

    opcode = "store"

    def __init__(self, value: Value, pointer: Value):
        if not pointer.type.is_pointer():
            raise IRError("store target must be a pointer")
        if pointer.type.pointee != value.type:
            raise IRError(
                f"store type mismatch: {value.type!r} into {pointer.type!r}")
        super().__init__(VOID, [value, pointer])

    @property
    def value(self):
        return self.operands[0]

    @property
    def pointer(self):
        return self.operands[1]


class Call(Instruction):
    """Direct call to another function in the module.

    Inside a detached region a call is how recursive parallelism appears
    (mergesort/fib spawn themselves, paper §IV-C).
    """

    opcode = "call"

    def __init__(self, callee, args: List[Value], name: str = ""):
        from repro.ir.function import Function  # cycle guard

        if not isinstance(callee, Function):
            raise IRError("call target must be a Function")
        expected = [a.type for a in callee.arguments]
        got = [a.type for a in args]
        if expected != got:
            raise IRError(
                f"call to {callee.name}: argument types {got} != parameters {expected}")
        super().__init__(callee.return_type, list(args), name)
        self.callee = callee

    @property
    def args(self):
        return self.operands


# ---------------------------------------------------------------------------
# Terminators
# ---------------------------------------------------------------------------

class Terminator(Instruction):
    def is_terminator(self):
        return True


class Br(Terminator):
    """Unconditional branch."""

    opcode = "br"

    def __init__(self, dest):
        super().__init__(VOID, [])
        self.dest = dest

    def successors(self):
        return [self.dest]


class CondBr(Terminator):
    """Two-way conditional branch on an i1."""

    opcode = "condbr"

    def __init__(self, cond: Value, if_true, if_false):
        if cond.type != I1:
            raise IRError("condbr condition must be i1")
        super().__init__(VOID, [cond])
        self.if_true = if_true
        self.if_false = if_false

    @property
    def cond(self):
        return self.operands[0]

    def successors(self):
        return [self.if_true, self.if_false]


class Ret(Terminator):
    """Return from the function (and complete the root task instance)."""

    opcode = "ret"

    def __init__(self, value: Optional[Value] = None):
        super().__init__(VOID, [value] if value is not None else [])

    @property
    def value(self):
        return self.operands[0] if self.operands else None

    def successors(self):
        return []


class Detach(Terminator):
    """Tapir ``detach``: spawn the region rooted at ``detached`` as a child
    task and continue in parallel at ``continuation``."""

    opcode = "detach"

    def __init__(self, detached, continuation):
        super().__init__(VOID, [])
        self.detached = detached
        self.continuation = continuation

    def successors(self):
        return [self.detached, self.continuation]


class Reattach(Terminator):
    """Tapir ``reattach``: terminate the detached region begun by the
    matching detach; control in the child ends, parent resumes at
    ``continuation`` (which it already reached asynchronously)."""

    opcode = "reattach"

    def __init__(self, continuation):
        super().__init__(VOID, [])
        self.continuation = continuation

    def successors(self):
        return [self.continuation]


class Sync(Terminator):
    """Tapir ``sync``: wait for every child spawned by this task instance,
    then continue at ``continuation``."""

    opcode = "sync"

    def __init__(self, continuation):
        super().__init__(VOID, [])
        self.continuation = continuation

    def successors(self):
        return [self.continuation]


PARALLEL_OPCODES = ("detach", "reattach", "sync")


def is_memory_access(inst: Instruction) -> bool:
    """True for loads/stores that reference memory (including allocas —
    classification into register vs data-box traffic happens later, with
    provenance, in the dataflow-graph pass)."""
    return isinstance(inst, (Load, Store))
