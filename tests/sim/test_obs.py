"""Tests for the observability subsystem: cycle accounting, channel
probes, the zero-cost-when-disabled invariant, and trace export."""

import io
import json

import pytest

from repro.obs import (
    ChannelProbe,
    CycleLedger,
    Observer,
    chrome_trace,
    export_chrome_trace,
    validate_chrome_trace,
)
from repro.sim import (
    OBS_BUSY,
    OBS_IDLE,
    OBS_STALL_IN,
    OBS_STALL_OUT,
    Channel,
    Component,
    Simulator,
    Trace,
)


class Producer(Component):
    def __init__(self, name, out, count):
        super().__init__(name)
        self.out = out
        self.remaining = count
        self.next_value = 0

    def tick(self, cycle):
        if self.remaining > 0 and self.out.can_push():
            self.out.push(self.next_value)
            self.next_value += 1
            self.remaining -= 1

    def obs_classify(self, cycle):
        if self.remaining <= 0:
            return OBS_IDLE, None
        if not self.out.can_push():
            return OBS_STALL_OUT, "consumer-backpressure"
        return OBS_BUSY, None


class Consumer(Component):
    def __init__(self, name, inp, stall_every=0):
        super().__init__(name)
        self.inp = inp
        self.received = []
        self.stall_every = stall_every

    def tick(self, cycle):
        if self.stall_every and cycle % self.stall_every == 0:
            return
        if self.inp.can_pop():
            self.received.append(self.inp.pop())

    def obs_classify(self, cycle):
        return (OBS_BUSY, None) if self.inp.can_pop() else (OBS_IDLE, None)


class TestCycleLedger:
    def test_conservation(self):
        ledger = CycleLedger("x")
        for cycle in range(10):
            ledger.record(cycle, OBS_BUSY if cycle % 2 else OBS_IDLE)
        assert ledger.cycles == 10
        assert sum(ledger.breakdown().values()) == 10
        assert ledger.utilization() == 0.5

    def test_reasons_and_timeline_rle(self):
        ledger = CycleLedger("x")
        for cycle in range(4):
            ledger.record(cycle, OBS_STALL_IN, "memory")
        ledger.record(4, OBS_BUSY)
        assert ledger.stall_reasons() == {"memory": 4}
        assert ledger.timeline == [[0, 4, OBS_STALL_IN, "memory"],
                                   [4, 5, OBS_BUSY, None]]

    def test_rejects_unknown_state(self):
        with pytest.raises(ValueError):
            CycleLedger("x").record(0, "sleeping")


class TestChannelProbe:
    def test_histogram_peak_backpressure(self):
        ch = Channel("c", capacity=1)
        probe = ChannelProbe(ch)
        probe.record(0)            # empty
        ch.push(1)
        ch.commit()
        probe.record(1)            # full
        probe.record(2)            # still full
        assert probe.peak_depth == 1
        assert probe.backpressure_cycles == 2
        assert probe.histogram == {0: 1, 1: 2}
        assert probe.occupancy_timeline == [(0, 0), (1, 1)]
        assert probe.mean_occupancy() == pytest.approx(2 / 3)


class TestObserver:
    def _run(self, stall_every=0, capacity=2):
        sim = Simulator()
        ch = sim.add_channel("pc", capacity=capacity)
        sim.add_component(Producer("p", ch, count=30))
        consumer = sim.add_component(Consumer("c", ch, stall_every=stall_every))
        observer = sim.attach_observer(Observer())
        cycles = sim.run(lambda: len(consumer.received) == 30,
                         max_cycles=5000)
        return sim, observer, cycles

    def test_every_component_accounts_every_cycle(self):
        sim, observer, cycles = self._run()
        assert observer.cycles_observed == cycles
        for ledger in observer.ledgers.values():
            assert ledger.cycles == cycles
            assert sum(ledger.breakdown().values()) == cycles

    def test_backpressure_attributed(self):
        sim, observer, _ = self._run(stall_every=2, capacity=1)
        producer = observer.ledgers["p"]
        assert producer.stall_reasons().get("consumer-backpressure", 0) > 0
        assert ("p", "consumer-backpressure",
                producer.stall_reasons()["consumer-backpressure"]) in \
            observer.stall_sources()
        probe = observer.probes["pc"]
        assert probe.backpressure_cycles > 0
        assert probe.peak_depth == 1

    def test_channel_totals_in_sim_stats(self):
        sim, _, _ = self._run()
        stats = sim.stats()
        assert stats["channels"]["pc"]["pushed"] == 30
        assert stats["channels"]["pc"]["popped"] == 30


class TestZeroCost:
    """Observability off must be bit-identical to the seed simulator."""

    def test_workload_cycles_identical_with_and_without_instrumentation(self):
        from repro.workloads import REGISTRY

        workload = REGISTRY.get("saxpy")
        plain = workload.run(scale=1)
        observer = Observer()
        instrumented = workload.run(scale=1, trace=Trace(enabled=True),
                                    observer=observer)
        assert plain.cycles == instrumented.cycles
        assert plain.correct and instrumented.correct
        assert observer.cycles_observed == instrumented.cycles
        # conservation holds for the real accelerator too
        for ledger in observer.ledgers.values():
            assert sum(ledger.breakdown().values()) == instrumented.cycles


class TestChromeTrace:
    def _profiled_run(self):
        from repro.workloads import REGISTRY

        observer = Observer()
        trace = Trace(enabled=True)
        result = REGISTRY.get("saxpy").run(scale=1, trace=trace,
                                           observer=observer)
        return result, observer, trace

    def test_export_is_valid_and_monotonic(self):
        result, observer, trace = self._profiled_run()
        document = chrome_trace(observer=observer, trace=trace)
        assert validate_chrome_trace(document) == []
        # round-trips through JSON (payloads carry IR objects)
        encoded = json.dumps(document)
        assert json.loads(encoded)["traceEvents"]

    def test_per_tile_tracks_present(self):
        _, observer, trace = self._profiled_run()
        document = chrome_trace(observer=observer, trace=trace)
        thread_names = [e["args"]["name"] for e in document["traceEvents"]
                        if e["ph"] == "M" and e["name"] == "thread_name"]
        assert any(".tile0" in name for name in thread_names)
        states = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert states and all(e["dur"] >= 1 for e in states)

    def test_export_to_file_object(self):
        _, observer, trace = self._profiled_run()
        buffer = io.StringIO()
        export_chrome_trace(buffer, observer=observer, trace=trace)
        assert json.loads(buffer.getvalue())["traceEvents"]

    def test_counter_tracks_for_channels(self):
        _, observer, trace = self._profiled_run()
        document = chrome_trace(observer=observer)
        counters = [e for e in document["traceEvents"] if e["ph"] == "C"]
        assert counters
        assert all("occupancy" in e["args"] for e in counters)
