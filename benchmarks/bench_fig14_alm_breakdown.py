"""Figure 14: ALM utilisation by sub-block for the Table III configs.

Paper result: at 1 task/1 instruction ~60% of the logic is non-compute
overhead (task control, parallel-for control, memory arbitration, misc);
at 50 ops/task the overhead is ~20%; at 10 tiles the control overhead is
amortised to a sliver (~3%) and the memory network stays under 10%.
"""

import sweeplib

from repro.accel import AcceleratorConfig, TaskUnitParams, build_accelerator
from repro.exp import register_evaluator
from repro.reports import estimate_resources, render_table, sweep_record
from repro.workloads import ScaleMicro

CONFIGS = [(1, 1), (1, 50), (10, 1), (10, 50)]


def _eval_fig14(spec):
    workload = ScaleMicro(work_ops=spec["ins"])
    config = AcceleratorConfig(unit_params={
        "scale": TaskUnitParams(ntiles=1),
        "scale.t0": TaskUnitParams(ntiles=spec["tiles"]),
    })
    accel = build_accelerator(workload.fresh_module(), config)
    report = estimate_resources(accel)
    return {"breakdown": report.breakdown(), "alms": report.alms}


register_evaluator("fig14_alm_breakdown", _eval_fig14,
                   program_text=sweeplib.file_program_text(__file__))


def test_fig14_alm_breakdown(benchmark, save_result, save_json,
                             sweep_runner):
    points = [{"evaluator": "fig14_alm_breakdown", "tiles": tiles,
               "ins": ins} for tiles, ins in CONFIGS]

    def run():
        return sweeplib.run_points(sweep_runner, points)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    shares = {}
    for record in result.records:
        spec, value = record["spec"], record["value"]
        tiles, ins = spec["tiles"], spec["ins"]
        total = value["alms"]
        pct = {k: 100.0 * v / total for k, v in value["breakdown"].items()}
        shares[(tiles, ins)] = pct
        rows.append([f"{tiles}T/{ins}Ins",
                     round(pct["tiles"], 1),
                     round(pct["parallel_for"], 1),
                     round(pct["task_ctrl"], 1),
                     round(pct["mem_arb"], 1),
                     round(pct["misc"], 1)])
    text = render_table(
        ["Config", "Tiles%", "ParallelFor%", "TaskCtrl%", "MemArb%", "Misc%"],
        rows, title="Figure 14 — ALM utilisation by sub-block")
    save_result("fig14_alm_breakdown", text)
    save_json("fig14_alm_breakdown", [
        sweep_record(
            record, "scale_micro",
            config={"tiles": record["spec"]["tiles"],
                    "instructions": record["spec"]["ins"]},
            total_alms=record["value"]["alms"],
            **{f"{k}_pct": round(v, 1)
               for k, v in shares[(record["spec"]["tiles"],
                                   record["spec"]["ins"])].items()})
        for record in result.records], sweep=result.summary)

    def overhead(cfg):
        pct = shares[cfg]
        return pct["task_ctrl"] + pct["mem_arb"] + pct["misc"] + pct["parallel_for"]

    # paper shape: tiny tasks are overhead-dominated (~60%)
    assert overhead((1, 1)) > 45
    # 50 ops amortise the overhead (paper ~20%)
    assert overhead((1, 50)) < 40
    # 10 tiles amortise control to a sliver; memory network < 10%
    assert shares[(10, 50)]["task_ctrl"] < 5
    assert shares[(10, 50)]["mem_arb"] < 10
    assert overhead((10, 50)) < 15
