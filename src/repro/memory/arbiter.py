"""Arbitration and routing networks (the Fig 8 in-arbiter / out-demux).

The in-arbiter is a round-robin tree merging N request streams into one;
its pipeline latency grows with tree depth (``levels`` in the paper's
parameter list). The out-demux routes responses back by port index.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, List, Tuple

from repro.errors import SimulationError
from repro.sim import NEVER, OBS_BUSY, OBS_IDLE, OBS_STALL_OUT, Channel, Component


def _pipe_wake(pipe, cycle):
    """Shared next_wake for deadline pipelines: the head's deadline is the
    only timer; a due head was either acted on this tick (our own channel
    movement re-wakes us) or is blocked on backpressure (the blocking
    channel's pop wakes us)."""
    if pipe:
        head = pipe[0][0]
        if head > cycle:
            return head
    return NEVER


def tree_levels(fan_in: int) -> int:
    """Pipeline depth of an arbitration tree over ``fan_in`` inputs.

    A 4-ary mux tree comfortably closes timing at the paper's 150-300 MHz
    clocks, so depth grows with log4 of the fan-in: one register stage up
    to 4 inputs, two up to 16, and so on.
    """
    return max(1, math.ceil(math.log(max(2, fan_in), 4)))


class RoundRobinArbiter(Component):
    """N-to-1 round-robin arbiter with tree pipeline latency.

    Grants one input per cycle; the winning message emerges on the output
    ``levels`` cycles later (registered tree stages).
    """

    def __init__(self, name: str, inputs: List[Channel], output: Channel,
                 levels: int = None):
        super().__init__(name)
        if not inputs:
            raise SimulationError(f"arbiter {name}: needs at least one input")
        self.inputs = inputs
        self.output = output
        self.levels = tree_levels(len(inputs)) if levels is None else max(0, levels)
        self._next = 0  # round-robin pointer
        self._pipe: Deque[Tuple[int, object]] = deque()
        self.grants = 0

    def tick(self, cycle: int):
        # drain the pipeline head into the output
        if self._pipe and self._pipe[0][0] <= cycle and self.output.can_push():
            self.output.push(self._pipe.popleft()[1])

        # grant one requester round-robin; bound in-flight to tree depth+1
        if len(self._pipe) <= self.levels:
            n = len(self.inputs)
            for offset in range(n):
                idx = (self._next + offset) % n
                if self.inputs[idx].can_pop():
                    msg = self.inputs[idx].pop()
                    self._pipe.append((cycle + self.levels, msg))
                    self._next = (idx + 1) % n
                    self.grants += 1
                    break

    def sensitivity(self):
        return tuple(self.inputs) + (self.output,)

    def ports(self):
        return (tuple(self.inputs), (self.output,))

    def next_wake(self, cycle):
        return _pipe_wake(self._pipe, cycle)

    def is_busy(self):
        return bool(self._pipe)

    def obs_classify(self, cycle):
        if (self._pipe and self._pipe[0][0] <= cycle
                and not self.output.can_push()):
            return OBS_STALL_OUT, "output-backpressure"
        if self._pipe or any(ch.can_pop() for ch in self.inputs):
            return OBS_BUSY, None
        return OBS_IDLE, None

    def stats(self):
        return {"grants": self.grants}


class Demux(Component):
    """1-to-N router: forwards each message to ``outputs[route(msg)]``.

    The default route key is ``msg.port`` (global network, routing by task
    unit); a custom key supports the unit-internal level of the network
    (routing a response to the requesting tile by tag).
    """

    def __init__(self, name: str, input_: Channel, outputs: List[Channel],
                 levels: int = None, route=None):
        super().__init__(name)
        if not outputs:
            raise SimulationError(f"demux {name}: needs at least one output")
        self.input = input_
        self.outputs = outputs
        self.levels = tree_levels(len(outputs)) if levels is None else max(0, levels)
        self.route = route or (lambda msg: msg.port)
        self._pipe: Deque[Tuple[int, object]] = deque()
        self.routed = 0

    def tick(self, cycle: int):
        if self._pipe and self._pipe[0][0] <= cycle:
            _, msg = self._pipe[0]
            port = self.route(msg)
            if port < 0 or port >= len(self.outputs):
                raise SimulationError(
                    f"demux {self.name}: bad port {port} of {len(self.outputs)}")
            if self.outputs[port].can_push():
                self._pipe.popleft()
                self.outputs[port].push(msg)
                self.routed += 1

        if self.input.can_pop() and len(self._pipe) <= self.levels:
            msg = self.input.pop()
            self._pipe.append((cycle + self.levels, msg))

    def sensitivity(self):
        return (self.input,) + tuple(self.outputs)

    def ports(self):
        return ((self.input,), tuple(self.outputs))

    def next_wake(self, cycle):
        return _pipe_wake(self._pipe, cycle)

    def is_busy(self):
        return bool(self._pipe)

    def obs_classify(self, cycle):
        if self._pipe and self._pipe[0][0] <= cycle:
            port = self.route(self._pipe[0][1])
            if 0 <= port < len(self.outputs) and \
                    not self.outputs[port].can_push():
                return OBS_STALL_OUT, "output-backpressure"
        if self._pipe or self.input.can_pop():
            return OBS_BUSY, None
        return OBS_IDLE, None

    def stats(self):
        return {"routed": self.routed}
