"""Spawn and join messages exchanged between task units (paper Fig 5).

A spawn is the tuple (Args[], ParentID) where ParentID = [SID, DyID]; the
SID routes the eventual join back to the parent's unit and the DyID
indexes the parent's task-queue entry. ``join_kind`` distinguishes a
fork-join child (decrements the parent entry's Child# on completion) from
a blocking call (delivers its return value to the waiting dataflow node).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

JOIN_SYNC = "sync"
JOIN_CALL = "call"


@dataclass
class SpawnMessage:
    """Routed through the spawn network to ``dest_sid``'s task unit."""

    dest_sid: int
    args: Tuple[Any, ...]
    parent_sid: Optional[int]       # None for the host-issued root spawn
    parent_dyid: Optional[int]
    join_kind: str = JOIN_SYNC
    call_token: Optional[Any] = None   # identifies the waiting call node
    ret_ptr: Optional[int] = None      # §IV-C shared-memory return slot
    #: dynamic-checker provenance: spawning instance's globally-unique id
    #: and the trace seq of the spawn issue (None when tracing is off)
    parent_gid: Optional[Any] = None
    spawn_seq: Optional[int] = None

    @property
    def port(self) -> int:
        """Demux routing key in the spawn network."""
        return self.dest_sid


@dataclass
class JoinMessage:
    """Completion notification routed back to the parent's task unit."""

    parent_sid: int
    parent_dyid: int
    join_kind: str
    call_token: Optional[Any] = None
    retval: Any = None
    child_gid: Optional[Any] = None  # joining instance, for the checker

    @property
    def port(self) -> int:
        return self.parent_sid
