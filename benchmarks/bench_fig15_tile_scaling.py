"""Figure 15: performance scalability with 1/2/4/8 tiles per task.

Paper result: every benchmark except Dedup speeds up with tiles
(1.5-6x at 8 tiles). Dedup stays flat — its baseline is already a
four-unit pipeline and the stages are balanced. Saxpy and matrix-add
gain a step from the second tile then saturate on cache bandwidth;
Stencil is compute-heavy and keeps scaling to 8 tiles.

The whole grid runs through the SweepRunner: workload x tiles points
fan out over worker processes and land in the content-addressed result
cache, so a re-run of an unchanged tree replays from disk.
"""

import sweeplib

from repro.exp import workload_points
from repro.reports import render_series, sweep_record
from repro.workloads import REGISTRY

TILES = [1, 2, 4, 8]
SCALES = {"matrix_add": 2, "image_scale": 2, "saxpy": 2, "stencil": 2,
          "dedup": 2, "mergesort": 2, "fibonacci": 2}


def test_fig15_tile_scaling(benchmark, save_result, save_json, sweep_runner):
    names = REGISTRY.names()
    points = workload_points(names, tiles=TILES, scales=SCALES)

    def run():
        return sweeplib.run_points(sweep_runner, points)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    data = {name: {} for name in names}
    engines = {name: {} for name in names}
    for record in result.records:
        value = record["value"]
        assert value["correct"], f"{value['workload']} wrong result"
        data[value["workload"]][value["tiles"]] = value["cycles"]
        engines[value["workload"]][value["tiles"]] = \
            (value["stats"] or {}).get("engine")

    speedups = {
        name: [cycles[1] / cycles[t] for t in TILES]
        for name, cycles in data.items()
    }
    series = [(name, [round(s, 2) for s in speedups[name]])
              for name in names]
    text = render_series(
        "Figure 15 — Normalised performance vs tiles/task (1 tile = 1.0)",
        "tiles", TILES, series)
    save_result("fig15_tile_scaling", text)
    save_json("fig15_tile_scaling", [
        sweep_record(
            record, record["value"]["workload"],
            config={"ntiles": record["value"]["tiles"],
                    "scale": record["spec"]["scale"]},
            speedup=round(
                data[record["value"]["workload"]][1]
                / record["value"]["cycles"], 2))
        for record in result.records], sweep=result.summary)

    # paper shape: everything except dedup gains from extra tiles.
    # (Our shared L1 accepts one request/cycle, so the memory-bound codes
    # saturate slightly earlier than on the paper's AXI system — the
    # paper itself attributes their saturation to cache bandwidth.)
    for name in names:
        if name == "dedup":
            continue
        assert max(speedups[name]) > 1.04, f"{name} did not scale"
    for name in ("image_scale", "stencil", "fibonacci"):
        assert max(speedups[name]) > 1.2, f"{name} scaled too weakly"

    # dedup is a balanced pipeline: nearly flat (paper: no improvement)
    assert max(speedups["dedup"]) < 1.3

    # stencil is compute-intense and scales furthest (paper: up to ~6x)
    assert speedups["stencil"][-1] > 2.5
    assert speedups["stencil"][-1] == max(
        s[-1] for s in speedups.values())

    # saxpy/matrix gain a step then saturate on memory bandwidth
    for name in ("saxpy", "matrix_add"):
        assert speedups[name][1] > 1.05          # second tile helps
        assert speedups[name][-1] < 2.0          # but saturates
