"""Chrome trace-event / Perfetto export.

Serialises an :class:`~repro.obs.observer.Observer` (state timelines,
channel occupancy) and an optional :class:`~repro.sim.trace.Trace`
(spawn/sync/memory events) into the Trace Event Format JSON that both
``chrome://tracing`` and https://ui.perfetto.dev load directly.

Mapping:

* each top-level component becomes a *process* (pid), with its state
  timeline on thread 0 and one further thread per TXU tile — the
  per-tile tracks of the Fig 5 execution view;
* busy/stall state runs are complete events (``ph: "X"``) whose duration
  is the run length in cycles (1 cycle == 1 us of trace time);
* trace events are instants (``ph: "i"``) on the track of their source
  component;
* channel occupancy timelines are counter tracks (``ph: "C"``).
"""

from __future__ import annotations

import json
from typing import IO, List, Union

from repro.sim.component import OBS_IDLE

#: synthetic pid for channel counter tracks
_CHANNELS_PID = 1_000_000
#: synthetic pid for trace events whose source has no component track
_EVENTS_PID = 1_000_001
#: synthetic pid for host-side toolchain spans (repro.telemetry spans:
#: parse -> IR build -> passes -> elaboration -> simulation)
_HOST_PID = 1_000_002


def _json_safe(value):
    """Payloads may carry IR objects; stringify anything non-primitive."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return str(value)


def chrome_trace(observer=None, trace=None,
                 include_idle: bool = False, host_spans=None) -> dict:
    """Build the trace-event document as a Python dict.

    ``host_spans`` is a :class:`repro.telemetry.SpanTracer`: its
    toolchain-phase spans are emitted as a separate "host" process with
    one thread track per host thread, so host wall-clock and guest
    cycles land in one document (host timestamps are microseconds since
    the first span; guest timestamps stay 1 us == 1 cycle).
    """
    events: List[dict] = []
    meta: List[dict] = []
    track: dict = {}  # source name -> (pid, tid)

    if host_spans is not None and getattr(host_spans, "spans", None):
        from repro.telemetry.spans import host_trace_events

        host_events = host_trace_events(host_spans, _HOST_PID)
        if host_events:
            meta.append({"ph": "M", "name": "process_name",
                         "pid": _HOST_PID, "tid": 0,
                         "args": {"name": "host toolchain"}})
            for tid in sorted({e["tid"] for e in host_events}):
                meta.append({"ph": "M", "name": "thread_name",
                             "pid": _HOST_PID, "tid": tid,
                             "args": {"name": f"host thread {tid}"}})
            events.extend(host_events)

    if observer is not None:
        groups = []
        for ledger in observer.ledgers.values():
            if ledger.group not in groups:
                groups.append(ledger.group)
        for pid, group in enumerate(groups):
            meta.append({"ph": "M", "name": "process_name", "pid": pid,
                         "tid": 0, "args": {"name": group}})
            members = [ledger for ledger in observer.ledgers.values()
                       if ledger.group == group]
            # the component itself first, then its tiles in name order
            members.sort(key=lambda ledger: (ledger.name != group, ledger.name))
            for tid, ledger in enumerate(members):
                track[ledger.name] = (pid, tid)
                meta.append({"ph": "M", "name": "thread_name", "pid": pid,
                             "tid": tid, "args": {"name": ledger.name}})
                for start, end, state, reason in ledger.timeline:
                    if state == OBS_IDLE and not include_idle:
                        continue
                    name = state if reason is None else f"{state}:{reason}"
                    events.append({
                        "ph": "X", "cat": "state", "name": name,
                        "ts": start, "dur": end - start,
                        "pid": pid, "tid": tid,
                        "args": {"state": state, "reason": reason},
                    })
        meta.append({"ph": "M", "name": "process_name",
                     "pid": _CHANNELS_PID, "tid": 0,
                     "args": {"name": "channels"}})
        for probe in observer.probes.values():
            if not probe.channel.total_pushed:
                continue
            for cycle, occupancy in probe.occupancy_timeline:
                events.append({
                    "ph": "C", "cat": "channel",
                    "name": f"occ:{probe.name}", "ts": cycle,
                    "pid": _CHANNELS_PID,
                    "args": {"occupancy": occupancy},
                })

    if trace is not None and len(trace):
        used_events_pid = False
        for event in trace.events:
            pid, tid = track.get(event.source, (_EVENTS_PID, 0))
            used_events_pid = used_events_pid or pid == _EVENTS_PID
            args = {"detail": event.detail, "seq": event.seq}
            if event.payload:
                args.update(_json_safe(event.payload))
            events.append({
                "ph": "i", "s": "t", "cat": "event", "name": event.kind,
                "ts": event.cycle, "pid": pid, "tid": tid, "args": args,
            })
        if used_events_pid:
            meta.append({"ph": "M", "name": "process_name",
                         "pid": _EVENTS_PID, "tid": 0,
                         "args": {"name": "events"}})

    # Perfetto tolerates any order, but monotonic timestamps keep the
    # export diffable and make well-formedness trivially checkable.
    events.sort(key=lambda e: (e["ts"], e["pid"], e.get("tid", 0)))
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro-obs",
            "time_unit": "1 trace us == 1 accelerator cycle",
        },
    }


def export_chrome_trace(destination: Union[str, IO],
                        observer=None, trace=None,
                        include_idle: bool = False, host_spans=None) -> dict:
    """Write the trace-event JSON to a path or file object."""
    document = chrome_trace(observer=observer, trace=trace,
                            include_idle=include_idle, host_spans=host_spans)
    if hasattr(destination, "write"):
        json.dump(document, destination, indent=1)
    else:
        with open(destination, "w") as handle:
            json.dump(document, handle, indent=1)
    return document


def validate_chrome_trace(document: dict) -> List[str]:
    """Sanity-check an exported document; returns a list of problems.

    Used by the CI smoke job and the test suite: every event needs a
    phase and a non-negative timestamp (metadata aside), and timestamps
    must be monotonically non-decreasing in file order.
    """
    problems = []
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents missing or empty"]
    last_ts = None
    for i, event in enumerate(events):
        if "ph" not in event:
            problems.append(f"event {i}: missing ph")
            continue
        if event["ph"] == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i}: bad ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(f"event {i}: ts {ts} < previous {last_ts}")
        last_ts = ts
        if event["ph"] == "X" and event.get("dur", 0) < 0:
            problems.append(f"event {i}: negative dur")
    return problems
