"""Tests for liveness, dataflow-graph construction and loop detection."""

from repro.ir import Function, IRBuilder, const
from repro.ir.types import I32, VOID
from repro.passes import (
    build_block_dfg,
    classify,
    compute_liveness,
    find_loops,
    is_register_access,
    max_loop_depth,
    region_live_ins,
)

from tests.irprograms import (
    build_matrix_add_module,
    build_scale_module,
    build_serial_sum_module,
)


class TestLiveness:
    def test_loop_index_slot_live_through_loop(self):
        m = build_scale_module()
        f = m.function("scale")
        live = compute_liveness(f)
        cond = f.block("cond")
        # the alloca'd slot value must be live into the loop condition
        slot = f.block("entry").instructions[0]
        assert slot in live.live_in[cond]

    def test_max_live_positive(self):
        m = build_serial_sum_module()
        assert compute_liveness(m.function("sum")).max_live() >= 2

    def test_region_live_ins_excludes_internal_defs(self):
        m = build_scale_module()
        f = m.function("scale")
        det = f.block("detached")
        live = region_live_ins([det])
        internal = set(det.instructions)
        assert not (live & internal)
        assert f.arguments[0] in live  # pointer a


class TestClassify:
    def test_register_vs_memory_access(self):
        m = build_serial_sum_module()
        f = m.function("sum")
        body = f.block("body")
        loads = [i for i in body.instructions if i.opcode == "load"]
        # loads: a[i] (memory), acc (register)
        kinds = sorted(classify(load) for load in loads)
        assert kinds == ["load", "regread"]

    def test_frame_alloca_counts_as_memory(self):
        f = Function("g", [], [], VOID)
        b = IRBuilder(f.add_block("entry"))
        frame = b.alloca(I32, in_frame=True)
        ld = b.load(frame)
        b.ret()
        assert not is_register_access(ld)
        assert classify(ld) == "load"

    def test_arith_classes(self):
        f = Function("h", [I32, I32], ["x", "y"], VOID)
        b = IRBuilder(f.add_block("entry"))
        x, y = f.arguments
        assert classify(b.add(x, y)) == "alu"
        assert classify(b.mul(x, y)) == "mul"
        assert classify(b.sdiv(x, y)) == "div"
        assert classify(b.fadd(const(1.0), const(2.0))) == "falu"
        assert classify(b.fdiv(const(1.0), const(2.0))) == "fdiv"


class TestBlockDFG:
    def test_def_use_edges(self):
        m = build_scale_module()
        f = m.function("scale")
        det = f.block("detached")
        dfg = build_block_dfg(det)
        # store of the incremented value depends on the add chain
        store_node = dfg.nodes[-2]  # last body instruction before reattach
        assert store_node.inst.opcode == "store"
        assert store_node.deps  # depends on add + gep

    def test_independent_loads_have_no_mutual_deps(self):
        m = build_matrix_add_module()
        f = m.function("matrix_add")
        det = f.block("body_detached")
        dfg = build_block_dfg(det)
        load_nodes = [n for n in dfg.nodes if n.kind == "load"]
        assert len(load_nodes) == 2
        a, b = load_nodes
        assert a.index not in b.deps and b.index not in a.deps

    def test_store_ordered_after_loads(self):
        m = build_matrix_add_module()
        det = m.function("matrix_add").block("body_detached")
        dfg = build_block_dfg(det)
        store = next(n for n in dfg.nodes if n.kind == "store")
        load_indices = {n.index for n in dfg.nodes if n.kind == "load"}
        assert load_indices <= set(store.deps)

    def test_critical_path_respects_latency(self):
        m = build_scale_module(work_ops=10)
        det = m.function("scale").block("detached")
        dfg = build_block_dfg(det)
        unit = dfg.critical_path(lambda n: 1)
        slow_alu = dfg.critical_path(lambda n: 3 if n.kind == "alu" else 1)
        assert slow_alu > unit
        # ten chained adds dominate the path
        assert unit >= 12

    def test_terminator_extra_deps(self):
        m = build_scale_module()
        f = m.function("scale")
        cond = f.block("cond")
        i_val = cond.instructions[0]
        body = f.block("body")
        dfg = build_block_dfg(body, extra_terminator_deps=[i_val])
        # i_val is defined in another block, so no intra-block edge appears
        assert dfg.nodes[-1].deps == []
        # but a value defined in the same block would create one:
        dfg2 = build_block_dfg(cond, extra_terminator_deps=[i_val])
        term = dfg2.nodes[-1]
        assert dfg2.node_for_inst[i_val].index in term.deps


class TestLoops:
    def test_scale_has_one_loop(self):
        m = build_scale_module()
        loops = find_loops(m.function("scale"))
        assert len(loops) == 1
        assert loops[0].header.name == "cond"
        assert loops[0].spawns_tasks()

    def test_matrix_add_has_nested_loops(self):
        m = build_matrix_add_module()
        loops = find_loops(m.function("matrix_add"))
        assert len(loops) == 2
        assert max_loop_depth(m.function("matrix_add")) == 2
        inner = min(loops, key=lambda loop: len(loop.blocks))
        assert inner.parent is not None

    def test_serial_loop_does_not_spawn(self):
        m = build_serial_sum_module()
        loops = find_loops(m.function("sum"))
        assert len(loops) == 1
        assert not loops[0].spawns_tasks()
