"""Machine-readable benchmark results.

Every ``benchmarks/bench_*.py`` writes, next to its ``results/*.txt``
table, a ``results/*.json`` document so the performance trajectory can
be tracked across PRs. The schema is one document per bench::

    {"bench": str, "schema": 2,
     "records": [{"workload": str, "config": {...}, "cycles": int|null,
                  "utilization": {...}|null, "stalls": {...}|null,
                  "engine": {...}|null, "metrics": {...}}]}

``bench_record`` builds one record; non-simulation benches (resource
tables) set ``cycles`` to None and carry their numbers in ``metrics``.
Schema 2 adds the ``engine`` key: host-side performance of the
simulation itself (engine name, ``host_seconds``,
``sim_cycles_per_host_second``) so simulator throughput can be tracked
across PRs alongside the architectural numbers.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

BENCH_SCHEMA_VERSION = 2

#: keys every record must carry (value may be None)
RECORD_KEYS = ("workload", "config", "cycles", "utilization", "stalls",
               "engine", "metrics")

#: subset of Simulator.engine_stats() carried in bench records
ENGINE_RECORD_KEYS = ("name", "host_seconds", "sim_cycles_per_host_second")


def config_summary(config) -> Dict[str, Any]:
    """JSON-safe summary of an AcceleratorConfig."""
    out = {
        "board": config.board.name,
        "default_ntiles": config.default_ntiles,
        "memory_model": config.memory_model,
        "dram_latency": config.effective_dram_latency(),
        "analysis_level": config.analysis_level,
        "engine": config.engine,
        "cache": {
            "size_bytes": config.cache.size_bytes,
            "line_bytes": config.cache.line_bytes,
            "associativity": config.cache.associativity,
            "mshr_count": config.cache.mshr_count,
            "banks": config.cache.banks,
        },
    }
    if config.unit_params:
        out["unit_params"] = {
            name: {"ntiles": p.ntiles, "queue_depth": p.queue_depth,
                   "max_inflight_per_tile": p.max_inflight_per_tile,
                   "policy": p.policy}
            for name, p in config.unit_params.items()
        }
    return out


def utilization_from_stats(stats: Dict[str, Any],
                           cycles: int) -> Dict[str, float]:
    """Per-unit tile utilization out of a RunResult stats dict."""
    out = {}
    for name, unit in stats.get("units", {}).items():
        tiles = unit.get("tiles", [])
        if tiles and cycles:
            busy = sum(t.get("busy_cycles", 0) for t in tiles)
            out[name] = round(busy / (len(tiles) * cycles), 4)
    return out


def engine_summary(source: Any) -> Optional[Dict[str, Any]]:
    """The record ``engine`` key from a stats dict or engine_stats dict.

    Accepts a ``RunResult.stats`` dict (engine stats nested under
    ``"engine"``) or a ``Simulator.engine_stats()`` dict directly.
    """
    if source is None:
        return None
    engine = source.get("engine", source)
    if not isinstance(engine, dict) or "name" not in engine:
        return None
    return {key: engine.get(key) for key in ENGINE_RECORD_KEYS}


def bench_record(workload: str, config: Any = None,
                 cycles: Optional[int] = None,
                 utilization: Optional[dict] = None,
                 stalls: Optional[dict] = None,
                 stats: Optional[dict] = None,
                 engine: Optional[dict] = None,
                 **metrics) -> Dict[str, Any]:
    """One benchmark data point in the BENCH_*.json schema."""
    if not isinstance(config, (dict, type(None))):
        config = config_summary(config)
    if utilization is None and stats is not None and cycles:
        utilization = utilization_from_stats(stats, cycles) or None
    if engine is None and stats is not None:
        engine = engine_summary(stats)
    else:
        engine = engine_summary(engine)
    return {
        "workload": workload,
        "config": config,
        "cycles": cycles,
        "utilization": utilization,
        "stalls": stalls,
        "engine": engine,
        "metrics": metrics,
    }


def bench_document(bench: str, records: List[dict]) -> Dict[str, Any]:
    for record in records:
        missing = [k for k in RECORD_KEYS if k not in record]
        if missing:
            raise ValueError(f"bench {bench}: record missing {missing}")
    return {"bench": bench, "schema": BENCH_SCHEMA_VERSION,
            "records": records}


def write_bench_json(path: str, bench: str, records: List[dict]) -> dict:
    document = bench_document(bench, records)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=False)
        handle.write("\n")
    return document
