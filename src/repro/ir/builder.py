"""IRBuilder: an LLVM-style convenience API for emitting instructions.

Both the Cilk-like frontend lowering and hand-written tests/examples build
IR through this class, so every construction invariant is enforced in one
place.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import IRError
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    GEP,
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    CondBr,
    Detach,
    FCmp,
    ICmp,
    Instruction,
    Load,
    Reattach,
    Ret,
    Select,
    Store,
    Sync,
)
from repro.ir.types import Type
from repro.ir.values import Value


class IRBuilder:
    """Appends instructions to a current insertion block."""

    def __init__(self, block: Optional[BasicBlock] = None):
        self.block = block
        self._name_counter = 0
        #: source line stamped onto every inserted instruction (diagnostics)
        self.current_loc: Optional[int] = None

    def position_at_end(self, block: BasicBlock) -> "IRBuilder":
        self.block = block
        return self

    def _fresh(self, hint: str) -> str:
        self._name_counter += 1
        return f"{hint}{self._name_counter}"

    def _insert(self, inst: Instruction) -> Instruction:
        if self.block is None:
            raise IRError("IRBuilder has no insertion block")
        if inst.loc is None:
            inst.loc = self.current_loc
        return self.block.append(inst)

    # -- arithmetic ----------------------------------------------------------

    def binop(self, op: str, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self._insert(BinaryOp(op, lhs, rhs, name or self._fresh(op)))

    def add(self, a, b, name=""):
        return self.binop("add", a, b, name)

    def sub(self, a, b, name=""):
        return self.binop("sub", a, b, name)

    def mul(self, a, b, name=""):
        return self.binop("mul", a, b, name)

    def sdiv(self, a, b, name=""):
        return self.binop("sdiv", a, b, name)

    def srem(self, a, b, name=""):
        return self.binop("srem", a, b, name)

    def and_(self, a, b, name=""):
        return self.binop("and", a, b, name)

    def or_(self, a, b, name=""):
        return self.binop("or", a, b, name)

    def xor(self, a, b, name=""):
        return self.binop("xor", a, b, name)

    def shl(self, a, b, name=""):
        return self.binop("shl", a, b, name)

    def ashr(self, a, b, name=""):
        return self.binop("ashr", a, b, name)

    def fadd(self, a, b, name=""):
        return self.binop("fadd", a, b, name)

    def fsub(self, a, b, name=""):
        return self.binop("fsub", a, b, name)

    def fmul(self, a, b, name=""):
        return self.binop("fmul", a, b, name)

    def fdiv(self, a, b, name=""):
        return self.binop("fdiv", a, b, name)

    def icmp(self, predicate: str, lhs: Value, rhs: Value, name="") -> ICmp:
        return self._insert(ICmp(predicate, lhs, rhs, name or self._fresh("cmp")))

    def fcmp(self, predicate: str, lhs: Value, rhs: Value, name="") -> FCmp:
        return self._insert(FCmp(predicate, lhs, rhs, name or self._fresh("fcmp")))

    def select(self, cond, if_true, if_false, name="") -> Select:
        return self._insert(Select(cond, if_true, if_false, name or self._fresh("sel")))

    def cast(self, kind: str, value: Value, to_type: Type, name="") -> Cast:
        return self._insert(Cast(kind, value, to_type, name or self._fresh(kind)))

    # -- memory ----------------------------------------------------------------

    def alloca(self, allocated_type: Type, name="", in_frame: bool = False) -> Alloca:
        return self._insert(
            Alloca(allocated_type, name or self._fresh("slot"), in_frame=in_frame))

    def gep(self, base: Value, indices: List[Value], strides: List[int],
            name="") -> GEP:
        return self._insert(GEP(base, indices, strides, name or self._fresh("gep")))

    def load(self, pointer: Value, name="") -> Load:
        return self._insert(Load(pointer, name or self._fresh("ld")))

    def store(self, value: Value, pointer: Value) -> Store:
        return self._insert(Store(value, pointer))

    def call(self, callee: Function, args: List[Value], name="") -> Call:
        return self._insert(Call(callee, args, name or self._fresh("call")))

    # -- terminators -----------------------------------------------------------

    def br(self, dest: BasicBlock) -> Br:
        return self._insert(Br(dest))

    def condbr(self, cond: Value, if_true: BasicBlock, if_false: BasicBlock) -> CondBr:
        return self._insert(CondBr(cond, if_true, if_false))

    def ret(self, value: Optional[Value] = None) -> Ret:
        return self._insert(Ret(value))

    def detach(self, detached: BasicBlock, continuation: BasicBlock) -> Detach:
        return self._insert(Detach(detached, continuation))

    def reattach(self, continuation: BasicBlock) -> Reattach:
        return self._insert(Reattach(continuation))

    def sync(self, continuation: BasicBlock) -> Sync:
        return self._insert(Sync(continuation))
