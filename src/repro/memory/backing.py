"""Functional backing store: the byte-addressed shared memory.

Timing is modelled by the cache/DRAM components; *data* always lives here,
so host and accelerator observe one coherent memory image — the paper's
shared-memory programming model (§III-E).
"""

from __future__ import annotations

import struct

from repro.errors import MemoryError_
from repro.ir.types import FloatType, IntType, PointerType, Type


class MainMemory:
    """Flat byte-addressed memory with a bump allocator for host data."""

    def __init__(self, size_bytes: int = 1 << 22):
        if size_bytes <= 0:
            raise MemoryError_("memory size must be positive")
        self.size = size_bytes
        self.data = bytearray(size_bytes)
        # address 0 is kept unmapped so null pointers fault loudly
        self._next_free = 64

    # -- allocation ---------------------------------------------------------

    def alloc(self, nbytes: int, align: int = 8) -> int:
        """Host-side bump allocation; returns the base address."""
        if nbytes <= 0:
            raise MemoryError_(f"allocation of {nbytes} bytes")
        base = (self._next_free + align - 1) // align * align
        if base + nbytes > self.size:
            raise MemoryError_(
                f"out of simulated memory: need {nbytes} at {base}, size {self.size}")
        self._next_free = base + nbytes
        return base

    def reserve_region(self, nbytes: int, align: int = 64) -> int:
        """Reserve a dedicated region (e.g. the task-frame stack)."""
        return self.alloc(nbytes, align)

    # -- raw access -----------------------------------------------------------

    def _check(self, addr: int, size: int):
        if addr < 0 or addr + size > self.size:
            raise MemoryError_(f"access [{addr}, {addr + size}) out of range")
        if addr == 0:
            raise MemoryError_("null pointer access")

    def read_bytes(self, addr: int, size: int) -> bytes:
        self._check(addr, size)
        return bytes(self.data[addr:addr + size])

    def write_bytes(self, addr: int, payload: bytes):
        self._check(addr, len(payload))
        self.data[addr:addr + len(payload)] = payload

    # -- typed access -----------------------------------------------------

    def read_int(self, addr: int, size: int, signed: bool = True) -> int:
        return int.from_bytes(self.read_bytes(addr, size), "little", signed=signed)

    def write_int(self, addr: int, size: int, value: int):
        mask = (1 << (8 * size)) - 1
        self.write_bytes(addr, (int(value) & mask).to_bytes(size, "little"))

    def read_f32(self, addr: int) -> float:
        return struct.unpack("<f", self.read_bytes(addr, 4))[0]

    def write_f32(self, addr: int, value: float):
        self.write_bytes(addr, struct.pack("<f", float(value)))

    def read_value(self, addr: int, type_: Type):
        """Read a value of an IR type."""
        if isinstance(type_, FloatType):
            return self.read_f32(addr)
        if isinstance(type_, IntType):
            raw = self.read_int(addr, type_.size_bytes, signed=(type_.bits > 1))
            return type_.wrap(raw)
        if isinstance(type_, PointerType):
            return self.read_int(addr, 8, signed=False)
        raise MemoryError_(f"cannot read value of type {type_!r}")

    def write_value(self, addr: int, type_: Type, value):
        if isinstance(type_, FloatType):
            self.write_f32(addr, value)
        elif isinstance(type_, IntType):
            self.write_int(addr, type_.size_bytes, int(value))
        elif isinstance(type_, PointerType):
            self.write_int(addr, 8, int(value))
        else:
            raise MemoryError_(f"cannot write value of type {type_!r}")

    # -- array convenience (host runtime) ------------------------------------

    def alloc_array(self, type_: Type, values) -> int:
        """Allocate and initialise an array; returns the base address."""
        values = list(values)
        elem = type_.size_bytes
        base = self.alloc(max(1, elem * len(values)), align=8)
        for i, v in enumerate(values):
            self.write_value(base + i * elem, type_, v)
        return base

    def read_array(self, addr: int, type_: Type, count: int):
        elem = type_.size_bytes
        return [self.read_value(addr + i * elem, type_) for i in range(count)]
