"""Simulator throughput: event-driven kernel vs the dense oracle.

Not a paper figure — this measures the *host-side* cost of the cycle
simulator itself. The event engine (wakeup scheduling plus quiescent
fast-forward) must (i) stay bit-identical to the dense engine on every
config here, and (ii) deliver a large wall-clock win on memory-bound
workloads, where most cycles are DRAM-latency quiet spans.

Configurations:

* ``fib`` / ``mergesort`` / ``stencil`` — default configs: activity is
  dense (something fires almost every cycle), so the event engine's win
  is modest and can even be a small loss on fib. Reported honestly.
* ``saxpy-membound`` — 1 KB cache, a single MSHR (the paper's §VI notes
  TAPAS has limited support for multiple outstanding misses), 270-cycle
  DRAM latency (the paper's Table V DRAM access time). Nearly every
  cycle is a quiet DRAM wait: the regime the fast-forward optimisation
  targets. Gate: >= 5x speedup.
"""

import time

from repro.accel import ARRIA_10
from repro.memory.cache import CacheParams
from repro.reports import bench_record, render_table
from repro.workloads import REGISTRY

#: (row name, workload, scale, config overrides)
CASES = [
    ("fib", "fibonacci", 2, {}),
    ("mergesort", "mergesort", 2, {}),
    ("stencil", "stencil", 2, {}),
    ("saxpy-membound", "saxpy", 16,
     {"board": ARRIA_10,
      "cache": CacheParams(size_bytes=1024, mshr_count=1),
      "dram_latency_cycles": 270}),
]

#: wall-clock gate for the memory-bound case (observers detached)
MEMBOUND_MIN_SPEEDUP = 5.0


def _measure(name, scale, overrides, tiles, engine):
    workload = REGISTRY.get(name)
    config = workload.default_config(tiles, engine=engine, **overrides)
    start = time.perf_counter()
    result = workload.run(config, scale=scale)
    seconds = time.perf_counter() - start
    assert result.correct, f"{name} wrong under {engine}"
    return result, seconds


def test_sim_throughput(benchmark, save_result, save_json):
    def run():
        rows = []
        for row_name, workload, scale, overrides in CASES:
            dense, dense_s = _measure(workload, scale, overrides, 2, "dense")
            event, event_s = _measure(workload, scale, overrides, 2, "event")
            assert dense.cycles == event.cycles, row_name
            engine = event.stats["engine"]
            rows.append({
                "name": row_name, "workload": workload, "scale": scale,
                "cycles": event.cycles,
                "dense_seconds": dense_s, "event_seconds": event_s,
                "speedup": dense_s / event_s if event_s else float("inf"),
                "ticks_executed": engine["ticks_executed"],
                "fast_forwarded_cycles": engine["fast_forwarded_cycles"],
                "event_stats": engine,
                "dense_stats": dense.stats["engine"],
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = render_table(
        ["Case", "Cycles", "Dense s", "Event s", "Speedup",
         "Ticks", "Fast-fwd"],
        [[r["name"], r["cycles"], round(r["dense_seconds"], 3),
          round(r["event_seconds"], 3), f"{r['speedup']:.2f}x",
          r["ticks_executed"], r["fast_forwarded_cycles"]]
         for r in rows],
        title="Simulator throughput — dense oracle vs event-driven kernel")
    save_result("sim_throughput", table)
    save_json("sim_throughput", [
        bench_record(r["workload"],
                     config={"ntiles": 2, "scale": r["scale"],
                             "case": r["name"]},
                     cycles=r["cycles"], engine=r["event_stats"],
                     dense_host_seconds=round(r["dense_seconds"], 6),
                     event_host_seconds=round(r["event_seconds"], 6),
                     speedup=round(r["speedup"], 2),
                     ticks_executed=r["ticks_executed"],
                     fast_forwarded_cycles=r["fast_forwarded_cycles"])
        for r in rows])

    by_name = {r["name"]: r for r in rows}
    membound = by_name["saxpy-membound"]
    # the headline gate: fast-forward pays off where cycles are quiet
    assert membound["speedup"] >= MEMBOUND_MIN_SPEEDUP, (
        f"memory-bound speedup {membound['speedup']:.2f}x "
        f"< {MEMBOUND_MIN_SPEEDUP}x")
    assert membound["fast_forwarded_cycles"] > membound["cycles"] // 2
    # dense-activity workloads must at least not regress badly: the
    # event engine's overhead on always-hot designs stays bounded
    for name in ("fib", "mergesort", "stencil"):
        assert by_name[name]["speedup"] > 0.5, name
