"""Task unit: queue + spawn/sync ports + N TXU tiles (paper Fig 4/5).

One task unit exists per static task. It accepts spawns from the network,
queues them, dispatches READY entries onto its tiles, routes joins back to
parents, resumes entries suspended at a ``sync``, and delivers serial-call
return values to waiting dataflow nodes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.errors import SimulationError
from repro.sim import (
    NEVER,
    OBS_BUSY,
    OBS_IDLE,
    OBS_STALL_IN,
    OBS_STALL_OUT,
    Channel,
    Component,
)
from repro.task.compiled import CompiledTask
from repro.task.messages import JOIN_CALL, JOIN_SYNC, JoinMessage, SpawnMessage
from repro.task.task_queue import (
    COMPLETE,
    EXE,
    READY,
    SYNC,
    TaskEntry,
    TaskQueue,
)
from repro.task.txu import PARKED, TXUTile

#: bound on buffered outbound messages before spawn sites see backpressure
OUTBOUND_BUFFER = 4


class TaskUnit(Component):
    """The execution engine for one static task."""

    def __init__(self, name: str, compiled: CompiledTask,
                 spawn_in: Channel, join_in: Channel,
                 spawn_out: Channel, join_out: Channel,
                 tile_requests: List[Channel], tile_responses: List[Channel],
                 queue_depth: int = 32, policy: str = "fifo",
                 max_inflight_per_tile: int = 8,
                 frame_base: int = 0, frame_size: int = 0,
                 port: int = 0, latencies=None, trace=None):
        super().__init__(name)
        self.compiled = compiled
        self.sid = compiled.sid
        self.port = port
        self.spawn_in = spawn_in
        self.join_in = join_in
        self.spawn_out = spawn_out
        self.join_out = join_out
        self.frame_base = frame_base
        self.frame_size = frame_size
        self.trace = trace

        self.queue = TaskQueue(f"{name}.queue", queue_depth, policy)
        self.tiles: List[TXUTile] = [
            TXUTile(self, i, compiled, tile_requests[i], tile_responses[i],
                    max_inflight=max_inflight_per_tile, latencies=latencies)
            for i in range(len(tile_requests))
        ]
        self._uid_counter = 0
        self._gid_counter = 0
        self._dispatch_rr = 0
        self._spawn_outbuf: Deque[SpawnMessage] = deque()
        self._join_outbuf: Deque[JoinMessage] = deque()
        self._join_ready: Deque[int] = deque()

        # host-visible completion of a root spawn (parent_sid is None)
        self.root_done = False
        self.root_retval: Any = None

        self.spawns_accepted = 0
        self.spawns_issued = 0
        self.first_dispatch_cycle: Optional[int] = None
        self.last_completion_cycle: Optional[int] = None
        #: last cycle whose tile busy_cycles accounting is complete — the
        #: event engine may skip ticks while every instance is parked on a
        #: memory/call response (state frozen), and the dense engine counts
        #: those as busy tile cycles, so they are caught up in bulk
        self._synced_to = -1

    # -- addresses ---------------------------------------------------------

    def frame_address(self, dyid: int) -> int:
        if self.frame_size == 0:
            raise SimulationError(f"{self.name}: task has no frame storage")
        return self.frame_base + dyid * self.frame_size

    # -- dynamic-checker events --------------------------------------------

    def analysis_event(self, kind: str, detail: str = "", payload=None):
        """Emit a structured trace event (returns it, or None untraced)."""
        if self.trace is None:
            return None
        cycle = self.sim.cycle if self.sim else 0
        return self.trace.emit(cycle, self.name, kind, detail, payload=payload)

    # -- interface used by tiles ---------------------------------------------

    def issue_spawn(self, dest_sid: int, args: tuple, entry: TaskEntry,
                    ret_ptr: Optional[int]) -> bool:
        """A detach fired: enqueue the spawn and count the child."""
        if len(self._spawn_outbuf) >= OUTBOUND_BUFFER:
            return False
        event = self.analysis_event("spawn-issue", f"-> T{dest_sid}",
                                    {"gid": entry.gid, "dest_sid": dest_sid})
        self._spawn_outbuf.append(SpawnMessage(
            dest_sid=dest_sid, args=args,
            parent_sid=self.sid, parent_dyid=entry.dyid,
            join_kind=JOIN_SYNC, ret_ptr=ret_ptr,
            parent_gid=entry.gid,
            spawn_seq=event.seq if event is not None else None))
        entry.child_count += 1
        self.spawns_issued += 1
        return True

    def issue_call(self, dest_sid: int, args: tuple, entry: TaskEntry,
                   token) -> bool:
        """A serial call fired: spawn the callee, expect a valued join."""
        if len(self._spawn_outbuf) >= OUTBOUND_BUFFER:
            return False
        event = self.analysis_event("call-issue", f"-> T{dest_sid}",
                                    {"gid": entry.gid, "dest_sid": dest_sid})
        self._spawn_outbuf.append(SpawnMessage(
            dest_sid=dest_sid, args=args,
            parent_sid=self.sid, parent_dyid=entry.dyid,
            join_kind=JOIN_CALL, call_token=token,
            parent_gid=entry.gid,
            spawn_seq=event.seq if event is not None else None))
        self.spawns_issued += 1
        return True

    def instance_finished(self, inst):
        entry = inst.entry
        entry.retval = inst.retval
        entry.state = COMPLETE
        if entry.child_count == 0:
            self._join_ready.append(entry.dyid)
        if self.trace is not None:
            self.trace.emit(self.sim.cycle if self.sim else 0, self.name,
                            "complete", f"dyid={entry.dyid}")

    def instance_suspended(self, inst):
        if self.trace is not None:
            self.trace.emit(self.sim.cycle if self.sim else 0, self.name,
                            "suspend", f"dyid={inst.entry.dyid}")

    # -- clocked behaviour -----------------------------------------------------

    def _catch_up(self, through_cycle: int):
        gap = through_cycle - self._synced_to
        if gap > 0:
            for tile in self.tiles:
                if tile.instances:
                    tile.busy_cycles += gap
            self._synced_to = through_cycle

    def tick(self, cycle: int):
        if self._synced_to < cycle - 1:  # only after an event-engine skip
            self._catch_up(cycle - 1)
        self._synced_to = cycle
        self._accept_join(cycle)
        self._accept_spawn(cycle)
        self._dispatch(cycle)
        for tile in self.tiles:
            tile.tick(cycle)
        self._send_join(cycle)
        self._drain_outbound()

    def _accept_join(self, cycle: int):
        if not self.join_in.can_pop():
            return
        self._apply_join(self.join_in.pop(), cycle)

    def _apply_join(self, msg: "JoinMessage", cycle: int):
        """Process a popped join message (channel-free: the compiled
        engine pops the channel itself and delegates here)."""
        if msg.join_kind == JOIN_CALL:
            tile_index, uid, node_idx = msg.call_token
            self.tiles[tile_index].deliver_call_return(
                uid, node_idx, msg.retval, cycle, child_gid=msg.child_gid)
            return
        self.queue.child_joined(msg.parent_dyid)
        entry = self.queue.entry(msg.parent_dyid)
        if entry.child_count == 0:
            if entry.state == SYNC:
                self.queue.mark_ready(entry)  # resume past the sync
                self.analysis_event("sync-resume", f"dyid={entry.dyid}",
                                    {"gid": entry.gid})
            elif entry.state == COMPLETE:
                self._join_ready.append(entry.dyid)

    def _accept_spawn(self, cycle: int):
        if not self.spawn_in.can_pop():
            return
        if not self.queue.has_free_entry():
            return  # backpressure: spawn waits in the network
        self._apply_spawn(self.spawn_in.pop(), cycle)

    def _apply_spawn(self, msg: "SpawnMessage", cycle: int):
        """Allocate a popped spawn message (channel-free: the compiled
        engine pops the channel itself and delegates here)."""
        if msg.dest_sid != self.sid:
            raise SimulationError(
                f"{self.name}: spawn for SID {msg.dest_sid} routed to "
                f"SID {self.sid}")
        entry = self.queue.allocate(msg)
        entry.gid = (self.sid, self._gid_counter)
        self._gid_counter += 1
        self.spawns_accepted += 1
        if self.trace is not None:
            self.trace.emit(cycle, self.name, "spawn-in",
                            f"from T{msg.parent_sid}:{msg.parent_dyid}")
            self.analysis_event(
                "task-start", f"gid={entry.gid}",
                {"gid": entry.gid, "parent_gid": entry.parent_gid,
                 "origin_seq": entry.origin_seq,
                 "call": msg.join_kind == JOIN_CALL})

    def _dispatch(self, cycle: int):
        if not self.queue.has_ready():
            return
        # find a tile with capacity, round-robin for load balance
        n = len(self.tiles)
        for offset in range(n):
            tile = self.tiles[(self._dispatch_rr + offset) % n]
            if tile.has_capacity():
                entry = self.queue.take_ready()
                if entry is None:
                    return
                entry.state = EXE
                tile.start(self._uid_counter, entry, cycle)
                self._uid_counter += 1
                self._dispatch_rr = (self._dispatch_rr + offset + 1) % n
                if self.first_dispatch_cycle is None:
                    self.first_dispatch_cycle = cycle
                return

    def _send_join(self, cycle: int):
        if not self._join_ready:
            return
        dyid = self._join_ready[0]
        entry = self.queue.entry(dyid)
        if entry.parent_sid is None:
            # host-issued root task: completion ends the offload
            self._join_ready.popleft()
            self.root_done = True
            self.root_retval = entry.retval
            self.last_completion_cycle = cycle
            self.queue.release(entry)
            return
        if len(self._join_outbuf) >= OUTBOUND_BUFFER:
            return
        self._join_ready.popleft()
        self._join_outbuf.append(JoinMessage(
            parent_sid=entry.parent_sid, parent_dyid=entry.parent_dyid,
            join_kind=entry.join_kind, call_token=entry.call_token,
            retval=entry.retval, child_gid=entry.gid))
        self.last_completion_cycle = cycle
        self.queue.release(entry)

    def _drain_outbound(self):
        if self._spawn_outbuf and self.spawn_out.can_push():
            self.spawn_out.push(self._spawn_outbuf.popleft())
        if self._join_outbuf and self.join_out.can_push():
            self.join_out.push(self._join_outbuf.popleft())

    # -- engine integration -----------------------------------------------

    def sensitivity(self):
        channels = [self.spawn_in, self.join_in, self.spawn_out, self.join_out]
        for tile in self.tiles:
            channels.append(tile.request_out)
            channels.append(tile.response_in)
        return tuple(channels)

    def ports(self):
        inputs = [self.spawn_in, self.join_in]
        outputs = [self.spawn_out, self.join_out]
        for tile in self.tiles:
            outputs.append(tile.request_out)
            inputs.append(tile.response_in)
        return (tuple(inputs), tuple(outputs))

    def next_wake(self, cycle):
        # pending joins and root completion advance without any channel
        # movement, one per cycle
        if self._join_ready:
            return cycle + 1
        # a spawn parked in the network behind a full queue becomes
        # acceptable the tick after a release — no new push occurs
        if self.spawn_in.can_pop() and self.queue.has_free_entry():
            return cycle + 1
        wake = NEVER
        has_capacity = False
        for tile in self.tiles:
            if tile.has_capacity():
                has_capacity = True
            # the tile's timer, computed during its tick: the earliest
            # instance progress possible without new channel traffic
            # (PARKED = every live instance is channel-driven)
            w = tile._min_wake
            if w < PARKED and w < wake:
                wake = w
        if self.queue.has_ready() and has_capacity:
            return cycle + 1
        if wake <= cycle:
            wake = cycle + 1
        return wake

    def is_busy(self):
        if self._spawn_outbuf or self._join_outbuf or self._join_ready:
            return True
        if self.queue.occupancy > 0:
            return True
        return any(t.instances for t in self.tiles)

    def obs_classify(self, cycle):
        tile_states = [tile.obs_classify(cycle) for tile in self.tiles]
        if any(state == OBS_BUSY for state, _ in tile_states):
            return OBS_BUSY, None
        if self._spawn_outbuf and not self.spawn_out.can_push():
            return OBS_STALL_OUT, "spawn-network"
        if self._join_outbuf and not self.join_out.can_push():
            return OBS_STALL_OUT, "join-network"
        stalls = [(state, reason) for state, reason in tile_states
                  if state in (OBS_STALL_IN, OBS_STALL_OUT)]
        if stalls:
            # the unit stalls for whatever most of its tiles stall for
            counts: Dict[tuple, int] = {}
            for pair in stalls:
                counts[pair] = counts.get(pair, 0) + 1
            return max(counts, key=counts.get)
        if self.queue.has_ready():
            if any(tile.has_capacity() for tile in self.tiles):
                return OBS_BUSY, "dispatch"
            return OBS_STALL_IN, "tiles-full"
        if self._join_ready or self._spawn_outbuf or self._join_outbuf:
            return OBS_BUSY, None
        if self.queue.occupancy > 0:
            # every live entry is suspended at a sync, waiting on children
            # executing in other units
            return OBS_STALL_IN, "sync-wait"
        return OBS_IDLE, None

    def obs_children(self, cycle):
        for tile in self.tiles:
            state, reason = tile.obs_classify(cycle)
            yield f"{self.name}.tile{tile.tile_index}", state, reason

    def stats(self):
        if self.sim is not None:
            self._catch_up(self.sim.cycle - 1)
        tile_stats = [t.stats() for t in self.tiles]
        return {
            "spawns_accepted": self.spawns_accepted,
            "spawns_issued": self.spawns_issued,
            "queue": self.queue.stats(),
            "tiles": tile_stats,
            "completed": sum(t["completed_instances"] for t in tile_stats),
        }
