"""TAPAS reproduction: generating parallel accelerators from parallel programs.

Reproduction of Margerm et al., *TAPAS: Generating Parallel Accelerators
from Parallel Programs* (MICRO 2018). The three front doors:

>>> from repro import compile_source, build_accelerator
>>> module = compile_source("func f(x: i32) -> i32 { return x + 1; }")
>>> accel = build_accelerator(module)
>>> accel.run("f", [41]).retval
42

See README.md for the architecture tour, DESIGN.md for the system
inventory and EXPERIMENTS.md for the paper-vs-measured results.
"""

from repro.accel import (
    Accelerator,
    AcceleratorConfig,
    HostProgram,
    TaskUnitParams,
    build_accelerator,
    generate,
)
from repro.frontend import compile_source
from repro.ir import parse_ir, print_module

__version__ = "1.2.0"

__all__ = [
    "Accelerator", "AcceleratorConfig", "HostProgram", "TaskUnitParams",
    "build_accelerator", "generate", "compile_source", "parse_ir",
    "print_module", "__version__",
]
