"""IR optimisations: the "Concurrency Opt" / "Task Opt" boxes of Fig 3.

Four conservative, hardware-motivated transforms:

* **constant folding** — a folded operation is a wire, not a functional
  unit: it costs zero ALMs and zero latency in the TXU;
* **dead-code elimination** — unused pure operations would synthesise
  real hardware (the elaborator instantiates every DFG node);
* **block-local CSE** — duplicate pure operations in one block become a
  single functional unit with fan-out, which is exactly what a Chisel
  elaborator would share;
* **dominator-scoped value numbering (GVN)** — duplicate pure
  operations whose first occurrence dominates the later ones collapse
  across blocks too, without any code motion.  Detached regions are a
  sharing barrier: a value computed outside a region is never forwarded
  into it, so task live-in sets (and the marshalled spawn arguments)
  are unchanged.

All four preserve the parallel markers untouched and never touch memory
operations, calls, or anything with side effects.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    GEP,
    BinaryOp,
    Cast,
    Detach,
    FCmp,
    ICmp,
    Instruction,
    Select,
)
from repro.ir.module import Module
from repro.ir.opsem import eval_binop, eval_cast, eval_fcmp, eval_icmp
from repro.ir.values import Constant, Value

#: instruction classes that are pure (no side effects, no memory)
_PURE = (BinaryOp, ICmp, FCmp, Select, Cast, GEP)


def _fold(inst: Instruction):
    """Return a Constant replacing ``inst`` if all operands are constants."""
    if not all(isinstance(op, Constant) for op in inst.operands):
        return None
    vals = [op.value for op in inst.operands]
    try:
        if isinstance(inst, BinaryOp):
            return Constant(inst.type, eval_binop(inst.op, inst.type, *vals))
        if isinstance(inst, ICmp):
            return Constant(inst.type, eval_icmp(inst.predicate, *vals))
        if isinstance(inst, FCmp):
            return Constant(inst.type, eval_fcmp(inst.predicate, *vals))
        if isinstance(inst, Select):
            return Constant(inst.type, vals[1] if vals[0] else vals[2])
        if isinstance(inst, Cast):
            return Constant(inst.type, eval_cast(inst.kind, vals[0], inst.type))
    except Exception:
        return None  # e.g. constant division by zero: leave it to run time
    return None


def _replace_everywhere(function: Function, old: Instruction, new: Value) -> int:
    count = 0
    for block in function.blocks:
        for inst in block.instructions:
            count += inst.replace_operand(old, new)
    return count


def constant_fold(function: Function) -> int:
    """Fold constant expressions; returns the number of folds."""
    folded = 0
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            for inst in list(block.body()):
                if not isinstance(inst, _PURE):
                    continue
                replacement = _fold(inst)
                if replacement is None:
                    continue
                _replace_everywhere(function, inst, replacement)
                block.instructions.remove(inst)
                folded += 1
                changed = True
    return folded


def eliminate_dead_code(function: Function) -> int:
    """Remove pure instructions whose results are never used."""
    removed = 0
    changed = True
    while changed:
        changed = False
        used: Set[Value] = set()
        for block in function.blocks:
            for inst in block.instructions:
                for op in inst.operands:
                    used.add(op)
        for block in function.blocks:
            for inst in list(block.body()):
                if isinstance(inst, _PURE) and inst not in used:
                    block.instructions.remove(inst)
                    removed += 1
                    changed = True
    return removed


def _value_index(function: Function) -> Dict[Value, int]:
    """Stable per-function ordinal for every value an operand can name.

    Arguments come first (by position), then instructions in program
    order.  The ordinal is what commutative operand sorting keys on, so
    CSE results are identical across runs and interpreters — unlike the
    previous ``id()``-based sort, which ordered operands by memory
    address.
    """
    index: Dict[Value, int] = {}
    for arg in function.arguments:
        index[arg] = len(index)
    for block in function.blocks:
        for inst in block.instructions:
            index[inst] = len(index)
    return index


def _operand_key(op: Value, index: Dict[Value, int]):
    """A hashable, totally ordered, run-stable key for one operand."""
    if isinstance(op, Constant):
        return ("c", str(op.type), repr(op.value))
    pos = index.get(op)
    if pos is not None:
        return ("v", pos)
    # globals and other module-level values: key by name
    return ("g", getattr(op, "name", "") or repr(op))


def _cse_key(inst: Instruction, index: Dict[Value, int]):
    """A structural hash for pure operations."""
    ids = tuple(_operand_key(op, index) for op in inst.operands)
    if isinstance(inst, BinaryOp):
        ops = ids
        if inst.op in ("add", "mul", "and", "or", "xor",
                       "fadd", "fmul", "smin", "smax"):
            ops = tuple(sorted(ids))  # commutative
        return ("bin", inst.op, ops)
    if isinstance(inst, ICmp):
        return ("icmp", inst.predicate, ids)
    if isinstance(inst, FCmp):
        return ("fcmp", inst.predicate, ids)
    if isinstance(inst, Select):
        return ("select", ids)
    if isinstance(inst, Cast):
        return ("cast", inst.kind, str(inst.type), ids)
    if isinstance(inst, GEP):
        return ("gep", tuple(inst.strides), ids)
    return None


def common_subexpression_elimination(function: Function) -> int:
    """Share duplicate pure operations within each block."""
    shared = 0
    index = _value_index(function)
    for block in function.blocks:
        seen: Dict[tuple, Instruction] = {}
        for inst in list(block.body()):
            if not isinstance(inst, _PURE):
                continue
            key = _cse_key(inst, index)
            if key is None:
                continue
            original = seen.get(key)
            if original is None:
                seen[key] = inst
                continue
            _replace_everywhere(function, inst, original)
            block.instructions.remove(inst)
            shared += 1
    return shared


def global_value_numbering(function: Function) -> int:
    """Share duplicate pure operations across dominated blocks.

    A preorder walk of the dominator tree carries a scoped table of
    available expressions: a pure op whose key already has an entry in a
    dominating block is replaced by that entry (pure fan-out, no code
    motion, so this is always safe for ``_PURE`` ops).

    Detach edges are a sharing barrier.  The walk enters a detached
    region's entry block with an *empty* table, so a value computed in
    the parent region is never forwarded into the spawned task — that
    would add a live-in and change the marshalled spawn arguments.
    """
    from repro.passes.dominators import compute_dominators

    if not function.blocks:
        return 0
    dom = compute_dominators(function)
    order = {b: i for i, b in enumerate(function.blocks)}
    children: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in function.blocks}
    for block, parent in dom.idom.items():
        if parent is not None:
            children[parent].append(block)
    for kids in children.values():
        kids.sort(key=lambda b: order[b])

    detach_entries: Set[BasicBlock] = set()
    for block in function.blocks:
        term = block.terminator
        if isinstance(term, Detach):
            detach_entries.add(term.detached)

    index = _value_index(function)
    shared = 0
    # Explicit stack: (block, inherited-table).  Tables are shared down
    # the tree by copy-on-entry, which is fine at these CFG sizes.
    stack: List[Tuple[BasicBlock, Dict[tuple, Instruction]]] = [
        (function.entry, {})]
    while stack:
        block, inherited = stack.pop()
        table = {} if block in detach_entries else dict(inherited)
        for inst in list(block.body()):
            if not isinstance(inst, _PURE):
                continue
            key = _cse_key(inst, index)
            if key is None:
                continue
            original = table.get(key)
            if original is None:
                table[key] = inst
                continue
            _replace_everywhere(function, inst, original)
            block.instructions.remove(inst)
            shared += 1
        for child in reversed(children[block]):
            stack.append((child, table))
    return shared


def optimize_function(function: Function) -> Dict[str, int]:
    """Run the full pipeline to a fixpoint; returns per-pass counts."""
    totals = {"folded": 0, "cse": 0, "gvn": 0, "dce": 0}
    while True:
        folded = constant_fold(function)
        cse = common_subexpression_elimination(function)
        gvn = global_value_numbering(function)
        dce = eliminate_dead_code(function)
        totals["folded"] += folded
        totals["cse"] += cse
        totals["gvn"] += gvn
        totals["dce"] += dce
        if folded + cse + gvn + dce == 0:
            return totals


def optimize_module(module: Module) -> Dict[str, int]:
    """Optimise every function; returns summed per-pass counts."""
    totals = {"folded": 0, "cse": 0, "gvn": 0, "dce": 0}
    for function in module.functions:
        counts = optimize_function(function)
        for key in totals:
            totals[key] += counts[key]
    return totals
