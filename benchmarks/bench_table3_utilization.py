"""Table III: FPGA utilisation of the Fig 12 microbenchmark.

Paper rows (Cyclone V 5CSEMA5): 1 tile/1 ins -> 185 MHz, 1314 ALM;
1/50 -> 178 MHz, 2955 ALM; 10/1 -> 154 MHz, 7107 ALM; 10/50 -> 159 MHz,
24738 ALM, 85% of chip; one M20K for the task queue. Arria 10: 10/50 at
308 MHz, 12% of chip.
"""

import pytest

from repro.accel import (
    ARRIA_10,
    CYCLONE_V,
    AcceleratorConfig,
    TaskUnitParams,
    build_accelerator,
)
from repro.reports import (
    bench_record,
    estimate_mhz,
    estimate_resources,
    render_table,
)
from repro.workloads import ScaleMicro

CONFIGS = [(1, 1), (1, 50), (10, 1), (10, 50)]
PAPER_CYCLONE = {
    (1, 1): (185.46, 1314, 1424, 1, 5),
    (1, 50): (178.09, 2955, 3523, 1, 10),
    (10, 1): (153.61, 7107, 8547, 1, 24),
    (10, 50): (159.24, 24738, 27604, 1, 85),
}


def build_micro(tiles: int, ins: int):
    workload = ScaleMicro(work_ops=ins)
    config = AcceleratorConfig(unit_params={
        "scale": TaskUnitParams(ntiles=1),
        "scale.t0": TaskUnitParams(ntiles=tiles),
    })
    return build_accelerator(workload.fresh_module(), config)


def test_table3_utilization(benchmark, save_result, save_json):
    def run():
        rows = []
        reports = {}
        for tiles, ins in CONFIGS:
            accel = build_micro(tiles, ins)
            report = estimate_resources(accel)
            mhz = estimate_mhz(CYCLONE_V, report.alms)
            rows.append(["Cyclone V", tiles, ins, round(mhz, 1),
                         report.alms, report.regs, report.brams,
                         round(report.chip_percent(CYCLONE_V.alm_capacity), 1)])
            reports[(tiles, ins)] = report
        # Arria 10 point from the paper
        big = reports[(10, 50)]
        mhz_a = estimate_mhz(ARRIA_10, big.alms)
        rows.append(["Arria 10", 10, 50, round(mhz_a, 1), big.alms,
                     big.regs, big.brams,
                     round(big.chip_percent(ARRIA_10.alm_capacity), 1)])
        return rows, reports

    rows, reports = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ["Board", "Tiles", "Ins", "MHz", "ALM", "Reg", "BRAM", "%Chip"],
        rows, title="Table III — FPGA utilisation (model vs paper)")
    save_result("table3_utilization", text)
    save_json("table3_utilization", [
        bench_record("scale_micro",
                     config={"board": board, "tiles": tiles,
                             "instructions": ins},
                     mhz=mhz, alms=alms, regs=regs, brams=brams,
                     chip_percent=pct)
        for board, tiles, ins, mhz, alms, regs, brams, pct in rows])

    # model accuracy against the published points
    for config, (p_mhz, p_alm, p_reg, p_bram, p_pct) in PAPER_CYCLONE.items():
        report = reports[config]
        assert abs(report.alms - p_alm) / p_alm < 0.25
        assert abs(report.regs - p_reg) / p_reg < 0.40
        assert report.brams == p_bram
        mhz = estimate_mhz(CYCLONE_V, report.alms)
        assert abs(mhz - p_mhz) / p_mhz < 0.20

    # the 10x50 design nearly fills a Cyclone V but is small on Arria 10
    big = reports[(10, 50)]
    assert big.chip_percent(CYCLONE_V.alm_capacity) > 60
    assert big.chip_percent(ARRIA_10.alm_capacity) < 15
    # Arria closes timing ~2x higher (paper: 308 vs 159 MHz)
    assert estimate_mhz(ARRIA_10, big.alms) > 1.7 * estimate_mhz(
        CYCLONE_V, big.alms)
