"""The cycle engine: a two-phase clock over components and channels.

Three engines share one contract:

* ``engine="dense"`` — the original oracle loop: every component ticks
  and every channel commits on every cycle.
* ``engine="compiled"`` — a per-design specialized kernel: a codegen
  pass (:mod:`repro.sim.compile`) flattens the elaborated netlist into
  one generated Python module with inlined handshakes and per-component
  tick bodies specialized on their static configuration, ``exec``'d and
  cached content-addressed by design fingerprint. Designs or
  instrumentation the codegen does not support fall back to the event
  engine explicitly (``Simulator.compiled_fallback`` records why).
* ``engine="event"`` (default) — an event-driven kernel. Components
  declare *sensitivity* (the channels they read/write) and an optional
  self-wake timer (:meth:`Component.next_wake`); the engine keeps a
  current-cycle wake set, a channel ``commit()`` wakes subscribers, and
  only woken components tick. When the wake set runs dry but timers are
  armed (DRAM in flight, cache fills counting down) the clock jumps
  straight to the next deadline — *quiescent fast-forward*. Two
  adaptive layers keep the scheduling overhead bounded on busy
  workloads: steadily-active components are promoted into a *hot set*
  ticked straight off a flat list (no per-cycle enqueue), and when a
  sampling window shows most components waking every cycle with
  nothing to skip, the run loop drops into *dense fallback* — oracle
  stepping with zero wake bookkeeping — until a quiet spell worth
  fast-forwarding reappears (see the ``HYBRID_*`` knobs).

The contract between them is **bit-identical cycle counts and stats**:
TAPAS designs are latency-insensitive (every inter-block interface is a
registered ready/valid handshake, reads observe start-of-cycle state),
so a tick of a component whose inputs did not change and whose timers
have not expired is a pure no-op, and skipping it cannot be observed.
Components that do not implement the sensitivity contract default to
being woken every cycle, which degrades to dense behaviour and is
therefore always safe. Differential tests over every example program and
benchmark config enforce the bit-identity.
"""

from __future__ import annotations

import heapq
import time
from operator import attrgetter
from typing import Callable, Dict, List, Optional

from repro.errors import DeadlockError, SimulationError
from repro.sim.channel import Channel
from repro.sim.component import HOT, NEVER, Component

#: consecutive stay-hot wakes before a component is promoted into the
#: hot set (ticked unconditionally, no per-cycle re-enqueue). Small
#: enough that steadily-active components promote almost immediately,
#: large enough that a transient burst doesn't churn the hot list.
HOT_STREAK = 4

#: adaptive dense fallback: the event engine samples its own waking
#: ratio over windows of this many ticks. Short enough that a window
#: completes between the quiet spans of a busy workload (a fast-forward
#: resets it), long enough to ride out transient bursts ...
HYBRID_WINDOW = 64
#: ... and when a full window woke at least this fraction of all
#: components (and never fast-forwarded), the run loop drops into dense
#: stepping, which ticks everything with zero wake bookkeeping. 0.5 is
#: the measured break-even: a woken event tick costs ~1.5x a dense tick
#: (due/heap consumption, next_wake, subscriber scans), so skipping
#: fewer than half the components no longer pays for the scheduling ...
HYBRID_HOT_FRACTION = 0.5
#: ... until this many consecutive cycles without channel movement
#: signal a quiet span worth fast-forwarding, which flips it back
HYBRID_QUIET_EXIT = 4
#: after a dense span ends in a quiet spell, the workload usually
#: resumes hot once the quiet passes (a DRAM miss in a busy phase):
#: a shortened probe window re-enters dense mode quickly. The bias is
#: cleared by two consecutive completed windows below the hot fraction
#: (one cold window is usually just the pipeline refilling after a
#: fast-forward; two mean the phase really changed).
HYBRID_WINDOW_BIASED = 16

_sim_index_of = attrgetter("_sim_index")


def _merge_by_index(hot, extra):
    """Merge two ``_sim_index``-sorted component lists (registration
    order is preserved for deterministic trace/obs output)."""
    out = []
    i = j = 0
    nhot, nextra = len(hot), len(extra)
    while i < nhot and j < nextra:
        if hot[i]._sim_index <= extra[j]._sim_index:
            out.append(hot[i])
            i += 1
        else:
            out.append(extra[j])
            j += 1
    out.extend(hot[i:])
    out.extend(extra[j:])
    return out

#: cycles of total inactivity tolerated before declaring deadlock; must
#: exceed the worst-case quiet period of any component (DRAM latency).
DEADLOCK_WINDOW = 2048

#: cycles without ANY channel movement tolerated even while components
#: report busy — catches livelocks where stalled units retry forever
#: (e.g. a task-queue-full circular wait in deep recursion).
STALL_WINDOW = 32768

ENGINES = ("event", "dense", "compiled")

#: upper bound on recorded movement-log entries (`repro diff` first-
#: divergence reporting); beyond this the log stops growing and the
#: divergence is reported as "past the recorded window"
MOVEMENT_LOG_CAP = 1_000_000


class Simulator:
    """Owns the clock, all components and all channels."""

    def __init__(self, name: str = "sim", engine: str = "event"):
        if engine not in ENGINES:
            raise SimulationError(
                f"unknown engine {engine!r} (expected one of {ENGINES})")
        self.name = name
        self.engine = engine
        self.cycle = 0
        self.components: List[Component] = []
        self.channels: List[Channel] = []
        self._idle_cycles = 0
        self._quiet_cycles = 0  # no channel movement, busy or not
        self._activity_flag = False
        #: optional per-cycle sampler (repro.obs.Observer); None keeps the
        #: hot loop at a single pointer test per cycle
        self.observer = None
        #: optional host-time attribution (repro.telemetry.HostProfiler);
        #: None keeps both engines' commit paths at one pointer test per
        #: cycle — sim cycles are bit-identical either way
        self.host_profile = None
        #: optional movement trace for differential debugging: when set to
        #: a list, every cycle with channel movement appends
        #: ``(cycle, (sorted channel names...))`` — identical across
        #: engines, so `repro diff` can report the first divergent cycle
        self._movement_log = None
        #: why the compiled engine fell back to the event engine on the
        #: last run (None = ran compiled, or engine != "compiled")
        self.compiled_fallback = None
        # -- event-engine state ------------------------------------------
        #: channels with a pending push/pop this cycle (self-registered)
        self._dirty_channels: List[Channel] = []
        #: components due on the very next cycle — the common case, kept
        #: out of the heap so steady-state scheduling is list appends
        self._due_list: List[Component] = []
        self._heap: List[tuple] = []          # (wake_cycle, component index)
        #: the *hot set*: components ticked unconditionally every cycle —
        #: dense-fallback components plus event-aware ones that kept
        #: re-arming for the next cycle. Hot components carry the HOT
        #: wake sentinel so commit-time subscriber scans never re-enqueue
        #: them; membership changes are compacted lazily.
        self._hot_list: List[Component] = []
        self._hot_stale = False
        #: adaptive dense fallback (see HYBRID_*): currently stepping
        #: densely because event scheduling was pure overhead
        self._dense_mode = False
        self._win_cycles = 0                  # ticks in the current window
        self._win_woken = 0                   # components woken in it
        self._win_limit = HYBRID_WINDOW       # shortened while biased
        self._win_cold = 0                    # consecutive cold windows
        self._bias_spans = 0                  # fast-forwards while biased
        self._finalized_shape = (-1, -1)      # (n components, n channels)
        # -- host wall-clock accounting ----------------------------------
        self.host_seconds = 0.0
        self._cycles_simulated = 0
        self._ticks_executed = 0
        self._component_ticks = 0
        self._fast_forwarded_cycles = 0
        self._dense_fallback_cycles = 0

    # -- construction -----------------------------------------------------

    def add_component(self, component: Component) -> Component:
        component.sim = self
        component._sim_index = len(self.components)
        component._wake_cycle = NEVER
        component._hot = False
        component._hot_streak = 0
        self.components.append(component)
        return component

    def add_channel(self, name: str, capacity: int = 2) -> Channel:
        channel = Channel(name, capacity)
        channel.sim = self
        self.channels.append(channel)
        return channel

    def attach_observer(self, observer):
        """Install a per-cycle sampler (see :mod:`repro.obs`)."""
        self.observer = observer
        return observer

    def enable_movement_log(self) -> list:
        """Record ``(cycle, (sorted channel names...))`` for every cycle
        with committed channel movement. Bit-identical across all three
        engines, so two logs diverge exactly at the first cycle two runs
        disagree — ``repro diff`` uses this to attribute a divergence to
        a channel and its driving component. Capped at
        :data:`MOVEMENT_LOG_CAP` entries."""
        if self._movement_log is None:
            self._movement_log = []
        return self._movement_log

    def enable_host_profile(self, profiler=None):
        """Install per-component-class host-time attribution (see
        :mod:`repro.telemetry.hostprof`). Call after construction is
        complete — the profiler wraps the components registered so far."""
        from repro.telemetry.hostprof import HostProfiler

        profiler = profiler or HostProfiler()
        return profiler.install(self)

    # -- clock ---------------------------------------------------------------

    def note_activity(self):
        """Components call this when they make internal progress that does
        not show up as channel traffic (e.g. register-only dataflow firings),
        so livelock detection doesn't misfire on long compute loops."""
        self._activity_flag = True

    def tick(self):
        """Advance one cycle densely: all components observe start-of-cycle
        channel state, then every channel commits its handshake. This is
        the oracle step — always correct for either engine (over-waking a
        quiescent component is a no-op)."""
        executed = self.cycle
        components = self.components
        for component in components:
            component.tick(executed)
        self._ticks_executed += 1
        self._component_ticks += len(components)
        moved = False
        profile = self.host_profile
        log = self._movement_log
        if log is not None:
            names = []
            for channel in self.channels:
                if channel.commit():
                    moved = True
                    names.append(channel.name)
            if names and len(log) < MOVEMENT_LOG_CAP:
                log.append((executed, tuple(sorted(names))))
        elif profile is None:
            for channel in self.channels:
                if channel.commit():
                    moved = True
        else:
            t0 = time.perf_counter_ns()
            for channel in self.channels:
                if channel.commit():
                    moved = True
            profile.commit_ns += time.perf_counter_ns() - t0
        self._dirty_channels.clear()
        self.cycle += 1
        self._account(moved)
        if self.observer is not None:
            self.observer.on_cycle(self, executed)

    def _account(self, moved: bool):
        """Shared post-commit bookkeeping for both engines."""
        if moved or self._activity_flag:
            self._quiet_cycles = 0
        else:
            self._quiet_cycles += 1
        self._activity_flag = False
        if moved or any(c.is_busy() for c in self.components):
            self._idle_cycles = 0
        else:
            self._idle_cycles += 1

    def run(self, done: Callable[[], bool], max_cycles: int = 10_000_000) -> int:
        """Run until ``done()`` is true; returns the cycle count.

        ``done`` must be a pure function of simulation state (the event
        engine only evaluates it when state can have changed). Raises
        :class:`DeadlockError` if nothing moves for a full inactivity
        window, and :class:`SimulationError` on timeout.
        """
        start = self.cycle
        t0 = time.perf_counter()
        try:
            if self.engine == "dense":
                self._run_dense(done, start, max_cycles)
            elif self.engine == "compiled":
                self._run_compiled(done, start, max_cycles)
            else:
                self._run_event(done, start, max_cycles)
        finally:
            elapsed = time.perf_counter() - t0
            self.host_seconds += elapsed
            self._cycles_simulated += self.cycle - start
            if self.host_profile is not None:
                self.host_profile.wall_ns += int(elapsed * 1e9)
        return self.cycle - start

    def _check_stalls(self):
        if self._idle_cycles > DEADLOCK_WINDOW:
            raise DeadlockError(self.cycle, self._describe_stall(),
                                postmortem=self.postmortem())
        if self._quiet_cycles > STALL_WINDOW:
            raise DeadlockError(
                self.cycle,
                "components busy but no channel movement (livelock — "
                "likely a task-queue-full circular wait; increase "
                "queue_depth). " + self._describe_stall(),
                postmortem=self.postmortem())

    def _run_dense(self, done, start, max_cycles):
        # hoist the per-cycle lookups out of the loop: the dense engine
        # runs this pair once per simulated cycle
        tick = self.tick
        check = self._check_stalls
        limit = start + max_cycles
        while not done():
            if self.cycle >= limit:
                raise SimulationError(
                    f"simulation exceeded {max_cycles} cycles without finishing")
            tick()
            check()

    # -- the compiled kernel -------------------------------------------------

    def _run_compiled(self, done, start, max_cycles):
        """Run the design through its generated per-design kernel.

        The codegen pass lives in :mod:`repro.sim.compile`; designs or
        instrumentation it cannot specialize (observers, host profiling,
        value probes, unit traces, unrecognized component classes) fall
        back to the event engine — still bit-identical, just slower —
        with the reason recorded in :attr:`compiled_fallback`."""
        from repro.sim.compile import prepare_kernel

        kernel, reason = prepare_kernel(self)
        if kernel is None:
            self.compiled_fallback = reason
            self._run_event(done, start, max_cycles)
            return
        self.compiled_fallback = None
        kernel(self, done, start, max_cycles, self._movement_log)

    # -- the event-driven kernel -------------------------------------------

    def _finalize_event(self):
        """(Re)build the channel-subscription map. A component whose
        sensitivity() is None — or that watches a channel this simulator
        does not own — runs in dense-fallback mode: it joins the hot set
        permanently and is ticked every cycle without ever being
        re-enqueued. Subscriber lists are deduplicated so a channel named
        twice in a sensitivity set wakes its component once."""
        for channel in self.channels:
            channel._subscribers = []
        hot: List[Component] = []
        for component in self.components:
            component._hot_streak = 0
            if component._wake_cycle == HOT:
                # hot under a previous topology: renormalise so the
                # universal first wake below can reach it again
                component._wake_cycle = NEVER
            channels = component.sensitivity()
            aware = channels is not None
            if aware:
                deduped = []
                for channel in channels:
                    if channel not in deduped:
                        deduped.append(channel)
                if any(ch.sim is not self for ch in deduped):
                    aware = False
            if not aware:
                component._event_aware = False
                component._hot = True
                component._wake_cycle = HOT
                hot.append(component)
                continue
            component._event_aware = True
            component._hot = False
            for channel in deduped:
                channel._subscribers.append(component)
        self._hot_list = hot  # components iterated in _sim_index order
        self._hot_stale = False
        self._finalized_shape = (len(self.components), len(self.channels))

    def _next_event_cycle(self) -> Optional[int]:
        """Earliest scheduled wake, discarding stale heap entries."""
        heap = self._heap
        components = self.components
        while heap:
            cyc, idx = heap[0]
            if components[idx]._wake_cycle == cyc:
                return cyc
            heapq.heappop(heap)
        return None

    def _tick_event(self):
        """One event-driven cycle: tick the hot set plus the woken set,
        commit the dirty channels, wake their subscribers.

        Hot components (steadily active — dense-fallback components, or
        event-aware ones that kept re-arming for the very next cycle)
        are ticked straight off ``_hot_list`` with no per-cycle
        enqueue/dequeue, no sort and no subscriber re-wakes: exactly the
        dense engine's cost for the components that behave densely.
        """
        executed = self.cycle
        next_cycle = executed + 1
        heap = self._heap
        components = self.components
        hot = self._hot_list
        # consume the due list and any due heap entries in one pass; the
        # _wake_cycle check drops stale heap entries and deduplicates
        # components present in both
        extra = []
        if self._due_list:
            for component in self._due_list:
                if component._wake_cycle == executed:
                    component._wake_cycle = NEVER
                    extra.append(component)
            self._due_list = []
        while heap and heap[0][0] <= executed:
            cyc, idx = heapq.heappop(heap)
            component = components[idx]
            if component._wake_cycle == cyc:
                component._wake_cycle = NEVER
                extra.append(component)
        if extra:
            # tick order never changes behaviour (two-phase clock), but
            # keep registration order for determinism of trace/obs output
            if len(extra) > 1:
                extra.sort(key=_sim_index_of)
            woken = _merge_by_index(hot, extra) if hot else extra
        else:
            woken = hot
        due = self._due_list
        for component in woken:
            component.tick(executed)
            if not component._event_aware:
                continue  # permanently hot: the dense fallback
            wake = component.next_wake(executed)
            if component._hot:
                if wake > next_cycle:
                    # cools off: leave the hot set and park on the timer
                    component._hot = False
                    component._hot_streak = 0
                    self._hot_stale = True
                    if wake < NEVER:
                        component._wake_cycle = wake
                        heapq.heappush(heap, (wake, component._sim_index))
                    else:
                        component._wake_cycle = NEVER
            elif wake <= next_cycle:
                streak = component._hot_streak + 1
                if streak >= HOT_STREAK:
                    # steadily active: promote into the hot set
                    component._hot = True
                    component._hot_streak = 0
                    component._wake_cycle = HOT
                    self._hot_list.append(component)
                    self._hot_stale = True  # restore _sim_index order
                else:
                    component._hot_streak = streak
                    if next_cycle < component._wake_cycle:
                        component._wake_cycle = next_cycle
                        due.append(component)
            else:
                component._hot_streak = 0
                if wake < NEVER and wake < component._wake_cycle:
                    component._wake_cycle = wake
                    heapq.heappush(heap, (wake, component._sim_index))
        self._ticks_executed += 1
        nwoken = len(woken)
        self._component_ticks += nwoken
        # adaptive dense fallback: sample the waking ratio. A window only
        # fills when no fast-forward happened inside it (_fast_forward
        # resets the counters), so a full near-universal window means the
        # wake machinery is pure overhead — step densely until a quiet
        # span reappears.
        wc = self._win_cycles + 1
        if wc >= self._win_limit:
            if (self._win_woken + nwoken
                    >= HYBRID_HOT_FRACTION * wc * len(components)):
                self._dense_mode = True
                self._win_cold = 0
            else:
                self._win_cold += 1
                if self._win_cold >= 2:  # phase change: clear the bias
                    self._win_limit = HYBRID_WINDOW
            self._win_cycles = 0
            self._win_woken = 0
        else:
            self._win_cycles = wc
            self._win_woken += nwoken
        if self._hot_stale:
            # drop demoted members and restore registration order after
            # promotions appended at the tail (rare; timsort on the
            # nearly-sorted list is effectively linear). Compacting now —
            # not lazily at the next tick — keeps a stale-empty hot list
            # from blocking quiescent fast-forward for a cycle.
            self._hot_list = sorted(
                (c for c in self._hot_list if c._hot), key=_sim_index_of)
            self._hot_stale = False

        moved = False
        if self._dirty_channels:
            profile = self.host_profile
            log = self._movement_log
            names = None if log is None else []
            t0 = 0 if profile is None else time.perf_counter_ns()
            dirty = self._dirty_channels
            self._dirty_channels = []
            for channel in dirty:
                if channel.commit():
                    moved = True
                    if names is not None:
                        names.append(channel.name)
                    for subscriber in channel._subscribers:
                        # hot subscribers carry the HOT sentinel, so this
                        # wake test skips them without a re-enqueue
                        if next_cycle < subscriber._wake_cycle:
                            subscriber._wake_cycle = next_cycle
                            due.append(subscriber)
            if profile is not None:
                profile.commit_ns += time.perf_counter_ns() - t0
            if names and len(log) < MOVEMENT_LOG_CAP:
                log.append((executed, tuple(sorted(names))))
        self.cycle = next_cycle
        self._account(moved)
        if self.observer is not None:
            self.observer.on_cycle(self, executed)

    def _fast_forward(self, start, max_cycles):
        """The wake set is empty and no channel is pending: nothing can
        change until the next armed timer. Jump the clock there in one
        step, stopping early at any deadlock/livelock/timeout boundary so
        those still fire at exactly the dense engine's cycle."""
        target = self._next_event_cycle()
        limit = start + max_cycles  # timeout boundary (checked at loop top)
        target = limit if target is None else min(target, limit)
        # during the span nothing moves and no state changes, so the
        # inactivity counters advance linearly — stop where they trip
        busy = any(c.is_busy() for c in self.components)
        if not busy:
            target = min(target,
                         self.cycle + DEADLOCK_WINDOW + 1 - self._idle_cycles)
        target = min(target,
                     self.cycle + STALL_WINDOW + 1 - self._quiet_cycles)
        span = target - self.cycle
        if span <= 0:  # a wake is due right now — run a normal cycle
            self._tick_event()
            return
        # a quiet span proves the workload is not always-hot right now:
        # restart the dense-fallback sampling window
        self._win_cycles = 0
        self._win_woken = 0
        first_skipped = self.cycle
        self.cycle = target
        self._quiet_cycles += span
        if not busy:
            self._idle_cycles += span
        self._fast_forwarded_cycles += span
        if self.observer is not None:
            synth = getattr(self.observer, "on_quiet_span", None)
            if synth is not None:
                synth(self, first_skipped, span)
            else:  # third-party observer: exact per-cycle replay
                for cyc in range(first_skipped, target):
                    self.observer.on_cycle(self, cyc)

    def _wake_all(self):
        """Universal wake: schedule every non-hot component for the
        current cycle and drop the (now stale) timer heap. Used at run()
        entry — captures externally staged pushes (the host spawn) and
        matches the dense engine's universal first tick — and when a
        dense-fallback span ends, since dense stepping keeps no wake
        bookkeeping. Over-waking a quiescent component is a no-op, so
        this is always safe; timers re-arm via next_wake() after the
        woken tick."""
        self._heap.clear()
        del self._due_list[:]
        cycle = self.cycle
        due = self._due_list
        for component in self.components:
            if not component._hot:
                component._wake_cycle = cycle
                due.append(component)

    def _run_event(self, done, start, max_cycles):
        if self._finalized_shape != (len(self.components), len(self.channels)):
            self._finalize_event()
        self._wake_all()
        tick = self._tick_event
        dense_tick = self.tick
        check = self._check_stalls
        limit = start + max_cycles
        while not done():
            if self.cycle >= limit:
                raise SimulationError(
                    f"simulation exceeded {max_cycles} cycles without finishing")
            if self._dense_mode:
                # always-hot fallback: the oracle step, zero scheduling
                dense_tick()
                self._dense_fallback_cycles += 1
                if self._quiet_cycles >= HYBRID_QUIET_EXIT:
                    # activity dried up — back to event stepping, which
                    # can fast-forward the quiet span; bias the sampler
                    # so the hot phase re-enters dense quickly after it
                    self._dense_mode = False
                    self._win_limit = HYBRID_WINDOW_BIASED
                    self._win_cold = 0
                    self._wake_all()
            elif (self._hot_list or self._due_list or self._dirty_channels
                    or self._next_event_cycle() == self.cycle):
                tick()
            else:
                skipped = self._fast_forwarded_cycles
                self._fast_forward(start, max_cycles)
                if (self._win_limit == HYBRID_WINDOW_BIASED
                        and self._fast_forwarded_cycles != skipped):
                    # hot-phase bias: the quiet span is over, resume
                    # dense stepping straight away — except every 8th
                    # span, which runs the probe windows instead so a
                    # real phase change can still clear the bias
                    self._bias_spans += 1
                    if self._bias_spans & 7:
                        self._dense_mode = True
            check()

    def postmortem(self) -> dict:
        """Per-component stall attribution plus stuck-channel inventory —
        the deadlock post-mortem attached to :class:`DeadlockError`."""
        from repro.obs.observer import stall_snapshot

        return stall_snapshot(self)

    def _describe_stall(self) -> str:
        from repro.obs.observer import render_stall_snapshot

        return render_stall_snapshot(self.postmortem())

    # -- reporting --------------------------------------------------------

    def engine_stats(self) -> Dict[str, object]:
        """Host-side performance of the simulation itself (never part of
        the bit-identical architectural stats)."""
        seconds = self.host_seconds
        stats = {
            "name": self.engine,
            "host_seconds": round(seconds, 6),
            "sim_cycles_per_host_second":
                round(self._cycles_simulated / seconds) if seconds > 0 else None,
            "cycles_simulated": self._cycles_simulated,
            "ticks_executed": self._ticks_executed,
            "component_ticks": self._component_ticks,
            "fast_forwarded_cycles": self._fast_forwarded_cycles,
            "dense_fallback_cycles": self._dense_fallback_cycles,
        }
        if self.engine == "compiled":
            stats["compiled_fallback"] = self.compiled_fallback
        return stats

    def stats(self) -> Dict[str, dict]:
        """Architectural stats plus engine metadata.

        Every component is reported (even when its own counters are empty
        — its channels may still have moved), alongside the unconditional
        ``cycles`` and ``engine`` keys. Everything except ``engine`` is
        bit-identical across engines.
        """
        out: Dict[str, dict] = {
            "cycles": self.cycle,
            "engine": self.engine_stats(),
        }
        for component in self.components:
            out[component.name] = component.stats()
        channels = {
            ch.name: {"pushed": ch.total_pushed, "popped": ch.total_popped,
                      "capacity": ch.capacity, "occupancy": ch.occupancy}
            for ch in self.channels if ch.total_pushed or ch.total_popped
        }
        if channels:
            out["channels"] = channels
        return out

    def __repr__(self):
        return (f"<Simulator {self.name} engine={self.engine} "
                f"cycle={self.cycle} {len(self.components)} components>")
