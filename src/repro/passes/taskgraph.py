"""Task graph: the architecture blueprint extracted from parallel IR.

Stage 1 of TAPAS (paper §III-A, Fig 9) turns Tapir markers into an explicit
graph of *static tasks*. Each task becomes one task unit in the generated
accelerator; spawn edges become the detach/sync wiring between units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Call, Detach, Load, Store
from repro.ir.values import Value

FUNCTION_ROOT = "function"
DETACHED = "detached"


@dataclass
class DirectSpawn:
    """A detach whose region is just ``call f(args) [; store result]`` —
    lowered to a direct spawn of ``f``'s task unit instead of an
    intermediate unit. ``ret_ptr`` (if any) is where the child's return
    value is written on completion, the shared-cache return path of §IV-C."""

    detach: Detach
    callee: Function
    args: List[Value]
    ret_ptr: Optional[Value] = None


class Task:
    """A static task: a scoped region of the program dependence graph."""

    def __init__(self, sid: int, name: str, function: Function,
                 entry: BasicBlock, kind: str):
        self.sid = sid
        self.name = name
        self.function = function
        self.entry = entry
        self.kind = kind
        #: blocks owned by this task (nested child regions excluded)
        self.blocks: List[BasicBlock] = []
        self.parent: Optional[Task] = None
        #: nested detached-region child tasks
        self.children: List[Task] = []
        #: spawn site -> child Task (for region spawns)
        self.region_spawns: Dict[Detach, "Task"] = {}
        #: spawn site -> DirectSpawn (for function spawns)
        self.direct_spawns: Dict[Detach, DirectSpawn] = {}
        #: ordered live-in values = Args RAM layout of the task unit
        self.args: List[Value] = []
        #: serial (blocking) calls made from this task's region
        self.calls: List[Call] = []

    # -- Table II style metrics ------------------------------------------------

    def instruction_count(self) -> int:
        """Per-task #Inst (Table II): instructions in this task's region."""
        return sum(len(b.instructions) for b in self.blocks)

    def memory_op_count(self) -> int:
        """Per-task #Mem (Table II): loads/stores that reach real memory
        (register-file accesses to scalar allocas are excluded)."""
        from repro.passes.dataflow_graph import is_register_access

        count = 0
        for block in self.blocks:
            for inst in block.instructions:
                if isinstance(inst, (Load, Store)) and not is_register_access(inst):
                    count += 1
        return count

    def spawn_sites(self) -> List[Detach]:
        return list(self.region_spawns) + list(self.direct_spawns)

    def spawns_anything(self) -> bool:
        return bool(self.region_spawns or self.direct_spawns or self.calls)

    def is_recursive(self) -> bool:
        """True if this task (transitively through direct spawns/calls)
        can spawn its own function again — mergesort/fib style."""
        graph = self.graph
        if graph is None:
            return False
        return graph.is_recursive_function(self.function)

    graph: Optional["TaskGraph"] = None

    def __repr__(self):
        return f"<Task sid={self.sid} {self.name} [{self.kind}]>"


class TaskGraph:
    """All static tasks of a module plus spawn/call edges between them."""

    def __init__(self, module):
        self.module = module
        self.tasks: List[Task] = []
        self.root_for_function: Dict[Function, Task] = {}
        self._sid_counter = 0
        #: block -> owning task, rebuilt lazily when the graph changes
        self._owner_index: Dict[BasicBlock, Task] = {}
        self._owner_index_size = -1

    def new_task(self, name: str, function: Function, entry: BasicBlock,
                 kind: str) -> Task:
        task = Task(self._sid_counter, name, function, entry, kind)
        task.graph = self
        self._sid_counter += 1
        self.tasks.append(task)
        if kind == FUNCTION_ROOT:
            self.root_for_function[function] = task
        return task

    def task_by_sid(self, sid: int) -> Task:
        return self.tasks[sid]

    def task_owning_block(self, block: BasicBlock) -> Optional[Task]:
        total = sum(len(t.blocks) for t in self.tasks)
        if total != self._owner_index_size:
            self._owner_index = {b: t for t in self.tasks for b in t.blocks}
            self._owner_index_size = total
        return self._owner_index.get(block)

    # -- graph-level queries -----------------------------------------------

    def spawn_targets(self, task: Task) -> List[Task]:
        """Tasks that ``task`` can spawn (region children + function roots
        of direct spawns), plus callees of serial calls."""
        targets = list(task.region_spawns.values())
        for spawn in task.direct_spawns.values():
            targets.append(self.root_for_function[spawn.callee])
        for call in task.calls:
            targets.append(self.root_for_function[call.callee])
        return targets

    def function_edges(self) -> Dict[Function, List[Function]]:
        """Function-level call/spawn graph, for recursion detection."""
        edges: Dict[Function, List[Function]] = {f: [] for f in self.module.functions}
        for task in self.tasks:
            for spawn in task.direct_spawns.values():
                edges[task.function].append(spawn.callee)
            for call in task.calls:
                edges[task.function].append(call.callee)
        return edges

    def is_recursive_function(self, function: Function) -> bool:
        """True if ``function`` can transitively reach itself."""
        edges = self.function_edges()
        seen = set()
        stack = list(edges.get(function, []))
        while stack:
            current = stack.pop()
            if current is function:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(edges.get(current, []))
        return False

    def spawn_closure(self, task: Task) -> List[Task]:
        """``task`` plus every task transitively reachable through spawns
        and calls — the set of tasks a single spawn of ``task`` may put in
        flight."""
        seen: Set[Task] = set()
        stack = [task]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.spawn_targets(current))
        return sorted(seen, key=lambda t: t.sid)

    def _detach_target(self, task: Task, detach: Detach) -> Task:
        child = task.region_spawns.get(detach)
        if child is not None:
            return child
        return self.root_for_function[task.direct_spawns[detach].callee]

    def unsynced_sibling_spawns(self, task: Task, detach: Detach) -> List[Detach]:
        """Spawn sites of ``task`` reachable from ``detach``'s continuation
        without crossing a ``sync`` — their subtrees may run in parallel
        with ``detach``'s subtree. Includes ``detach`` itself when a loop
        re-reaches it (self-parallel spawns, e.g. cilk_for bodies)."""
        from repro.ir.instructions import Sync

        owned = set(task.blocks)
        found: List[Detach] = []
        seen: Set[BasicBlock] = set()
        stack = [detach.continuation]
        while stack:
            block = stack.pop()
            if block in seen or block not in owned:
                continue
            seen.add(block)
            term = block.terminator
            if term is None or isinstance(term, Sync):
                continue  # sync joins every outstanding child: stop here
            if isinstance(term, Detach):
                found.append(term)
                stack.append(term.continuation)
                continue
            stack.extend(term.successors())
        return found

    def mhp_pairs(self) -> List[Tuple[Task, Task]]:
        """Task-level may-happen-in-parallel pairs, derived from the
        series-parallel spawn/sync structure. A pair ``(a, b)`` (with
        ``a.sid <= b.sid``; ``a is b`` means self-parallelism) says
        instances of the two static tasks may execute concurrently.
        The fine-grained race analysis in :mod:`repro.analysis` refines
        this to instruction pairs."""
        pairs: Set[Tuple[int, int]] = set()

        def add(a: Task, b: Task):
            pairs.add((min(a.sid, b.sid), max(a.sid, b.sid)))

        for task in self.tasks:
            for detach in task.spawn_sites():
                subtree = self.spawn_closure(self._detach_target(task, detach))
                # the spawning task keeps running in parallel with the child
                for spawned in subtree:
                    add(task, spawned)
                for sibling in self.unsynced_sibling_spawns(task, detach):
                    sibling_subtree = self.spawn_closure(
                        self._detach_target(task, sibling))
                    for a in subtree:
                        for b in sibling_subtree:
                            add(a, b)
        return [(self.tasks[a], self.tasks[b]) for a, b in sorted(pairs)]

    def describe(self) -> str:
        """Human-readable summary used by examples and docs."""
        lines = [f"task graph for module '{self.module.name}':"]
        for task in self.tasks:
            lines.append(
                f"  T{task.sid} {task.name} [{task.kind}] "
                f"insts={task.instruction_count()} mem={task.memory_op_count()} "
                f"args={len(task.args)}")
            for detach, child in task.region_spawns.items():
                lines.append(f"    spawns T{child.sid} ({child.name})")
            for spawn in task.direct_spawns.values():
                root = self.root_for_function[spawn.callee]
                ret = " ->ret_ptr" if spawn.ret_ptr is not None else ""
                lines.append(f"    spawns T{root.sid} (@{spawn.callee.name}){ret}")
            for call in task.calls:
                root = self.root_for_function[call.callee]
                lines.append(f"    calls  T{root.sid} (@{call.callee.name})")
        pairs = self.mhp_pairs()
        if pairs:
            rendered = ", ".join(f"(T{a.sid},T{b.sid})" for a, b in pairs)
            lines.append(f"  may-happen-in-parallel: {rendered}")
        return "\n".join(lines)

    def __repr__(self):
        return f"<TaskGraph {self.module.name}: {len(self.tasks)} tasks>"
