"""The persistent run registry: every bench/sweep/run leaves a record.

Each recorded run appends one JSON line to
``results/history/runs.jsonl`` (override the directory with
``$REPRO_HISTORY_DIR``): git revision, config fingerprint, engine and
the key metrics — the seed of a continuous performance trajectory that
survives across PRs. ``repro history`` lists the registry, diffs the
latest runs of each series against their predecessors, and flags
regressions beyond a configurable drift threshold.

A *series* is the stable identity of a measurement:
``(kind, name, engine, config fingerprint)`` — two records compare only
when they measured the same thing under the same configuration. Records
are append-only and self-describing (``schema`` per line), and the
loader skips corrupt lines instead of dying: a half-written tail from a
killed run costs one record, not the registry.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro import __version__
from repro.exp.cache import canonical_json

HISTORY_SCHEMA = 1

#: environment override for the registry directory
HISTORY_DIR_ENV = "REPRO_HISTORY_DIR"

#: the single append-only registry file inside the history directory
HISTORY_FILE = "runs.jsonl"

#: keys every history record carries (value may be None)
HISTORY_RECORD_KEYS = (
    "schema", "ts", "kind", "name", "engine", "git_rev", "repro_version",
    "fingerprint", "cycles", "host_seconds", "sim_cycles_per_host_second",
    "config", "metrics",
)

#: record fields a regression check may compare (higher == worse for
#: cycles/host_seconds; higher == better for throughput)
DRIFT_METRICS = ("cycles", "host_seconds", "sim_cycles_per_host_second")


def default_history_dir() -> Path:
    env = os.environ.get(HISTORY_DIR_ENV)
    if env:
        return Path(env)
    return Path("results") / "history"


_git_rev: Optional[str] = None
_git_rev_known = False


def git_rev() -> Optional[str]:
    """Current ``HEAD`` short hash, or None outside a git checkout.
    Cached per process — one subprocess, many records."""
    global _git_rev, _git_rev_known
    if not _git_rev_known:
        try:
            out = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True, text=True, timeout=10)
            _git_rev = out.stdout.strip() if out.returncode == 0 else None
        except (OSError, subprocess.SubprocessError):
            _git_rev = None
        _git_rev_known = True
    return _git_rev


def config_fingerprint(config: Any) -> Optional[str]:
    """Short stable hash of a JSON-safe config summary (12 hex chars —
    plenty for a registry that holds thousands of series, and short
    enough to read in a table)."""
    if config is None:
        return None
    payload = canonical_json(config)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


def run_record(kind: str, name: str, *, engine: Optional[str] = None,
               cycles: Optional[int] = None,
               host_seconds: Optional[float] = None,
               sim_cycles_per_host_second: Optional[float] = None,
               config: Optional[dict] = None,
               metrics: Optional[dict] = None,
               ts: Optional[float] = None) -> Dict[str, Any]:
    """One schema'd registry record. ``kind`` is the producer class
    (``run``/``sweep``/``bench``), ``name`` the workload or bench."""
    record = {
        "schema": HISTORY_SCHEMA,
        "ts": round(time.time() if ts is None else ts, 3),
        "kind": kind,
        "name": name,
        "engine": engine,
        "git_rev": git_rev(),
        "repro_version": __version__,
        "fingerprint": config_fingerprint(config),
        "cycles": cycles,
        "host_seconds": (round(host_seconds, 6)
                         if host_seconds is not None else None),
        "sim_cycles_per_host_second": sim_cycles_per_host_second,
        "config": config,
        "metrics": metrics or {},
    }
    missing = [key for key in HISTORY_RECORD_KEYS if key not in record]
    assert not missing, f"history record missing {missing}"
    return record


def append_run(record: Dict[str, Any],
               directory: Union[str, Path, None] = None) -> Dict[str, Any]:
    """Append one record to the registry; returns the pointer
    ``{"path", "seq"}`` that bench documents embed (``seq`` is the
    0-based line number of the appended record)."""
    directory = Path(directory) if directory is not None \
        else default_history_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / HISTORY_FILE
    line = json.dumps(record, sort_keys=True)
    # count lines before appending so the pointer names the new record;
    # the write itself stays a single append
    seq = 0
    if path.exists():
        with open(path, "r", encoding="utf-8") as handle:
            seq = sum(1 for _ in handle)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")
    return {"path": str(path), "seq": seq}


def load_history(directory: Union[str, Path, None] = None
                 ) -> List[Dict[str, Any]]:
    """Every readable record in file order (oldest first). Corrupt or
    foreign-schema lines are skipped, never fatal."""
    directory = Path(directory) if directory is not None \
        else default_history_dir()
    path = directory / HISTORY_FILE
    records: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict) \
                        and record.get("schema") == HISTORY_SCHEMA:
                    records.append(record)
    except FileNotFoundError:
        pass
    return records


def series_key(record: Dict[str, Any]) -> Tuple:
    """The comparison identity of a record."""
    return (record.get("kind"), record.get("name"), record.get("engine"),
            record.get("fingerprint"))


def diff_history(records: List[Dict[str, Any]], last: Optional[int] = None,
                 threshold: float = 0.10,
                 metric: str = "cycles") -> List[Dict[str, Any]]:
    """Compare each series' newest record against its predecessor.

    ``last`` bounds how many of the newest records are candidates for
    the "new" side (None: all); the "old" side is always the closest
    earlier record of the same series. ``threshold`` is the drift
    fraction above which an increase is flagged as a regression
    (improvements are reported with ``regression: False``).
    """
    if metric not in DRIFT_METRICS:
        raise ValueError(
            f"unknown drift metric {metric!r} (have {DRIFT_METRICS})")
    candidates = records if last is None else records[-last:]
    diffs: List[Dict[str, Any]] = []
    seen_new = set()
    for new in reversed(candidates):  # newest first, one diff per series
        key = series_key(new)
        if key in seen_new:
            continue
        seen_new.add(key)
        older = [r for r in records
                 if series_key(r) == key and r is not new
                 and r.get("ts", 0) <= new.get("ts", 0)]
        if not older:
            continue
        old = older[-1]
        new_value, old_value = new.get(metric), old.get(metric)
        if not isinstance(new_value, (int, float)) \
                or not isinstance(old_value, (int, float)) or old_value <= 0:
            continue
        drift = (new_value - old_value) / old_value
        # for throughput-style metrics lower is worse; normalise so a
        # positive drift is always "got worse"
        if metric == "sim_cycles_per_host_second":
            drift = -drift
        diffs.append({
            "kind": new.get("kind"),
            "name": new.get("name"),
            "engine": new.get("engine"),
            "fingerprint": new.get("fingerprint"),
            "metric": metric,
            "old": old_value,
            "new": new_value,
            "drift": round(drift, 6),
            "regression": drift > threshold,
            "old_rev": old.get("git_rev"),
            "new_rev": new.get("git_rev"),
        })
    diffs.reverse()  # back to oldest-first, matching the listing
    return diffs
