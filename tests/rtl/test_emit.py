"""Tests for the Chisel-flavoured RTL emitter."""

from repro.accel import generate
from repro.rtl import LIBRARY, component_for_kind, emit_design, emit_top, emit_txu
from repro.workloads import REGISTRY

from tests.irprograms import build_fib_module, build_matrix_add_module


class TestLibrary:
    def test_every_dataflow_kind_maps_to_a_component(self):
        from repro.rtl.components import KIND_TO_COMPONENT

        for kind, comp in KIND_TO_COMPONENT.items():
            assert comp in LIBRARY, f"{kind} -> {comp} missing from library"

    def test_component_lookup_fallback(self):
        assert component_for_kind("alu").name == "ALU"
        assert component_for_kind("unknown_kind").name == "ALU"


class TestTopLevel:
    def test_matrix_add_top_declares_three_units(self):
        design = generate(build_matrix_add_module())
        top = emit_top(design)
        assert top.count("Module(new TaskUnit(") == 3
        assert "SharedL1cache" in top
        assert "NastiMemSlave" in top

    def test_spawn_wiring_present(self):
        design = generate(build_matrix_add_module())
        top = emit_top(design)
        assert "Task1.io.detach.in <> Task0.io.spawn.out" in top
        assert "Task2.io.detach.in <> Task1.io.spawn.out" in top

    def test_recursive_self_wiring(self):
        design = generate(build_fib_module())
        top = emit_top(design)
        # fib spawns itself: unit 0 wired to its own spawn output
        assert "Task0.io.detach.in <> Task0.io.spawn.out" in top

    def test_queue_depth_parameters_respected(self):
        design = generate(build_fib_module())
        top = emit_top(design, queue_depths={"fib": 128})
        assert "Nt=128" in top


class TestTXU:
    def test_fig6_style_nodes(self):
        design = generate(build_matrix_add_module())
        body = design.compiled[2]  # the add body task
        txu = emit_txu(body)
        assert "Module(new Load(" in txu
        assert "Module(new Store(" in txu
        assert "Module(new ALU(" in txu
        assert ".io.in <> " in txu  # decoupled links

    def test_every_workload_emits(self):
        for w in REGISTRY.all():
            design = generate(w.fresh_module())
            text = emit_design(design)
            assert f"module '{w.name}'" in text
            for ct in design.compiled:
                assert "TXU" in text

    def test_dedup_heterogeneous_units_named(self):
        design = generate(REGISTRY.get("dedup").fresh_module())
        text = emit_design(design)
        assert "CompressChunkTXU" in text
        assert "ProcessChunkTXU" in text
        assert "DedupTXU" in text
