"""Table II: benchmark properties — HLS challenge, memory pattern, and
per-task instruction / memory-operation counts, computed from the
extracted task graphs.

Paper rows: Matrix 49/21, Image 52/25, Saxpy 29/16, Stencil 23/16,
Dedup 180/72 (the largest by far), Mergesort 36/52, Fib 26/19. Exact
counts depend on the frontend's instruction selection; the shape checks
pin the orderings that matter (dedup largest, every benchmark touches
memory, only dedup is irregular).
"""

import sweeplib

from repro.accel import generate
from repro.exp import register_evaluator
from repro.reports import render_table, sweep_record
from repro.workloads import REGISTRY

PAPER = {
    "matrix_add": (49, 21), "image_scale": (52, 25), "saxpy": (29, 16),
    "stencil": (23, 16), "dedup": (180, 72), "mergesort": (36, 52),
    "fibonacci": (26, 19),
}


def _eval_table2(spec):
    workload = REGISTRY.get(spec["workload"])
    design = generate(workload.fresh_module())
    insts = sum(t.instruction_count() for t in design.graph.tasks)
    mems = sum(t.memory_op_count() for t in design.graph.tasks)
    return {
        "challenge": workload.challenge,
        "pattern": workload.memory_pattern,
        "tasks": len(design.graph.tasks),
        "insts": insts,
        "mems": mems,
    }


register_evaluator("table2_properties", _eval_table2,
                   program_text=sweeplib.file_program_text(__file__))


def test_table2_benchmark_properties(benchmark, save_result, save_json,
                                     sweep_runner):
    points = [{"evaluator": "table2_properties", "workload": name}
              for name in REGISTRY.names()]

    def run():
        return sweeplib.run_points(sweep_runner, points)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    data = {record["spec"]["workload"]: record["value"]
            for record in result.records}

    rows = []
    for name in REGISTRY.names():
        d = data[name]
        p_inst, p_mem = PAPER[name]
        rows.append([name, d["challenge"], d["pattern"], d["tasks"],
                     d["insts"], p_inst, d["mems"], p_mem])
    text = render_table(
        ["Name", "HLS Challenge", "Memory", "Tasks", "#Inst", "paper",
         "#Mem", "paper"],
        rows, title="Table II — Benchmark properties")
    save_result("table2_properties", text)
    save_json("table2_properties", [
        sweep_record(record, record["spec"]["workload"],
                     challenge=record["value"]["challenge"],
                     memory_pattern=record["value"]["pattern"],
                     tasks=record["value"]["tasks"],
                     instructions=record["value"]["insts"],
                     memory_ops=record["value"]["mems"],
                     paper_instructions=PAPER[record["spec"]["workload"]][0],
                     paper_memory_ops=PAPER[record["spec"]["workload"]][1])
        for record in result.records], sweep=result.summary)

    # dedup is by far the largest program (paper: 180 insts vs <60)
    insts = {n: data[n]["insts"] for n in data}
    assert insts["dedup"] == max(insts.values())
    # every benchmark touches real memory
    assert all(data[n]["mems"] > 0 for n in data)
    # only dedup is classified irregular
    irregular = [n for n in data if data[n]["pattern"] == "Irregular"]
    assert irregular == ["dedup"]
    # task-graph sizes: nested loops -> 3 units; pipelines -> 3; the
    # recursive pair collapses to 1-2 function tasks
    assert data["matrix_add"]["tasks"] == 3
    assert data["dedup"]["tasks"] == 3
    assert data["fibonacci"]["tasks"] == 1
    assert data["mergesort"]["tasks"] == 2
    # counts land in the paper's order of magnitude (tens of insts)
    for name, d in data.items():
        assert 10 <= d["insts"] <= 320, name
