"""Lint layer: rule registry determinism, fixture programs producing the
expected rule IDs, clean examples staying clean, the synthesis gate, and
the diagnostics JSON round-trip."""

import json
import os

import pytest

from repro.accel import (
    Accelerator,
    AcceleratorConfig,
    TaskUnitParams,
    build_accelerator,
)
from repro.accel.generator import generate
from repro.analysis import lint_design, lint_rules
from repro.analysis.lint import LINT_CODES, SCOPE_DESIGN, SCOPE_NETLIST
from repro.errors import AnalysisError
from repro.frontend import compile_source

EXAMPLES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "..", "..", "examples", "programs")


def _load(fixture):
    with open(os.path.join(EXAMPLES, fixture + ".cilk")) as handle:
        return compile_source(handle.read(), fixture)


def _lint(fixture, entry=None, config=None, netlist=False):
    module = _load(fixture)
    design = generate(module)
    entry = entry or module.functions[0].name
    accelerator = None
    if netlist:
        cfg = config or AcceleratorConfig(analysis_level="none")
        accelerator = Accelerator(design, cfg)
    return lint_design(design, entry=entry, config=config,
                       accelerator=accelerator)


# -- registry ----------------------------------------------------------------

def test_registry_is_sorted_and_complete():
    rules = lint_rules()
    codes = [r.code for r in rules]
    assert codes == sorted(codes)
    assert set(codes) == set(LINT_CODES)


def test_registry_scope_filter():
    design_rules = lint_rules(scope=SCOPE_DESIGN)
    netlist_rules = lint_rules(scope=SCOPE_NETLIST)
    assert all(r.scope == SCOPE_DESIGN for r in design_rules)
    assert all(r.scope == SCOPE_NETLIST for r in netlist_rules)
    assert {r.code for r in design_rules} | {r.code for r in netlist_rules} \
        == set(LINT_CODES)


def test_lint_output_is_deterministic():
    """Two independent runs over the same design render identically, in
    both text and JSON — rule order and diagnostic order are stable."""
    first = _lint("narrow_sum", netlist=True)
    second = _lint("narrow_sum", netlist=True)
    assert first.render_text("narrow_sum") == second.render_text("narrow_sum")
    assert first.render_json("narrow_sum") == second.render_json("narrow_sum")


# -- fixture programs --------------------------------------------------------

def test_narrow_sum_flags_narrowing_opportunities():
    report = _lint("narrow_sum")
    codes = {d.code for d in report.diagnostics}
    assert "TAP-WIDTH-002" in codes
    # narrowing opportunities are informational, never failures
    assert not report.fails("warning")


def test_deadlock_ring_is_certain_deadlock():
    report = _lint("deadlock_ring", entry="pong")
    by_code = {}
    for diag in report.diagnostics:
        by_code.setdefault(diag.code, []).append(diag)
    assert "TAP-NET-004" in by_code
    severities = {d.severity for d in by_code["TAP-NET-004"]}
    # the entry diverges (error); the other ring member is reachable from
    # it (warning)
    assert "error" in severities
    assert report.fails("error")


def test_dead_task_flags_orphan():
    report = _lint("dead_task")  # entry defaults to triple_sum
    dead = [d for d in report.diagnostics if d.code == "TAP-NET-002"]
    assert len(dead) == 1
    assert "orphan" in dead[0].message


def test_under_buffered_queue_escalates_to_warning():
    source = """
func fib(n: i32) -> i32 {
  if (n < 2) { return n; }
  var a: i32 = spawn fib(n - 1);
  var b: i32 = fib(n - 2);
  sync;
  return a + b;
}
"""
    module = compile_source(source, "fib")
    design = generate(module)
    # at the recommended depth the recursion ring is an info
    baseline = lint_design(design, entry="fib")
    ring = [d for d in baseline.diagnostics if d.code == "TAP-NET-003"]
    assert ring and all(d.severity == "info" for d in ring)
    # shrinking the queue below the recommendation is a warning
    config = AcceleratorConfig(analysis_level="none")
    config.unit_params = {
        task.name: TaskUnitParams(ntiles=1, queue_depth=4)
        for task in design.graph.tasks
    }
    shrunk = lint_design(design, entry="fib", config=config)
    ring = [d for d in shrunk.diagnostics if d.code == "TAP-NET-003"]
    assert ring and all(d.severity == "warning" for d in ring)


EXAMPLE_FIXTURES = ["double_all", "fib", "racy_sum", "saxpy"]


@pytest.mark.parametrize("fixture", EXAMPLE_FIXTURES)
def test_clean_examples_stay_clean(fixture):
    """None of the original example programs may produce a lint warning
    or error — only informational notes."""
    report = _lint(fixture, netlist=True)
    noisy = [d for d in report.diagnostics if d.severity != "info"]
    assert noisy == [], [f"{d.code}: {d.message}" for d in noisy]


# -- synthesis gate ----------------------------------------------------------

def test_gate_refuses_deadlock_ring():
    module = _load("deadlock_ring")
    with pytest.raises(AnalysisError, match="TAP-NET-004"):
        build_accelerator(module, AcceleratorConfig(analysis_level="warn"))


def test_gate_level_none_elaborates_anything():
    module = _load("deadlock_ring")
    accel = build_accelerator(module, AcceleratorConfig(analysis_level="none"))
    assert accel.units


def test_gate_passes_clean_program():
    module = _load("narrow_sum")
    accel = build_accelerator(module,
                              AcceleratorConfig(analysis_level="strict"))
    assert accel.units


# -- diagnostics JSON round-trip ---------------------------------------------

def test_lint_json_round_trip():
    report = _lint("deadlock_ring", entry="pong", netlist=True)
    payload = json.loads(report.render_json("deadlock_ring"))
    assert payload["module"] == "deadlock_ring"
    assert payload["summary"]["errors"] >= 1
    flat = payload["diagnostics"]
    assert len(flat) == len(report.diagnostics)
    for raw, diag in zip(flat, report.sorted()):
        assert raw["code"] == diag.code
        assert raw["severity"] == diag.severity
        assert raw["message"] == diag.message
        if diag.function:
            assert raw["function"] == diag.function
        if diag.data:
            assert raw["data"] == diag.data
