"""Task-level microarchitecture: queues, task units, TXUs, spawn network."""

from repro.task.compiled import CallSpec, CompiledTask, SpawnSpec
from repro.task.messages import JOIN_CALL, JOIN_SYNC, JoinMessage, SpawnMessage
from repro.task.network import TaskNetwork
from repro.task.task_queue import (
    COMPLETE,
    EXE,
    FREE,
    READY,
    SYNC,
    TaskEntry,
    TaskQueue,
)
from repro.task.task_unit import TaskUnit
from repro.task.txu import DEFAULT_LATENCIES, Instance, TXUTile

__all__ = [
    "CallSpec", "CompiledTask", "SpawnSpec",
    "JOIN_CALL", "JOIN_SYNC", "JoinMessage", "SpawnMessage",
    "TaskNetwork",
    "COMPLETE", "EXE", "FREE", "READY", "SYNC", "TaskEntry", "TaskQueue",
    "TaskUnit",
    "DEFAULT_LATENCIES", "Instance", "TXUTile",
]
