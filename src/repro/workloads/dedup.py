"""Dedup: the paper's Fig 1 dynamic task pipeline.

Stage 0 (the root) pulls chunks until a dynamic termination sentinel;
stage 1 classifies each chunk (duplicate detection); stage 2 — the
*conditional* stage — compresses only non-duplicate chunks; stage 3
writes the result. Conditional stages and dynamic exit are exactly what
FIFO-based pipeline templates cannot express (paper §IV-B).

A chunk is eight consecutive words. The "compression" is a wide
shift/xor mix over all eight words — intentionally ILP-rich, standing in
for the paper's real compressor, so the TXU dataflow can keep many
independent operations and loads in flight per chunk.
"""

from __future__ import annotations

import random

from repro.ir.types import I32
from repro.workloads.base import PreparedRun, Workload

SENTINEL = -1
DUP_MARKER = -2
CHUNK_WORDS = 8


def _mix(value: int) -> int:
    """Python golden model of the per-word transform (i32 semantics)."""
    from repro.ir.opsem import eval_binop
    from repro.ir.types import I32

    tripled = eval_binop("add", I32, eval_binop("mul", I32, value, 3), 7)
    shifted = eval_binop("ashr", I32, tripled, 3)
    return eval_binop("xor", I32, tripled, shifted)


class Dedup(Workload):
    name = "dedup"
    entry = "dedup"
    challenge = "Task Pipeline"
    memory_pattern = "Irregular"
    paper_tiles = 3  # Table IV

    source = """
    // Stage 2 (conditional): "compress" one 8-word chunk. All eight word
    // transforms are independent -- the dataflow pipeline overlaps them.
    func compress_chunk(data: i32*, out: i32*, i: i32) {
      var b: i32 = i * 8;
      var c0: i32 = (data[b] * 3 + 7);
      var c1: i32 = (data[b + 1] * 3 + 7);
      var c2: i32 = (data[b + 2] * 3 + 7);
      var c3: i32 = (data[b + 3] * 3 + 7);
      var c4: i32 = (data[b + 4] * 3 + 7);
      var c5: i32 = (data[b + 5] * 3 + 7);
      var c6: i32 = (data[b + 6] * 3 + 7);
      var c7: i32 = (data[b + 7] * 3 + 7);
      var m0: i32 = c0 ^ (c0 >> 3);
      var m1: i32 = c1 ^ (c1 >> 3);
      var m2: i32 = c2 ^ (c2 >> 3);
      var m3: i32 = c3 ^ (c3 >> 3);
      var m4: i32 = c4 ^ (c4 >> 3);
      var m5: i32 = c5 ^ (c5 >> 3);
      var m6: i32 = c6 ^ (c6 >> 3);
      var m7: i32 = c7 ^ (c7 >> 3);
      out[i] = m0 ^ m1 ^ m2 ^ m3 ^ m4 ^ m5 ^ m6 ^ m7;
    }

    // Stage 1 + 3: classify a chunk; duplicates skip compression entirely
    // (the conditional stage, paper Fig 1: stage-2 "Conditional &
    // Parallel") and a marker goes straight to the output buffer.
    func process_chunk(data: i32*, out: i32*, i: i32) {
      var dup: i32 = 0;
      if (i > 0) {
        if (data[i * 8] == data[i * 8 - 8]) {
          dup = 1;
        }
      }
      if (dup == 0) {
        spawn compress_chunk(data, out, i);
      } else {
        out[i] = -2;
      }
    }

    // Stage 0: the pipeline driver walks the chunk *headers* (compact
    // metadata, like get_next_chunk reading the chunk table) and spawns
    // stage 1 per chunk. Termination is decided at run time by the
    // sentinel header (paper Fig 1 line 4).
    func dedup(hdr: i32*, data: i32*, out: i32*) {
      var i: i32 = 0;
      while (hdr[i] != -1) {
        spawn process_chunk(data, out, i);
        i = i + 1;
      }
      sync;
    }
    """

    def default_chunks(self, scale: int) -> int:
        return 48 * scale

    @staticmethod
    def golden(chunks):
        out = []
        for i, words in enumerate(chunks):
            if i > 0 and words[0] == chunks[i - 1][0]:
                out.append(DUP_MARKER)
            else:
                from repro.ir.opsem import eval_binop
                from repro.ir.types import I32

                acc = _mix(words[0])
                for w in words[1:]:
                    acc = eval_binop("xor", I32, acc, _mix(w))
                out.append(acc)
        return out

    def prepare(self, memory, scale: int = 1) -> PreparedRun:
        n = self.default_chunks(scale)
        rng = random.Random(23)
        chunks = []
        while len(chunks) < n:
            chunk = [rng.randrange(1, 1 << 20) for _ in range(CHUNK_WORDS)]
            chunks.append(chunk)
            # ~30% duplicated chunks, like a dedup-friendly stream
            while len(chunks) < n and rng.random() < 0.3:
                chunks.append(list(chunk))
        expected = self.golden(chunks)
        flat = [w for chunk in chunks for w in chunk]
        base_hdr = memory.alloc_array(I32, list(range(n)) + [SENTINEL])
        base_data = memory.alloc_array(I32, flat)
        base_out = memory.alloc_array(I32, [0] * n)

        def check(mem, _retval):
            return mem.read_array(base_out, I32, n) == expected

        return PreparedRun(self.entry, [base_hdr, base_data, base_out],
                           check, work_items=n)
