"""Execution tracing: a lightweight event log for debugging and for the
execution-flow figures (paper Fig 5 / Fig 7 style traces).

Besides the human-readable ``detail`` string, events may carry a
machine-readable ``payload`` dict. The task units and TXU tiles use
payloads to record the spawn tree, sync/join points and every shared-
memory access of a run — enough for the dynamic determinacy-race checker
(:mod:`repro.analysis.dynamic`) to reconstruct the happens-before
relation and cross-validate the static analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional


@dataclass
class TraceEvent:
    cycle: int
    source: str
    kind: str
    detail: str
    payload: Optional[dict] = None
    #: global emission order (monotonic even across filtered events)
    seq: int = 0

    def __str__(self):
        return f"[{self.cycle:>8}] {self.source:<20} {self.kind:<10} {self.detail}"


class Trace:
    """Collects events; disabled by default so the hot path stays cheap."""

    def __init__(self, enabled: bool = False,
                 filter_: Optional[Callable[[TraceEvent], bool]] = None):
        self.enabled = enabled
        self.events: List[TraceEvent] = []
        self.filter = filter_
        self._seq = 0

    def emit(self, cycle: int, source: str, kind: str, detail: str = "",
             payload: Optional[dict] = None) -> Optional[TraceEvent]:
        if not self.enabled:
            return None
        event = TraceEvent(cycle, source, kind, detail, payload, self._seq)
        self._seq += 1
        if self.filter is None or self.filter(event):
            self.events.append(event)
        return event

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def race_check(self, graph=None):
        """Run the dynamic determinacy-race checker over this trace.

        Returns the list of observed unordered conflicting access pairs
        (empty for a race-free execution). Requires the trace to have
        been enabled for the whole run. ``graph`` (a TaskGraph) adds
        static provenance to epilogue stores when available."""
        from repro.analysis.dynamic import DynamicRaceChecker

        return DynamicRaceChecker(self, graph).conflicts()

    def render(self, limit: int = 200) -> str:
        lines = [str(e) for e in self.events[:limit]]
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)

    def __len__(self):
        return len(self.events)


#: shared no-op trace used when callers don't supply one
NULL_TRACE = Trace(enabled=False)
