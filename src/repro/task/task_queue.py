"""The task queue: per-unit storage for dynamic task instances (Fig 4/5).

Each entry holds the spawn's Args[] (the Args RAM), the ParentID =
(SID, DyID) used to route the join, the Child# join counter, and the
entry state. The queue also stores suspended execution state: when an
instance reaches a ``sync`` with outstanding children it vacates its TXU
slot (state SYNC) and is re-dispatched when the last child joins — the
paper's asynchronous queuing that lets a task spawn itself without logic
loops (§IV-C).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, List, Optional

from repro.errors import SimulationError

FREE = "FREE"
READY = "READY"          # spawned, not yet allocated a TXU slot
EXE = "EXE"              # executing on a tile
SYNC = "SYNC"            # suspended waiting on children
COMPLETE = "COMPLETE"    # body finished, joining with parent


@dataclass
class TaskEntry:
    """One dynamic task instance in the queue."""

    dyid: int
    state: str = FREE
    args: tuple = ()
    parent_sid: Optional[int] = None
    parent_dyid: Optional[int] = None
    join_kind: str = "sync"
    call_token: Any = None
    ret_ptr: Optional[int] = None
    child_count: int = 0
    retval: Any = None
    #: saved execution context while suspended at a sync
    saved_env: Optional[dict] = None
    saved_regs: Optional[dict] = None
    resume_block: Any = None
    spawn_seq: int = 0  # allocation order, for FIFO/LIFO scheduling
    #: globally-unique instance id (sid, counter) — dyids are recycled,
    #: so the dynamic race checker needs its own identity
    gid: Any = None
    parent_gid: Any = None
    origin_seq: Optional[int] = None  # trace seq of the spawn issue


class TaskQueue:
    """Fixed-capacity pool of :class:`TaskEntry` with a dispatch policy.

    ``policy`` is ``"fifo"`` (loop spawners: oldest first) or ``"lifo"``
    (recursive tasks: newest first — depth-first order bounds the live
    spawn tree like a work-first Cilk scheduler).
    """

    def __init__(self, name: str, depth: int, policy: str = "fifo"):
        if depth < 1:
            raise SimulationError(f"task queue {name}: depth must be >= 1")
        if policy not in ("fifo", "lifo"):
            raise SimulationError(f"task queue {name}: unknown policy {policy}")
        self.name = name
        self.depth = depth
        self.policy = policy
        self.entries: List[TaskEntry] = [TaskEntry(dyid=i) for i in range(depth)]
        self._free: Deque[int] = deque(range(depth))
        self._ready: Deque[int] = deque()
        self._seq = 0
        self.total_allocated = 0
        self.peak_occupancy = 0

    # -- allocation ---------------------------------------------------------

    def has_free_entry(self) -> bool:
        return bool(self._free)

    @property
    def occupancy(self) -> int:
        return self.depth - len(self._free)

    def allocate(self, msg) -> TaskEntry:
        """Allocate an entry for a SpawnMessage; caller checked capacity."""
        if not self._free:
            raise SimulationError(f"task queue {self.name}: allocation when full")
        entry = self.entries[self._free.popleft()]
        entry.state = READY
        entry.args = tuple(msg.args)
        entry.parent_sid = msg.parent_sid
        entry.parent_dyid = msg.parent_dyid
        entry.join_kind = msg.join_kind
        entry.call_token = msg.call_token
        entry.ret_ptr = msg.ret_ptr
        entry.child_count = 0
        entry.retval = None
        entry.saved_env = None
        entry.saved_regs = None
        entry.resume_block = None
        entry.gid = None  # stamped by the owning TaskUnit
        entry.parent_gid = getattr(msg, "parent_gid", None)
        entry.origin_seq = getattr(msg, "spawn_seq", None)
        entry.spawn_seq = self._seq
        self._seq += 1
        self.total_allocated += 1
        self.peak_occupancy = max(self.peak_occupancy, self.occupancy)
        self._ready.append(entry.dyid)
        return entry

    def mark_ready(self, entry: TaskEntry):
        """Re-queue a suspended entry whose children have all joined."""
        entry.state = READY
        self._ready.append(entry.dyid)

    def release(self, entry: TaskEntry):
        if entry.state == FREE:
            raise SimulationError(f"task queue {self.name}: double free of "
                                  f"entry {entry.dyid}")
        entry.state = FREE
        entry.args = ()
        entry.saved_env = None
        entry.saved_regs = None
        self._free.append(entry.dyid)

    # -- dispatch -----------------------------------------------------------

    def take_ready(self) -> Optional[TaskEntry]:
        """Pop the next READY entry under the dispatch policy. ``fifo``
        serves the oldest spawn; ``lifo`` serves the newest (depth-first,
        which bounds the live spawn tree of recursive tasks)."""
        if not self._ready:
            return None
        dyid = self._ready.pop() if self.policy == "lifo" else self._ready.popleft()
        entry = self.entries[dyid]
        if entry.state != READY:
            raise SimulationError(
                f"task queue {self.name}: ready-list entry {dyid} in state "
                f"{entry.state}")
        return entry

    def has_ready(self) -> bool:
        return bool(self._ready)

    # -- joins ------------------------------------------------------------------

    def entry(self, dyid: int) -> TaskEntry:
        if not 0 <= dyid < self.depth:
            raise SimulationError(f"task queue {self.name}: bad DyID {dyid}")
        return self.entries[dyid]

    def child_joined(self, dyid: int):
        entry = self.entry(dyid)
        if entry.state == FREE:
            raise SimulationError(
                f"task queue {self.name}: join to freed entry {dyid}")
        if entry.child_count <= 0:
            raise SimulationError(
                f"task queue {self.name}: join underflow on entry {dyid}")
        entry.child_count -= 1

    def stats(self) -> dict:
        return {
            "total_allocated": self.total_allocated,
            "peak_occupancy": self.peak_occupancy,
            "depth": self.depth,
        }
