"""Simulation statistics helpers."""

from __future__ import annotations

from collections import Counter
from typing import Dict


class StatCounters:
    """A named bag of monotonically increasing counters."""

    def __init__(self):
        self._counters: Counter = Counter()

    def bump(self, key: str, amount: int = 1):
        self._counters[key] += amount

    def get(self, key: str) -> int:
        return self._counters.get(key, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counters)

    def __getitem__(self, key):
        return self.get(key)

    def __repr__(self):
        return f"<StatCounters {dict(self._counters)}>"


def utilization(busy_cycles: int, total_cycles: int) -> float:
    """Fraction of cycles a unit did useful work."""
    if total_cycles <= 0:
        return 0.0
    return busy_cycles / total_cycles
