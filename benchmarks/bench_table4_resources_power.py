"""Table IV: per-benchmark FPGA resources and power on Cyclone V.

Paper rows: 3-5 tiles, 120-223 MHz, 4.4k-14k ALMs, ~1 W designs; the
loop benchmarks use 3 M20Ks while the recursive pair (fib 62, mergesort
74) spends block RAM on deep task queues; mergesort is the largest design
at ~half the chip and ~1.5 W.
"""

import sweeplib

from repro.accel import CYCLONE_V
from repro.exp import register_evaluator
from repro.reports import (
    estimate_mhz,
    estimate_resources,
    fpga_power_watts,
    render_table,
    sweep_record,
)
from repro.workloads import REGISTRY

PAPER = {  # name -> (tiles, MHz, ALMs, Regs, BRAM, Power W)
    "saxpy": (5, 149, 7195, 9414, 3, 0.957),
    "stencil": (3, 142, 11927, 11543, 3, 1.272),
    "matrix_add": (3, 223, 4702, 7025, 3, 0.677),
    "image_scale": (4, 141, 4442, 5814, 3, 0.798),
    "dedup": (3, 153, 10487, 6509, 3, 1.014),
    "fibonacci": (4, 120, 5699, 9887, 62, 1.155),
    "mergesort": (4, 134, 14098, 24775, 74, 1.491),
}


def _eval_table4(spec):
    workload = REGISTRY.get(spec["workload"])
    accel = workload.build()  # paper tile counts via default_config
    report = estimate_resources(accel)
    mhz = estimate_mhz(CYCLONE_V, report.alms)
    watts = fpga_power_watts(report.alms, report.brams, mhz)
    return {"alms": report.alms, "regs": report.regs,
            "brams": report.brams, "mhz": mhz, "watts": watts,
            "paper_tiles": workload.paper_tiles}


register_evaluator("table4_resources", _eval_table4,
                   program_text=sweeplib.file_program_text(__file__))


def test_table4_resources_power(benchmark, save_result, save_json,
                                sweep_runner):
    points = [{"evaluator": "table4_resources", "workload": name}
              for name in REGISTRY.names()]

    def run():
        return sweeplib.run_points(sweep_runner, points)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    data = {record["spec"]["workload"]: record["value"]
            for record in result.records}

    rows = []
    for name in REGISTRY.names():
        d = data[name]
        p = PAPER[name]
        rows.append([name, d["paper_tiles"],
                     round(d["mhz"]), p[1], d["alms"], p[2],
                     d["brams"], p[4], round(d["watts"], 2), p[5]])
    text = render_table(
        ["Benchmark", "Tiles", "MHz", "paper", "ALMs", "paper",
         "BRAM", "paper", "Power", "paper"],
        rows, title="Table IV — FPGA resources and power (Cyclone V)")
    save_result("table4_resources_power", text)
    save_json("table4_resources_power", [
        sweep_record(record, record["spec"]["workload"],
                     config={"board": CYCLONE_V.name,
                             "tiles": record["value"]["paper_tiles"]},
                     mhz=round(record["value"]["mhz"]),
                     alms=record["value"]["alms"],
                     regs=record["value"]["regs"],
                     brams=record["value"]["brams"],
                     watts=round(record["value"]["watts"], 3),
                     paper_mhz=PAPER[record["spec"]["workload"]][1],
                     paper_alms=PAPER[record["spec"]["workload"]][2],
                     paper_brams=PAPER[record["spec"]["workload"]][4],
                     paper_watts=PAPER[record["spec"]["workload"]][5])
        for record in result.records], sweep=result.summary)

    watts = {name: data[name]["watts"] for name in data}
    brams = {name: data[name]["brams"] for name in data}
    alms = {name: data[name]["alms"] for name in data}

    # every design is a ~1 W accelerator (paper: 0.68 - 1.49 W)
    assert all(0.4 < w < 2.5 for w in watts.values())
    # the recursive pair spends tens of M20Ks on queue state,
    # the loop benchmarks only a few (paper: 3 vs 62-74)
    for name in ("fibonacci", "mergesort"):
        assert brams[name] > 25
    for name in ("saxpy", "stencil", "matrix_add", "image_scale", "dedup"):
        assert brams[name] <= 6
    # mergesort is among the largest/most power hungry designs
    assert watts["mergesort"] >= sorted(watts.values())[-3]
    # everything fits comfortably on the Cyclone V (paper: <= ~50% chip)
    for name, a in alms.items():
        assert a < 0.9 * CYCLONE_V.alm_capacity, name
