"""Cache-key invalidation and corruption handling.

The key must move when anything that can change the result moves —
program text, any config field, the repro version — and must NOT move
for identical inputs (that is the whole point of content addressing).
Corrupted entries are evicted and recomputed, never fatal.
"""

import json
from pathlib import Path

import pytest

import repro
from repro.exp import ResultCache, canonical_json

SPEC = {"evaluator": "workload", "workload": "fibonacci",
        "tiles": 2, "scale": 1, "engine": "event"}


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path)


def test_identical_inputs_identical_key(cache):
    a = cache.key("workload", dict(SPEC), program_text="func f() {}")
    b = cache.key("workload", dict(SPEC), program_text="func f() {}")
    assert a == b


def test_key_order_insensitive(cache):
    """Canonical JSON sorts keys: dict insertion order is not content."""
    shuffled = dict(reversed(list(SPEC.items())))
    assert cache.key("workload", SPEC) == cache.key("workload", shuffled)


def test_program_text_changes_key(cache):
    a = cache.key("workload", SPEC, program_text="func f() {}")
    b = cache.key("workload", SPEC, program_text="func f() { spawn g(); }")
    assert a != b


def test_any_config_field_changes_key(cache):
    base = cache.key("workload", SPEC)
    for field, value in [("tiles", 4), ("scale", 2), ("engine", "dense"),
                         ("workload", "mergesort")]:
        spec = dict(SPEC)
        spec[field] = value
        assert cache.key("workload", spec) != base, field
    nested = dict(SPEC)
    nested["overrides"] = {"cache": {"size_bytes": 1024}}
    assert cache.key("workload", nested) != base


def test_version_changes_key(cache, monkeypatch):
    a = cache.key("workload", SPEC)
    monkeypatch.setattr(repro.exp.cache, "__version__", "0.0.0-other")
    b = cache.key("workload", SPEC)
    assert a != b


def test_code_fingerprint_changes_key(cache, monkeypatch):
    """Any edit to src/repro rolls every key: a cached cycle count can
    only ever be replayed by the exact code that produced it."""
    a = cache.key("workload", SPEC)
    monkeypatch.setattr(repro.exp.cache, "_fingerprint", "f" * 64)
    b = cache.key("workload", SPEC)
    assert a != b
    assert repro.exp.cache.code_fingerprint() == "f" * 64


def test_code_fingerprint_is_stable_and_hexdigest(monkeypatch):
    monkeypatch.setattr(repro.exp.cache, "_fingerprint", None)
    first = repro.exp.cache.code_fingerprint()
    assert first == repro.exp.cache.code_fingerprint()
    assert len(first) == 64 and int(first, 16) >= 0


def test_evaluator_name_changes_key(cache):
    assert cache.key("workload", SPEC) != cache.key("other", SPEC)


def test_roundtrip(cache):
    key = cache.key("workload", SPEC)
    assert cache.get(key) is None
    cache.put(key, {"value": {"cycles": 123}})
    assert cache.get(key) == {"value": {"cycles": 123}}


def test_corrupted_entry_evicted_not_fatal(cache):
    key = cache.key("workload", SPEC)
    cache.put(key, {"value": 1})
    path = cache.path_for(key)
    path.write_text("{ this is not json", encoding="utf-8")
    assert cache.get(key) is None          # miss, not an exception
    assert not path.exists()               # evicted
    assert cache.evictions == 1
    cache.put(key, {"value": 2})           # recomputed entry lands fine
    assert cache.get(key) == {"value": 2}


def test_wrong_key_entry_evicted(cache):
    """An entry whose recorded key disagrees with its address (e.g. a
    truncated copy) is treated as corruption."""
    key = cache.key("workload", SPEC)
    path = cache.path_for(key)
    path.parent.mkdir(parents=True)
    path.write_text(json.dumps({"key": "deadbeef", "record": {}}),
                    encoding="utf-8")
    assert cache.get(key) is None
    assert cache.evictions == 1


def test_canonical_json_rejects_non_json():
    with pytest.raises(TypeError):
        canonical_json({"bad": object()})


def test_fingerprint_covers_analysis_package(tmp_path, monkeypatch):
    """Regression for the static-analysis layer: editing any file under
    src/repro/analysis/ (here: lint.py) must move the code fingerprint,
    and with it every cache key — stale sweep results cannot survive a
    lint-rule change."""
    import shutil

    import repro.exp.cache as cache_mod

    copy = tmp_path / "repro"
    shutil.copytree(Path(cache_mod.__file__).resolve().parent.parent, copy)
    monkeypatch.setattr(cache_mod, "__file__", str(copy / "exp" / "cache.py"))

    monkeypatch.setattr(cache_mod, "_fingerprint", None)
    before = cache_mod.code_fingerprint()

    lint = copy / "analysis" / "lint.py"
    assert lint.exists()  # the analysis package is inside the covered tree
    lint.write_text(lint.read_text(encoding="utf-8") + "\n# edited\n",
                    encoding="utf-8")

    monkeypatch.setattr(cache_mod, "_fingerprint", None)
    after = cache_mod.code_fingerprint()
    assert before != after
