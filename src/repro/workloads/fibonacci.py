"""Fibonacci: recursive parallelism with spawn-result frame slots
(Table II: "Recursive parallel"; evaluated as fib(n=15) in Figs 16/17)."""

from __future__ import annotations

from repro.workloads.base import PreparedRun, Workload


def fib_reference(n: int) -> int:
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a


class Fibonacci(Workload):
    name = "fibonacci"
    entry = "fib"
    challenge = "Recursive parallel"
    memory_pattern = "Regular"
    paper_tiles = 4  # Table IV

    source = """
    func fib(n: i32) -> i32 {
      if (n < 2) {
        return n;
      }
      var x: i32 = spawn fib(n - 1);
      var y: i32 = spawn fib(n - 2);
      sync;
      return x + y;
    }
    """

    def default_n(self, scale: int) -> int:
        # fib(12) = 465 dynamic tasks at scale 1; scale 2 -> the paper's n=15
        return {1: 12, 2: 15}.get(scale, 12 + scale)

    def prepare(self, memory, scale: int = 1) -> PreparedRun:
        n = self.default_n(scale)
        expected = fib_reference(n)
        dynamic_tasks = 2 * fib_reference(n + 1) - 1

        def check(_mem, retval):
            return retval == expected

        return PreparedRun(self.entry, [n], check, work_items=dynamic_tasks)
