"""Tests for the optimisation pipeline (constant folding, CSE, DCE)."""


from repro.ir import Function, IRBuilder, const, verify_function
from repro.ir.types import I32, VOID, ptr
from repro.ir.values import Constant
from repro.passes import (
    common_subexpression_elimination,
    constant_fold,
    eliminate_dead_code,
    global_value_numbering,
    optimize_function,
    optimize_module,
)
from repro.passes.optimize import _cse_key, _value_index

from tests.irprograms import build_matrix_add_module, build_scale_module


def count_ops(function, opcode):
    return sum(1 for i in function.instructions() if i.opcode == opcode)


class TestConstantFolding:
    def test_folds_constant_chain(self):
        f = Function("f", [], [], I32)
        b = IRBuilder(f.add_block("entry"))
        x = b.add(const(2), const(3))
        y = b.mul(x, const(4))
        b.ret(y)
        folded = constant_fold(f)
        assert folded == 2
        verify_function(f)
        ret = f.entry.terminator
        assert isinstance(ret.value, Constant)
        assert ret.value.value == 20

    def test_folds_comparison_and_select(self):
        f = Function("f", [], [], I32)
        b = IRBuilder(f.add_block("entry"))
        c = b.icmp("slt", const(1), const(2))
        s = b.select(c, const(10), const(20))
        b.ret(s)
        constant_fold(f)
        assert f.entry.terminator.value.value == 10

    def test_division_by_zero_left_alone(self):
        f = Function("f", [], [], I32)
        b = IRBuilder(f.add_block("entry"))
        q = b.sdiv(const(1), const(0))
        b.ret(q)
        assert constant_fold(f) == 0  # runtime's problem, not the folder's
        assert count_ops(f, "sdiv") == 1

    def test_non_constant_operands_untouched(self):
        f = Function("f", [I32], ["x"], I32)
        b = IRBuilder(f.add_block("entry"))
        y = b.add(f.arguments[0], const(1))
        b.ret(y)
        assert constant_fold(f) == 0


class TestDCE:
    def test_removes_unused_pure_ops(self):
        f = Function("f", [I32], ["x"], I32)
        b = IRBuilder(f.add_block("entry"))
        b.add(f.arguments[0], const(1))     # dead
        b.mul(f.arguments[0], const(2))     # dead
        live = b.sub(f.arguments[0], const(3))
        b.ret(live)
        removed = eliminate_dead_code(f)
        assert removed == 2
        assert count_ops(f, "add") == 0
        assert count_ops(f, "sub") == 1
        verify_function(f)

    def test_removes_transitively_dead_chains(self):
        f = Function("f", [I32], ["x"], VOID)
        b = IRBuilder(f.add_block("entry"))
        a = b.add(f.arguments[0], const(1))
        b.mul(a, const(2))  # dead, and then `a` becomes dead
        b.ret()
        assert eliminate_dead_code(f) == 2

    def test_memory_ops_never_removed(self):
        f = Function("f", [ptr(I32)], ["p"], VOID)
        b = IRBuilder(f.add_block("entry"))
        b.load(f.arguments[0])   # unused load: stays (it is not _PURE)
        b.store(const(1), f.arguments[0])
        b.ret()
        assert eliminate_dead_code(f) == 0
        assert count_ops(f, "load") == 1
        assert count_ops(f, "store") == 1


class TestCSE:
    def test_shares_duplicate_ops(self):
        f = Function("f", [I32, I32], ["x", "y"], I32)
        b = IRBuilder(f.add_block("entry"))
        a1 = b.add(f.arguments[0], f.arguments[1])
        a2 = b.add(f.arguments[0], f.arguments[1])  # duplicate
        total = b.mul(a1, a2)
        b.ret(total)
        shared = common_subexpression_elimination(f)
        assert shared == 1
        assert count_ops(f, "add") == 1
        mul = next(i for i in f.instructions() if i.opcode == "mul")
        assert mul.operands[0] is mul.operands[1]
        verify_function(f)

    def test_commutative_ops_matched_either_order(self):
        f = Function("f", [I32, I32], ["x", "y"], I32)
        b = IRBuilder(f.add_block("entry"))
        a1 = b.add(f.arguments[0], f.arguments[1])
        a2 = b.add(f.arguments[1], f.arguments[0])
        b.ret(b.xor(a1, a2))
        assert common_subexpression_elimination(f) == 1

    def test_non_commutative_order_respected(self):
        f = Function("f", [I32, I32], ["x", "y"], I32)
        b = IRBuilder(f.add_block("entry"))
        a1 = b.sub(f.arguments[0], f.arguments[1])
        a2 = b.sub(f.arguments[1], f.arguments[0])
        b.ret(b.xor(a1, a2))
        assert common_subexpression_elimination(f) == 0

    def test_loads_never_shared(self):
        f = Function("f", [ptr(I32)], ["p"], I32)
        b = IRBuilder(f.add_block("entry"))
        l1 = b.load(f.arguments[0])
        l2 = b.load(f.arguments[0])  # may read a different value later
        b.ret(b.add(l1, l2))
        assert common_subexpression_elimination(f) == 0

    def test_cse_does_not_cross_blocks(self):
        f = Function("f", [I32], ["x"], VOID)
        entry = f.add_block("entry")
        other = f.add_block("other")
        b = IRBuilder(entry)
        b.add(f.arguments[0], const(1))
        b.br(other)
        b.position_at_end(other)
        dup = b.add(f.arguments[0], const(1))
        b.store(dup, b.alloca(I32))
        b.ret()
        assert common_subexpression_elimination(f) == 0


class TestPipeline:
    def test_fixpoint_combines_passes(self):
        """CSE exposes dead code; folding exposes more CSE — the driver
        iterates to a fixpoint."""
        f = Function("f", [I32], ["x"], I32)
        b = IRBuilder(f.add_block("entry"))
        k = b.add(const(1), const(2))         # folds to 3
        a1 = b.add(f.arguments[0], k)
        a2 = b.add(f.arguments[0], k)         # CSE after fold
        b.mul(a2, const(0))                   # dead
        b.ret(a1)
        counts = optimize_function(f)
        assert counts["folded"] >= 1
        assert counts["cse"] >= 1
        assert counts["dce"] >= 1
        verify_function(f)

    def test_workload_correctness_preserved(self):
        """Optimised modules still compute the right answers end to end."""
        from repro.accel import build_accelerator
        from repro.ir.types import I32 as I32_

        module = build_matrix_add_module(rows_stride=6)
        optimize_module(module)
        acc = build_accelerator(module)
        n = 6
        A = acc.memory.alloc_array(I32_, range(36))
        B = acc.memory.alloc_array(I32_, range(36))
        C = acc.memory.alloc_array(I32_, [0] * 36)
        acc.run("matrix_add", [A, B, C, n])
        assert acc.memory.read_array(C, I32_, 36) == [2 * i for i in range(36)]

    def test_parallel_markers_survive(self):
        module = build_scale_module()
        optimize_module(module)
        f = module.function("scale")
        opcodes = [i.opcode for i in f.instructions()]
        assert "detach" in opcodes and "sync" in opcodes


class TestCSEKeyDeterminism:
    """The commutative canonicalisation must not depend on ``id()``."""

    def _commutative_pair(self):
        f = Function("f", [I32, I32], ["x", "y"], I32)
        b = IRBuilder(f.add_block("entry"))
        a1 = b.add(f.arguments[0], f.arguments[1])
        a2 = b.add(f.arguments[1], f.arguments[0])
        b.ret(b.xor(a1, a2))
        return f, a1, a2

    def test_swapped_operands_same_key(self):
        f, a1, a2 = self._commutative_pair()
        index = _value_index(f)
        assert _cse_key(a1, index) == _cse_key(a2, index)

    def test_key_is_stable_across_builds(self):
        """Two structurally identical functions produce identical keys —
        the old ``id()``-based sort made them differ between runs."""
        keys = []
        for _ in range(2):
            f, a1, a2 = self._commutative_pair()
            index = _value_index(f)
            keys.append((_cse_key(a1, index), _cse_key(a2, index)))
        assert keys[0] == keys[1]

    def test_key_contains_no_memory_addresses(self):
        f, a1, _ = self._commutative_pair()

        def flat(obj):
            if isinstance(obj, tuple):
                for part in obj:
                    yield from flat(part)
            else:
                yield obj
        for leaf in flat(_cse_key(a1, _value_index(f))):
            if isinstance(leaf, int):
                assert leaf < 1000  # an operand ordinal, not an id()


class TestGVN:
    def test_shares_across_dominated_blocks(self):
        f = Function("f", [I32], ["x"], VOID)
        entry = f.add_block("entry")
        other = f.add_block("other")
        b = IRBuilder(entry)
        first = b.add(f.arguments[0], const(1))
        slot = b.alloca(I32)
        b.store(first, slot)
        b.br(other)
        b.position_at_end(other)
        dup = b.add(f.arguments[0], const(1))
        b.store(dup, slot)
        b.ret()
        assert common_subexpression_elimination(f) == 0  # stays block-local
        assert global_value_numbering(f) == 1
        assert count_ops(f, "add") == 1
        verify_function(f)

    def test_does_not_share_across_siblings(self):
        """Neither branch arm dominates the other: both copies stay."""
        f = Function("f", [I32], ["x"], I32)
        entry = f.add_block("entry")
        left = f.add_block("left")
        right = f.add_block("right")
        join = f.add_block("join")
        b = IRBuilder(entry)
        cond = b.icmp("slt", f.arguments[0], const(0))
        slot = b.alloca(I32)
        b.condbr(cond, left, right)
        b.position_at_end(left)
        b.store(b.add(f.arguments[0], const(7)), slot)
        b.br(join)
        b.position_at_end(right)
        b.store(b.add(f.arguments[0], const(7)), slot)
        b.br(join)
        b.position_at_end(join)
        b.ret(b.load(slot))
        assert global_value_numbering(f) == 0
        assert count_ops(f, "add") == 2

    def test_detach_region_is_a_barrier(self):
        """A value from the parent region is never forwarded into a
        detached region — that would change the task's live-ins."""
        f = Function("f", [I32, ptr(I32)], ["x", "p"], VOID)
        entry = f.add_block("entry")
        body = f.add_block("body")
        cont = f.add_block("cont")
        done = f.add_block("done")
        b = IRBuilder(entry)
        outer = b.add(f.arguments[0], const(1))
        b.store(outer, f.arguments[1])
        b.detach(body, cont)
        b.position_at_end(body)
        inner = b.add(f.arguments[0], const(1))  # same expression, new region
        b.store(inner, f.arguments[1])
        b.reattach(cont)
        b.position_at_end(cont)
        b.sync(done)
        b.position_at_end(done)
        b.ret()
        assert global_value_numbering(f) == 0
        assert count_ops(f, "add") == 2
        verify_function(f)

    def test_counted_as_gvn_in_pipeline_totals(self):
        f = Function("f", [I32], ["x"], VOID)
        entry = f.add_block("entry")
        other = f.add_block("other")
        b = IRBuilder(entry)
        slot = b.alloca(I32)
        b.store(b.mul(f.arguments[0], f.arguments[0]), slot)
        b.br(other)
        b.position_at_end(other)
        b.store(b.mul(f.arguments[0], f.arguments[0]), slot)
        b.ret()
        counts = optimize_function(f)
        assert counts["gvn"] == 1
        assert counts["cse"] == 0
        assert count_ops(f, "mul") == 1

    def test_module_totals_report_gvn(self):
        module = build_matrix_add_module()
        totals = optimize_module(module)
        assert "gvn" in totals

    def test_workloads_still_correct_with_gvn(self):
        from repro.accel import build_accelerator
        from repro.ir.types import I32 as I32_

        module = build_scale_module(work_ops=3)
        optimize_module(module)
        acc = build_accelerator(module)
        data = acc.memory.alloc_array(I32_, [1, 2, 3, 4])
        acc.run("scale", [data, 4])
        assert acc.memory.read_array(data, I32_, 4) == [4, 5, 6, 7]
