"""Value hierarchy for the IR: constants, arguments and instruction results.

Every :class:`Value` has a :class:`~repro.ir.types.Type` and an optional
name. Instructions (defined in :mod:`repro.ir.instructions`) are themselves
values — an instruction *is* its result, LLVM-style.
"""

from __future__ import annotations

from repro.ir.types import F32, I1, IntType, Type


class Value:
    """Base class for everything that can appear as an operand."""

    def __init__(self, type_: Type, name: str = ""):
        self.type = type_
        self.name = name

    def short(self) -> str:
        """Compact printable form used by the IR printer."""
        return f"%{self.name}" if self.name else "%<anon>"

    def __repr__(self):
        return f"<{type(self).__name__} {self.short()}: {self.type!r}>"


class Constant(Value):
    """An immediate integer or float constant."""

    def __init__(self, type_: Type, value):
        super().__init__(type_)
        if isinstance(type_, IntType):
            value = type_.wrap(int(value))
        elif type_ is F32 or type_.is_float():
            value = float(value)
        else:
            raise TypeError(f"constants must be int or float, got {type_!r}")
        self.value = value

    def short(self):
        return str(self.value)

    def __repr__(self):
        return f"<Constant {self.value}: {self.type!r}>"


def const(value, type_: Type = None) -> Constant:
    """Build a constant, defaulting to i32 for ints and f32 for floats."""
    from repro.ir.types import I32

    if type_ is None:
        type_ = F32 if isinstance(value, float) else I32
    return Constant(type_, value)


TRUE = Constant(I1, 1)
FALSE = Constant(I1, 0)


class Argument(Value):
    """A formal parameter of a function (and thus of its root task)."""

    def __init__(self, type_: Type, name: str, index: int):
        super().__init__(type_, name)
        self.index = index


class GlobalVariable(Value):
    """A named region of the shared memory, visible to host and accelerator.

    ``size_bytes`` is reserved in the module's data segment; the host runtime
    assigns the address at load time.
    """

    def __init__(self, type_: Type, name: str, size_bytes: int):
        super().__init__(type_, name)
        if size_bytes <= 0:
            raise ValueError("global variable must have positive size")
        self.size_bytes = size_bytes
        self.address = None  # assigned by the runtime loader

    def short(self):
        return f"@{self.name}"
