"""Dynamic cross-validation of the static value-range analysis.

The interval analysis in :mod:`repro.analysis.ranges` claims soundness:
every value a task unit ever computes lies inside its inferred interval.
This module checks that claim against real simulations by attaching a
probe to every TXU tile (``TXUTile.value_probe``) and comparing each
dynamically produced integer — dataflow results, register-cell writes,
loaded values, call returns, spawn arguments — against the static
interval.  A violation is an analysis bug, never a program bug, which is
exactly what makes it a good regression oracle: the engine-diff test
matrix runs every example program through the checker and asserts zero
violations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.ranges import Interval, ModuleRanges, infer_design_ranges
from repro.ir.instructions import Alloca
from repro.ir.types import IntType


@dataclass(frozen=True)
class RangeViolation:
    """One dynamically observed value outside its static interval."""

    value: object          # the IR Value (or Alloca, for cell writes)
    observed: int
    interval: Interval
    is_cell: bool

    def describe(self) -> str:
        kind = "cell" if self.is_cell else "value"
        name = getattr(self.value, "name", None) or repr(self.value)
        return (f"{kind} {name}: observed {self.observed} outside "
                f"[{self.interval.lo}, {self.interval.hi}]")


class RangeChecker:
    """Attachable probe comparing execution against a ModuleRanges.

    Usage::

        accel = build_accelerator(module, config)
        checker = RangeChecker.for_accelerator(accel, entry="fib")
        ... accel.run(...) ...
        checker.assert_clean()
    """

    def __init__(self, ranges: ModuleRanges):
        self.ranges = ranges
        self.violations: List[RangeViolation] = []
        self.checked = 0

    @classmethod
    def for_accelerator(cls, accel, entry: Optional[str] = None
                        ) -> "RangeChecker":
        """Infer ranges for the accelerator's design and attach to every
        tile of every task unit."""
        checker = cls(infer_design_ranges(accel.design, entry=entry))
        checker.attach(accel)
        return checker

    def attach(self, accel) -> "RangeChecker":
        for unit in accel.units:
            for tile in unit.tiles:
                tile.value_probe = self.probe
        return self

    def detach(self, accel):
        for unit in accel.units:
            for tile in unit.tiles:
                tile.value_probe = None

    def probe(self, value, observed):
        # non-integers (floats, register-slot markers, None writebacks)
        # carry no interval claim
        if isinstance(observed, bool) or not isinstance(observed, int):
            return
        if isinstance(value, Alloca):
            interval = self.ranges.cell_ranges.get(value)
            is_cell = True
        else:
            if not isinstance(value.type, IntType):
                return
            interval = self.ranges.range_of(value)
            is_cell = False
        if interval is None:
            return
        self.checked += 1
        if not interval.contains(observed):
            self.violations.append(
                RangeViolation(value, observed, interval, is_cell))

    def assert_clean(self):
        if self.violations:
            lines = [v.describe() for v in self.violations[:20]]
            raise AssertionError(
                f"{len(self.violations)} dynamic value(s) escaped their "
                f"static interval (of {self.checked} checked):\n  "
                + "\n  ".join(lines))
        if self.checked == 0:
            raise AssertionError(
                "range checker observed no integer values — probe not "
                "attached or nothing executed")


def check_design_run(module, entry: str, make_args, config=None):
    """Convenience harness: build the accelerator (analysis gate off, so
    even intentionally-broken fixtures elaborate), attach a checker, run
    ``entry`` with ``make_args(accel)``'s argument list, and return
    ``(result, checker)`` — callers assert on both."""
    from repro.accel import AcceleratorConfig, build_accelerator

    config = config or AcceleratorConfig(analysis_level="none")
    accel = build_accelerator(module, config)
    checker = RangeChecker.for_accelerator(accel, entry=entry)
    result = accel.run(entry, make_args(accel))
    return result, checker
