"""Machine-readable benchmark results.

Every ``benchmarks/bench_*.py`` writes, next to its ``results/*.txt``
table, a ``results/*.json`` document so the performance trajectory can
be tracked across PRs. The schema is one document per bench::

    {"bench": str, "schema": 3,
     "sweep": {"wall_seconds": float, "jobs": int, "points": int,
               "cache_hits": int, "cache_misses": int,
               "errors": int}|null,
     "records": [{"workload": str, "config": {...}, "cycles": int|null,
                  "utilization": {...}|null, "stalls": {...}|null,
                  "engine": {...}|null, "cache_hit": bool|null,
                  "worker": int|null, "metrics": {...}}]}

``bench_record`` builds one record; non-simulation benches (resource
tables) set ``cycles`` to None and carry their numbers in ``metrics``.
Schema 2 added the ``engine`` key: host-side performance of the
simulation itself (engine name, ``host_seconds``,
``sim_cycles_per_host_second``). Schema 3 adds sweep-runner provenance:
per-record ``cache_hit`` (served from the content-addressed result
cache?) and ``worker`` (pid of the sweep worker that computed it), plus
the top-level ``sweep`` wall-clock summary. :func:`read_bench_json`
reads both schemas, normalising 2 up to 3, so existing
``results/*.json`` stay valid.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

BENCH_SCHEMA_VERSION = 3

#: schemas read_bench_json understands (older ones are normalised up)
READABLE_SCHEMAS = (2, 3)

#: keys every record must carry (value may be None)
RECORD_KEYS = ("workload", "config", "cycles", "utilization", "stalls",
               "engine", "cache_hit", "worker", "metrics")

#: record keys added by schema 3 (defaulted when reading schema 2)
_SCHEMA3_RECORD_KEYS = ("cache_hit", "worker")

#: subset of Simulator.engine_stats() carried in bench records
ENGINE_RECORD_KEYS = ("name", "host_seconds", "sim_cycles_per_host_second")

#: the sweep summary block carried at document level
SWEEP_KEYS = ("points", "jobs", "wall_seconds", "cache_hits",
              "cache_misses", "errors")


def config_summary(config) -> Dict[str, Any]:
    """JSON-safe summary of an AcceleratorConfig."""
    out = {
        "board": config.board.name,
        "default_ntiles": config.default_ntiles,
        "memory_model": config.memory_model,
        "dram_latency": config.effective_dram_latency(),
        "analysis_level": config.analysis_level,
        "engine": config.engine,
        "cache": {
            "size_bytes": config.cache.size_bytes,
            "line_bytes": config.cache.line_bytes,
            "associativity": config.cache.associativity,
            "mshr_count": config.cache.mshr_count,
            "banks": config.cache.banks,
        },
    }
    if config.unit_params:
        out["unit_params"] = {
            name: {"ntiles": p.ntiles, "queue_depth": p.queue_depth,
                   "max_inflight_per_tile": p.max_inflight_per_tile,
                   "policy": p.policy}
            for name, p in config.unit_params.items()
        }
    return out


def utilization_from_stats(stats: Dict[str, Any],
                           cycles: int) -> Dict[str, float]:
    """Per-unit tile utilization out of a RunResult stats dict."""
    out = {}
    for name, unit in stats.get("units", {}).items():
        tiles = unit.get("tiles", [])
        if tiles and cycles:
            busy = sum(t.get("busy_cycles", 0) for t in tiles)
            out[name] = round(busy / (len(tiles) * cycles), 4)
    return out


def engine_summary(source: Any) -> Optional[Dict[str, Any]]:
    """The record ``engine`` key from a stats dict or engine_stats dict.

    Accepts a ``RunResult.stats`` dict (engine stats nested under
    ``"engine"``) or a ``Simulator.engine_stats()`` dict directly.
    """
    if source is None:
        return None
    engine = source.get("engine", source)
    if not isinstance(engine, dict) or "name" not in engine:
        return None
    return {key: engine.get(key) for key in ENGINE_RECORD_KEYS}


def bench_record(workload: str, config: Any = None,
                 cycles: Optional[int] = None,
                 utilization: Optional[dict] = None,
                 stalls: Optional[dict] = None,
                 stats: Optional[dict] = None,
                 engine: Optional[dict] = None,
                 cache_hit: Optional[bool] = None,
                 worker: Optional[int] = None,
                 **metrics) -> Dict[str, Any]:
    """One benchmark data point in the BENCH_*.json schema.

    ``cache_hit``/``worker`` are sweep-runner provenance: None for
    benches that do not run through the SweepRunner.
    """
    if not isinstance(config, (dict, type(None))):
        config = config_summary(config)
    if utilization is None and stats is not None and cycles:
        utilization = utilization_from_stats(stats, cycles) or None
    if engine is None and stats is not None:
        engine = engine_summary(stats)
    else:
        engine = engine_summary(engine)
    return {
        "workload": workload,
        "config": config,
        "cycles": cycles,
        "utilization": utilization,
        "stalls": stalls,
        "engine": engine,
        "cache_hit": cache_hit,
        "worker": worker,
        "metrics": metrics,
    }


def sweep_record(point_record: Dict[str, Any], workload: str,
                 config: Any = None, **metrics) -> Dict[str, Any]:
    """A bench record carrying a SweepRunner point record's provenance.

    ``point_record`` is one entry of
    :attr:`repro.exp.SweepResult.records`; its value's cycles/stats feed
    the architectural fields, its ``cache_hit``/``worker`` feed the
    schema-3 provenance keys. Failed points produce a record with None
    cycles and the structured error in ``metrics``.
    """
    value = point_record.get("value") or {}
    return bench_record(
        workload,
        config=config,
        cycles=value.get("cycles"),
        stats=value.get("stats"),
        cache_hit=point_record.get("cache_hit"),
        worker=point_record.get("worker"),
        **({"error": point_record["error"]}
           if point_record.get("status") == "error" else {}),
        **metrics)


def bench_document(bench: str, records: List[dict],
                   sweep: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    for record in records:
        missing = [k for k in RECORD_KEYS if k not in record]
        if missing:
            raise ValueError(f"bench {bench}: record missing {missing}")
    if sweep is not None:
        missing = [k for k in SWEEP_KEYS if k not in sweep]
        if missing:
            raise ValueError(f"bench {bench}: sweep summary missing {missing}")
        sweep = {key: sweep[key] for key in SWEEP_KEYS}
    return {"bench": bench, "schema": BENCH_SCHEMA_VERSION,
            "sweep": sweep, "records": records}


def read_bench_json(path: str) -> Dict[str, Any]:
    """Load a results document, accepting schema 2 or 3.

    Schema-2 documents (written before the sweep runner existed) are
    normalised in place: ``sweep`` becomes None and every record gains
    ``cache_hit``/``worker`` as None — so downstream consumers only ever
    see the schema-3 shape.
    """
    with open(path) as handle:
        document = json.load(handle)
    schema = document.get("schema")
    if schema not in READABLE_SCHEMAS:
        raise ValueError(
            f"{path}: unsupported bench schema {schema!r} "
            f"(readable: {READABLE_SCHEMAS})")
    if schema < BENCH_SCHEMA_VERSION:
        document.setdefault("sweep", None)
        for record in document.get("records", []):
            for key in _SCHEMA3_RECORD_KEYS:
                record.setdefault(key, None)
        document["schema"] = BENCH_SCHEMA_VERSION
    return document


def write_bench_json(path: str, bench: str, records: List[dict],
                     sweep: Optional[Dict[str, Any]] = None) -> dict:
    document = bench_document(bench, records, sweep=sweep)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=False)
        handle.write("\n")
    return document
