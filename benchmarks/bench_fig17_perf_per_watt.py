"""Figure 17: performance/watt vs the Intel i7.

Paper result: TAPAS accelerators achieve 10-78x better perf/W than the
multicore — "often exceeding 20x" — with Dedup the best case (67-78x)
and memory-bound mergesort the only marginal one (1.3-1.9x). The win is
structural: ~1 W accelerators vs a ~50 W CPU package at comparable
performance.
"""

import sweeplib

from repro.accel import ARRIA_10, CYCLONE_V
from repro.baselines import MulticoreCPU
from repro.exp import register_evaluator
from repro.memory.backing import MainMemory
from repro.reports import (
    cpu_power_watts,
    estimate_mhz,
    estimate_resources,
    fpga_power_watts,
    perf_per_watt_gain,
    render_table,
    sweep_record,
)
from repro.workloads import REGISTRY

SCALE = 2
PAPER = {  # (Cyclone V, Arria 10) perf/W gains from Fig 17
    "matrix_add": (26.7, 20.2), "stencil": (16.8, 14.4),
    "saxpy": (30.6, 32.3), "image_scale": (9.7, 10.6),
    "dedup": (78.3, 66.9), "fibonacci": (14.6, 13.3),
    "mergesort": (1.9, 1.3),
}


def _eval_fig17(spec):
    name = spec["workload"]
    workload = REGISTRY.get(name)
    accel = workload.build(workload.default_config(ntiles=spec["tiles"]))
    prepared = workload.prepare(accel.memory, spec["scale"])
    result = accel.run(prepared.function, prepared.args)
    assert prepared.check(accel.memory, result.retval), name
    report = estimate_resources(accel)

    memory = MainMemory(1 << 22)
    cpu = MulticoreCPU(workload.fresh_module(), memory)
    cpu_prep = workload.prepare(memory, spec["scale"])
    cpu_result = cpu.run(cpu_prep.function, cpu_prep.args)
    cpu_seconds = cpu_result.time_seconds(cpu.model)

    gains = {}
    for board in (CYCLONE_V, ARRIA_10):
        mhz = estimate_mhz(board, report.alms)
        fpga_seconds = result.cycles / (mhz * 1e6)
        watts = fpga_power_watts(report.alms, report.brams, mhz)
        gains[board.name] = perf_per_watt_gain(
            fpga_seconds, watts, cpu_seconds, cpu_power_watts())
    return {"cycles": result.cycles, "gains": gains}


register_evaluator("fig17_perf_per_watt", _eval_fig17,
                   program_text=sweeplib.file_program_text(__file__))


def test_fig17_perf_per_watt(benchmark, save_result, save_json,
                             sweep_runner):
    points = [{"evaluator": "fig17_perf_per_watt", "workload": name,
               "tiles": 4, "scale": SCALE}
              for name in REGISTRY.names()]

    def run():
        return sweeplib.run_points(sweep_runner, points)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    gains = {record["spec"]["workload"]: record["value"]["gains"]
             for record in result.records}

    rows = []
    for name in REGISTRY.names():
        p_cyc, p_arr = PAPER[name]
        rows.append([name,
                     f"{gains[name][CYCLONE_V.name]:.1f}x", f"{p_cyc}x",
                     f"{gains[name][ARRIA_10.name]:.1f}x", f"{p_arr}x"])
    text = render_table(
        ["Benchmark", "CycloneV", "paper", "Arria10", "paper"],
        rows,
        title="Figure 17 — Perf/Watt vs Intel i7 (>1 means FPGA better)")
    save_result("fig17_perf_per_watt", text)
    save_json("fig17_perf_per_watt", [
        sweep_record(
            record, record["spec"]["workload"],
            config={"ntiles": 4, "scale": SCALE},
            cyclone_v_perf_per_watt=round(
                record["value"]["gains"][CYCLONE_V.name], 1),
            arria_10_perf_per_watt=round(
                record["value"]["gains"][ARRIA_10.name], 1),
            paper_cyclone_v=PAPER[record["spec"]["workload"]][0],
            paper_arria_10=PAPER[record["spec"]["workload"]][1])
        for record in result.records], sweep=result.summary)

    cyclone = {n: gains[n][CYCLONE_V.name] for n in gains}

    # headline: "~20x the power efficiency", "often exceeding 20x"
    over_20 = [n for n, v in cyclone.items() if v > 20]
    assert len(over_20) >= 3, f"only {over_20} exceeded 20x"
    # every benchmark is at least more efficient than the CPU
    assert all(v > 1.0 for v in cyclone.values())
    # dedup is one of the big winners (paper: 67-78x; ours lands >20x)
    assert cyclone["dedup"] > 20
    # mergesort is the marginal one (paper: 1.3-1.9x)
    assert cyclone["mergesort"] == min(cyclone.values())
    assert cyclone["mergesort"] < 10
