"""SweepRunner: failure isolation, deterministic ordering, caching,
and parallel/sequential equivalence."""

import pickle
import time

import pytest

from repro.errors import TapasError
from repro.exp import (
    ResultCache,
    SweepRunner,
    expand_grid,
    register_evaluator,
    workload_points,
)
from repro.workloads import REGISTRY


def _toy(spec):
    if spec.get("boom"):
        raise ValueError(f"point {spec['n']} exploded")
    if spec.get("sleep"):
        time.sleep(spec["sleep"])
    return {"n": spec["n"], "square": spec["n"] ** 2}


# registered at import so fork-started pool workers inherit it
register_evaluator("toy", _toy, replace=True)


def _toy_points(n, **extra):
    return [{"evaluator": "toy", "n": i, **extra} for i in range(n)]


def test_expand_grid_deterministic():
    grid = expand_grid({"a": [1, 2], "b": ["x", "y"]})
    assert grid == [{"a": 1, "b": "x"}, {"a": 1, "b": "y"},
                    {"a": 2, "b": "x"}, {"a": 2, "b": "y"}]


def test_sequential_results_in_point_order():
    result = SweepRunner(jobs=1).run(_toy_points(5))
    assert [r["value"]["n"] for r in result.records] == list(range(5))
    assert result.summary["errors"] == 0
    assert result.summary["points"] == 5


def test_failure_isolation():
    """One crashing point yields a structured error record; every other
    point still completes."""
    points = _toy_points(4)
    points[2]["boom"] = True
    result = SweepRunner(jobs=1).run(points)
    assert result.summary["errors"] == 1
    bad = result.records[2]
    assert bad["status"] == "error"
    assert bad["value"] is None
    assert bad["error"]["type"] == "ValueError"
    assert "point 2 exploded" in bad["error"]["message"]
    assert "Traceback" in bad["error"]["traceback"]
    assert [r["value"]["n"] for i, r in enumerate(result.records)
            if i != 2] == [0, 1, 3]


def test_parallel_matches_sequential():
    """Fan-out must be invisible in the records: same values, same
    order, regardless of which worker finished first."""
    points = _toy_points(6)
    # reverse-staggered sleeps so completion order != point order
    for i, p in enumerate(points):
        p["sleep"] = (len(points) - i) * 0.01
    seq = SweepRunner(jobs=1).run(points)
    par = SweepRunner(jobs=2).run(points)
    def strip(r):
        return {k: r[k] for k in ("spec", "status", "value", "error")}
    assert [strip(r) for r in seq.records] == [strip(r) for r in par.records]


def test_parallel_failure_isolation():
    points = _toy_points(4)
    points[1]["boom"] = True
    result = SweepRunner(jobs=2).run(points)
    assert result.summary["errors"] == 1
    assert result.records[1]["status"] == "error"
    assert [r["value"]["n"] for i, r in enumerate(result.records)
            if i != 1] == [0, 2, 3]


def test_summary_carries_telemetry_block():
    result = SweepRunner(jobs=2).run(_toy_points(4))
    telemetry = result.summary["telemetry"]
    assert telemetry["point_seconds"]["count"] == 4
    assert telemetry["queue_wait_seconds"]["count"] == 4
    workers = telemetry["workers"]
    assert workers and sum(w["points"] for w in workers.values()) == 4
    for stats in workers.values():
        assert stats["busy_seconds"] >= 0
        assert 0 <= stats["utilization"] <= 1
    assert "cache" not in telemetry  # no cache attached to this run
    # every computed record carries its pool queue wait
    assert all(r["queue_wait"] >= 0 for r in result.records)


def test_telemetry_counts_cache_traffic(tmp_path):
    cache = ResultCache(tmp_path)
    cold = SweepRunner(jobs=1, cache=cache).run(_toy_points(2))
    assert cold.summary["telemetry"]["cache"] == {
        "hits": 0, "misses": 2, "corruption_evictions": 0}
    warm_cache = ResultCache(tmp_path)
    warm = SweepRunner(jobs=1, cache=warm_cache).run(_toy_points(2))
    assert warm.summary["telemetry"]["cache"]["hits"] == 2
    # cache hits never ran, so they contribute no latency observations
    assert warm.summary["telemetry"]["point_seconds"]["count"] == 0


def test_cache_hits_on_rerun(tmp_path):
    cache = ResultCache(tmp_path)
    points = _toy_points(3)
    cold = SweepRunner(jobs=1, cache=cache).run(points)
    assert cold.summary == {**cold.summary, "cache_hits": 0,
                            "cache_misses": 3}
    warm = SweepRunner(jobs=1, cache=cache).run(points)
    assert warm.summary["cache_hits"] == 3
    assert warm.summary["cache_misses"] == 0
    for a, b in zip(cold.records, warm.records):
        assert a["value"] == b["value"]
        assert b["cache_hit"] is True
        assert b["worker"] is None


def test_errors_never_cached(tmp_path):
    cache = ResultCache(tmp_path)
    points = _toy_points(2)
    points[0]["boom"] = True
    first = SweepRunner(jobs=1, cache=cache).run(points)
    assert first.summary["errors"] == 1
    second = SweepRunner(jobs=1, cache=cache).run(points)
    # the failing point is retried (and fails again); the good one hits
    assert second.summary["cache_hits"] == 1
    assert second.records[0]["status"] == "error"
    assert second.records[0]["cache_hit"] is False


def test_partial_sweep_resumes(tmp_path):
    """A sweep interrupted partway resumes: already-computed points are
    served from the cache, only the remainder executes."""
    cache = ResultCache(tmp_path)
    SweepRunner(jobs=1, cache=cache).run(_toy_points(2))
    result = SweepRunner(jobs=1, cache=cache).run(_toy_points(5))
    assert result.summary["cache_hits"] == 2
    assert result.summary["cache_misses"] == 3
    assert [r["value"]["n"] for r in result.records] == list(range(5))


def test_progress_reporting():
    seen = []
    runner = SweepRunner(jobs=1,
                         progress=lambda done, total, el: seen.append(
                             (done, total)))
    runner.run(_toy_points(3))
    assert seen[0] == (0, 3)
    assert seen[-1] == (3, 3)
    assert [d for d, _ in seen] == sorted(d for d, _ in seen)


def test_unknown_evaluator_is_structured_error():
    result = SweepRunner(jobs=1).run([{"evaluator": "nonsense"}])
    assert result.records[0]["status"] == "error"
    assert result.records[0]["error"]["type"] == "TapasError"


def test_duplicate_registration_rejected():
    with pytest.raises(TapasError):
        register_evaluator("toy", _toy)


# -- the built-in workload evaluator --------------------------------------

def test_workload_evaluator_end_to_end(tmp_path):
    cache = ResultCache(tmp_path)
    points = workload_points(["fibonacci"], tiles=[1, 2], scales=1,
                             engines=["event", "dense"])
    assert len(points) == 4
    result = SweepRunner(jobs=1, cache=cache).run(points)
    assert result.summary["errors"] == 0
    values = result.values
    # engines bit-identical per tile count, scaling visible across tiles
    by_point = {(v["tiles"], v["engine"]): v["cycles"] for v in values}
    assert by_point[(1, "event")] == by_point[(1, "dense")]
    assert by_point[(2, "event")] == by_point[(2, "dense")]
    # a warm re-run replays identical values from the cache
    warm = SweepRunner(jobs=1, cache=cache).run(points)
    assert warm.summary["cache_hits"] == 4
    assert warm.values == values


def test_workload_result_picklable():
    """Workload.run results cross process boundaries: no live simulator
    or component references allowed in the result object."""
    workload = REGISTRY.get("fibonacci")
    result = workload.run(workload.default_config(2), scale=1)
    clone = pickle.loads(pickle.dumps(result))
    assert clone.cycles == result.cycles
    assert clone.stats == result.stats
    assert clone.correct is True
