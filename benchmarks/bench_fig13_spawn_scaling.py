"""Figure 13: spawn-rate scaling of the Fig 12 microbenchmark.

Paper result: on Arria 10 (~300 MHz) performance in million-adds/s scales
monotonically with 1-5 worker tiles for every task grain (10-50 adders),
peaking around 1750 Madds/s at 50 adders; the Cilk "Software" line on a
4-core i7 stays flat because runtime spawn overhead swamps such tiny
tasks. §V-A's headline: a task spawns in ~10 cycles, ~40 M spawns/s.

Both the 25-point FPGA grid and the software baseline run through the
SweepRunner (the headline test replays its point from the grid's cache).
"""

import sweeplib

from repro.accel import AcceleratorConfig, TaskUnitParams, build_accelerator
from repro.baselines import MulticoreCPU
from repro.exp import register_evaluator
from repro.frontend import compile_source
from repro.ir.types import I32
from repro.memory.backing import MainMemory
from repro.reports import render_series, sweep_record
from repro.workloads import ScaleMicro

TILE_COUNTS = [1, 2, 3, 4, 5]
ADDER_COUNTS = [10, 20, 30, 40, 50]
N_TASKS = 192
ARRIA_MHZ = 300.0  # the paper's reported clock for this design


def fpga_madds_per_s(work_ops: int, tiles: int):
    workload = ScaleMicro(work_ops=work_ops)
    config = AcceleratorConfig(unit_params={
        "scale": TaskUnitParams(ntiles=1),
        # shallow per-tile pipelining so added tiles (not deeper pipelines)
        # supply the parallelism, as in the paper's tiling experiment
        "scale.t0": TaskUnitParams(ntiles=tiles,
                                   queue_depth=max(32, 4 * tiles),
                                   max_inflight_per_tile=2),
    })
    accel = build_accelerator(workload.fresh_module(), config)
    prepared = workload.prepare(accel.memory, scale=N_TASKS // 64)
    result = accel.run(prepared.function, prepared.args)
    assert prepared.check(accel.memory, result.retval)
    seconds = result.cycles / (ARRIA_MHZ * 1e6)
    return prepared.work_items / seconds / 1e6, result.cycles


def software_madds_per_s(work_ops: int) -> float:
    """The same fine-grain tasks under the Cilk runtime model: one task
    spawned per element (grain-size 1, which is what the hardware does)."""
    source = f"""
    func work(a: i32*, i: i32) {{ a[i] = a[i]{" + 1" * work_ops}; }}
    func scale(a: i32*, n: i32) {{
      var i: i32 = 0;
      while (i < n) {{
        spawn work(a, i);
        i = i + 1;
      }}
      sync;
    }}
    """
    module = compile_source(source, "scale_sw")
    memory = MainMemory(1 << 22)
    cpu = MulticoreCPU(module, memory)
    base = memory.alloc_array(I32, [0] * N_TASKS)
    result = cpu.run("scale", [base, N_TASKS])
    assert memory.read_array(base, I32, N_TASKS) == [work_ops] * N_TASKS
    adds = N_TASKS * work_ops
    return adds / result.time_seconds(cpu.model) / 1e6


def _eval_fig13(spec):
    if spec["side"] == "software":
        return {"madds_per_s": software_madds_per_s(spec["adders"]),
                "cycles": None}
    madds, cycles = fpga_madds_per_s(spec["adders"], spec["tiles"])
    return {"madds_per_s": madds, "cycles": cycles}


register_evaluator("fig13_spawn", _eval_fig13,
                   program_text=sweeplib.file_program_text(__file__))


def _fpga_point(adders, tiles):
    return {"evaluator": "fig13_spawn", "side": "fpga",
            "adders": adders, "tiles": tiles}


def test_fig13_performance_scaling(benchmark, save_result, save_json,
                                   sweep_runner):
    points = [_fpga_point(adders, tiles)
              for adders in ADDER_COUNTS for tiles in TILE_COUNTS]
    points += [{"evaluator": "fig13_spawn", "side": "software",
                "adders": adders} for adders in ADDER_COUNTS]

    def run():
        return sweeplib.run_points(sweep_runner, points)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    table = {adders: [] for adders in ADDER_COUNTS}
    cycles = {adders: [] for adders in ADDER_COUNTS}
    software = {}
    for record in result.records:
        spec, value = record["spec"], record["value"]
        if spec["side"] == "software":
            software[spec["adders"]] = value["madds_per_s"]
        else:
            table[spec["adders"]].append(value["madds_per_s"])
            cycles[spec["adders"]].append(value["cycles"])

    series = [(f"{a} adders", [round(v, 1) for v in table[a]])
              for a in ADDER_COUNTS]
    series.append(("Software(50)",
                   [round(software[50], 1)] * len(TILE_COUNTS)))
    text = render_series(
        "Figure 13 — Performance scaling with tiles "
        "(million adds/s, Arria 10 @300 MHz)",
        "tiles", TILE_COUNTS, series)
    save_result("fig13_spawn_scaling", text)
    records = []
    for record in result.records:
        spec, value = record["spec"], record["value"]
        if spec["side"] == "software":
            records.append(sweep_record(
                record, "scale_micro_software",
                config={"cores": 4, "adders": spec["adders"]},
                madds_per_s=round(value["madds_per_s"], 1)))
        else:
            records.append(sweep_record(
                record, "scale_micro",
                config={"tiles": spec["tiles"], "adders": spec["adders"]},
                madds_per_s=round(value["madds_per_s"], 1)))
    save_json("fig13_spawn_scaling", records, sweep=result.summary)

    # paper shape 1: monotone scaling with tiles for every grain
    for adders in ADDER_COUNTS:
        row = table[adders]
        for a, b in zip(row, row[1:]):
            assert b >= a * 0.97, f"{adders} adders: tiles did not help"
    # paper shape 2: fine-grain hardware tasks beat the software runtime
    assert max(table[50]) > software[50]
    assert max(table[10]) > software[10]
    # paper shape 3: more adders per task -> more useful throughput
    assert max(table[50]) > max(table[10])
    # paper magnitude: peak in the >1000 Madds/s regime (paper ~1750)
    assert max(table[50]) > 1000


def test_fig13_spawn_rate_headline(benchmark, save_result, save_json,
                                   sweep_runner):
    """§V-A headline: tens of millions of spawns per second, i.e. a task
    spawned every ~10 cycles."""

    def run():
        return sweeplib.run_points(sweep_runner, [_fpga_point(10, 5)])

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    cycles = result.values[0]["cycles"]
    cycles_per_spawn = cycles / N_TASKS
    spawns_per_s = N_TASKS / (cycles / (ARRIA_MHZ * 1e6))
    text = (f"Fig 13 headline: {cycles_per_spawn:.1f} cycles/spawn "
            f"-> {spawns_per_s/1e6:.1f} M spawns/s at {ARRIA_MHZ:.0f} MHz "
            f"(paper: ~10 cycles, ~40 M spawns/s)")
    save_result("fig13_spawn_rate", text)
    save_json("fig13_spawn_rate", [sweep_record(
        result.records[0], "scale_micro",
        config={"tiles": 5, "adders": 10},
        cycles_per_spawn=round(cycles_per_spawn, 1),
        spawns_per_s=round(spawns_per_s))], sweep=result.summary)
    assert cycles_per_spawn < 15
    assert spawns_per_s > 20e6
