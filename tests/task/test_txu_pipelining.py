"""Tests for TXU behaviours: Fig 7 task pipelining, suspension at sync,
structural hazards, and spawn-network backpressure."""


from repro.accel import AcceleratorConfig, TaskUnitParams, build_accelerator
from repro.ir.types import I32

from tests.irprograms import build_fib_module, build_scale_module


def build_scale_accel(tiles=1, inflight=8, work_ops=10, queue=64):
    module = build_scale_module(work_ops=work_ops)
    config = AcceleratorConfig(unit_params={
        "scale": TaskUnitParams(ntiles=1),
        "scale.t0": TaskUnitParams(ntiles=tiles, queue_depth=queue,
                                   max_inflight_per_tile=inflight),
    })
    return build_accelerator(module, config)


class TestTaskPipelining:
    """Fig 7: multiple dynamic instances outstanding on one TXU."""

    def test_deeper_inflight_window_raises_throughput(self):
        n = 48
        cycles = {}
        for inflight in (1, 4):
            accel = build_scale_accel(inflight=inflight, work_ops=20)
            base = accel.memory.alloc_array(I32, [0] * n)
            cycles[inflight] = accel.run("scale", [base, n]).cycles
        assert cycles[4] < cycles[1] * 0.75

    def test_multiple_instances_simultaneously_in_flight(self):
        """During the run the body tile must actually hold >1 instance."""
        accel = build_scale_accel(inflight=8, work_ops=50)
        base = accel.memory.alloc_array(I32, [0] * 32)
        body_unit = accel.units[1]
        peak = 0
        root = accel.units[0]
        accel.network.host_spawn.push(
            __import__("repro.task.messages", fromlist=["SpawnMessage"])
            .SpawnMessage(dest_sid=0, args=(base, 32),
                          parent_sid=None, parent_dyid=None))
        while not root.root_done:
            accel.sim.tick()
            peak = max(peak, len(body_unit.tiles[0].instances))
            assert accel.sim.cycle < 100000
        assert peak > 1
        assert accel.memory.read_array(base, I32, 32) == [50] * 32

    def test_results_correct_regardless_of_window(self):
        for inflight in (1, 2, 8):
            accel = build_scale_accel(inflight=inflight)
            base = accel.memory.alloc_array(I32, list(range(20)))
            accel.run("scale", [base, 20])
            assert accel.memory.read_array(base, I32, 20) == [
                i + 10 for i in range(20)]


class TestSuspension:
    """Instances at a sync with outstanding children vacate the tile
    (queue state SYNC) and resume when the last child joins."""

    def test_fib_parent_suspends_and_resumes(self):
        accel = build_accelerator(build_fib_module())
        unit = accel.units[0]
        from repro.task.messages import SpawnMessage

        accel.network.host_spawn.push(SpawnMessage(
            dest_sid=0, args=(8,), parent_sid=None, parent_dyid=None))
        seen_sync = False
        while not unit.root_done:
            accel.sim.tick()
            if any(e.state == "SYNC" for e in unit.queue.entries):
                seen_sync = True
            assert accel.sim.cycle < 200000
        assert seen_sync, "no instance ever suspended at sync"
        assert unit.root_retval == 21  # fib(8)

    def test_suspended_instance_frees_tile_capacity(self):
        """With one tile and a 1-deep in-flight window, fib can only
        complete if suspended parents release the tile slot."""
        from repro.workloads import fib_reference

        config = AcceleratorConfig(unit_params={
            "fib": TaskUnitParams(ntiles=1, max_inflight_per_tile=1,
                                  queue_depth=512)})
        accel = build_accelerator(build_fib_module(), config)
        result = accel.run("fib", [10])
        assert result.retval == fib_reference(10)


class TestBackpressure:
    def test_tiny_child_queue_throttles_but_completes(self):
        module = build_scale_module()
        config = AcceleratorConfig(unit_params={
            "scale": TaskUnitParams(ntiles=1),
            "scale.t0": TaskUnitParams(ntiles=1, queue_depth=1),
        })
        accel = build_accelerator(module, config)
        base = accel.memory.alloc_array(I32, [0] * 24)
        result = accel.run("scale", [base, 24])
        assert accel.memory.read_array(base, I32, 24) == [1] * 24
        # and it costs time: compare with a roomy queue
        roomy = build_scale_accel(queue=64)
        base2 = roomy.memory.alloc_array(I32, [0] * 24)
        faster = roomy.run("scale", [base2, 24])
        assert result.cycles > faster.cycles

    def test_stats_report_expected_task_counts(self):
        accel = build_scale_accel(tiles=2)
        base = accel.memory.alloc_array(I32, [0] * 30)
        result = accel.run("scale", [base, 30])
        body = result.stats["units"]["T1:scale.t0"]
        assert body["spawns_accepted"] == 30
        assert body["completed"] == 30
        # work was actually spread over both tiles
        busy = [t["busy_cycles"] for t in body["tiles"]]
        assert all(b > 0 for b in busy)
