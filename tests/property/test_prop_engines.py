"""Property-based differential tests: event vs dense engine.

Randomly generated pipelines (producers, stalling consumers, pure-timer
components, random channel capacities) and randomly parameterised
accelerator configs must behave bit-identically under both engines —
cycle counts, delivered data, stats, and deadlock/livelock postmortems.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import DeadlockError
from repro.sim import NEVER, Component, Simulator
from repro.sim.engine import DEADLOCK_WINDOW

_SETTINGS = dict(deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


class Stage(Component):
    """A configurable pipeline stage: pops its input after a per-item
    latency and pushes downstream; declares sensitivity so the event
    engine can park it."""

    def __init__(self, name, inp, out, latency):
        super().__init__(name)
        self.inp = inp
        self.out = out
        self.latency = latency
        self._busy_until = -1
        self._item = None
        self.forwarded = 0

    def tick(self, cycle):
        if self._item is not None:
            if cycle >= self._busy_until and self.out.can_push():
                self.out.push(self._item)
                self._item = None
                self.forwarded += 1
            return
        if self.inp.can_pop():
            self._item = self.inp.pop()
            self._busy_until = cycle + self.latency

    def is_busy(self):
        return self._item is not None

    def sensitivity(self):
        return (self.inp, self.out)

    def next_wake(self, cycle):
        if self._item is not None and self._busy_until > cycle:
            return self._busy_until
        if self._item is not None:
            # waiting on out.can_push() — a sensitivity channel
            return NEVER
        return NEVER

    def stats(self):
        return {"forwarded": self.forwarded}


class Source(Component):
    def __init__(self, name, out, count, gap):
        super().__init__(name)
        self.out = out
        self.remaining = count
        self.gap = gap
        self._next_at = 0

    def tick(self, cycle):
        if self.remaining and cycle >= self._next_at and self.out.can_push():
            self.out.push(self.remaining)
            self.remaining -= 1
            self._next_at = cycle + self.gap

    def is_busy(self):
        return self.remaining > 0

    def sensitivity(self):
        return (self.out,)

    def next_wake(self, cycle):
        if not self.remaining:
            return NEVER
        return max(cycle + 1, self._next_at)


class Sink(Component):
    def __init__(self, name, inp):
        super().__init__(name)
        self.inp = inp
        self.received = []

    def tick(self, cycle):
        if self.inp.can_pop():
            self.received.append((cycle, self.inp.pop()))

    def sensitivity(self):
        return (self.inp,)

    def next_wake(self, cycle):
        return NEVER


def _build_pipeline(engine, latencies, capacities, count, gap):
    sim = Simulator(engine=engine)
    channels = [sim.add_channel(f"ch{i}", capacity=cap)
                for i, cap in enumerate(capacities)]
    sim.add_component(Source("src", channels[0], count, gap))
    for i, latency in enumerate(latencies):
        sim.add_component(Stage(f"s{i}", channels[i], channels[i + 1],
                                latency))
    sink = sim.add_component(Sink("sink", channels[-1]))
    return sim, sink


@given(latencies=st.lists(st.integers(0, 300), min_size=1, max_size=4),
       capacities=st.lists(st.integers(1, 4), min_size=2, max_size=2),
       count=st.integers(1, 12),
       gap=st.integers(1, 250))
@settings(max_examples=40, **_SETTINGS)
def test_random_pipelines_bit_identical(latencies, capacities, count, gap):
    capacities = (capacities * (len(latencies) + 1))[:len(latencies) + 1]
    outcomes = {}
    for engine in ("dense", "event"):
        sim, sink = _build_pipeline(engine, latencies, capacities, count, gap)
        cycles = sim.run(lambda: len(sink.received) == count,
                         max_cycles=500_000)
        stats = sim.stats()
        stats.pop("engine")
        outcomes[engine] = (cycles, sink.received, stats)
    assert outcomes["dense"] == outcomes["event"]


@given(capacity=st.integers(1, 3), latency=st.integers(0, 50))
@settings(max_examples=15, **_SETTINGS)
def test_starved_sink_deadlocks_identically(capacity, latency):
    outcomes = {}
    for engine in ("dense", "event"):
        sim = Simulator(engine=engine)
        inp = sim.add_channel("in", capacity=capacity)
        out = sim.add_channel("out", capacity=capacity)
        sim.add_component(Stage("stage", inp, out, latency))
        sim.add_component(Sink("sink", out))
        with pytest.raises(DeadlockError) as excinfo:
            sim.run(lambda: False, max_cycles=DEADLOCK_WINDOW * 4)
        outcomes[engine] = (excinfo.value.cycle, str(excinfo.value),
                            excinfo.value.postmortem)
    assert outcomes["dense"] == outcomes["event"]


@given(capacity=st.integers(1, 3), fill=st.integers(1, 3))
@settings(max_examples=5, **_SETTINGS)
def test_busy_livelock_fires_identically(capacity, fill):
    """Livelock path: a forever-busy component retrying a full channel
    trips the STALL_WINDOW detector at the same cycle under both
    engines, with the same postmortem."""
    from repro.sim.engine import STALL_WINDOW

    class BusyRetrier(Component):
        def __init__(self, name, out):
            super().__init__(name)
            self.out = out

        def tick(self, cycle):
            if self.out.can_push():
                self.out.push("x")

        def is_busy(self):
            return True

    fill = min(fill, capacity)
    outcomes = {}
    for engine in ("dense", "event"):
        sim = Simulator(engine=engine)
        out = sim.add_channel("out", capacity=capacity)
        sim.add_component(BusyRetrier("r", out))
        with pytest.raises(DeadlockError, match="livelock") as excinfo:
            sim.run(lambda: False, max_cycles=STALL_WINDOW * 2 + fill)
        outcomes[engine] = (excinfo.value.cycle, str(excinfo.value),
                            excinfo.value.postmortem)
    assert outcomes["dense"] == outcomes["event"]


@given(tiles=st.sampled_from([1, 2, 4]),
       mshrs=st.sampled_from([1, 4]),
       dram_latency=st.sampled_from([20, 200]),
       cache_bytes=st.sampled_from([1024, 65536]))
@settings(max_examples=8, **_SETTINGS)
def test_random_accelerator_configs_bit_identical(tiles, mshrs, dram_latency,
                                                  cache_bytes):
    """All three engines — the compiled case regenerates a specialized
    kernel per sampled topology, so this doubles as a codegen fuzz."""
    from repro.memory.cache import CacheParams
    from repro.workloads import REGISTRY

    workload = REGISTRY.get("saxpy")
    outcomes = {}
    for engine in ("dense", "event", "compiled"):
        config = workload.default_config(
            tiles, engine=engine,
            cache=CacheParams(size_bytes=cache_bytes, mshr_count=mshrs),
            dram_latency_cycles=dram_latency)
        result = workload.run(config)
        stats = dict(result.stats)
        stats.pop("engine")
        outcomes[engine] = (result.cycles, result.retval, stats,
                            result.correct)
    assert outcomes["dense"] == outcomes["event"]
    assert outcomes["dense"] == outcomes["compiled"]
    assert outcomes["event"][3]  # and the answer is right


@given(workload_name=st.sampled_from(["fibonacci", "mergesort", "dedup"]),
       tiles=st.sampled_from([1, 2, 4]),
       scale=st.integers(1, 3))
@settings(max_examples=8, **_SETTINGS)
def test_compiled_kernel_parity_across_workloads(workload_name, tiles, scale):
    """Always-hot workloads under the compiled kernel: every sampled
    (workload, tiles) pair elaborates a different netlist, so the
    generated stepper/dispatch/plumbing code paths all get exercised
    against the dense oracle."""
    from repro.workloads import REGISTRY

    workload = REGISTRY.get(workload_name)
    outcomes = {}
    for engine in ("dense", "compiled"):
        result = workload.run(workload.default_config(tiles, engine=engine),
                              scale=scale)
        stats = dict(result.stats)
        stats.pop("engine")
        outcomes[engine] = (result.cycles, result.retval, stats,
                            result.correct)
    assert outcomes["dense"] == outcomes["compiled"]
    assert outcomes["compiled"][3]
