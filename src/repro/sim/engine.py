"""The cycle engine: two-phase clock over components and channels."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import DeadlockError, SimulationError
from repro.sim.channel import Channel
from repro.sim.component import Component

#: cycles of total inactivity tolerated before declaring deadlock; must
#: exceed the worst-case quiet period of any component (DRAM latency).
DEADLOCK_WINDOW = 2048

#: cycles without ANY channel movement tolerated even while components
#: report busy — catches livelocks where stalled units retry forever
#: (e.g. a task-queue-full circular wait in deep recursion).
STALL_WINDOW = 32768


class Simulator:
    """Owns the clock, all components and all channels."""

    def __init__(self, name: str = "sim"):
        self.name = name
        self.cycle = 0
        self.components: List[Component] = []
        self.channels: List[Channel] = []
        self._idle_cycles = 0
        self._quiet_cycles = 0  # no channel movement, busy or not
        self._activity_flag = False
        #: optional per-cycle sampler (repro.obs.Observer); None keeps the
        #: hot loop at a single pointer test per cycle
        self.observer = None

    # -- construction -----------------------------------------------------

    def add_component(self, component: Component) -> Component:
        component.sim = self
        self.components.append(component)
        return component

    def add_channel(self, name: str, capacity: int = 2) -> Channel:
        channel = Channel(name, capacity)
        self.channels.append(channel)
        return channel

    def attach_observer(self, observer):
        """Install a per-cycle sampler (see :mod:`repro.obs`)."""
        self.observer = observer
        return observer

    # -- clock ---------------------------------------------------------------

    def note_activity(self):
        """Components call this when they make internal progress that does
        not show up as channel traffic (e.g. register-only dataflow firings),
        so livelock detection doesn't misfire on long compute loops."""
        self._activity_flag = True

    def tick(self):
        """Advance one cycle: all components observe start-of-cycle channel
        state, then every channel commits its handshake."""
        executed = self.cycle
        for component in self.components:
            component.tick(executed)
        moved = False
        for channel in self.channels:
            if channel.commit():
                moved = True
        self.cycle += 1
        if moved or self._activity_flag:
            self._quiet_cycles = 0
        else:
            self._quiet_cycles += 1
        self._activity_flag = False
        if moved or any(c.is_busy() for c in self.components):
            self._idle_cycles = 0
        else:
            self._idle_cycles += 1
        if self.observer is not None:
            self.observer.on_cycle(self, executed)

    def run(self, done: Callable[[], bool], max_cycles: int = 10_000_000) -> int:
        """Run until ``done()`` is true; returns the cycle count.

        Raises :class:`DeadlockError` if nothing moves for a full
        inactivity window, and :class:`SimulationError` on timeout.
        """
        start = self.cycle
        while not done():
            if self.cycle - start >= max_cycles:
                raise SimulationError(
                    f"simulation exceeded {max_cycles} cycles without finishing")
            self.tick()
            if self._idle_cycles > DEADLOCK_WINDOW:
                postmortem = self.postmortem()
                raise DeadlockError(self.cycle, self._describe_stall(),
                                    postmortem=postmortem)
            if self._quiet_cycles > STALL_WINDOW:
                postmortem = self.postmortem()
                raise DeadlockError(
                    self.cycle,
                    "components busy but no channel movement (livelock — "
                    "likely a task-queue-full circular wait; increase "
                    "queue_depth). " + self._describe_stall(),
                    postmortem=postmortem)
        return self.cycle - start

    def postmortem(self) -> dict:
        """Per-component stall attribution plus stuck-channel inventory —
        the deadlock post-mortem attached to :class:`DeadlockError`."""
        from repro.obs.observer import stall_snapshot

        return stall_snapshot(self)

    def _describe_stall(self) -> str:
        from repro.obs.observer import render_stall_snapshot

        return render_stall_snapshot(self.postmortem())

    # -- reporting --------------------------------------------------------

    def stats(self) -> Dict[str, dict]:
        out = {c.name: c.stats() for c in self.components if c.stats()}
        channels = {
            ch.name: {"pushed": ch.total_pushed, "popped": ch.total_popped,
                      "capacity": ch.capacity, "occupancy": ch.occupancy}
            for ch in self.channels if ch.total_pushed or ch.total_popped
        }
        if channels:
            out["channels"] = channels
        return out

    def __repr__(self):
        return (f"<Simulator {self.name} cycle={self.cycle} "
                f"{len(self.components)} components>")
