"""Per-block dataflow graphs: the blueprint for each TXU (Stage 2).

TAPAS generates, for every task, a dynamically scheduled dataflow pipeline
over the task's sub-program-dependence-graph (paper §III-C, Fig 6). This
module builds the per-basic-block dataflow graph: nodes are instructions,
edges are the dependencies the ready/valid handshakes must respect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import (
    GEP,
    Alloca,
    BinaryOp,
    Call,
    Cast,
    Detach,
    FCmp,
    ICmp,
    Instruction,
    Load,
    Select,
    Store,
    Sync,
)
from repro.ir.values import Value


def is_register_access(inst: Instruction) -> bool:
    """Loads/stores whose address is directly a scalar (non-frame) alloca:
    these become register-file reads/writes inside the TXU, not data-box
    traffic."""
    if isinstance(inst, Load):
        ptr = inst.pointer
    elif isinstance(inst, Store):
        ptr = inst.pointer
    else:
        return False
    return isinstance(ptr, Alloca) and not ptr.in_frame


def classify(inst: Instruction) -> str:
    """Functional-unit class of an instruction — drives latency and the
    per-operation resource costs of the area model."""
    if isinstance(inst, BinaryOp):
        if inst.op in ("mul",):
            return "mul"
        if inst.op in ("sdiv", "srem"):
            return "div"
        if inst.op in ("fadd", "fsub", "fmin", "fmax"):
            return "falu"
        if inst.op == "fmul":
            return "fmul"
        if inst.op == "fdiv":
            return "fdiv"
        return "alu"
    if isinstance(inst, (ICmp, FCmp, Select, Cast)):
        return "alu"
    if isinstance(inst, GEP):
        return "gep"
    if isinstance(inst, Alloca):
        return "nop"
    if isinstance(inst, Load):
        return "regread" if is_register_access(inst) else "load"
    if isinstance(inst, Store):
        return "regwrite" if is_register_access(inst) else "store"
    if isinstance(inst, Call):
        return "call"
    if isinstance(inst, Detach):
        return "spawn"
    if isinstance(inst, Sync):
        return "sync"
    if inst.is_terminator():
        return "control"
    return "alu"


@dataclass
class DFGNode:
    """One operation in the TXU dataflow; ``deps`` are node indices that
    must have fired (value produced / ordering satisfied) first."""

    index: int
    inst: Instruction
    kind: str
    deps: List[int] = field(default_factory=list)


class BlockDFG:
    """Dataflow graph of one basic block of one task."""

    def __init__(self, block: BasicBlock, nodes: List[DFGNode]):
        self.block = block
        self.nodes = nodes
        self.node_for_inst: Dict[Instruction, DFGNode] = {
            n.inst: n for n in nodes
        }

    def critical_path(self, latency_of) -> int:
        """Longest path through the block given ``latency_of(node) -> int``;
        the pipeline-depth proxy used by the frequency/area models."""
        finish = [0] * len(self.nodes)
        for node in self.nodes:  # nodes are in topological (program) order
            start = max((finish[d] for d in node.deps), default=0)
            finish[node.index] = start + max(1, latency_of(node))
        return max(finish, default=0)

    def __len__(self):
        return len(self.nodes)


def build_block_dfg(block: BasicBlock,
                    extra_terminator_deps: Sequence[Value] = ()) -> BlockDFG:
    """Build the dataflow graph for ``block``.

    Edges:
      * def -> use for values produced inside the block;
      * register-slot ordering (RAW/WAR/WAW) on scalar allocas;
      * conservative memory ordering: loads after the last store/call,
        stores/calls after every earlier memory op (no alias analysis —
        same position the paper takes for its dataflow pipelines);
      * the terminator additionally waits for ``extra_terminator_deps``
        (spawn-argument values marshalled at a detach).
    """
    nodes: List[DFGNode] = []
    index_of: Dict[Instruction, int] = {}

    last_store: Optional[int] = None          # last store/call node index
    loads_since_store: List[int] = []
    slot_accesses: Dict[Alloca, List[int]] = {}

    for inst in block.instructions:
        node = DFGNode(len(nodes), inst, classify(inst))
        deps = set()

        # def->use
        for op in inst.operands:
            if isinstance(op, Instruction) and op in index_of:
                deps.add(index_of[op])

        # register slot ordering
        if node.kind in ("regread", "regwrite"):
            slot = inst.pointer
            previous = slot_accesses.setdefault(slot, [])
            if node.kind == "regread":
                # RAW: after the most recent write
                for p in reversed(previous):
                    if nodes[p].kind == "regwrite":
                        deps.add(p)
                        break
            else:
                # WAR + WAW: after every earlier access
                deps.update(previous)
            previous.append(node.index)

        # memory ordering (real memory + calls)
        if node.kind == "load":
            if last_store is not None:
                deps.add(last_store)
            loads_since_store.append(node.index)
        elif node.kind in ("store", "call"):
            if last_store is not None:
                deps.add(last_store)
            deps.update(loads_since_store)
            last_store = node.index
            loads_since_store = []

        # terminator extras: marshal values for spawns, and order the
        # block exit after every outstanding memory side effect so a
        # spawned child observes the parent's stores.
        if inst.is_terminator():
            for value in extra_terminator_deps:
                if isinstance(value, Instruction) and value in index_of:
                    deps.add(index_of[value])
            if isinstance(inst, (Detach, Sync)):
                if last_store is not None:
                    deps.add(last_store)

        node.deps = sorted(deps)
        index_of[inst] = node.index
        nodes.append(node)

    return BlockDFG(block, nodes)


def build_task_dfgs(task, spawn_deps: Optional[Dict] = None) -> Dict[BasicBlock, BlockDFG]:
    """Build DFGs for every block a task owns.

    ``spawn_deps`` maps a Detach to the list of values its spawn must
    marshal (the child's arguments); the generator computes it from the
    task graph.
    """
    spawn_deps = spawn_deps or {}
    dfgs = {}
    for block in task.blocks:
        term = block.terminator
        extra = spawn_deps.get(term, ()) if term is not None else ()
        dfgs[block] = build_block_dfg(block, extra)
    return dfgs
