"""Compiled-engine specifics: codegen determinism, content-addressed
kernel caching, and the instrumentation fallback matrix.

Bit-identity of the compiled kernel against the dense oracle and the
event engine is covered by the three-engine matrix in
``tests/sim/test_engine_diff.py`` and the hypothesis parity properties
in ``tests/property/test_prop_engines.py``; this file owns everything
about *how* the kernel is produced, cached and bypassed.
"""

import pytest

import repro.exp.cache
from repro.accel import AcceleratorConfig, build_accelerator
from repro.frontend import compile_source
from repro.obs import Observer
from repro.sim.compile import (
    clear_kernel_cache,
    generate_source,
    kernel_cache_dir,
    kernel_digest,
    prepare_kernel,
)
from repro.workloads import REGISTRY

FIB = """
func fib(n: i32) -> i32 {
  if (n < 2) {
    return n;
  }
  var x: i32 = spawn fib(n - 1);
  var y: i32 = spawn fib(n - 2);
  sync;
  return x + y;
}
"""


def _build(tiles=2, source=FIB, name="fib", engine="compiled"):
    module = compile_source(source, name)
    return build_accelerator(
        module, AcceleratorConfig(default_ntiles=tiles, engine=engine))


class TestCodegenDeterminism:
    def test_same_design_yields_byte_identical_source(self):
        """Two independent elaborations of the same design must generate
        byte-identical kernel source — the precondition for
        content-addressed caching to ever hit."""
        first = generate_source(_build().sim)
        second = generate_source(_build().sim)
        assert first == second
        assert kernel_digest(first) == kernel_digest(second)

    def test_generation_is_repeatable_on_one_sim(self):
        sim = _build().sim
        assert generate_source(sim) == generate_source(sim)

    def test_different_designs_yield_different_source(self):
        assert (generate_source(_build(tiles=1).sim)
                != generate_source(_build(tiles=4).sim))


class TestKernelCache:
    def test_digest_folds_code_fingerprint(self, monkeypatch):
        """Mirrors the ResultCache discipline (tests/exp/test_cache.py):
        an edit anywhere under src/repro rolls every kernel digest, so a
        stale kernel can never be replayed against newer semantics."""
        source = generate_source(_build().sim)
        before = kernel_digest(source)
        monkeypatch.setattr(repro.exp.cache, "_fingerprint", "f" * 64)
        after = kernel_digest(source)
        assert before != after

    def test_digest_folds_source(self):
        assert (kernel_digest("cycle = 0\n")
                != kernel_digest("cycle = 1\n"))

    def test_kernel_source_mirrored_to_cache_dir(self):
        """prepare_kernel writes the generated module to
        <cache-dir>/kernels/<digest>.py for offline inspection, and the
        file content round-trips the generated source exactly."""
        sim = _build().sim
        kernel, reason = prepare_kernel(sim)
        assert reason is None and kernel is not None
        source = generate_source(sim)
        digest = sim.compiled_digest
        assert digest == kernel_digest(source)
        path = kernel_cache_dir() / (digest + ".py")
        assert path.exists()
        assert path.read_text(encoding="utf-8") == source

    def test_module_cache_reuses_compiled_module(self):
        clear_kernel_cache()
        from repro.sim import compile as compile_mod

        prepare_kernel(_build().sim)
        assert len(compile_mod._MODULES) == 1
        prepare_kernel(_build().sim)  # same design: no recompilation
        assert len(compile_mod._MODULES) == 1
        prepare_kernel(_build(tiles=4).sim)  # new design: new module
        assert len(compile_mod._MODULES) == 2


class TestFallbackMatrix:
    """Instrumentation the kernel cannot specialize routes the run
    through the event engine, with the reason recorded on
    ``Simulator.compiled_fallback`` (still bit-identical, just slower).
    docs/observability.md documents this matrix."""

    def test_plain_run_does_not_fall_back(self):
        workload = REGISTRY.get("fibonacci")
        config = workload.default_config(2, engine="compiled")
        result = workload.run(config)
        assert result.correct
        assert result.stats["engine"]["name"] == "compiled"
        assert result.stats["engine"]["compiled_fallback"] is None

    def test_observer_falls_back_to_event(self):
        accel = _build()
        kernel, reason = prepare_kernel(accel.sim)
        assert kernel is not None
        accel.sim.attach_observer(Observer())
        kernel, reason = prepare_kernel(accel.sim)
        assert kernel is None and "observer" in reason

    def test_observer_fallback_still_bit_identical(self):
        """An observed compiled run must equal an observed dense run —
        the fallback path keeps the instrumentation contract."""
        workload = REGISTRY.get("fibonacci")
        outcomes = {}
        observers = {}
        for engine in ("dense", "compiled"):
            observer = Observer()
            config = workload.default_config(2, engine=engine)
            result = workload.run(config, observer=observer)
            stats = dict(result.stats)
            engine_stats = stats.pop("engine")
            outcomes[engine] = (result.cycles, result.retval, stats)
            observers[engine] = observer
            if engine == "compiled":
                # the observer forced the event kernel underneath
                assert "observer" in engine_stats["compiled_fallback"]
        assert outcomes["dense"] == outcomes["compiled"]
        assert (observers["dense"].as_dict()
                == observers["compiled"].as_dict())

    def test_host_profile_falls_back(self):
        accel = _build()
        accel.sim.enable_host_profile()
        kernel, reason = prepare_kernel(accel.sim)
        assert kernel is None and "host profiling" in reason

    def test_unknown_component_falls_back(self):
        from repro.sim import Component, Simulator

        class Exotic(Component):
            def tick(self, cycle):
                pass

        sim = Simulator(engine="compiled")
        sim.add_component(Exotic("weird"))
        kernel, reason = prepare_kernel(sim)
        assert kernel is None and "Exotic" in reason

    def test_fallback_reason_recorded_on_run(self):
        accel = _build()
        accel.sim.attach_observer(Observer())
        module = compile_source(FIB, "fib")
        function = module.functions[0]
        accel.run(function.name, [10])
        assert accel.sim.compiled_fallback is not None
        assert "observer" in accel.sim.compiled_fallback

    def test_clean_run_records_no_fallback(self):
        accel = _build()
        module = compile_source(FIB, "fib")
        accel.run(module.functions[0].name, [10])
        assert accel.sim.compiled_fallback is None
        assert accel.sim.compiled_digest


def test_deadlock_postmortem_parity_on_generated_kernel():
    """The generated kernel embeds its own idle-window deadlock
    detector; on a design the codegen fully supports it must fail at
    the same cycle with the same message and postmortem as the dense
    oracle (the fallback path is covered in test_engine_diff.py)."""
    import glob
    import os

    from repro.cli import _default_profile_args
    from repro.errors import DeadlockError

    path = glob.glob(os.path.join(
        os.path.dirname(__file__), "..", "..", "examples", "programs",
        "deadlock_ring.cilk"))[0]
    with open(path) as handle:
        source = handle.read()
    outcomes = {}
    for engine in ("dense", "compiled"):
        module = compile_source(source, "deadlock_ring")
        accel = build_accelerator(
            module, AcceleratorConfig(default_ntiles=2, engine=engine))
        function = module.functions[0]
        args = _default_profile_args(function, accel.memory, 8)
        with pytest.raises(DeadlockError) as excinfo:
            accel.run(function.name, args)
        outcomes[engine] = (excinfo.value.cycle, str(excinfo.value),
                            excinfo.value.postmortem)
        if engine == "compiled":
            assert accel.sim.compiled_fallback is None
    assert outcomes["dense"] == outcomes["compiled"]


@pytest.mark.parametrize("engine", ["dense", "event"])
def test_membound_parity(engine):
    """The memory-bound regime (tiny cache, one MSHR, long DRAM
    latency) under the compiled kernel, against both other engines."""
    from repro.accel import ARRIA_10
    from repro.memory.cache import CacheParams

    workload = REGISTRY.get("saxpy")
    outcomes = {}
    for eng in (engine, "compiled"):
        config = workload.default_config(
            2, engine=eng, board=ARRIA_10,
            cache=CacheParams(size_bytes=1024, mshr_count=1),
            dram_latency_cycles=200)
        result = workload.run(config, scale=4)
        assert result.correct
        stats = dict(result.stats)
        stats.pop("engine")
        outcomes[eng] = (result.cycles, result.retval, stats)
    assert outcomes[engine] == outcomes["compiled"]
