"""Static determinacy-race detection: verdicts, provenance, rendering."""

import json

import pytest

from repro.analysis import analyze_module
from repro.analysis.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Diagnostic,
    DiagnosticReport,
)
from repro.frontend import compile_source

RACY_ACCUMULATOR = """
func racy_sum(a: i32*, out: i32*, n: i32) {
  cilk_for (var i: i32 = 0; i < n; i = i + 1) {
    out[0] = out[0] + a[i];
  }
}
"""

RACY_CONTINUATION = """
func racer(p: i32*) {
  spawn {
    p[0] = 1;
  }
  p[0] = 2;
  sync;
}
"""

CLEAN_DISJOINT = """
func double_all(a: i32*, n: i32) {
  cilk_for (var i: i32 = 0; i < n; i = i + 1) {
    a[i] = a[i] * 2;
  }
}
"""

CLEAN_SYNCED = """
func phased(p: i32*) {
  spawn {
    p[0] = 1;
  }
  sync;
  p[0] = 2;
}
"""

CLEAN_FIB = """
func fib(n: i32) -> i32 {
  if (n < 2) { return n; }
  var x: i32 = spawn fib(n - 1);
  var y: i32 = spawn fib(n - 2);
  sync;
  return x + y;
}
"""


def analyze(source, name="prog"):
    return analyze_module(compile_source(source, name))


class TestVerdicts:
    def test_racy_accumulator_two_definite_races(self):
        report = analyze(RACY_ACCUMULATOR, "racy_sum")
        errors = report.errors
        assert len(errors) == 2
        assert all(d.code == "TAP-RACE-001" for d in errors)
        flavors = {d.data["kind"] for d in errors}
        assert flavors == {"cross-instance"}

    def test_racy_accumulator_provenance(self):
        report = analyze(RACY_ACCUMULATOR, "racy_sum")
        diag = report.errors[0]
        assert diag.function == "racy_sum"
        assert diag.loc == 4                      # the out[0] line
        assert diag.data["spawn_line"] == 3       # the cilk_for line
        assert any("spawn site at line 3" in r for r in diag.related)
        assert diag.ops                            # dynamic-checker hooks

    def test_continuation_race_detected(self):
        report = analyze(RACY_CONTINUATION, "racer")
        errors = report.errors
        assert errors
        assert {d.data["kind"] for d in errors} == {"child-vs-continuation"}

    def test_clean_programs_have_no_findings(self):
        for name, source in (("double_all", CLEAN_DISJOINT),
                             ("phased", CLEAN_SYNCED),
                             ("fib", CLEAN_FIB)):
            report = analyze(source, name)
            assert report.max_severity() is None, \
                f"{name}: {report.render_text(name)}"

    def test_all_registered_workloads_error_free(self):
        """The paper's entire benchmark suite must pass the gate."""
        from repro.workloads import REGISTRY

        for workload in REGISTRY.all():
            report = analyze_module(workload.fresh_module())
            assert not report.errors, \
                f"{workload.name}: {report.render_text(workload.name)}"

    def test_mergesort_shared_tmp_warns(self):
        """mergesort's recursive halves share the global tmp buffer with
        symbolic bounds the affine model cannot split: warnings, and a
        known quantity of them."""
        from repro.workloads import REGISTRY

        report = analyze_module(REGISTRY.get("mergesort").fresh_module())
        warnings = report.warnings
        assert len(warnings) == 4
        assert all(d.code == "TAP-RACE-002" for d in warnings)
        roots = {d.data["root"] for d in warnings}
        assert "@tmp" in roots


class TestRendering:
    def test_text_golden(self):
        text = analyze(RACY_ACCUMULATOR, "racy_sum").render_text("racy_sum")
        assert "analysis of 'racy_sum': 2 finding(s)" in text
        assert "error[TAP-RACE-001]" in text
        assert "definite determinacy race on %out (argument)" in text
        assert "parallelism created by the spawn site at line 3" in text
        assert "help:" in text
        assert text.rstrip().endswith("2 error(s), 0 warning(s), 0 note(s)")

    def test_text_clean_golden(self):
        text = analyze(CLEAN_DISJOINT, "double_all").render_text("double_all")
        assert text == "analysis of 'double_all': clean (no findings)"

    def test_json_golden(self):
        payload = json.loads(
            analyze(RACY_ACCUMULATOR, "racy_sum").render_json("racy_sum"))
        assert payload["module"] == "racy_sum"
        assert payload["summary"] == {"errors": 2, "warnings": 0, "notes": 0}
        diag = payload["diagnostics"][0]
        assert diag["code"] == "TAP-RACE-001"
        assert diag["severity"] == "error"
        assert diag["function"] == "racy_sum"
        assert diag["data"]["verdict"] == "must"
        # ops/IR objects must not leak into the machine-readable form
        assert "ops" not in diag

    def test_errors_sort_before_warnings(self):
        report = DiagnosticReport()
        report.add(Diagnostic(code="TAP-MEM-001", message="note first"))
        report.add(Diagnostic(code="TAP-RACE-001", message="error last"))
        ordered = report.sorted()
        assert ordered[0].code == "TAP-RACE-001"

    def test_fails_thresholds(self):
        racy = analyze(RACY_ACCUMULATOR, "racy_sum")
        assert racy.fails(SEVERITY_ERROR)
        assert racy.fails(SEVERITY_WARNING)
        clean = analyze(CLEAN_DISJOINT, "double_all")
        assert not clean.fails(SEVERITY_WARNING)

        from repro.workloads import REGISTRY
        warned = analyze_module(REGISTRY.get("mergesort").fresh_module())
        assert warned.fails(SEVERITY_WARNING)
        assert not warned.fails(SEVERITY_ERROR)


class TestGate:
    def test_warn_level_blocks_definite_race(self):
        from repro.accel import AcceleratorConfig, build_accelerator
        from repro.errors import AnalysisError

        module = compile_source(RACY_ACCUMULATOR, "racy_sum")
        with pytest.raises(AnalysisError) as excinfo:
            build_accelerator(module, AcceleratorConfig(analysis_level="warn"))
        # the gate report merges both analysis layers; the refusal is
        # driven by exactly the two definite-race errors
        errors = [d for d in excinfo.value.diagnostics
                  if d.severity == "error"]
        assert len(errors) == 2
        assert all(d.code == "TAP-RACE-001" for d in errors)

    def test_warn_level_allows_clean_program(self):
        from repro.accel import AcceleratorConfig, build_accelerator

        module = compile_source(CLEAN_DISJOINT, "double_all")
        acc = build_accelerator(module, AcceleratorConfig(analysis_level="warn"))
        assert acc is not None

    def test_strict_level_blocks_warnings(self):
        from repro.accel import AcceleratorConfig, build_accelerator
        from repro.errors import AnalysisError
        from repro.workloads import REGISTRY

        with pytest.raises(AnalysisError):
            build_accelerator(REGISTRY.get("mergesort").fresh_module(),
                              AcceleratorConfig(analysis_level="strict"))

    def test_unknown_level_rejected(self):
        from repro.accel import AcceleratorConfig
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="analysis level"):
            AcceleratorConfig(analysis_level="pedantic")
