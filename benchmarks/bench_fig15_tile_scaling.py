"""Figure 15: performance scalability with 1/2/4/8 tiles per task.

Paper result: every benchmark except Dedup speeds up with tiles
(1.5-6x at 8 tiles). Dedup stays flat — its baseline is already a
four-unit pipeline and the stages are balanced. Saxpy and matrix-add
gain a step from the second tile then saturate on cache bandwidth;
Stencil is compute-heavy and keeps scaling to 8 tiles.
"""

import pytest

from repro.reports import bench_record, render_series
from repro.workloads import REGISTRY

TILES = [1, 2, 4, 8]
SCALES = {"matrix_add": 2, "image_scale": 2, "saxpy": 2, "stencil": 2,
          "dedup": 2, "mergesort": 2, "fibonacci": 2}


def sweep(name):
    workload = REGISTRY.get(name)
    cycles = {}
    engines = {}
    for tiles in TILES:
        result = workload.run(config=workload.default_config(ntiles=tiles),
                              scale=SCALES[name])
        assert result.correct, f"{name} wrong at {tiles} tiles"
        cycles[tiles] = result.cycles
        engines[tiles] = result.stats.get("engine")
    return cycles, engines


def test_fig15_tile_scaling(benchmark, save_result, save_json):
    def run():
        return {name: sweep(name) for name in REGISTRY.names()}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    data = {name: cycles for name, (cycles, _) in results.items()}
    engines = {name: engine for name, (_, engine) in results.items()}

    speedups = {
        name: [cycles[1] / cycles[t] for t in TILES]
        for name, cycles in data.items()
    }
    series = [(name, [round(s, 2) for s in speedups[name]])
              for name in REGISTRY.names()]
    text = render_series(
        "Figure 15 — Normalised performance vs tiles/task (1 tile = 1.0)",
        "tiles", TILES, series)
    save_result("fig15_tile_scaling", text)
    save_json("fig15_tile_scaling", [
        bench_record(name, config={"ntiles": tiles, "scale": SCALES[name]},
                     cycles=data[name][tiles], engine=engines[name][tiles],
                     speedup=round(data[name][1] / data[name][tiles], 2))
        for name in REGISTRY.names() for tiles in TILES])

    # paper shape: everything except dedup gains from extra tiles.
    # (Our shared L1 accepts one request/cycle, so the memory-bound codes
    # saturate slightly earlier than on the paper's AXI system — the
    # paper itself attributes their saturation to cache bandwidth.)
    for name in REGISTRY.names():
        if name == "dedup":
            continue
        assert max(speedups[name]) > 1.04, f"{name} did not scale"
    for name in ("image_scale", "stencil", "fibonacci"):
        assert max(speedups[name]) > 1.2, f"{name} scaled too weakly"

    # dedup is a balanced pipeline: nearly flat (paper: no improvement)
    assert max(speedups["dedup"]) < 1.3

    # stencil is compute-intense and scales furthest (paper: up to ~6x)
    assert speedups["stencil"][-1] > 2.5
    assert speedups["stencil"][-1] == max(
        s[-1] for s in speedups.values())

    # saxpy/matrix gain a step then saturate on memory bandwidth
    for name in ("saxpy", "matrix_add"):
        assert speedups[name][1] > 1.05          # second tile helps
        assert speedups[name][-1] < 2.0          # but saturates
