"""Natural-loop detection, used for workload characterisation (Table II)
and by the concurrency optimiser (spawner-in-loop -> deeper task queues)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Detach
from repro.passes.cfg import predecessor_map
from repro.passes.dominators import compute_dominators


@dataclass
class Loop:
    """A natural loop: ``header`` dominates the ``latch`` back edge."""

    header: BasicBlock
    latch: BasicBlock
    blocks: Set[BasicBlock] = field(default_factory=set)
    parent: "Loop" = None

    @property
    def depth(self) -> int:
        depth = 1
        current = self.parent
        while current is not None:
            depth += 1
            current = current.parent
        return depth

    def spawns_tasks(self) -> bool:
        """True if the loop body contains a detach — a parallel loop."""
        return any(isinstance(b.terminator, Detach) for b in self.blocks)

    def __repr__(self):
        return f"<Loop header={self.header.name} depth={self.depth}>"


def find_loops(function: Function) -> List[Loop]:
    """All natural loops in ``function`` with nesting links, outermost first."""
    dom = compute_dominators(function)
    preds = predecessor_map(function)
    loops: List[Loop] = []

    for block in function.blocks:
        for succ in block.successors():
            if dom.dominates(succ, block):  # back edge block -> succ
                loop = Loop(header=succ, latch=block)
                loop.blocks = _loop_body(succ, block, preds)
                loops.append(loop)

    # nesting: a loop is nested in the smallest other loop containing it
    loops.sort(key=lambda loop: len(loop.blocks), reverse=True)
    for i, inner in enumerate(loops):
        best = None
        for outer in loops:
            if outer is inner:
                continue
            if inner.blocks <= outer.blocks and (
                    best is None or len(outer.blocks) < len(best.blocks)):
                best = outer
        inner.parent = best
    return loops


def _loop_body(header: BasicBlock, latch: BasicBlock, preds) -> Set[BasicBlock]:
    """Blocks of the natural loop: header plus everything that reaches the
    latch without passing the header."""
    body = {header, latch}
    stack = [latch]
    while stack:
        block = stack.pop()
        for pred in preds.get(block, []):
            if pred not in body:
                body.add(pred)
                stack.append(pred)
    return body


def max_loop_depth(function: Function) -> int:
    loops = find_loops(function)
    return max((loop.depth for loop in loops), default=0)
