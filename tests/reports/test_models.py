"""Tests for the resource/frequency/power models against the paper's data."""

import pytest

from repro.accel import (
    ARRIA_10,
    CYCLONE_V,
    AcceleratorConfig,
    TaskUnitParams,
    build_accelerator,
)
from repro.reports import (
    TABLE4_ROWS,
    estimate_mhz,
    estimate_resources,
    fit_to_table4,
    fpga_power_watts,
    perf_per_watt_gain,
    render_series,
    render_table,
)
from repro.reports.power import ALM_F_COEF, BRAM_F_COEF, STATIC_W
from repro.workloads import REGISTRY, ScaleMicro

#: Table III (Cyclone V): (tiles, instructions) -> (MHz, ALMs, Regs, BRAM)
TABLE3 = {
    (1, 1): (185.46, 1314, 1424, 1),
    (1, 50): (178.09, 2955, 3523, 1),
    (10, 1): (153.61, 7107, 8547, 1),
    (10, 50): (159.24, 24738, 27604, 1),
}


def micro_accelerator(tiles, ins):
    w = ScaleMicro(work_ops=ins)
    cfg = AcceleratorConfig(unit_params={
        "scale": TaskUnitParams(ntiles=1),
        "scale.t0": TaskUnitParams(ntiles=tiles),
    })
    return build_accelerator(w.fresh_module(), cfg)


class TestResourceModelVsTable3:
    @pytest.mark.parametrize("config", list(TABLE3))
    def test_alms_within_25_percent(self, config):
        tiles, ins = config
        report = estimate_resources(micro_accelerator(tiles, ins))
        paper = TABLE3[config][1]
        assert abs(report.alms - paper) / paper < 0.25

    @pytest.mark.parametrize("config", list(TABLE3))
    def test_registers_within_40_percent(self, config):
        tiles, ins = config
        report = estimate_resources(micro_accelerator(tiles, ins))
        paper = TABLE3[config][2]
        assert abs(report.regs - paper) / paper < 0.40

    def test_single_bram_for_small_queues(self):
        report = estimate_resources(micro_accelerator(10, 50))
        assert report.brams == 1  # paper: one M20K for the task queue

    def test_alm_linear_in_tiles(self):
        a1 = estimate_resources(micro_accelerator(1, 50)).alms
        a10 = estimate_resources(micro_accelerator(10, 50)).alms
        per_tile = (a10 - a1) / 9
        assert 1500 < per_tile < 2800  # ~50 ops + tile overhead

    def test_breakdown_sums_to_total(self):
        report = estimate_resources(micro_accelerator(10, 50))
        assert sum(report.breakdown().values()) == report.alms

    def test_breakdown_shape_fig14(self):
        """Fig 14: at 1 op/task control dominates; at 10 tiles x 50 ops
        the tiles take over and control shrinks to a sliver."""
        small = estimate_resources(micro_accelerator(1, 1)).breakdown()
        big = estimate_resources(micro_accelerator(10, 50)).breakdown()

        def non_compute_share(b):
            total = sum(b.values())
            return (b["task_ctrl"] + b["mem_arb"] + b["misc"]) / total

        assert non_compute_share(small) > 0.35
        assert non_compute_share(big) < 0.12

    def test_recursive_queue_storage_costs_brams(self):
        """Table IV: fib/mergesort spend 62-74 M20Ks on queue state."""
        fib = REGISTRY.get("fibonacci").build()
        report = estimate_resources(fib)
        assert 30 <= report.brams <= 90

    def test_cache_brams_optional(self):
        acc = micro_accelerator(1, 1)
        without = estimate_resources(acc, include_cache=False)
        with_cache = estimate_resources(acc, include_cache=True)
        assert with_cache.brams - without.brams == 7  # 16KB / 20Kb blocks


class TestFrequencyModel:
    def test_cyclone_small_design(self):
        assert estimate_mhz(CYCLONE_V, 1314) == pytest.approx(185, rel=0.08)

    def test_cyclone_large_design(self):
        assert estimate_mhz(CYCLONE_V, 24738) == pytest.approx(159, rel=0.15)

    def test_arria_roughly_double(self):
        assert estimate_mhz(ARRIA_10, 28844) == pytest.approx(308, rel=0.08)

    def test_monotone_decreasing(self):
        assert estimate_mhz(CYCLONE_V, 1000) > estimate_mhz(CYCLONE_V, 30000)

    def test_floor(self):
        assert estimate_mhz(CYCLONE_V, 10_000_000) >= 60.0


class TestPowerModel:
    def test_stored_coefficients_match_refit(self):
        c0, c1, c2 = fit_to_table4()
        assert c0 == pytest.approx(STATIC_W, rel=1e-3)
        assert c1 == pytest.approx(ALM_F_COEF, rel=1e-3)
        assert c2 == pytest.approx(BRAM_F_COEF, rel=1e-3)

    @pytest.mark.parametrize("row", TABLE4_ROWS, ids=lambda r: r[0])
    def test_predicts_table4_within_35_percent(self, row):
        name, mhz, alms, _regs, bram, watts = row
        predicted = fpga_power_watts(alms, bram, mhz)
        assert abs(predicted - watts) / watts < 0.35

    def test_perf_per_watt_gain(self):
        # FPGA: 2x slower but 50x less power -> 25x better perf/W
        gain = perf_per_watt_gain(fpga_seconds=2.0, fpga_watts=1.0,
                                  cpu_seconds=1.0, cpu_watts=50.0)
        assert gain == pytest.approx(25.0)


class TestTableRendering:
    def test_render_table_alignment(self):
        out = render_table(["name", "val"], [["a", 1], ["bb", 22]],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len(lines) == 5

    def test_render_series(self):
        out = render_series("Fig", "x", [1, 2], [("s1", [10, 20])])
        assert "Fig" in out and "s1" in out and "20" in out
