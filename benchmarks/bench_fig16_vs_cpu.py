"""Figure 16: TAPAS accelerators vs an Intel i7 quad core.

Paper result (4 tiles vs 4 cores, same Cilk sources): Cyclone V lands at
~50% of the multicore with wins in places (matrix 0.6x, stencil 0.6x,
saxpy 0.7x, image 0.3x, dedup 1.6x, fib 0.4x, mergesort 0.06x); Arria 10
roughly doubles every ratio (dedup 3.2x best, mergesort 0.1x worst). The
two robust shapes: Dedup's hardware pipeline is the best case and
memory-bound mergesort is the worst.
"""

import sweeplib

from repro.accel import ARRIA_10, CYCLONE_V
from repro.baselines import MulticoreCPU
from repro.exp import register_evaluator
from repro.memory.backing import MainMemory
from repro.reports import (
    estimate_mhz,
    estimate_resources,
    render_table,
    sweep_record,
)
from repro.workloads import REGISTRY

SCALE = 2
PAPER_CYCLONE = {"matrix_add": 0.6, "stencil": 0.6, "saxpy": 0.7,
                 "image_scale": 0.3, "dedup": 1.6, "fibonacci": 0.4,
                 "mergesort": 0.06}
PAPER_ARRIA = {"matrix_add": 1.2, "stencil": 0.8, "saxpy": 1.2,
               "image_scale": 0.4, "dedup": 3.2, "fibonacci": 0.6,
               "mergesort": 0.1}


def _eval_fig16(spec):
    name = spec["workload"]
    workload = REGISTRY.get(name)
    config = workload.default_config(ntiles=spec["tiles"])
    accel = workload.build(config)
    prepared = workload.prepare(accel.memory, spec["scale"])
    result = accel.run(prepared.function, prepared.args)
    assert prepared.check(accel.memory, result.retval), name
    alms = estimate_resources(accel).alms

    memory = MainMemory(1 << 22)
    cpu = MulticoreCPU(workload.fresh_module(), memory)
    cpu_prep = workload.prepare(memory, spec["scale"])
    cpu_result = cpu.run(cpu_prep.function, cpu_prep.args)
    assert cpu_prep.check(memory, cpu_result.retval), name

    cpu_seconds = cpu_result.time_seconds(cpu.model)
    gains = {}
    for board in (CYCLONE_V, ARRIA_10):
        mhz = estimate_mhz(board, alms)
        fpga_seconds = result.cycles / (mhz * 1e6)
        gains[board.name] = cpu_seconds / fpga_seconds
    return {"cycles": result.cycles, "gains": gains}


register_evaluator("fig16_vs_cpu", _eval_fig16,
                   program_text=sweeplib.file_program_text(__file__))


def test_fig16_performance_vs_i7(benchmark, save_result, save_json,
                                 sweep_runner):
    points = [{"evaluator": "fig16_vs_cpu", "workload": name,
               "tiles": 4, "scale": SCALE}  # 4 tiles vs 4 cores
              for name in REGISTRY.names()]

    def run():
        return sweeplib.run_points(sweep_runner, points)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    gains = {record["spec"]["workload"]: record["value"]["gains"]
             for record in result.records}

    rows = []
    for name in REGISTRY.names():
        rows.append([name,
                     f"{gains[name][CYCLONE_V.name]:.2f}x",
                     f"{PAPER_CYCLONE[name]:.2f}x",
                     f"{gains[name][ARRIA_10.name]:.2f}x",
                     f"{PAPER_ARRIA[name]:.2f}x"])
    text = render_table(
        ["Benchmark", "CycloneV", "paper", "Arria10", "paper"],
        rows,
        title="Figure 16 — Performance vs Intel i7 (>1 means FPGA faster)")
    save_result("fig16_vs_cpu", text)
    save_json("fig16_vs_cpu", [
        sweep_record(
            record, record["spec"]["workload"],
            config={"ntiles": 4, "scale": SCALE},
            cyclone_v_gain=round(
                record["value"]["gains"][CYCLONE_V.name], 2),
            arria_10_gain=round(
                record["value"]["gains"][ARRIA_10.name], 2),
            paper_cyclone_v=PAPER_CYCLONE[record["spec"]["workload"]],
            paper_arria_10=PAPER_ARRIA[record["spec"]["workload"]])
        for record in result.records], sweep=result.summary)

    cyclone = {n: gains[n][CYCLONE_V.name] for n in gains}
    arria = {n: gains[n][ARRIA_10.name] for n in gains}

    # shape 1: dedup is among the accelerator's best cases (in our model
    # fibonacci ties it — hardware spawning flatters recursion too)
    top2 = sorted(cyclone.values())[-2:]
    assert cyclone["dedup"] >= top2[0]
    assert cyclone["dedup"] > 0.9  # beats or matches the i7
    # shape 2: memory-bound mergesort is the worst case by a wide margin
    assert arria["mergesort"] == min(arria.values())
    assert cyclone["mergesort"] < 0.2
    # shape 3: the Arria ratios improve on Cyclone (faster clock)
    for name in gains:
        assert arria[name] > cyclone[name]
    # shape 4: overall "comparable performance" — the non-mergesort
    # Cyclone ratios live in the tenths-to-~1.5x band, as in the paper
    others = [v for n, v in cyclone.items() if n != "mergesort"]
    assert all(0.1 < v < 2.5 for v in others)
    # shape 5: dedup beats the i7 outright on Arria 10 (paper: 3.2x)
    assert arria["dedup"] > 1.0
