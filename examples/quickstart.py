"""Quickstart: compile a parallel program to an accelerator and run it.

This walks the complete TAPAS flow on a tiny Cilk-style program:

    source text -> parallel IR (Tapir detach/reattach/sync)
                -> task graph (Stage 1)
                -> task units + TXU dataflow (Stage 2)
                -> parameterised accelerator (Stage 3)
                -> cycle-level execution over shared memory

Run:  python examples/quickstart.py
"""

from repro.accel import AcceleratorConfig, build_accelerator
from repro.frontend import compile_source
from repro.ir import print_module
from repro.ir.types import I32
from repro.passes import extract_tasks

SOURCE = """
// Double every element, in parallel, one task per element.
func double_all(a: i32*, n: i32) {
  cilk_for (var i: i32 = 0; i < n; i = i + 1) {
    a[i] = a[i] * 2;
  }
}
"""


def main():
    # 1. frontend: source -> parallel IR
    module = compile_source(SOURCE, "quickstart")
    print("=== Parallel IR (note the detach/reattach/sync markers) ===")
    print(print_module(module))

    # 2. stage 1: the task graph that becomes the architecture
    graph = extract_tasks(module)
    print("\n=== Task graph ===")
    print(graph.describe())

    # 3. stages 2+3: elaborate an accelerator (2 tiles per task unit)
    accel = build_accelerator(module, AcceleratorConfig(default_ntiles=2))

    # 4. host side: put data in shared memory and offload
    data = list(range(16))
    base = accel.memory.alloc_array(I32, data)
    result = accel.run("double_all", [base, len(data)])

    print("\n=== Execution ===")
    print(f"input : {data}")
    print(f"output: {accel.memory.read_array(base, I32, len(data))}")
    print(f"cycles: {result.cycles}")
    stats = result.stats
    print(f"cache : {stats['cache']['hits']} hits, "
          f"{stats['cache']['misses']} misses")
    for unit_name, unit_stats in stats["units"].items():
        print(f"{unit_name}: {unit_stats['completed']} task instances")


if __name__ == "__main__":
    main()
