"""Command-line driver: ``python -m repro <command> ...``.

Subcommands mirror the toolchain stages:

* ``compile``   — source file -> printed parallel IR
* ``taskgraph`` — source file -> task-graph summary (or DOT with --dot)
* ``analyze``   — source file -> static race/dependence diagnostics
* ``lint``      — source file -> hardware lint: value ranges/bitwidths,
  spawn-network and netlist verification (TAP-NET-*/TAP-WIDTH-* rules)
* ``emit``      — source file -> Chisel-flavoured or Verilog RTL
* ``estimate``  — source file -> resources / fmax / power per board
* ``run``       — execute a registered workload and report cycles
* ``sweep``     — expand a workload × tiles × engine grid and run it
  through the parallel sweep runner (worker processes + the
  content-addressed result cache)
* ``predict``   — static performance prediction for a source file:
  predicted cycles + ranked bottlenecks from the analytical model,
  without running any simulation engine
* ``profile``   — run a source file under the cycle profiler
* ``diff``      — run a source file under both simulation engines and
  fail unless cycle counts and stats are bit-identical
* ``workloads`` — list the paper's benchmark suite
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.accel import (
    ARRIA_10,
    CYCLONE_V,
    AcceleratorConfig,
    build_accelerator,
    generate,
)
from repro.errors import TapasError
from repro.frontend import compile_source
from repro.ir import print_module
from repro.reports import (
    estimate_mhz,
    estimate_resources,
    fpga_power_watts,
    render_table,
    task_graph_dot,
)
from repro.rtl import emit_design, emit_top_verilog
from repro.sim import ENGINES


def _load_module(path: str):
    with open(path) as handle:
        source = handle.read()
    name = os.path.splitext(os.path.basename(path))[0]
    return compile_source(source, name)


def cmd_compile(args) -> int:
    print(print_module(_load_module(args.source)))
    return 0


def cmd_taskgraph(args) -> int:
    design = generate(_load_module(args.source))
    if args.dot:
        print(task_graph_dot(design.graph))
    else:
        print(design.graph.describe())
    return 0


#: ``--fail-on`` spelling -> diagnostic severity ("note" is the render_text
#: name for info-severity findings)
_FAIL_ON = {"note": "info", "warning": "warning", "error": "error"}


def _report_exit(report, module_name: str, fmt: str, fail_on: str) -> int:
    """Shared ``analyze``/``lint`` tail: render, then exit 1 iff any
    diagnostic is at/above the ``--fail-on`` severity (0 otherwise)."""
    if fmt == "json":
        print(report.render_json(module_name))
    else:
        print(report.render_text(module_name))
    return 1 if report.fails(_FAIL_ON[fail_on]) else 0


def cmd_analyze(args) -> int:
    from repro.analysis import analyze_design

    module = _load_module(args.source)
    design = generate(module)
    report = analyze_design(design)
    return _report_exit(report, module.name, args.format, args.fail_on)


def cmd_lint(args) -> int:
    from repro.accel.accelerator import Accelerator
    from repro.analysis.lint import lint_design

    module = _load_module(args.source)
    design = generate(module)
    entry = args.entry or (module.functions[0].name if module.functions else None)
    config = AcceleratorConfig(default_ntiles=args.tiles,
                               analysis_level="none")
    if args.queue_depth:
        from repro.accel.config import TaskUnitParams

        config.unit_params = {
            task.name: TaskUnitParams(ntiles=args.tiles,
                                      queue_depth=args.queue_depth)
            for task in design.graph.tasks}
    accelerator = None
    if not args.no_netlist:
        # elaborate (but never run) the accelerator so the netlist-scope
        # rules can verify the real component/channel graph
        accelerator = Accelerator(design, config)
    report = lint_design(design, entry=entry, config=config,
                         accelerator=accelerator)
    return _report_exit(report, module.name, args.format, args.fail_on)


def cmd_emit(args) -> int:
    design = generate(_load_module(args.source))
    if args.language == "verilog":
        print(emit_top_verilog(design))
    else:
        print(emit_design(design))
    return 0


def cmd_estimate(args) -> int:
    module = _load_module(args.source)
    config = AcceleratorConfig(default_ntiles=args.tiles)
    accel = build_accelerator(module, config)
    report = estimate_resources(accel, include_cache=args.include_cache,
                                width_aware=args.width_aware)
    rows = []
    for board in (CYCLONE_V, ARRIA_10):
        mhz = estimate_mhz(board, report.alms)
        watts = fpga_power_watts(report.alms, report.brams, mhz)
        rows.append([board.name, report.alms, report.regs, report.brams,
                     round(mhz, 1), round(watts, 2),
                     round(report.chip_percent(board.alm_capacity), 1)])
    print(render_table(
        ["Board", "ALMs", "Regs", "BRAM", "MHz", "Power W", "%Chip"],
        rows, title=f"Estimate for {module.name} ({args.tiles} tiles/unit)"))
    print("\nALM breakdown:", report.breakdown())
    return 0


def _write_stats_json(path: str, workload_name: str, config, cycles: int,
                      stats: dict, observer=None, extra=None):
    """The ``--stats-json`` document: the BENCH_*.json record schema."""
    from repro.reports.benchjson import (
        bench_record,
        utilization_from_stats,
    )

    utilization = None
    stalls = None
    if observer is not None:
        utilization = {ledger.name: round(ledger.utilization(), 4)
                       for ledger in observer.component_ledgers()}
        stalls = observer.stall_breakdown()
    if utilization is None:
        utilization = utilization_from_stats(stats, cycles) or None
    record = bench_record(workload_name, config=config, cycles=cycles,
                          utilization=utilization, stalls=stalls,
                          engine=stats, **(extra or {}))
    record["stats"] = _json_safe_stats(stats)
    with open(path, "w") as handle:
        json.dump(record, handle, indent=1)
        handle.write("\n")


def _json_safe_stats(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe_stats(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe_stats(v) for k, v in value.items()}
    return str(value)


def _instrumented(args):
    """Build (trace, observer) when any observability flag is set."""
    from repro.obs import Observer
    from repro.sim import Trace

    wants = (getattr(args, "trace_out", None)
             or getattr(args, "stats_json", None)
             or getattr(args, "profile", False))
    if not wants:
        return None, None
    return Trace(enabled=True), Observer()


def cmd_run(args) -> int:
    from repro.workloads import REGISTRY

    workload = REGISTRY.get(args.workload)
    config = workload.default_config(
        ntiles=args.tiles if args.tiles else None, engine=args.engine)

    if args.check_repro:
        # zero-cost-when-disabled invariant, checked at the CLI level:
        # the same workload with full instrumentation on and off must
        # report identical cycle counts (the simulator has no hidden
        # seed, so any divergence is an instrumentation perturbation).
        from repro.obs import Observer
        from repro.sim import Trace

        plain = workload.run(config=config, scale=args.scale)
        instrumented = workload.run(
            config=workload.default_config(
                ntiles=args.tiles if args.tiles else None,
                engine=args.engine),
            scale=args.scale, trace=Trace(enabled=True), observer=Observer())
        if plain.cycles != instrumented.cycles:
            print(f"error: {workload.name}: instrumentation changed the "
                  f"cycle count ({plain.cycles} plain vs "
                  f"{instrumented.cycles} instrumented)", file=sys.stderr)
            return 1
        print(f"{workload.name}: reproducible, {plain.cycles} cycles with "
              f"observability off and on")

    trace, observer = _instrumented(args)
    result = workload.run(config=config, scale=args.scale, trace=trace,
                          observer=observer)
    status = "OK" if result.correct else "WRONG RESULT"
    print(f"{workload.name}: {status}, {result.cycles} cycles for "
          f"{result.work_items} work items "
          f"({result.cycles_per_item:.1f} cycles/item)")
    if args.profile and observer is not None:
        from repro.reports import render_profile_report

        print()
        print(render_profile_report(workload.name, result.cycles, observer,
                                    trace=trace, stats=result.stats))
    if args.trace_out:
        from repro.obs import export_chrome_trace

        export_chrome_trace(args.trace_out, observer=observer, trace=trace)
        print(f"trace written to {args.trace_out}")
    if args.stats_json:
        _write_stats_json(args.stats_json, workload.name, config,
                          result.cycles, result.stats, observer=observer,
                          extra={"work_items": result.work_items,
                                 "correct": result.correct})
        print(f"stats written to {args.stats_json}")
    if not result.correct:
        return 1
    return 0


def _parse_scales(default: int, spec: str, names):
    """``--scales fibonacci=2,saxpy=8`` → per-workload scale map."""
    if not spec:
        return default
    scales = {name: default for name in names}
    for part in spec.split(","):
        name, sep, value = part.partition("=")
        if not sep or name not in scales:
            raise TapasError(
                f"bad --scales entry {part!r} (expected <workload>=<int> "
                f"with workload in {sorted(scales)})")
        scales[name] = int(value)
    return scales


def cmd_sweep(args) -> int:
    from repro.exp import ResultCache, SweepRunner, progress_printer, workload_points
    from repro.reports.benchjson import sweep_record, write_bench_json
    from repro.workloads import REGISTRY

    names = (REGISTRY.names() if args.workloads == "all"
             else args.workloads.split(","))
    for name in names:
        REGISTRY.get(name)  # fail fast on typos, before any fan-out
    tiles = [int(t) for t in args.tiles.split(",")]
    engines = args.engines.split(",")
    scales = _parse_scales(args.scale, args.scales, names)
    points = workload_points(names, tiles=tiles, scales=scales,
                             engines=engines, evaluator=args.evaluator)

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    progress = progress_printer() if sys.stderr.isatty() else None
    runner = SweepRunner(jobs=args.jobs, cache=cache, progress=progress)
    result = runner.run(points)

    rows = []
    for record in result.records:
        spec = record["spec"]
        engine = spec["engine"]
        if record["status"] == "ok":
            value = record["value"]
            outcome = value["cycles"]
            engine = value.get("engine") or engine
        else:
            outcome = f"ERROR: {record['error']['type']}"
        rows.append([spec["workload"], spec["tiles"], engine,
                     spec["scale"], outcome,
                     "hit" if record["cache_hit"] else "miss",
                     round(record["seconds"], 3)])
    summary = result.summary
    print(render_table(
        ["Workload", "Tiles", "Engine", "Scale", "Cycles", "Cache", "s"],
        rows,
        title=f"Sweep: {summary['points']} points, {summary['jobs']} "
              f"job(s), {summary['wall_seconds']:.2f}s wall, "
              f"{summary['cache_hits']} cache hit(s), "
              f"{summary['errors']} error(s)"))
    if args.out:
        records = [
            sweep_record(record, record["spec"]["workload"],
                         config={"ntiles": record["spec"]["tiles"],
                                 "engine": record["spec"]["engine"],
                                 "scale": record["spec"]["scale"]})
            for record in result.records]
        write_bench_json(args.out, "sweep", records, sweep=summary)
        print(f"results written to {args.out}")
    return 1 if summary["errors"] else 0


def _default_profile_args(function, memory, size: int):
    """Synthesise deterministic entry arguments for ``repro profile``.

    Pointer parameters get ``size``-element arrays (integer arrays are
    filled with ``size`` so length-through-memory idioms stay in bounds,
    float arrays with a small ramp); integer scalars get ``size``; float
    scalars get 2.0.
    """
    from repro.ir.types import FloatType, PointerType

    args = []
    for arg in function.arguments:
        type_ = arg.type
        if isinstance(type_, PointerType):
            if isinstance(type_.pointee, FloatType):
                values = [0.5 * i for i in range(size)]
            else:
                values = [size] * size
            args.append(memory.alloc_array(type_.pointee, values))
        elif isinstance(type_, FloatType):
            args.append(2.0)
        else:
            args.append(size)
    return args


def cmd_predict(args) -> int:
    """Static performance prediction — no engine, no run."""
    from repro.analysis.perf import PerfModel
    from repro.memory.backing import MainMemory

    module = _load_module(args.source)
    function = (module.function(args.entry) if args.entry
                else (module.functions[0] if module.functions else None))
    if function is None:
        print("error: no entry function"
              + (f" named {args.entry!r}" if args.entry else "")
              + f" in {args.source}", file=sys.stderr)
        return 1

    config = AcceleratorConfig(default_ntiles=args.tiles)
    model = PerfModel(module, config=config)
    entry_args = _default_profile_args(function, MainMemory(), args.size)
    prediction = model.predict(entry=function.name, config=config,
                               args=entry_args, size=args.size)

    if args.format == "json":
        payload = prediction.as_dict()
        payload["source"] = args.source
        payload["tiles"] = args.tiles
        payload["size"] = args.size
        text = json.dumps(payload, indent=1)
    else:
        text = prediction.render_text()
    print(text)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(json.dumps(prediction.as_dict(), indent=1) + "\n")
        print(f"prediction written to {args.out}")
    return 0


def cmd_profile(args) -> int:
    from repro.obs import Observer, export_chrome_trace
    from repro.reports import render_profile_report
    from repro.sim import Trace

    module = _load_module(args.source)
    function = (module.function(args.entry) if args.entry
                else (module.functions[0] if module.functions else None))
    if function is None:
        print("error: no entry function"
              + (f" named {args.entry!r}" if args.entry else "")
              + f" in {args.source}", file=sys.stderr)
        return 1

    config = AcceleratorConfig(default_ntiles=args.tiles, engine=args.engine)
    trace = Trace(enabled=True)
    observer = Observer()
    accel = build_accelerator(module, config, trace=trace, observer=observer)
    entry_args = _default_profile_args(function, accel.memory, args.size)
    result = accel.run(function.name, entry_args)

    print(render_profile_report(f"{module.name}:{function.name}",
                                result.cycles, observer, trace=trace,
                                stats=result.stats))
    if result.retval is not None:
        print(f"\nreturn value: {result.retval}")
    if args.trace_out:
        export_chrome_trace(args.trace_out, observer=observer, trace=trace)
        print(f"trace written to {args.trace_out}")
    if args.stats_json:
        _write_stats_json(args.stats_json, f"{module.name}:{function.name}",
                          config, result.cycles, result.stats,
                          observer=observer)
        print(f"stats written to {args.stats_json}")
    return 0


def cmd_diff(args) -> int:
    """Differential run: dense vs event engine on one source file.

    The event engine's contract is bit-identical cycle counts and
    architectural stats against the dense oracle; this command checks it
    end to end on an arbitrary ``.cilk`` source (CI runs it over every
    file in ``examples/programs/``).
    """
    module = _load_module(args.source)
    function = (module.function(args.entry) if args.entry
                else (module.functions[0] if module.functions else None))
    if function is None:
        print("error: no entry function"
              + (f" named {args.entry!r}" if args.entry else "")
              + f" in {args.source}", file=sys.stderr)
        return 1

    outcomes = {}
    for engine in ("dense", "event"):
        config = AcceleratorConfig(default_ntiles=args.tiles, engine=engine)
        accel = build_accelerator(module, config)
        entry_args = _default_profile_args(function, accel.memory, args.size)
        result = accel.run(function.name, entry_args)
        stats = dict(result.stats)
        stats.pop("engine", None)  # host-side numbers legitimately differ
        outcomes[engine] = (result.cycles, result.retval, stats)

    dense, event = outcomes["dense"], outcomes["event"]
    label = f"{module.name}:{function.name}"
    if dense != event:
        print(f"error: {label}: engines diverge "
              f"(dense {dense[0]} cycles, event {event[0]} cycles"
              + ("" if dense[1:] == event[1:] else "; retval/stats differ")
              + ")", file=sys.stderr)
        return 1
    print(f"{label}: engines agree, {dense[0]} cycles "
          f"(retval {dense[1]!r})")
    return 0


def cmd_workloads(_args) -> int:
    from repro.workloads import REGISTRY

    rows = [[w.name, w.challenge, w.memory_pattern, w.paper_tiles]
            for w in REGISTRY.all()]
    print(render_table(["Name", "HLS challenge", "Memory", "Tiles (Table IV)"],
                       rows, title="Benchmark suite (paper Table II)"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TAPAS reproduction toolchain (MICRO 2018)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="print the parallel IR for a source file")
    p.add_argument("source")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("taskgraph", help="show the extracted task graph")
    p.add_argument("source")
    p.add_argument("--dot", action="store_true", help="emit GraphViz DOT")
    p.set_defaults(func=cmd_taskgraph)

    p = sub.add_parser("analyze",
                       help="static determinacy-race / dependence analysis")
    p.add_argument("source")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--fail-on", choices=["note", "warning", "error"],
                   default="error",
                   help="exit 1 if any diagnostic at or above this severity "
                        "is reported, 0 otherwise")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "lint",
        help="hardware lint: bitwidth inference + netlist verification")
    p.add_argument("source")
    p.add_argument("--entry", help="entry function (default: first function)")
    p.add_argument("--tiles", type=int, default=1)
    p.add_argument("--queue-depth", type=int, default=0,
                   help="override every task-queue depth (exercises the "
                        "cycle-buffering rule)")
    p.add_argument("--no-netlist", action="store_true",
                   help="design-scope rules only; skip elaborating the "
                        "component netlist")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--fail-on", choices=["note", "warning", "error"],
                   default="error",
                   help="exit 1 if any diagnostic at or above this severity "
                        "is reported, 0 otherwise")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("emit", help="emit generated RTL")
    p.add_argument("source")
    p.add_argument("--language", choices=["chisel", "verilog"],
                   default="chisel")
    p.set_defaults(func=cmd_emit)

    p = sub.add_parser("estimate", help="resource/fmax/power estimate")
    p.add_argument("source")
    p.add_argument("--tiles", type=int, default=1)
    p.add_argument("--include-cache", action="store_true")
    p.add_argument("--width-aware", action="store_true",
                   help="size integer datapaths and Args RAM by the "
                        "inferred value ranges instead of declared widths")
    p.set_defaults(func=cmd_estimate)

    p = sub.add_parser("run", help="run a registered workload")
    p.add_argument("workload")
    p.add_argument("--tiles", type=int, default=0)
    p.add_argument("--scale", type=int, default=1)
    p.add_argument("--profile", action="store_true",
                   help="print the cycle-accounting profile report")
    p.add_argument("--trace-out", metavar="FILE",
                   help="write a Perfetto/chrome://tracing JSON trace")
    p.add_argument("--stats-json", metavar="FILE",
                   help="write cycles/utilization/stall stats as JSON")
    p.add_argument("--check-repro", action="store_true",
                   help="run twice (observability off and on) and fail if "
                        "cycle counts diverge")
    p.add_argument("--engine", choices=list(ENGINES), default="event",
                   help="simulation kernel (default: event)")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "sweep",
        help="run a workload/tiles/engine grid through the sweep runner")
    p.add_argument("--workloads", default="all",
                   help="comma-separated workload names, or 'all' "
                        "(default: all)")
    p.add_argument("--tiles", default="1",
                   help="comma-separated tile counts (default: 1)")
    p.add_argument("--evaluator", choices=["workload", "static"],
                   default="workload",
                   help="who computes each point: the simulator "
                        "(workload) or the analytical model (static)")
    p.add_argument("--engines", default="event",
                   help="comma-separated engines (default: event)")
    p.add_argument("--scale", type=int, default=1,
                   help="problem scale applied to every workload")
    p.add_argument("--scales", default="",
                   help="per-workload overrides, e.g. fibonacci=2,saxpy=8")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (default: 1, inline)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="result-cache root (default: $REPRO_CACHE_DIR "
                        "or ~/.cache/repro)")
    p.add_argument("--no-cache", action="store_true",
                   help="recompute every point, read/write no cache")
    p.add_argument("--out", metavar="FILE",
                   help="write the schema-3 results document as JSON")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "predict",
        help="static performance prediction (no simulation run)")
    p.add_argument("source")
    p.add_argument("--entry", help="entry function (default: first function)")
    p.add_argument("--tiles", type=int, default=1)
    p.add_argument("--size", type=int, default=12,
                   help="synthetic input size (pointer args get arrays "
                        "of this length; also the fallback trip count)")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--out", metavar="FILE",
                   help="also write the prediction JSON to FILE")
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("profile",
                       help="run a source file under the cycle profiler")
    p.add_argument("source")
    p.add_argument("--entry", help="entry function (default: first function)")
    p.add_argument("--tiles", type=int, default=1)
    p.add_argument("--size", type=int, default=12,
                   help="synthesized input size / scalar value (default 12)")
    p.add_argument("--trace-out", metavar="FILE",
                   help="write a Perfetto/chrome://tracing JSON trace")
    p.add_argument("--stats-json", metavar="FILE",
                   help="write cycles/utilization/stall stats as JSON")
    p.add_argument("--engine", choices=list(ENGINES), default="event",
                   help="simulation kernel (default: event)")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("diff",
                       help="check dense and event engines agree bit-exactly")
    p.add_argument("source")
    p.add_argument("--entry", help="entry function (default: first function)")
    p.add_argument("--tiles", type=int, default=1)
    p.add_argument("--size", type=int, default=12,
                   help="synthesized input size / scalar value (default 12)")
    p.set_defaults(func=cmd_diff)

    p = sub.add_parser("workloads", help="list the benchmark suite")
    p.set_defaults(func=cmd_workloads)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except TapasError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
