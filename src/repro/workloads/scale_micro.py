"""The Fig 12 scalability microbenchmark: a parallel loop of tiny tasks.

§V-A varies the work per task ("10 adders" ... "50 adders") and the
number of worker tiles to measure spawn-rate scaling (Fig 13) and
resource utilisation (Table III / Fig 14)."""

from __future__ import annotations

from repro.ir.types import I32
from repro.workloads.base import PreparedRun, Workload


def scale_source(work_ops: int) -> str:
    """Generate the microbenchmark with ``work_ops`` chained adders —
    a pure dataflow add chain, like the paper's "10 adders ... 50 adders"."""
    chain = " + 1" * max(1, work_ops)
    return f"""
    func scale(a: i32*, n: i32) {{
      cilk_for (var i: i32 = 0; i < n; i = i + 1) {{
        a[i] = a[i]{chain};
      }}
    }}
    """


class ScaleMicro(Workload):
    name = "scale_micro"
    entry = "scale"
    challenge = "Fine-grain tasks"
    memory_pattern = "Regular"
    paper_tiles = 1

    def __init__(self, work_ops: int = 10):
        self.work_ops = work_ops
        self.source = scale_source(work_ops)

    def default_n(self, scale: int) -> int:
        return 64 * scale

    def prepare(self, memory, scale: int = 1) -> PreparedRun:
        n = self.default_n(scale)
        data = list(range(n))
        expected = [v + self.work_ops for v in data]
        base = memory.alloc_array(I32, data)

        def check(mem, _retval):
            return mem.read_array(base, I32, n) == expected

        return PreparedRun(self.entry, [base, n], check,
                           work_items=n * self.work_ops)

    @property
    def adds_per_item(self) -> int:
        return self.work_ops
