"""Differential testing on randomly generated *structured* programs.

Random straight-line code, conditionals and bounded loops over locals
and one array — executed by the full accelerator (TXU dataflow through
the cache) and by the CPU interpreter. The two engines share the
frontend and operation semantics but nothing else (scheduling, memory
system, suspension, register files all differ), so agreement here pins
the execution model end to end.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.accel import build_accelerator
from repro.baselines import MulticoreCPU
from repro.frontend import compile_source
from repro.ir.types import I32
from repro.memory.backing import MainMemory

ARRAY_LEN = 8
_VARS = ["x", "y", "z"]


@st.composite
def expressions(draw, depth=0):
    """A random i32 expression over locals x,y,z and array a (masked)."""
    choices = ["var", "lit", "elem"]
    if depth < 2:
        choices += ["bin", "bin", "bin"]
    kind = draw(st.sampled_from(choices))
    if kind == "var":
        return draw(st.sampled_from(_VARS))
    if kind == "lit":
        return str(draw(st.integers(-50, 50)))
    if kind == "elem":
        inner = draw(st.sampled_from(_VARS + ["0", "1"]))
        return f"a[({inner}) & {ARRAY_LEN - 1}]"
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
    lhs = draw(expressions(depth=depth + 1))
    rhs = draw(expressions(depth=depth + 1))
    return f"({lhs} {op} {rhs})"


@st.composite
def statements(draw, depth=0):
    kinds = ["assign", "assign", "store", "if"]
    if depth < 1:
        kinds.append("loop")
    kind = draw(st.sampled_from(kinds))
    if kind == "assign":
        target = draw(st.sampled_from(_VARS))
        return f"{target} = {draw(expressions())};"
    if kind == "store":
        index = draw(st.sampled_from(_VARS + ["2", "5"]))
        return f"a[({index}) & {ARRAY_LEN - 1}] = {draw(expressions())};"
    if kind == "if":
        cond_op = draw(st.sampled_from(["<", ">", "==", "!="]))
        cond = f"{draw(expressions())} {cond_op} {draw(expressions())}"
        then_body = draw(statements(depth=depth + 1))
        if draw(st.booleans()):
            else_body = draw(statements(depth=depth + 1))
            return f"if ({cond}) {{ {then_body} }} else {{ {else_body} }}"
        return f"if ({cond}) {{ {then_body} }}"
    # bounded loop: always terminates
    trips = draw(st.integers(1, 4))
    body = draw(statements(depth=depth + 1))
    loop_var = f"i{depth}"
    return (f"for (var {loop_var}: i32 = 0; {loop_var} < {trips}; "
            f"{loop_var} = {loop_var} + 1) {{ {body} }}")


@st.composite
def programs(draw):
    body = "\n  ".join(draw(st.lists(statements(), min_size=1, max_size=5)))
    return f"""
    func f(a: i32*, x0: i32, y0: i32) -> i32 {{
      var x: i32 = x0;
      var y: i32 = y0;
      var z: i32 = 0;
      {body}
      return x + y * 3 + z * 5;
    }}
    """


class TestStructuredDifferential:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(programs(),
           st.lists(st.integers(-100, 100), min_size=ARRAY_LEN,
                    max_size=ARRAY_LEN),
           st.integers(-100, 100), st.integers(-100, 100))
    def test_accelerator_matches_cpu_interpreter(self, source, data, x0, y0):
        module_a = compile_source(source, "prog_a")
        accel = build_accelerator(module_a)
        base_a = accel.memory.alloc_array(I32, data)
        accel_result = accel.run("f", [base_a, x0, y0])
        accel_array = accel.memory.read_array(base_a, I32, ARRAY_LEN)

        memory = MainMemory(1 << 20)
        cpu = MulticoreCPU(compile_source(source, "prog_c"), memory)
        base_c = memory.alloc_array(I32, data)
        cpu_result = cpu.run("f", [base_c, x0, y0])
        cpu_array = memory.read_array(base_c, I32, ARRAY_LEN)

        assert accel_result.retval == cpu_result.retval, source
        assert accel_array == cpu_array, source
