"""Property tests for the memory substrate: backing store and cache.

The cache invariant is the important one: under ANY interleaving of
loads and stores, the data observed through the cache matches a flat
reference model — timing may vary, values may not.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.memory import Cache, CacheParams, DRAMModel, MainMemory, MemRequest
from repro.sim import Simulator

REGION = 512  # word-addressable test window


class TestBackingStore:
    @given(st.lists(st.tuples(st.integers(0, REGION - 1),
                              st.integers(-(2 ** 31), 2 ** 31 - 1)),
                    max_size=60))
    def test_writes_then_reads_match_dict_model(self, operations):
        from repro.ir.types import I32

        mem = MainMemory(1 << 16)
        base = mem.alloc(REGION * 4)
        model = {}
        for slot, value in operations:
            mem.write_value(base + slot * 4, I32, value)
            model[slot] = value
        for slot, value in model.items():
            assert mem.read_value(base + slot * 4, I32) == value

    @given(st.lists(st.integers(1, 64), min_size=1, max_size=20))
    def test_allocations_never_overlap(self, sizes):
        mem = MainMemory(1 << 16)
        regions = []
        for size in sizes:
            base = mem.alloc(size)
            for (other_base, other_size) in regions:
                assert base >= other_base + other_size or \
                    base + size <= other_base
            regions.append((base, size))


def _mem_op(draw_slot, draw_val, is_store):
    return st.tuples(st.just(is_store), draw_slot, draw_val)


class TestCacheCoherence:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(
        st.tuples(st.booleans(),                       # store?
                  st.integers(0, REGION - 1),          # word slot
                  st.integers(0, 2 ** 32 - 1)),        # raw value
        min_size=1, max_size=40),
        st.sampled_from([1, 2, 4]),                    # MSHRs
        st.sampled_from([64, 256]))                    # cache bytes
    def test_any_interleaving_matches_flat_model(self, ops, mshrs, size):
        params = CacheParams(size_bytes=size, line_bytes=32,
                             associativity=2, mshr_count=mshrs)
        sim = Simulator()
        mem = MainMemory(1 << 16)
        req = sim.add_channel("req", 4)
        resp = sim.add_channel("resp", 4)
        dram_req = sim.add_channel("dq", 4)
        dram_resp = sim.add_channel("dr", 4)
        sim.add_component(Cache("L1", params, mem, req, resp,
                                dram_req, dram_resp))
        sim.add_component(DRAMModel("D", dram_req, dram_resp, latency=11))
        base = mem.alloc(REGION * 4, align=32)

        model = {}
        observed = {}
        pending = []
        for tag, (is_store, slot, value) in enumerate(ops):
            if is_store:
                model[slot] = value
                pending.append(MemRequest(tag=(tag, None), op="store",
                                          addr=base + slot * 4, size=4,
                                          data=value))
            else:
                pending.append(MemRequest(tag=(tag, slot), op="load",
                                          addr=base + slot * 4, size=4))
        expected_responses = len(pending)
        got = 0
        guard = 0
        while got < expected_responses:
            if pending and req.can_push():
                req.push(pending.pop(0))
            if resp.can_pop():
                message = resp.pop()
                tag, slot = message.tag
                if slot is not None:
                    observed[tag] = (slot, message.data)
                got += 1
            sim.tick()
            guard += 1
            assert guard < 100_000, "cache harness timed out"

        # loads issued in order observe the latest prior store
        replay = {}
        for tag, (is_store, slot, value) in enumerate(ops):
            if is_store:
                replay[slot] = value
            else:
                seen_slot, seen_value = observed[tag]
                assert seen_slot == slot
                assert seen_value == replay.get(slot, 0)
        # final memory state matches the model
        for slot, value in model.items():
            assert mem.read_int(base + slot * 4, 4, signed=False) == value
