"""Registered ready/valid channels — the latency-insensitive glue.

TAPAS inserts decoupled handshaking (ready+valid+data) between every pair
of communicating hardware blocks (paper §III-C, Fig 6). A
:class:`Channel` models a Chisel ``Queue``-backed Decoupled interface:

* pushes performed in cycle *N* become visible to the consumer in cycle
  *N+1* (one register stage of forward latency);
* a pop frees its slot for the producer in the next cycle;
* at most one push and one pop per cycle (single producer/consumer —
  arbiters and demuxes provide fan-in/fan-out).

Reads during a cycle always observe start-of-cycle state, which makes the
two-phase simulation order-independent and deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.errors import SimulationError


class Channel:
    """Bounded FIFO with registered handshake semantics.

    ``__slots__`` keeps the per-instance footprint flat and makes the
    push/pop/commit hot path (executed once per moving channel per
    cycle) a slot load instead of a dict lookup.
    """

    __slots__ = ("name", "capacity", "_items", "_pending_push",
                 "_pending_pop", "total_pushed", "total_popped", "sim",
                 "_dirty", "_subscribers")

    def __init__(self, name: str, capacity: int = 2):
        if capacity < 1:
            raise SimulationError(f"channel {name}: capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._pending_push: Optional[Any] = None
        self._pending_pop = False
        self.total_pushed = 0
        self.total_popped = 0
        #: owning simulator (set by Simulator.add_channel); lets the event
        #: engine commit only the channels touched this cycle
        self.sim = None
        self._dirty = False
        #: event-aware components woken when this channel moves
        self._subscribers: list = []

    def _mark_dirty(self):
        if not self._dirty and self.sim is not None:
            self._dirty = True
            self.sim._dirty_channels.append(self)

    # -- producer side -------------------------------------------------------

    def can_push(self) -> bool:
        """Space available at the start of this cycle (``ready``)."""
        return len(self._items) < self.capacity and self._pending_push is None

    def push(self, item: Any):
        if self._pending_push is not None:
            raise SimulationError(
                f"channel {self.name}: two pushes in one cycle")
        if len(self._items) >= self.capacity:
            raise SimulationError(
                f"channel {self.name}: push into full channel")
        self._pending_push = item
        self._mark_dirty()

    # -- consumer side -------------------------------------------------------

    def can_pop(self) -> bool:
        """Data available at the start of this cycle (``valid``)."""
        return bool(self._items) and not self._pending_pop

    def peek(self) -> Any:
        if not self._items:
            raise SimulationError(f"channel {self.name}: peek on empty channel")
        return self._items[0]

    def pop(self) -> Any:
        if self._pending_pop:
            raise SimulationError(
                f"channel {self.name}: two pops in one cycle")
        if not self._items:
            raise SimulationError(f"channel {self.name}: pop from empty channel")
        self._pending_pop = True
        self._mark_dirty()
        return self._items[0]

    # -- clock edge -----------------------------------------------------------

    def commit(self) -> bool:
        """Apply this cycle's push/pop; returns True if anything moved."""
        moved = False
        self._dirty = False
        if self._pending_pop:
            self._items.popleft()
            self.total_popped += 1
            self._pending_pop = False
            moved = True
        if self._pending_push is not None:
            self._items.append(self._pending_push)
            self.total_pushed += 1
            self._pending_push = None
            moved = True
        return moved

    def __len__(self):
        return len(self._items)

    @property
    def occupancy(self) -> int:
        return len(self._items)

    def __repr__(self):
        return f"<Channel {self.name} {len(self._items)}/{self.capacity}>"
