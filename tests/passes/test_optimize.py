"""Tests for the optimisation pipeline (constant folding, CSE, DCE)."""

import pytest

from repro.ir import Function, IRBuilder, Module, const, verify_function
from repro.ir.types import I32, VOID, ptr
from repro.ir.values import Constant
from repro.passes import (
    common_subexpression_elimination,
    constant_fold,
    eliminate_dead_code,
    optimize_function,
    optimize_module,
)

from tests.irprograms import build_matrix_add_module, build_scale_module


def count_ops(function, opcode):
    return sum(1 for i in function.instructions() if i.opcode == opcode)


class TestConstantFolding:
    def test_folds_constant_chain(self):
        f = Function("f", [], [], I32)
        b = IRBuilder(f.add_block("entry"))
        x = b.add(const(2), const(3))
        y = b.mul(x, const(4))
        b.ret(y)
        folded = constant_fold(f)
        assert folded == 2
        verify_function(f)
        ret = f.entry.terminator
        assert isinstance(ret.value, Constant)
        assert ret.value.value == 20

    def test_folds_comparison_and_select(self):
        f = Function("f", [], [], I32)
        b = IRBuilder(f.add_block("entry"))
        c = b.icmp("slt", const(1), const(2))
        s = b.select(c, const(10), const(20))
        b.ret(s)
        constant_fold(f)
        assert f.entry.terminator.value.value == 10

    def test_division_by_zero_left_alone(self):
        f = Function("f", [], [], I32)
        b = IRBuilder(f.add_block("entry"))
        q = b.sdiv(const(1), const(0))
        b.ret(q)
        assert constant_fold(f) == 0  # runtime's problem, not the folder's
        assert count_ops(f, "sdiv") == 1

    def test_non_constant_operands_untouched(self):
        f = Function("f", [I32], ["x"], I32)
        b = IRBuilder(f.add_block("entry"))
        y = b.add(f.arguments[0], const(1))
        b.ret(y)
        assert constant_fold(f) == 0


class TestDCE:
    def test_removes_unused_pure_ops(self):
        f = Function("f", [I32], ["x"], I32)
        b = IRBuilder(f.add_block("entry"))
        b.add(f.arguments[0], const(1))     # dead
        b.mul(f.arguments[0], const(2))     # dead
        live = b.sub(f.arguments[0], const(3))
        b.ret(live)
        removed = eliminate_dead_code(f)
        assert removed == 2
        assert count_ops(f, "add") == 0
        assert count_ops(f, "sub") == 1
        verify_function(f)

    def test_removes_transitively_dead_chains(self):
        f = Function("f", [I32], ["x"], VOID)
        b = IRBuilder(f.add_block("entry"))
        a = b.add(f.arguments[0], const(1))
        b.mul(a, const(2))  # dead, and then `a` becomes dead
        b.ret()
        assert eliminate_dead_code(f) == 2

    def test_memory_ops_never_removed(self):
        f = Function("f", [ptr(I32)], ["p"], VOID)
        b = IRBuilder(f.add_block("entry"))
        b.load(f.arguments[0])   # unused load: stays (it is not _PURE)
        b.store(const(1), f.arguments[0])
        b.ret()
        assert eliminate_dead_code(f) == 0
        assert count_ops(f, "load") == 1
        assert count_ops(f, "store") == 1


class TestCSE:
    def test_shares_duplicate_ops(self):
        f = Function("f", [I32, I32], ["x", "y"], I32)
        b = IRBuilder(f.add_block("entry"))
        a1 = b.add(f.arguments[0], f.arguments[1])
        a2 = b.add(f.arguments[0], f.arguments[1])  # duplicate
        total = b.mul(a1, a2)
        b.ret(total)
        shared = common_subexpression_elimination(f)
        assert shared == 1
        assert count_ops(f, "add") == 1
        mul = next(i for i in f.instructions() if i.opcode == "mul")
        assert mul.operands[0] is mul.operands[1]
        verify_function(f)

    def test_commutative_ops_matched_either_order(self):
        f = Function("f", [I32, I32], ["x", "y"], I32)
        b = IRBuilder(f.add_block("entry"))
        a1 = b.add(f.arguments[0], f.arguments[1])
        a2 = b.add(f.arguments[1], f.arguments[0])
        b.ret(b.xor(a1, a2))
        assert common_subexpression_elimination(f) == 1

    def test_non_commutative_order_respected(self):
        f = Function("f", [I32, I32], ["x", "y"], I32)
        b = IRBuilder(f.add_block("entry"))
        a1 = b.sub(f.arguments[0], f.arguments[1])
        a2 = b.sub(f.arguments[1], f.arguments[0])
        b.ret(b.xor(a1, a2))
        assert common_subexpression_elimination(f) == 0

    def test_loads_never_shared(self):
        f = Function("f", [ptr(I32)], ["p"], I32)
        b = IRBuilder(f.add_block("entry"))
        l1 = b.load(f.arguments[0])
        l2 = b.load(f.arguments[0])  # may read a different value later
        b.ret(b.add(l1, l2))
        assert common_subexpression_elimination(f) == 0

    def test_cse_does_not_cross_blocks(self):
        f = Function("f", [I32], ["x"], VOID)
        entry = f.add_block("entry")
        other = f.add_block("other")
        b = IRBuilder(entry)
        b.add(f.arguments[0], const(1))
        b.br(other)
        b.position_at_end(other)
        dup = b.add(f.arguments[0], const(1))
        b.store(dup, b.alloca(I32))
        b.ret()
        assert common_subexpression_elimination(f) == 0


class TestPipeline:
    def test_fixpoint_combines_passes(self):
        """CSE exposes dead code; folding exposes more CSE — the driver
        iterates to a fixpoint."""
        f = Function("f", [I32], ["x"], I32)
        b = IRBuilder(f.add_block("entry"))
        k = b.add(const(1), const(2))         # folds to 3
        a1 = b.add(f.arguments[0], k)
        a2 = b.add(f.arguments[0], k)         # CSE after fold
        b.mul(a2, const(0))                   # dead
        b.ret(a1)
        counts = optimize_function(f)
        assert counts["folded"] >= 1
        assert counts["cse"] >= 1
        assert counts["dce"] >= 1
        verify_function(f)

    def test_workload_correctness_preserved(self):
        """Optimised modules still compute the right answers end to end."""
        from repro.accel import build_accelerator
        from repro.ir.types import I32 as I32_

        module = build_matrix_add_module(rows_stride=6)
        optimize_module(module)
        acc = build_accelerator(module)
        n = 6
        A = acc.memory.alloc_array(I32_, range(36))
        B = acc.memory.alloc_array(I32_, range(36))
        C = acc.memory.alloc_array(I32_, [0] * 36)
        acc.run("matrix_add", [A, B, C, n])
        assert acc.memory.read_array(C, I32_, 36) == [2 * i for i in range(36)]

    def test_parallel_markers_survive(self):
        module = build_scale_module()
        optimize_module(module)
        f = module.function("scale")
        opcodes = [i.opcode for i in f.instructions()]
        assert "detach" in opcodes and "sync" in opcodes
