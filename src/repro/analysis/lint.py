"""Hardware lint: rule registry over the IR design and elaborated netlist.

The race analysis (PR 1) answers "is this program safe to parallelise";
the lint layer answers "is the *accelerator we would generate* well
formed" — are spawn-channel endpoints type-consistent, is every task
unit reachable, can the spawn network certainly deadlock, and where is
datapath width being wasted.  Rules come in two scopes:

``design``
    Run on a :class:`~repro.accel.generator.GeneratedDesign` (before
    elaboration); these also gate :func:`repro.accel.build_accelerator`
    when ``AcceleratorConfig.analysis_level`` asks for it.

``netlist``
    Need the elaborated component/channel network of an
    :class:`~repro.accel.accelerator.Accelerator`; run by
    ``repro lint`` and :func:`lint_accelerator`.

Every rule emits :class:`~repro.analysis.diagnostics.Diagnostic` objects
with stable ``TAP-NET-*`` / ``TAP-WIDTH-*`` codes (catalogued in
``docs/analysis.md``).  The registry is deterministic: rules run in
lexicographic code order and each rule visits the design in a fixed
traversal, so two lints of the same module render identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import (
    CODES,
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    Diagnostic,
    DiagnosticReport,
)
from repro.analysis.netlist import (
    build_channel_graph,
    cycle_buffering,
    find_component_cycles,
    verify_netlist,
)
from repro.analysis.ranges import (
    ModuleRanges,
    bits_for,
    full_range,
    infer_module_ranges,
)
from repro.ir.function import Function
from repro.ir.instructions import Call, Cast, CondBr, Detach, Ret
from repro.ir.types import IntType, PointerType
from repro.passes.taskgraph import FUNCTION_ROOT

#: lint rule codes -> (default severity, short title); merged into the
#: shared diagnostics registry at import time so Diagnostic() defaults work
LINT_CODES: Dict[str, Tuple[str, str]] = {
    "TAP-NET-001": (SEVERITY_ERROR, "spawn-channel endpoint mismatch"),
    "TAP-NET-002": (SEVERITY_WARNING, "dead task"),
    "TAP-NET-003": (SEVERITY_INFO, "spawn-network channel cycle"),
    "TAP-NET-004": (SEVERITY_ERROR, "certain deadlock"),
    "TAP-NET-005": (SEVERITY_INFO, "static queue occupancy bound"),
    "TAP-NET-006": (SEVERITY_WARNING, "netlist structure"),
    "TAP-WIDTH-001": (SEVERITY_INFO, "channel narrowing opportunity"),
    "TAP-WIDTH-002": (SEVERITY_INFO, "datapath narrowing opportunity"),
    "TAP-WIDTH-003": (SEVERITY_WARNING, "possibly lossy truncation"),
}
CODES.update(LINT_CODES)

SCOPE_DESIGN = "design"
SCOPE_NETLIST = "netlist"


@dataclass(frozen=True)
class LintRule:
    """One registered rule: a stable code plus its check function."""

    code: str
    title: str
    scope: str
    check: Callable[["LintContext"], List[Diagnostic]]


_RULES: Dict[str, LintRule] = {}


def rule(code: str, scope: str = SCOPE_DESIGN):
    """Decorator registering ``fn`` as the checker for ``code``."""

    def register(fn):
        if code in _RULES:
            raise ValueError(f"duplicate lint rule {code}")
        if code not in CODES:
            raise ValueError(f"unregistered diagnostic code {code}")
        _RULES[code] = LintRule(code, CODES[code][1], scope, fn)
        return fn

    return register


def lint_rules(scope: Optional[str] = None) -> Tuple[LintRule, ...]:
    """All registered rules in deterministic (code-sorted) order."""
    codes = sorted(_RULES)
    if scope is not None:
        codes = [c for c in codes if _RULES[c].scope == scope]
    return tuple(_RULES[c] for c in codes)


@dataclass
class LintContext:
    """Everything a rule may look at.  ``accelerator`` is None for
    design-scope lints (e.g. the build gate, which runs pre-elaboration)."""

    design: object
    entry: Optional[Function] = None
    config: object = None
    ranges: Optional[ModuleRanges] = None
    accelerator: object = None
    _reachable: Optional[Set[Function]] = field(default=None, repr=False)

    @property
    def module(self):
        return self.design.module

    @property
    def graph(self):
        return self.design.graph

    def queue_depth_for(self, task) -> int:
        """Effective task-queue depth after config overrides, mirroring
        the elaboration in :class:`~repro.accel.accelerator.Accelerator`."""
        sizing = self.design.sizing[task]
        override = None
        if self.config is not None:
            override = self.config.params_for(task.name).queue_depth
        return override or sizing.recommended_queue_depth

    def reachable_functions(self) -> Optional[Set[Function]]:
        """Functions reachable from the entry along spawn/call edges, or
        None when no entry was designated."""
        if self.entry is None:
            return None
        if self._reachable is None:
            edges = self.graph.function_edges()
            seen = {self.entry}
            stack = [self.entry]
            while stack:
                for callee in edges.get(stack.pop(), ()):
                    if callee not in seen:
                        seen.add(callee)
                        stack.append(callee)
            self._reachable = seen
        return self._reachable


# ---------------------------------------------------------------------------
# design-scope rules
# ---------------------------------------------------------------------------

@rule("TAP-NET-001")
def _check_endpoint_types(ctx: LintContext) -> List[Diagnostic]:
    """Spawn-channel endpoints must agree on payload types: every direct
    spawn's arguments against the callee's parameters, and the return
    pointer's pointee against the callee's return type."""
    out: List[Diagnostic] = []
    for task in ctx.graph.tasks:
        for spawn in task.direct_spawns.values():
            callee = spawn.callee
            loc = spawn.detach.loc
            if len(spawn.args) != len(callee.arguments):
                out.append(Diagnostic(
                    code="TAP-NET-001",
                    message=(f"spawn of '{callee.name}' sends "
                             f"{len(spawn.args)} argument(s) but the task "
                             f"unit expects {len(callee.arguments)}"),
                    function=task.function.name, loc=loc,
                    data={"callee": callee.name,
                          "sent": len(spawn.args),
                          "expected": len(callee.arguments)},
                ))
            else:
                for i, (arg, param) in enumerate(zip(spawn.args, callee.arguments)):
                    if arg.type != param.type:
                        out.append(Diagnostic(
                            code="TAP-NET-001",
                            message=(f"spawn argument {i} of '{callee.name}' "
                                     f"has type {arg.type} but the channel "
                                     f"endpoint is {param.type}"),
                            function=task.function.name, loc=loc,
                            data={"callee": callee.name, "arg": i,
                                  "sent_type": str(arg.type),
                                  "expected_type": str(param.type)},
                        ))
            if spawn.ret_ptr is not None:
                ptr_type = spawn.ret_ptr.type
                pointee = getattr(ptr_type, "pointee", None)
                if not isinstance(ptr_type, PointerType) \
                        or pointee != callee.return_type:
                    out.append(Diagnostic(
                        code="TAP-NET-001",
                        message=(f"return channel of '{callee.name}' writes "
                                 f"{callee.return_type} through a pointer of "
                                 f"type {ptr_type}"),
                        function=task.function.name, loc=loc,
                        data={"callee": callee.name,
                              "pointer_type": str(ptr_type),
                              "return_type": str(callee.return_type)},
                    ))
    return out


@rule("TAP-NET-002")
def _check_dead_tasks(ctx: LintContext) -> List[Diagnostic]:
    """With a designated entry, every function in the module elaborates to
    a task unit — one that is never spawned or called from the entry is
    dead silicon."""
    reachable = ctx.reachable_functions()
    if reachable is None:
        return []
    out: List[Diagnostic] = []
    for function in ctx.module.functions:
        if function in reachable:
            continue
        task = ctx.graph.root_for_function.get(function)
        out.append(Diagnostic(
            code="TAP-NET-002",
            message=(f"task unit for '{function.name}' is never spawned or "
                     f"called from entry '{ctx.entry.name}'"),
            function=function.name,
            suggestion="remove the function or spawn it from the entry",
            data={"entry": ctx.entry.name,
                  "task": task.name if task else function.name},
        ))
    return out


@rule("TAP-NET-003")
def _check_cycle_buffering(ctx: LintContext) -> List[Diagnostic]:
    """Channel cycles in the spawn network.

    Every generated task network is structurally cyclic (units share one
    spawn arbiter/demux pair), but the cycle only matters when task
    instances can pile up unboundedly — i.e. when a task recurses.  For
    recursive tasks the sizing pass provisions a deep queue; flag an
    *under-buffered* cycle (warning) when a config override shrinks the
    queue below that recommendation, otherwise record the provisioning
    as a note.  With an elaborated netlist available, the aggregate
    buffering is measured on the real component cycle instead of
    recomputed from sizing.
    """
    out: List[Diagnostic] = []
    measured: Dict[str, int] = {}
    if ctx.accelerator is not None:
        sim = ctx.accelerator.sim
        graph = build_channel_graph(
            sim, external=[ctx.accelerator.network.host_spawn])
        for scc in find_component_cycles(graph):
            slots = cycle_buffering(graph, scc)
            for component in scc:
                measured[component.name] = slots
    for task in ctx.graph.tasks:
        if task.kind != FUNCTION_ROOT:
            continue
        sizing = ctx.design.sizing[task]
        if not sizing.recursive:
            continue
        depth = ctx.queue_depth_for(task)
        recommended = sizing.recommended_queue_depth
        data = {"task": task.name, "queue_depth": depth,
                "recommended_depth": recommended}
        unit_name = None
        if ctx.accelerator is not None:
            unit_name = f"T{task.sid}:{task.name}"
            if unit_name in measured:
                data["cycle_buffer_slots"] = measured[unit_name]
        if depth < recommended:
            out.append(Diagnostic(
                code="TAP-NET-003", severity=SEVERITY_WARNING,
                message=(f"under-buffered channel cycle: recursive task "
                         f"'{task.name}' sits on a spawn-network cycle with "
                         f"queue depth {depth}, below the sizing pass's "
                         f"recommendation of {recommended}"),
                function=task.function.name,
                suggestion=("drop the queue_depth override or raise it to "
                            f"{recommended}"),
                data=data,
            ))
        else:
            out.append(Diagnostic(
                code="TAP-NET-003", severity=SEVERITY_INFO,
                message=(f"recursive task '{task.name}' closes a "
                         f"spawn-network channel cycle; its task queue is "
                         f"provisioned at depth {depth} for recursion"),
                function=task.function.name,
                data=data,
            ))
    return out


def _detach_callees(graph) -> Dict[Detach, Function]:
    callees: Dict[Detach, Function] = {}
    for task in graph.tasks:
        for detach, spawn in task.direct_spawns.items():
            callees[detach] = spawn.callee
    return callees


def _can_complete(function: Function, diverging: Set[Function],
                  detach_callees: Dict[Detach, Function],
                  ranges: Optional[ModuleRanges]) -> bool:
    """True if some CFG path through ``function`` reaches a return without
    calling or spawning into ``diverging``.

    A blocking call into a diverging function cuts the path where it
    occurs; a detach of a diverging function also cuts the path, because
    the parent instance cannot retire until the spawned child joins.
    Branches whose condition has a singleton inferred range follow only
    the feasible edge, so range analysis sharpens the verdict.
    """
    seen: Set[object] = set()
    stack = [function.entry]
    while stack:
        block = stack.pop()
        if block in seen:
            continue
        seen.add(block)
        cut = False
        for inst in block.instructions:
            if isinstance(inst, Call) and inst.callee in diverging:
                cut = True
                break
        if cut:
            continue
        term = block.terminator
        if term is None:
            continue
        if isinstance(term, Ret):
            return True
        if isinstance(term, Detach):
            callee = detach_callees.get(term)
            if callee is not None and callee in diverging:
                continue  # the spawned child never joins
            stack.extend(term.successors())
        elif isinstance(term, CondBr) and ranges is not None:
            cond = ranges.range_of(term.cond)
            if cond is not None and cond.is_singleton():
                stack.append(term.if_true if cond.lo else term.if_false)
            else:
                stack.extend(term.successors())
        else:
            stack.extend(term.successors())
    return False


def diverging_functions(design, ranges: Optional[ModuleRanges] = None
                        ) -> Set[Function]:
    """Functions that can *never* complete once invoked.

    Greatest fixpoint: start by assuming every function diverges, then
    repeatedly discharge any function with a completable path (a CFG path
    to a return that avoids calling/spawning still-suspect functions).
    What survives must, on every execution, invoke the surviving set —
    an unboundedly recursive task chain, i.e. a certain deadlock of the
    generated accelerator (the task queue fills with frames that can
    never retire).  The result is an under-approximation of real
    divergence, which is the sound direction for an error-severity rule:
    a function outside the set might still hang, but a function inside
    it can never complete.
    """
    functions = list(design.module.functions)
    detach_callees = _detach_callees(design.graph)
    diverging: Set[Function] = set(functions)
    for _ in range(len(functions) + 1):
        discharged = [f for f in diverging
                      if _can_complete(f, diverging, detach_callees, ranges)]
        if not discharged:
            break
        diverging.difference_update(discharged)
    return diverging


@rule("TAP-NET-004")
def _check_certain_deadlock(ctx: LintContext) -> List[Diagnostic]:
    diverging = diverging_functions(ctx.design, ctx.ranges)
    if not diverging:
        return []
    out: List[Diagnostic] = []
    reachable = ctx.reachable_functions()
    for function in sorted(diverging, key=lambda f: f.name):
        if ctx.entry is not None and function is ctx.entry:
            out.append(Diagnostic(
                code="TAP-NET-004", severity=SEVERITY_ERROR,
                message=(f"certain deadlock: every execution of entry "
                         f"'{function.name}' spawns a task chain that can "
                         f"never terminate; the accelerator will hang"),
                function=function.name,
                suggestion=("add a base case that returns without spawning "
                            "or calling into the recursion"),
                data={"entry": True},
            ))
        elif ctx.entry is not None:
            if reachable is None or function not in reachable:
                continue  # dead code: TAP-NET-002's business
            out.append(Diagnostic(
                code="TAP-NET-004", severity=SEVERITY_WARNING,
                message=(f"possible deadlock: task '{function.name}' can "
                         f"never complete once spawned, and it is reachable "
                         f"from entry '{ctx.entry.name}'"),
                function=function.name,
                suggestion=("add a base case that returns without spawning "
                            "or calling into the recursion"),
                data={"entry": False},
            ))
        else:
            # build gate: any host-offloadable function that can never
            # complete makes the design unshippable
            out.append(Diagnostic(
                code="TAP-NET-004", severity=SEVERITY_ERROR,
                message=(f"certain deadlock: task '{function.name}' can "
                         f"never complete once spawned"),
                function=function.name,
                suggestion=("add a base case that returns without spawning "
                            "or calling into the recursion"),
                data={"entry": None},
            ))
    return out


@rule("TAP-NET-005")
def _check_occupancy_bounds(ctx: LintContext) -> List[Diagnostic]:
    """Static task-queue occupancy bound.

    For tasks that are neither recursive nor spawned inside a loop, the
    number of simultaneously live instances is bounded by the static
    spawn sites, each weighted by its spawning task's own bound (the
    host contributes one invocation of the entry).  When that bound is
    below the provisioned queue depth the queue RAM is over-provisioned —
    useful slack for the resource reports.
    """
    graph = ctx.graph
    sizing = ctx.design.sizing
    # spawn/call sites targeting each task, caller task alongside
    sites: Dict[object, List[object]] = {task: [] for task in graph.tasks}
    for task in graph.tasks:
        for child in task.region_spawns.values():
            sites[child].append(task)
        for spawn in task.direct_spawns.values():
            sites[graph.root_for_function[spawn.callee]].append(task)
        for call in task.calls:
            sites[graph.root_for_function[call.callee]].append(task)

    bounds: Dict[object, Optional[int]] = {}

    def bound_of(task, trail: Tuple[object, ...] = ()) -> Optional[int]:
        if task in bounds:
            return bounds[task]
        if task in trail:
            return None  # spawn cycle: unbounded
        s = sizing[task]
        if s.recursive or s.spawned_in_loop:
            bounds[task] = None
            return None
        total = 0
        if task.kind == FUNCTION_ROOT and (
                ctx.entry is None or task.function is ctx.entry):
            total += 1  # one host invocation
        for caller in sites[task]:
            caller_bound = bound_of(caller, trail + (task,))
            if caller_bound is None:
                bounds[task] = None
                return None
            total += caller_bound
        bounds[task] = total
        return total

    out: List[Diagnostic] = []
    for task in graph.tasks:
        bound = bound_of(task)
        if not bound:
            continue
        depth = ctx.queue_depth_for(task)
        suggestion = None
        if depth > bound:
            suggestion = (f"a queue depth of {bound} suffices for this "
                          f"spawn structure (provisioned: {depth})")
        out.append(Diagnostic(
            code="TAP-NET-005",
            message=(f"task queue of '{task.name}' holds at most {bound} "
                     f"outstanding instance(s) (depth {depth})"),
            function=task.function.name,
            suggestion=suggestion,
            data={"task": task.name, "bound": bound, "queue_depth": depth},
        ))
    return out


@rule("TAP-WIDTH-001")
def _check_channel_widths(ctx: LintContext) -> List[Diagnostic]:
    """Spawn-channel payloads provably narrower than declared."""
    if ctx.ranges is None:
        return []
    out: List[Diagnostic] = []
    for task in ctx.graph.tasks:
        if not task.args:
            continue
        if ctx.entry is not None and task.kind == FUNCTION_ROOT \
                and task.function is ctx.entry:
            continue  # host-facing channel keeps its declared ABI width
        inferred = ctx.ranges.channel_bits(task)
        declared = [value.type.size_bytes * 8 for value in task.args]
        # a byte of payload is the smallest saving worth a wiring change
        if sum(declared) - sum(inferred) >= 8:
            out.append(Diagnostic(
                code="TAP-WIDTH-001",
                message=(f"spawn channel of '{task.name}' carries "
                         f"{sum(inferred)} useful bit(s) in a "
                         f"{sum(declared)}-bit payload"),
                function=task.function.name,
                data={"task": task.name, "inferred_bits": inferred,
                      "declared_bits": declared},
            ))
    return out


@rule("TAP-WIDTH-002")
def _check_cell_widths(ctx: LintContext) -> List[Diagnostic]:
    """Register/frame cells provably much narrower than their type."""
    if ctx.ranges is None:
        return []
    out: List[Diagnostic] = []
    cells = sorted(
        ctx.ranges.cell_ranges.items(),
        key=lambda item: (item[0].parent.parent.name
                          if item[0].parent is not None
                          and item[0].parent.parent is not None else "",
                          item[0].loc if item[0].loc is not None else -1,
                          item[0].name or ""))
    for alloca, interval in cells:
        declared = alloca.allocated_type
        if not isinstance(declared, IntType) or declared.bits <= 8:
            continue
        bits = bits_for(interval)
        if bits > declared.bits // 2:
            continue
        function = None
        if alloca.parent is not None and alloca.parent.parent is not None:
            function = alloca.parent.parent.name
        out.append(Diagnostic(
            code="TAP-WIDTH-002",
            message=(f"cell '{alloca.name}' only ever holds "
                     f"[{interval.lo}, {interval.hi}]: {bits} bit(s) of its "
                     f"{declared.bits}-bit type are live"),
            function=function, loc=alloca.loc,
            data={"cell": alloca.name or "", "lo": interval.lo,
                  "hi": interval.hi, "inferred_bits": bits,
                  "declared_bits": declared.bits},
        ))
    return out


@rule("TAP-WIDTH-003")
def _check_lossy_truncs(ctx: LintContext) -> List[Diagnostic]:
    """A trunc whose inferred source range does not fit the target type
    may silently wrap at runtime."""
    if ctx.ranges is None:
        return []
    out: List[Diagnostic] = []
    for function in ctx.module.functions:
        for block in function.blocks:
            for inst in block.instructions:
                if not isinstance(inst, Cast) or inst.kind != "trunc":
                    continue
                src = ctx.ranges.range_of(inst.operands[0])
                target = full_range(inst.type)
                if src is None or target is None:
                    continue
                if target.lo <= src.lo and src.hi <= target.hi:
                    continue
                out.append(Diagnostic(
                    code="TAP-WIDTH-003",
                    message=(f"trunc to {inst.type} may be lossy: the "
                             f"source range [{src.lo}, {src.hi}] does not "
                             f"fit [{target.lo}, {target.hi}]"),
                    function=function.name, loc=inst.loc,
                    data={"source_lo": src.lo, "source_hi": src.hi,
                          "target_bits": inst.type.bits},
                ))
    return out


# ---------------------------------------------------------------------------
# netlist-scope rules
# ---------------------------------------------------------------------------

@rule("TAP-NET-006", scope=SCOPE_NETLIST)
def _check_netlist_structure(ctx: LintContext) -> List[Diagnostic]:
    if ctx.accelerator is None:
        return []
    host = ctx.accelerator.network.host_spawn
    return verify_netlist(ctx.accelerator.sim, external=[host],
                          sources=[host])


# ---------------------------------------------------------------------------
# drivers
# ---------------------------------------------------------------------------

def _resolve_entry(module, entry) -> Optional[Function]:
    if entry is None or isinstance(entry, Function):
        return entry
    for function in module.functions:
        if function.name == entry:
            return function
    from repro.errors import AnalysisError

    raise AnalysisError(f"no function named {entry!r} in {module.name}")


def lint_design(design, entry=None, config=None,
                ranges: Optional[ModuleRanges] = None,
                accelerator=None) -> DiagnosticReport:
    """Run every lint rule over ``design`` and return the report.

    ``entry`` (name or Function) designates the host-invocable function;
    without it the dead-task rule is skipped and deadlock verdicts harden
    to errors (any never-completing task blocks the build).  ``ranges``
    can be passed in to reuse an existing interval analysis; otherwise it
    is computed here.  Passing ``accelerator`` additionally runs the
    netlist-scope rules on its elaborated simulator.
    """
    entry_fn = _resolve_entry(design.module, entry)
    if ranges is None:
        ranges = infer_module_ranges(
            design.module, design=design,
            entry=entry_fn.name if entry_fn is not None else None)
    if config is None and accelerator is not None:
        config = accelerator.config
    ctx = LintContext(design=design, entry=entry_fn, config=config,
                      ranges=ranges, accelerator=accelerator)
    report = DiagnosticReport()
    for lint_rule in lint_rules():
        if lint_rule.scope == SCOPE_NETLIST and accelerator is None:
            continue
        report.extend(lint_rule.check(ctx))
    return report


def lint_accelerator(accelerator, entry=None) -> DiagnosticReport:
    """Lint an elaborated accelerator: all design rules plus the netlist
    structure checks, using the accelerator's own config for queue-depth
    questions."""
    return lint_design(accelerator.design, entry=entry,
                       config=accelerator.config, accelerator=accelerator)
