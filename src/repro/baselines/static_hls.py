"""Static-HLS baseline: a model of the Intel HLS Compiler flow (§V-E).

The paper's Table V pits TAPAS against Intel HLS v17.1 on the two
benchmarks expressible with static parallelism (SAXPY, image scaling),
using the suggested streaming DDR interface and a 270 ns DRAM latency.
This model captures the two properties that define that flow:

* **static scheduling** — the loop is unrolled U times and modulo-
  scheduled with fixed latencies; the initiation interval is set by the
  busiest resource;
* **streaming memory** — loads/stores go through LSU stream buffers that
  deliver a deterministic word rate from DDR, paid for in block RAM.

Runtime therefore follows ``depth + iterations/U * II`` with an II bound
by both compute and the streaming word rate. No dynamic behaviour is
possible: conditional work is if-converted (both sides execute), and the
trip count must be a loop bound, not a sentinel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigError


@dataclass
class StaticKernelSpec:
    """Per-iteration operation counts of the loop body handed to the
    static flow (after if-conversion: all paths counted)."""

    name: str
    loads_per_iter: int
    stores_per_iter: int
    alu_per_iter: int
    mul_per_iter: int = 0
    fp_per_iter: int = 0
    #: longest dependence chain through one iteration (cycles at fixed
    #: latencies) — the pipeline depth
    depth: int = 12


@dataclass
class StaticHLSModel:
    """Timing/resource model for the Intel-HLS-style flow."""

    #: sustained words/cycle the DDR interface delivers across *all*
    #: stream buffers together (the shared-bus bound both flows hit)
    stream_words_per_cycle: float = 1.0
    #: cycles of DDR latency hidden by the stream prefetcher at startup
    dram_latency_cycles: int = 40
    #: achievable clock (Table V: 155-181 MHz on Cyclone V)
    base_mhz: float = 180.0
    mhz_slowdown_per_unroll: float = 4.0

    # resource cost table (ALMs), loosely calibrated to Table V
    alm_base: int = 2600              # control + DDR masters
    alm_per_alu: int = 30
    alm_per_mul: int = 60
    alm_per_fp: int = 220
    alm_per_lsu: int = 260
    reg_per_alm: float = 1.9
    #: stream buffers are the BRAM hogs (Table V: 38-67 M20Ks)
    bram_per_stream: int = 11
    bram_base: int = 5

    def initiation_interval(self, spec: StaticKernelSpec, unroll: int) -> float:
        """II per *unrolled group* of ``unroll`` iterations."""
        words = (spec.loads_per_iter + spec.stores_per_iter) * unroll
        memory_ii = words / self.stream_words_per_cycle
        compute_ii = 1.0  # fully pipelined datapath
        return max(compute_ii, memory_ii)

    def cycles(self, spec: StaticKernelSpec, iterations: int, unroll: int) -> int:
        if unroll < 1:
            raise ConfigError("unroll factor must be >= 1")
        groups = (iterations + unroll - 1) // unroll
        ii = self.initiation_interval(spec, unroll)
        return int(self.dram_latency_cycles + spec.depth + groups * ii)

    def mhz(self, unroll: int) -> float:
        return max(60.0, self.base_mhz - self.mhz_slowdown_per_unroll * (unroll - 1))

    def runtime_seconds(self, spec: StaticKernelSpec, iterations: int,
                        unroll: int) -> float:
        return self.cycles(spec, iterations, unroll) / (self.mhz(unroll) * 1e6)

    # -- resources -----------------------------------------------------------

    def alms(self, spec: StaticKernelSpec, unroll: int) -> int:
        per_iter = (spec.alu_per_iter * self.alm_per_alu
                    + spec.mul_per_iter * self.alm_per_mul
                    + spec.fp_per_iter * self.alm_per_fp
                    + (spec.loads_per_iter + spec.stores_per_iter)
                    * self.alm_per_lsu)
        return int(self.alm_base + unroll * per_iter)

    def registers(self, spec: StaticKernelSpec, unroll: int) -> int:
        return int(self.alms(spec, unroll) * self.reg_per_alm)

    def brams(self, spec: StaticKernelSpec, unroll: int) -> int:
        streams = spec.loads_per_iter + spec.stores_per_iter
        # double-buffered stream LSUs; deeper buffers at higher unroll
        return int(self.bram_base
                   + streams * self.bram_per_stream * (1 + 0.25 * (unroll - 1)))


@dataclass
class StaticHLSReport:
    """One Table V row for the Intel-HLS side."""

    name: str
    unroll: int
    mhz: float
    alms: int
    registers: int
    brams: int
    cycles: int
    runtime_seconds: float


def synthesize_static(spec: StaticKernelSpec, iterations: int, unroll: int,
                      model: Optional[StaticHLSModel] = None) -> StaticHLSReport:
    """Run the static flow end to end for one kernel configuration."""
    model = model or StaticHLSModel()
    return StaticHLSReport(
        name=spec.name,
        unroll=unroll,
        mhz=model.mhz(unroll),
        alms=model.alms(spec, unroll),
        registers=model.registers(spec, unroll),
        brams=model.brams(spec, unroll),
        cycles=model.cycles(spec, iterations, unroll),
        runtime_seconds=model.runtime_seconds(spec, iterations, unroll),
    )


#: the two Table V kernels, counted from their loop bodies
SAXPY_SPEC = StaticKernelSpec(
    name="saxpy", loads_per_iter=2, stores_per_iter=1,
    alu_per_iter=2, fp_per_iter=2, depth=14)
IMAGE_SCALE_SPEC = StaticKernelSpec(
    name="image_scale", loads_per_iter=3, stores_per_iter=1,
    alu_per_iter=10, mul_per_iter=2, depth=16)

TABLE5_SPECS: Dict[str, StaticKernelSpec] = {
    "saxpy": SAXPY_SPEC,
    "image_scale": IMAGE_SCALE_SPEC,
}
