"""Memory substrate: backing store, DRAM/AXI, shared L1 cache, data box."""

from repro.memory.arbiter import Demux, RoundRobinArbiter, tree_levels
from repro.memory.backing import MainMemory
from repro.memory.cache import Cache, CacheParams
from repro.memory.databox import DataBox, MemTag
from repro.memory.dram import DEFAULT_DRAM_LATENCY, DRAMModel
from repro.memory.messages import LOAD, STORE, MemRequest, MemResponse
from repro.memory.scratchpad import Scratchpad

__all__ = [
    "Demux", "RoundRobinArbiter", "tree_levels",
    "MainMemory",
    "Cache", "CacheParams",
    "DataBox", "MemTag",
    "DEFAULT_DRAM_LATENCY", "DRAMModel",
    "LOAD", "STORE", "MemRequest", "MemResponse",
    "Scratchpad",
]
