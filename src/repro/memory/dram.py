"""DRAM-over-AXI timing model.

The paper's SoC boards reach DRAM through an AXI bus; Table V pins the
round-trip at 270 ns (~40 cycles at the 150 MHz FPGA clock). This model is
timing-only — functional data lives in :class:`~repro.memory.backing.MainMemory`
and is attached by the cache.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.sim import NEVER, OBS_BUSY, OBS_IDLE, OBS_STALL_OUT, Channel, Component

#: 270 ns at 150 MHz (Table V experimental setup)
DEFAULT_DRAM_LATENCY = 40


class DRAMModel(Component):
    """Fixed-latency, pipelined DRAM channel.

    Accepts up to one request per cycle (an AXI read/write burst) and
    returns completions in order after ``latency`` cycles. ``bandwidth``
    limits completions per cycle, modelling a shared AXI data channel.
    """

    def __init__(self, name: str, request_in: Channel, response_out: Channel,
                 latency: int = DEFAULT_DRAM_LATENCY, bandwidth: int = 1):
        super().__init__(name)
        self.request_in = request_in
        self.response_out = response_out
        self.latency = latency
        self.bandwidth = bandwidth
        self._in_flight: Deque[Tuple[int, object]] = deque()
        self.accesses = 0

    def tick(self, cycle: int):
        # retire finished accesses; only reads produce a response (write
        # bursts consume the channel but are posted, per AXI)
        while self._in_flight and self._in_flight[0][0] <= cycle:
            _, msg = self._in_flight[0]
            if not msg.is_load():
                self._in_flight.popleft()
                continue
            if not self.response_out.can_push():
                break
            self._in_flight.popleft()
            self.response_out.push(msg)
            break  # one push per channel per cycle

        # accept a new request
        if self.request_in.can_pop():
            msg = self.request_in.pop()
            self._in_flight.append((cycle + self.latency, msg))
            self.accesses += 1

    def sensitivity(self):
        return (self.request_in, self.response_out)

    def ports(self):
        return ((self.request_in,), (self.response_out,))

    def next_wake(self, cycle):
        # deadlines are sorted (constant latency), so the head is the next
        # timer. A head already due means this tick either pushed it (our
        # own push wakes us next cycle) or was backpressured (only a pop
        # on response_out can unblock us) — no timer needed either way.
        if not self._in_flight:
            return NEVER
        head = self._in_flight[0][0]
        return head if head > cycle else NEVER

    def is_busy(self):
        return bool(self._in_flight)

    def obs_classify(self, cycle):
        if (self._in_flight and self._in_flight[0][0] <= cycle
                and not self.response_out.can_push()):
            return OBS_STALL_OUT, "resp-backpressure"
        if self._in_flight:
            return OBS_BUSY, None
        return OBS_IDLE, None

    def stats(self):
        return {"accesses": self.accesses}
