"""Type system for the Tapir-style parallel IR.

The IR is deliberately small: fixed-width integers, a 32-bit float, typed
pointers and ``void``. This mirrors the subset of LLVM types that the TAPAS
paper's benchmarks exercise (Table II workloads use ``i32``/``f32`` data and
pointer arithmetic via GEP).
"""

from __future__ import annotations


class Type:
    """Base class for IR types. Types are interned singletons per shape."""

    def __eq__(self, other):
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self):
        return hash((type(self).__name__, self._key()))

    def _key(self):
        return ()

    @property
    def size_bytes(self) -> int:
        """Size of a value of this type in the simulated byte-addressed memory."""
        raise NotImplementedError

    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def is_void(self) -> bool:
        return isinstance(self, VoidType)


class VoidType(Type):
    """The type of instructions that produce no value."""

    @property
    def size_bytes(self):
        return 0

    def __repr__(self):
        return "void"


class IntType(Type):
    """Fixed-width two's-complement integer (i1, i8, i32, i64)."""

    def __init__(self, bits: int):
        if bits not in (1, 8, 16, 32, 64):
            raise ValueError(f"unsupported integer width: {bits}")
        self.bits = bits

    def _key(self):
        return (self.bits,)

    @property
    def size_bytes(self):
        return max(1, self.bits // 8)

    @property
    def min_value(self) -> int:
        if self.bits == 1:
            return 0
        return -(1 << (self.bits - 1))

    @property
    def max_value(self) -> int:
        if self.bits == 1:
            return 1
        return (1 << (self.bits - 1)) - 1

    def wrap(self, value: int) -> int:
        """Wrap a Python int into this type's two's-complement range."""
        if self.bits == 1:
            return value & 1
        mask = (1 << self.bits) - 1
        value &= mask
        if value >= 1 << (self.bits - 1):
            value -= 1 << self.bits
        return value

    def __repr__(self):
        return f"i{self.bits}"


class FloatType(Type):
    """IEEE-754 single-precision float (the paper's FP workloads use f32)."""

    @property
    def size_bytes(self):
        return 4

    def __repr__(self):
        return "f32"


class PointerType(Type):
    """Typed pointer into the shared byte-addressed memory."""

    def __init__(self, pointee: Type):
        if pointee.is_void():
            raise ValueError("pointer to void is not supported; use i8*")
        self.pointee = pointee

    def _key(self):
        return (self.pointee,)

    @property
    def size_bytes(self):
        return 8

    def __repr__(self):
        return f"{self.pointee!r}*"


# Interned singletons for the common types.
VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
F32 = FloatType()


def ptr(pointee: Type) -> PointerType:
    """Shorthand constructor for a pointer type."""
    return PointerType(pointee)
