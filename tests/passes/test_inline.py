"""Tests for the function inliner."""


from repro.accel import build_accelerator, generate
from repro.frontend import compile_source
from repro.ir import verify_module
from repro.ir.instructions import Call
from repro.ir.types import I32
from repro.passes import inline_calls, prune_unreachable_functions


def call_count(module, func_name):
    return sum(1 for i in module.function(func_name).instructions()
               if isinstance(i, Call))


class TestBasicInlining:
    def test_simple_value_function(self):
        module = compile_source("""
        func inc(x: i32) -> i32 { return x + 1; }
        func f(a: i32) -> i32 { return inc(a) * 2; }
        """, "m")
        assert inline_calls(module) == 1
        verify_module(module)
        assert call_count(module, "f") == 0
        accel = build_accelerator(module)
        assert accel.run("f", [20]).retval == 42

    def test_void_function(self):
        module = compile_source("""
        func put(a: i32*, i: i32, v: i32) { a[i] = v; }
        func f(a: i32*) { put(a, 0, 5); put(a, 1, 6); }
        """, "m")
        assert inline_calls(module) == 2
        verify_module(module)
        accel = build_accelerator(module)
        base = accel.memory.alloc_array(I32, [0, 0])
        accel.run("f", [base])
        assert accel.memory.read_array(base, I32, 2) == [5, 6]

    def test_multi_block_callee_with_two_returns(self):
        module = compile_source("""
        func clamp(x: i32) -> i32 {
          if (x > 100) { return 100; }
          return x;
        }
        func f(a: i32) -> i32 { return clamp(a) + clamp(a * 3); }
        """, "m")
        assert inline_calls(module) == 2
        verify_module(module)
        accel = build_accelerator(module)
        assert accel.run("f", [40]).retval == 40 + 100
        accel2 = build_accelerator(module)
        assert accel2.run("f", [7]).retval == 7 + 21

    def test_callee_with_loop(self):
        module = compile_source("""
        func total(a: i32*, n: i32) -> i32 {
          var acc: i32 = 0;
          for (var i: i32 = 0; i < n; i = i + 1) { acc = acc + a[i]; }
          return acc;
        }
        func f(a: i32*, n: i32) -> i32 { return total(a, n) + 1; }
        """, "m")
        assert inline_calls(module) == 1
        verify_module(module)
        accel = build_accelerator(module)
        base = accel.memory.alloc_array(I32, [3, 4, 5])
        assert accel.run("f", [base, 3]).retval == 13

    def test_nested_inlining_runs_to_fixpoint(self):
        module = compile_source("""
        func a(x: i32) -> i32 { return x + 1; }
        func b(x: i32) -> i32 { return a(x) + 2; }
        func f(x: i32) -> i32 { return b(x) + 4; }
        """, "m")
        assert inline_calls(module) >= 2
        verify_module(module)
        assert call_count(module, "f") == 0
        accel = build_accelerator(module)
        assert accel.run("f", [0]).retval == 7


class TestEligibility:
    def test_parallel_callee_not_inlined(self):
        module = compile_source("""
        func pmap(a: i32*, n: i32) {
          cilk_for (var i: i32 = 0; i < n; i = i + 1) { a[i] = i; }
        }
        func f(a: i32*, n: i32) { pmap(a, n); }
        """, "m")
        assert inline_calls(module) == 0

    def test_recursive_callee_not_inlined(self):
        module = compile_source("""
        func down(x: i32) -> i32 {
          if (x <= 0) { return 0; }
          return down(x - 1);
        }
        func f(x: i32) -> i32 { return down(x); }
        """, "m")
        assert inline_calls(module) == 0

    def test_size_budget_respected(self):
        src_big = "func big(x: i32) -> i32 { return x" + " + 1" * 80 + "; }"
        module = compile_source(src_big + """
        func f(x: i32) -> i32 { return big(x); }
        """, "m")
        assert inline_calls(module, max_insts=40) == 0
        assert inline_calls(module, max_insts=400) == 1


class TestEndToEndEffect:
    def test_mergesort_merge_inlines_and_still_sorts(self):
        """Inlining merge removes a task unit and its call round trips —
        the §VI 'eliminate task controllers' effect."""
        from repro.workloads import Mergesort

        workload = Mergesort()
        module = workload.fresh_module()
        baseline_units = len(generate(module, optimize=False).compiled)

        module2 = workload.fresh_module()
        assert inline_calls(module2, max_insts=200) == 1
        assert prune_unreachable_functions(module2, ["mergesort"]) == 1
        verify_module(module2)
        inlined_units = len(generate(module2, optimize=False).compiled)
        assert inlined_units == baseline_units - 1

        accel = build_accelerator(module2)
        data = [9, 2, 7, 2, 5, 1, 8, 0]
        base = accel.memory.alloc_array(I32, data)
        accel.run("mergesort", [base, 0, len(data) - 1])
        assert accel.memory.read_array(base, I32, len(data)) == sorted(data)
