"""Ablation: width-aware vs uniform-width resource and power estimates.

The value-range analysis (``repro.analysis.ranges``) proves minimal
bitwidths per value, register cell and spawn channel; the resource model
can size integer datapaths and Args RAM from those widths instead of the
declared 32/64-bit types (``estimate_resources(..., width_aware=True)``).
This bench quantifies the delta across the workload suite plus the
``narrow_sum`` fixture (whose accumulator is provably 11 bits wide), and
feeds the same ALM totals through the frequency and power models so the
width savings show up end to end.
"""

import os

import sweeplib

from repro.accel import CYCLONE_V, AcceleratorConfig, build_accelerator
from repro.exp import register_evaluator
from repro.frontend import compile_source
from repro.reports import (
    estimate_mhz,
    estimate_resources,
    fpga_power_watts,
    render_table,
    sweep_record,
)

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "..", "examples", "programs")

#: registered workloads plus the provably-narrow fixture
DESIGNS = ("narrow_sum", "dedup", "stencil", "image_scale", "mergesort",
           "saxpy", "matrix_add")


def _build(name):
    if name == "narrow_sum":
        with open(os.path.join(FIXTURES, "narrow_sum.cilk")) as handle:
            module = compile_source(handle.read(), "narrow_sum")
        return build_accelerator(module, AcceleratorConfig())
    from repro.workloads import REGISTRY

    workload = REGISTRY.get(name)
    return build_accelerator(workload.fresh_module(),
                             workload.default_config())


def _estimate(name):
    accel = _build(name)
    board = CYCLONE_V
    out = {}
    for variant, width_aware in (("uniform", False), ("width_aware", True)):
        report = estimate_resources(accel, width_aware=width_aware)
        mhz = estimate_mhz(board, report.alms)
        out[variant] = {
            "alms": report.alms,
            "regs": report.regs,
            "brams": report.brams,
            "mhz": round(mhz, 1),
            "power_w": round(fpga_power_watts(report.alms, report.brams,
                                              mhz), 3),
        }
    return out


def _eval_bitwidth(spec):
    return _estimate(spec["design"])


register_evaluator("ablation_bitwidth", _eval_bitwidth,
                   program_text=sweeplib.file_program_text(__file__))


def test_ablation_bitwidth(benchmark, save_result, save_json, sweep_runner):
    points = [{"evaluator": "ablation_bitwidth", "design": design}
              for design in DESIGNS]

    def run():
        return sweeplib.run_points(sweep_runner, points)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    data = {record["spec"]["design"]: record["value"]
            for record in result.records}

    rows = []
    for design in DESIGNS:
        uniform, aware = data[design]["uniform"], data[design]["width_aware"]
        saved = uniform["alms"] - aware["alms"]
        rows.append([design, uniform["alms"], aware["alms"],
                     f"{100.0 * saved / uniform['alms']:.1f}%",
                     uniform["power_w"], aware["power_w"]])
    text = render_table(
        ["Design", "ALMs uniform", "ALMs width-aware", "saved",
         "W uniform", "W width-aware"],
        rows, title="Ablation — width-aware datapath sizing "
                    "(value-range analysis)")
    save_result("ablation_bitwidth", text)
    save_json("ablation_bitwidth", [
        sweep_record(record, record["spec"]["design"],
                     config={"board": "Cyclone V"},
                     uniform=record["value"]["uniform"],
                     width_aware=record["value"]["width_aware"])
        for record in result.records], sweep=result.summary)

    differing = [d for d in DESIGNS
                 if data[d]["uniform"]["alms"] != data[d]["width_aware"]["alms"]]
    # the analysis must actually bite: width-aware estimates differ from
    # uniform ones on at least 3 designs, and never cost *more*
    assert len(differing) >= 3, differing
    for design in DESIGNS:
        uniform, aware = data[design]["uniform"], data[design]["width_aware"]
        assert aware["alms"] <= uniform["alms"]
        assert aware["regs"] <= uniform["regs"]
        assert aware["power_w"] <= uniform["power_w"]
    # narrow_sum is the constructed best case: a double-digit ALM saving
    narrow = data["narrow_sum"]
    assert narrow["uniform"]["alms"] - narrow["width_aware"]["alms"] >= 10
