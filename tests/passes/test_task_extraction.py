"""Tests for the Fig 9 task-extraction pass and the task graph."""


from repro.ir.values import Argument
from repro.passes import DETACHED, FUNCTION_ROOT, analyze_concurrency, extract_tasks

from tests.irprograms import (
    build_fib_module,
    build_matrix_add_module,
    build_scale_module,
    build_serial_sum_module,
)


class TestScaleExtraction:
    """Fig 12: one parallel loop -> root (loop control) + body task."""

    def setup_method(self):
        self.graph = extract_tasks(build_scale_module())

    def test_two_tasks(self):
        assert len(self.graph.tasks) == 2
        kinds = [t.kind for t in self.graph.tasks]
        assert kinds == [FUNCTION_ROOT, DETACHED]

    def test_root_owns_loop_control(self):
        root = self.graph.tasks[0]
        names = {b.name for b in root.blocks}
        assert "cond" in names and "latch" in names
        assert "detached" not in names

    def test_child_owns_body(self):
        child = self.graph.tasks[1]
        assert {b.name for b in child.blocks} == {"detached"}
        assert child.parent is self.graph.tasks[0]

    def test_child_args_are_live_ins(self):
        child = self.graph.tasks[1]
        # body uses the loop index (an instruction) and pointer a (argument)
        names = set()
        for arg in child.args:
            names.add(arg.name if isinstance(arg, Argument) else arg.name)
        assert "a" in names
        assert any("i" in n for n in names)

    def test_block_sets_disjoint(self):
        root, child = self.graph.tasks
        assert not (set(root.blocks) & set(child.blocks))


class TestNestedExtraction:
    """Fig 3: nested cilk_for -> T0 outer, T1 inner, T2 body."""

    def setup_method(self):
        self.graph = extract_tasks(build_matrix_add_module())

    def test_three_tasks(self):
        assert len(self.graph.tasks) == 3

    def test_nesting_chain(self):
        t0, t1, t2 = self.graph.tasks
        assert t1.parent is t0
        assert t2.parent is t1
        assert t1 in t0.children
        assert t2 in t1.children

    def test_spawn_edges(self):
        t0, t1, t2 = self.graph.tasks
        assert list(t0.region_spawns.values()) == [t1]
        assert list(t1.region_spawns.values()) == [t2]
        assert self.graph.spawn_targets(t0) == [t1]
        assert self.graph.spawn_targets(t1) == [t2]

    def test_body_task_args_include_both_indices(self):
        t2 = self.graph.tasks[2]
        # body needs A, B, C, i, j  (N is only used by loop controls)
        assert len(t2.args) == 5

    def test_inner_task_args_flow_through(self):
        """T1 must carry everything T2 needs that comes from T0's scope."""
        t1 = self.graph.tasks[1]
        # inner control needs N and j bookkeeping; must also carry A,B,C,i for T2
        arg_names = {getattr(a, "name", "") for a in t1.args}
        assert {"A", "B", "C", "N"} <= arg_names

    def test_per_task_instruction_counts_sum_to_function(self):
        f = self.graph.module.function("matrix_add")
        total = sum(len(b.instructions) for b in f.blocks)
        assert sum(t.instruction_count() for t in self.graph.tasks) == total


class TestRecursiveExtraction:
    """Fib: spawn sites collapse to direct spawns of the function itself."""

    def setup_method(self):
        self.graph = extract_tasks(build_fib_module())

    def test_single_task(self):
        # both detached regions are call+store+reattach -> direct spawns,
        # so the only static task is fib's root.
        assert len(self.graph.tasks) == 1

    def test_direct_spawns_recorded(self):
        root = self.graph.tasks[0]
        assert len(root.direct_spawns) == 2
        for spawn in root.direct_spawns.values():
            assert spawn.callee.name == "fib"
            assert spawn.ret_ptr is not None
            assert len(spawn.args) == 1

    def test_recursion_detected(self):
        root = self.graph.tasks[0]
        assert self.graph.is_recursive_function(root.function)
        assert root.is_recursive()

    def test_memory_ops_counted(self):
        root = self.graph.tasks[0]
        # frame loads (x, y) count as memory; scalar allocas would not
        assert root.memory_op_count() >= 2


class TestSerialExtraction:
    def test_single_task_no_spawns(self):
        graph = extract_tasks(build_serial_sum_module())
        assert len(graph.tasks) == 1
        root = graph.tasks[0]
        assert not root.spawns_anything()
        assert root.kind == FUNCTION_ROOT

    def test_register_accesses_not_counted_as_memory(self):
        graph = extract_tasks(build_serial_sum_module())
        root = graph.tasks[0]
        # only the a[i] load touches real memory per iteration
        assert root.memory_op_count() == 1


class TestConcurrencyOpt:
    def test_loop_spawned_child_gets_deep_queue(self):
        graph = extract_tasks(build_scale_module())
        sizing = analyze_concurrency(graph)
        root, child = graph.tasks
        assert sizing[child].spawned_in_loop
        assert sizing[child].recommended_queue_depth > sizing[root].recommended_queue_depth

    def test_recursive_task_gets_deepest_queue(self):
        graph = extract_tasks(build_fib_module())
        sizing = analyze_concurrency(graph)
        root = graph.tasks[0]
        assert sizing[root].recursive
        assert sizing[root].recommended_queue_depth >= 64

    def test_serial_task_gets_default(self):
        graph = extract_tasks(build_serial_sum_module())
        sizing = analyze_concurrency(graph)
        assert sizing[graph.tasks[0]].recommended_queue_depth == 4

    def test_nested_loops_both_children_deep(self):
        graph = extract_tasks(build_matrix_add_module())
        sizing = analyze_concurrency(graph)
        t0, t1, t2 = graph.tasks
        assert sizing[t1].spawned_in_loop
        assert sizing[t2].spawned_in_loop
