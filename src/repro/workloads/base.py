"""Workload harness: the paper's benchmarks as self-checking packages.

Each workload bundles (i) its source in the Cilk-like language, (ii) a
host-side data generator, (iii) a Python golden model, and (iv) the
Table IV tile configuration. The same source drives the accelerator, the
multicore-CPU baseline and the static-HLS baseline — mirroring the paper,
which runs identical Cilk programs everywhere (§V).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.accel import Accelerator, AcceleratorConfig, build_accelerator
from repro.errors import TapasError
from repro.frontend import compile_source
from repro.ir.module import Module
from repro.memory.backing import MainMemory


@dataclass
class PreparedRun:
    """Host-side state for one run: entry args plus the result checker."""

    function: str
    args: List[Any]
    check: Callable[[MainMemory, Any], bool]
    #: how many useful work items the run performs (for throughput plots)
    work_items: int


@dataclass
class WorkloadResult:
    name: str
    cycles: int
    correct: bool
    work_items: int
    stats: Dict[str, Any]
    retval: Any = None

    @property
    def cycles_per_item(self) -> float:
        return self.cycles / max(1, self.work_items)


class Workload:
    """Base class; subclasses define source, sizes and the golden model."""

    #: overridden by subclasses
    name = "abstract"
    source = ""
    entry = ""
    challenge = ""            # Table II "HLS Challenge"
    memory_pattern = ""       # Table II "Memory Pattern"
    paper_tiles = 1           # Table IV tile count

    def fresh_module(self) -> Module:
        """Compile a fresh module (global addresses are per-accelerator)."""
        return compile_source(self.source, self.name)

    def default_config(self, ntiles: Optional[int] = None,
                       **overrides) -> AcceleratorConfig:
        tiles = ntiles if ntiles is not None else self.paper_tiles
        return AcceleratorConfig(default_ntiles=tiles, **overrides)

    def prepare(self, memory: MainMemory, scale: int = 1) -> PreparedRun:
        """Allocate inputs in ``memory`` and return args + checker."""
        raise NotImplementedError

    def build(self, config: Optional[AcceleratorConfig] = None,
              trace=None, observer=None) -> Accelerator:
        return build_accelerator(self.fresh_module(),
                                 config or self.default_config(), trace=trace,
                                 observer=observer)

    def run(self, config: Optional[AcceleratorConfig] = None, scale: int = 1,
            max_cycles: int = 50_000_000, trace=None,
            observer=None) -> WorkloadResult:
        """Build, offload, verify. The standard benchmark entry point."""
        acc = self.build(config, trace=trace, observer=observer)
        prepared = self.prepare(acc.memory, scale)
        result = acc.run(prepared.function, prepared.args, max_cycles=max_cycles)
        correct = prepared.check(acc.memory, result.retval)
        return WorkloadResult(
            name=self.name, cycles=result.cycles, correct=correct,
            work_items=prepared.work_items, stats=result.stats,
            retval=result.retval)

    def __repr__(self):
        return f"<Workload {self.name}>"


class WorkloadRegistry:
    """Name -> workload instance, in the paper's Table II order."""

    def __init__(self):
        self._workloads: Dict[str, Workload] = {}

    def register(self, workload: Workload) -> Workload:
        if workload.name in self._workloads:
            raise TapasError(f"duplicate workload {workload.name}")
        self._workloads[workload.name] = workload
        return workload

    def get(self, name: str) -> Workload:
        if name not in self._workloads:
            raise TapasError(
                f"unknown workload {name!r}; have {sorted(self._workloads)}")
        return self._workloads[name]

    def all(self) -> List[Workload]:
        return list(self._workloads.values())

    def names(self) -> List[str]:
        return list(self._workloads)


REGISTRY = WorkloadRegistry()
