"""Declarative sweep grids.

A *point spec* is a plain-JSON dict — nothing but strings, numbers,
booleans, lists and dicts — naming an evaluator plus its inputs:

    {"evaluator": "workload", "workload": "fibonacci",
     "tiles": 4, "scale": 2, "engine": "event", "overrides": {...}}

Plain JSON is a hard requirement, not a style choice: specs cross
process boundaries (pickled to sweep workers) and feed the
content-addressed cache key (canonical JSON), so they must serialise
identically everywhere. Rich config objects are rebuilt *inside* the
worker from the spec (:func:`config_from_spec`).
"""

from __future__ import annotations

from itertools import product
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from repro.errors import ConfigError


def expand_grid(axes: Mapping[str, Iterable[Any]]) -> List[Dict[str, Any]]:
    """Cartesian product of named axes, in deterministic order: axes
    vary slowest-first in insertion order, values in the given order."""
    names = list(axes)
    value_lists = [list(axes[name]) for name in names]
    for name, values in zip(names, value_lists):
        if not values:
            raise ConfigError(f"sweep axis {name!r} has no values")
    return [dict(zip(names, combo)) for combo in product(*value_lists)]


def workload_points(workloads: Iterable[str],
                    tiles: Iterable[int] = (1,),
                    scales: Union[int, Mapping[str, int]] = 1,
                    engines: Iterable[str] = ("event",),
                    overrides: Optional[Dict[str, Any]] = None,
                    evaluator: str = "workload",
                    ) -> List[Dict[str, Any]]:
    """Point specs for the built-in workload-shaped evaluators.

    ``scales`` is either one scale for every workload or a per-workload
    mapping (the usual shape: recursive benchmarks need smaller inputs
    than streaming ones).  ``evaluator`` selects who computes the point:
    ``"workload"`` runs the simulator, ``"static"`` the analytical
    performance model (same spec shape, so the two sweeps share a grid
    and line up record-for-record).
    """
    points = []
    for name in workloads:
        scale = scales if isinstance(scales, int) else scales[name]
        for combo in expand_grid({"tiles": tiles, "engine": engines}):
            spec: Dict[str, Any] = {
                "evaluator": evaluator, "workload": name,
                "tiles": combo["tiles"], "scale": scale,
                "engine": combo["engine"],
            }
            if overrides:
                spec["overrides"] = dict(overrides)
            points.append(spec)
    return points


#: override keys config_from_spec understands; anything else is a typo
#: we refuse to silently drop (it would poison the cache key space)
_OVERRIDE_KEYS = ("board", "cache", "dram_latency_cycles", "memory_model",
                  "scratchpad_latency", "analysis_level", "memory_bytes",
                  "unit_params")


def config_from_spec(workload, spec: Mapping[str, Any]):
    """Rebuild an :class:`~repro.accel.AcceleratorConfig` from a plain
    point spec, inside the worker process. Boards are named, cache
    geometry is a field dict — the inverse of the JSON encoding the
    cache key is computed over."""
    from repro.accel import TaskUnitParams
    from repro.accel.config import BOARDS
    from repro.memory.cache import CacheParams

    overrides = dict(spec.get("overrides") or {})
    unknown = sorted(set(overrides) - set(_OVERRIDE_KEYS))
    if unknown:
        raise ConfigError(
            f"unknown sweep override(s) {unknown}; supported: "
            f"{sorted(_OVERRIDE_KEYS)}")
    kwargs: Dict[str, Any] = {"engine": spec.get("engine", "event")}
    if "board" in overrides:
        name = overrides["board"]
        if name not in BOARDS:
            raise ConfigError(
                f"unknown board {name!r}; have {sorted(BOARDS)}")
        kwargs["board"] = BOARDS[name]
    if "cache" in overrides:
        kwargs["cache"] = CacheParams(**overrides["cache"])
    if "unit_params" in overrides:
        kwargs["unit_params"] = {
            task: TaskUnitParams(**params)
            for task, params in overrides["unit_params"].items()}
    for key in ("dram_latency_cycles", "memory_model", "scratchpad_latency",
                "analysis_level", "memory_bytes"):
        if key in overrides:
            kwargs[key] = overrides[key]
    return workload.default_config(spec.get("tiles"), **kwargs)
