"""Tests for the task queue: allocation, states, join counting, policies."""

import pytest

from repro.errors import SimulationError
from repro.task import COMPLETE, READY, SYNC, TaskQueue
from repro.task.messages import SpawnMessage


def spawn(dest=0, args=(1, 2), parent_sid=7, parent_dyid=3):
    return SpawnMessage(dest_sid=dest, args=args, parent_sid=parent_sid,
                        parent_dyid=parent_dyid)


class TestAllocation:
    def test_allocate_populates_entry(self):
        q = TaskQueue("q", 4)
        e = q.allocate(spawn())
        assert e.state == READY
        assert e.args == (1, 2)
        assert e.parent_sid == 7 and e.parent_dyid == 3
        assert e.child_count == 0

    def test_capacity_tracking(self):
        q = TaskQueue("q", 2)
        q.allocate(spawn())
        q.allocate(spawn())
        assert not q.has_free_entry()
        assert q.occupancy == 2
        with pytest.raises(SimulationError, match="full"):
            q.allocate(spawn())

    def test_release_recycles(self):
        q = TaskQueue("q", 1)
        e = q.allocate(spawn())
        q.take_ready()
        e.state = COMPLETE
        q.release(e)
        assert q.has_free_entry()
        e2 = q.allocate(spawn(args=(9,)))
        assert e2.args == (9,)
        assert e2.dyid == e.dyid

    def test_double_free_rejected(self):
        q = TaskQueue("q", 1)
        e = q.allocate(spawn())
        q.take_ready()
        q.release(e)
        with pytest.raises(SimulationError, match="double free"):
            q.release(e)

    def test_peak_occupancy_statistic(self):
        q = TaskQueue("q", 8)
        entries = [q.allocate(spawn()) for _ in range(5)]
        for e in entries:
            q.take_ready()
            q.release(e)
        assert q.stats()["peak_occupancy"] == 5
        assert q.stats()["total_allocated"] == 5


class TestDispatchPolicies:
    def test_fifo_serves_oldest(self):
        q = TaskQueue("q", 4, policy="fifo")
        first = q.allocate(spawn(args=("a",)))
        q.allocate(spawn(args=("b",)))
        assert q.take_ready() is first

    def test_lifo_serves_newest(self):
        q = TaskQueue("q", 4, policy="lifo")
        q.allocate(spawn(args=("a",)))
        last = q.allocate(spawn(args=("b",)))
        assert q.take_ready() is last

    def test_take_ready_empty(self):
        q = TaskQueue("q", 4)
        assert q.take_ready() is None
        assert not q.has_ready()

    def test_mark_ready_requeues_suspended(self):
        q = TaskQueue("q", 4)
        e = q.allocate(spawn())
        q.take_ready()
        e.state = SYNC
        q.mark_ready(e)
        assert e.state == READY
        assert q.take_ready() is e

    def test_unknown_policy_rejected(self):
        with pytest.raises(SimulationError, match="unknown policy"):
            TaskQueue("q", 4, policy="random")


class TestJoinCounting:
    def test_child_joined_decrements(self):
        q = TaskQueue("q", 4)
        e = q.allocate(spawn())
        e.child_count = 2
        q.child_joined(e.dyid)
        assert e.child_count == 1

    def test_join_underflow_detected(self):
        q = TaskQueue("q", 4)
        e = q.allocate(spawn())
        with pytest.raises(SimulationError, match="underflow"):
            q.child_joined(e.dyid)

    def test_join_to_freed_entry_detected(self):
        q = TaskQueue("q", 4)
        e = q.allocate(spawn())
        q.take_ready()
        q.release(e)
        with pytest.raises(SimulationError, match="freed"):
            q.child_joined(e.dyid)

    def test_bad_dyid_rejected(self):
        q = TaskQueue("q", 4)
        with pytest.raises(SimulationError, match="bad DyID"):
            q.entry(99)
