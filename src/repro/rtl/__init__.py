"""Chisel-flavoured RTL emission and the hardware component library."""

from repro.rtl.components import (
    KIND_TO_COMPONENT,
    LIBRARY,
    ComponentDef,
    component_for_kind,
)
from repro.rtl.emit import emit_design, emit_top, emit_txu
from repro.rtl.verilog import emit_top_verilog, emit_txu_verilog

__all__ = [
    "KIND_TO_COMPONENT", "LIBRARY", "ComponentDef", "component_for_kind",
    "emit_design", "emit_top", "emit_txu",
    "emit_top_verilog", "emit_txu_verilog",
]
