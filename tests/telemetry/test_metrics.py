"""Metrics registry: counters/gauges/histograms, disabled-path cost."""

import time

import pytest

from repro.errors import TapasError
from repro.telemetry.metrics import (
    LATENCY_BUCKETS_S,
    MetricsRegistry,
    exponential_buckets,
)


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


def test_counter_counts_and_rejects_negative(registry):
    counter = registry.counter("points")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(TapasError):
        counter.inc(-1)


def test_gauge_sets_and_adds(registry):
    gauge = registry.gauge("depth")
    gauge.set(3)
    gauge.add(-1)
    assert gauge.value == 2


def test_histogram_buckets_and_stats(registry):
    hist = registry.histogram("lat", buckets=(1.0, 10.0, 100.0))
    for value in (0.5, 5.0, 50.0, 500.0):
        hist.observe(value)
    payload = hist.as_dict()
    assert payload["count"] == 4
    assert payload["min"] == 0.5 and payload["max"] == 500.0
    # one observation per bucket, overflow lands in +Inf
    les = [b["le"] for b in payload["buckets"]]
    assert les == [1.0, 10.0, 100.0, "+Inf"]
    assert all(b["count"] == 1 for b in payload["buckets"])
    assert hist.quantile(0.5) <= 10.0


def test_histogram_requires_increasing_bounds(registry):
    with pytest.raises(TapasError):
        registry.histogram("bad", buckets=(1.0, 1.0))


def test_exponential_buckets_shape():
    buckets = exponential_buckets(0.001, 10.0, 4)
    assert buckets == pytest.approx((0.001, 0.01, 0.1, 1.0))
    assert len(LATENCY_BUCKETS_S) == 20


def test_same_name_returns_same_metric_but_type_mismatch_raises(registry):
    assert registry.counter("x") is registry.counter("x")
    with pytest.raises(TapasError):
        registry.gauge("x")


def test_disabled_registry_is_inert(registry):
    registry.disable()
    counter = registry.counter("c")
    hist = registry.histogram("h")
    counter.inc(100)
    hist.observe(1.0)
    assert counter.value == 0
    assert hist.as_dict()["count"] == 0
    registry.enable()
    counter.inc()
    assert counter.value == 1


def test_as_dict_round_trips_all_metrics(registry):
    registry.counter("a").inc(2)
    registry.gauge("b").set(7)
    registry.histogram("c").observe(0.01)
    payload = registry.as_dict()
    assert payload["a"]["value"] == 2
    assert payload["b"]["value"] == 7
    assert payload["c"]["count"] == 1
    assert sorted(registry.names()) == ["a", "b", "c"]


def test_disabled_overhead_is_bounded():
    """The disabled fast path is one flag test: within an order of
    magnitude of a plain method call, never hundreds of ns."""
    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("hot")
    hist = registry.histogram("hot_h")
    n = 50_000
    start = time.perf_counter()
    for _ in range(n):
        counter.inc()
        hist.observe(1.0)
    per_pair_ns = (time.perf_counter() - start) / n * 1e9
    # generous CI bound: 2 disabled calls must stay under 4 microseconds
    assert per_pair_ns < 4000, f"disabled path costs {per_pair_ns:.0f}ns"
