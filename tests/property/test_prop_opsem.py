"""Property-based tests of the shared operation semantics.

These invariants protect the foundation both execution engines (TXU and
CPU baseline) stand on.
"""

from hypothesis import given, strategies as st

from repro.ir.opsem import (
    eval_binop,
    eval_gep,
    eval_icmp,
    raw_to_value,
    to_f32,
    value_to_raw,
)
from repro.ir.types import F32, I8, I16, I32, I64

i32s = st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1)
i8s = st.integers(min_value=-128, max_value=127)
widths = st.sampled_from([I8, I16, I32, I64])


class TestWrapInvariants:
    @given(st.integers(), widths)
    def test_wrap_lands_in_range(self, value, type_):
        wrapped = type_.wrap(value)
        assert type_.min_value <= wrapped <= type_.max_value

    @given(st.integers(), widths)
    def test_wrap_is_idempotent(self, value, type_):
        once = type_.wrap(value)
        assert type_.wrap(once) == once

    @given(st.integers(), widths)
    def test_wrap_preserves_modulo(self, value, type_):
        assert (type_.wrap(value) - value) % (1 << type_.bits) == 0


class TestBinopAlgebra:
    @given(i32s, i32s)
    def test_add_matches_wrapped_python(self, a, b):
        assert eval_binop("add", I32, a, b) == I32.wrap(a + b)

    @given(i32s, i32s)
    def test_sub_is_inverse_of_add(self, a, b):
        total = eval_binop("add", I32, a, b)
        assert eval_binop("sub", I32, total, b) == I32.wrap(a)

    @given(i32s, i32s)
    def test_mul_commutes(self, a, b):
        assert eval_binop("mul", I32, a, b) == eval_binop("mul", I32, b, a)

    @given(i32s, i32s.filter(lambda v: v != 0))
    def test_division_identity(self, a, b):
        quotient = eval_binop("sdiv", I32, a, b)
        remainder = eval_binop("srem", I32, a, b)
        # avoid the single overflow case INT_MIN / -1
        if not (a == -(2 ** 31) and b == -1):
            assert quotient * b + remainder == a
            assert abs(remainder) < abs(b)

    @given(i32s, i32s)
    def test_xor_self_inverse(self, a, b):
        x = eval_binop("xor", I32, a, b)
        assert eval_binop("xor", I32, x, b) == a

    @given(i32s, st.integers(min_value=0, max_value=31))
    def test_shifts_match_python_semantics(self, a, k):
        assert eval_binop("shl", I32, a, k) == I32.wrap(a << k)
        assert eval_binop("ashr", I32, a, k) == a >> k

    @given(i32s, i32s)
    def test_minmax_bracket(self, a, b):
        lo = eval_binop("smin", I32, a, b)
        hi = eval_binop("smax", I32, a, b)
        assert lo <= hi
        assert {lo, hi} == {a, b}


class TestComparisons:
    @given(i32s, i32s)
    def test_icmp_trichotomy(self, a, b):
        assert (eval_icmp("slt", a, b) + eval_icmp("eq", a, b)
                + eval_icmp("sgt", a, b)) == 1

    @given(i32s, i32s)
    def test_icmp_le_is_lt_or_eq(self, a, b):
        assert eval_icmp("sle", a, b) == (
            eval_icmp("slt", a, b) | eval_icmp("eq", a, b))


class TestEncoding:
    @given(i32s)
    def test_i32_raw_roundtrip(self, value):
        assert raw_to_value(I32, value_to_raw(I32, value)) == value

    @given(i8s)
    def test_i8_raw_roundtrip(self, value):
        assert raw_to_value(I8, value_to_raw(I8, value)) == value

    @given(st.floats(allow_nan=False, allow_infinity=False,
                     min_value=-1e30, max_value=1e30))
    def test_f32_raw_roundtrip_is_f32_quantisation(self, value):
        quantised = to_f32(value)
        assert raw_to_value(F32, value_to_raw(F32, value)) == quantised

    @given(i32s)
    def test_raw_is_unsigned(self, value):
        assert value_to_raw(I32, value) >= 0


class TestGEP:
    @given(st.integers(min_value=8, max_value=1 << 20),
           st.lists(st.tuples(st.integers(min_value=0, max_value=1000),
                              st.integers(min_value=1, max_value=64)),
                    min_size=1, max_size=4))
    def test_gep_linear(self, base, pairs):
        indices = [p[0] for p in pairs]
        strides = [p[1] for p in pairs]
        addr = eval_gep(base, indices, strides)
        assert addr == base + sum(i * s for i, s in pairs)
