"""Span tracing: recording, nesting, Chrome-trace export."""

from repro.frontend import compile_source
from repro.obs.perfetto import chrome_trace, validate_chrome_trace
from repro.telemetry.spans import SpanTracer, host_trace_events

SOURCE = """
func add_one(x: i32) -> i32 { return x + 1; }
"""


def test_disabled_tracer_records_nothing():
    tracer = SpanTracer(enabled=False)
    with tracer.span("phase") as handle:
        assert handle is None
    assert tracer.spans == []
    assert tracer.total_seconds() == 0.0


def test_span_records_duration_and_args():
    tracer = SpanTracer(enabled=True)
    with tracer.span("parse", category="compile", module="m"):
        pass
    (span,) = tracer.spans
    assert span.name == "parse"
    assert span.category == "compile"
    assert span.args == {"module": "m"}
    assert span.duration_ns >= 0
    assert span.depth == 0


def test_nested_spans_record_depth_and_phase_totals():
    tracer = SpanTracer(enabled=True)
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    by_name = {span.name: span for span in tracer.spans}
    assert by_name["outer"].depth == 0
    assert by_name["inner"].depth == 1
    # depth-0 only: inner time is not double counted
    assert set(tracer.phase_totals()) == {"outer"}


def test_span_recorded_even_on_exception():
    tracer = SpanTracer(enabled=True)
    try:
        with tracer.span("boom"):
            raise RuntimeError("x")
    except RuntimeError:
        pass
    assert [span.name for span in tracer.spans] == ["boom"]


def test_toolchain_phases_are_traced_through_compile():
    from repro.telemetry.spans import TRACER

    TRACER.reset()
    TRACER.enable()
    try:
        compile_source(SOURCE, "traced")
    finally:
        TRACER.disable()
    names = {span.name for span in TRACER.spans}
    assert {"frontend.parse", "frontend.sema", "frontend.lower"} <= names
    TRACER.reset()


def test_host_trace_events_shape():
    tracer = SpanTracer(enabled=True)
    with tracer.span("a"):
        with tracer.span("b"):
            pass
    events = host_trace_events(tracer, pid=99)
    assert len(events) == 2
    for event in events:
        assert event["ph"] == "X"
        assert event["pid"] == 99
        assert event["ts"] >= 0 and event["dur"] >= 0
        assert event["cat"].startswith("host:")


def test_chrome_trace_with_host_spans_validates():
    tracer = SpanTracer(enabled=True)
    with tracer.span("compile"):
        pass
    with tracer.span("simulate"):
        pass
    document = chrome_trace(host_spans=tracer)
    assert validate_chrome_trace(document) == []
    names = [e["name"] for e in document["traceEvents"] if e["ph"] == "X"]
    assert set(names) == {"compile", "simulate"}
    # a process_name metadata row labels the host track
    metas = [e for e in document["traceEvents"] if e["ph"] == "M"]
    assert any(e["args"].get("name") == "host toolchain" for e in metas)


def test_as_dict_is_json_shaped():
    tracer = SpanTracer(enabled=True)
    with tracer.span("p", category="c", k=1):
        pass
    payload = tracer.as_dict()
    assert payload["spans"][0]["name"] == "p"
    assert payload["spans"][0]["args"] == {"k": 1}
    assert "p" in payload["phase_seconds"]
