"""Tests for the IR verifier: well-formed IR passes, broken IR is reported."""

import pytest

from repro.errors import VerificationError
from repro.ir import (
    Function,
    IRBuilder,
    Module,
    const,
    verify_function,
    verify_module,
)
from repro.ir.instructions import BinaryOp, Reattach, Ret
from repro.ir.types import I32, VOID


def build_linear_function():
    f = Function("linear", [I32], ["x"], I32)
    b = IRBuilder(f.add_block("entry"))
    total = b.add(f.arguments[0], const(1))
    b.ret(total)
    return f


def build_detach_function():
    """A correct fork-join: entry detaches body, continuation syncs."""
    f = Function("forked", [I32], ["x"], VOID)
    entry = f.add_block("entry")
    body = f.add_block("body")
    cont = f.add_block("cont")
    after = f.add_block("after")
    b = IRBuilder(entry)
    b.detach(body, cont)
    b.position_at_end(body)
    b.add(f.arguments[0], const(1))
    b.reattach(cont)
    b.position_at_end(cont)
    b.sync(after)
    b.position_at_end(after)
    b.ret()
    return f


class TestAcceptsGoodIR:
    def test_linear_function(self):
        verify_function(build_linear_function())

    def test_detach_reattach_sync(self):
        verify_function(build_detach_function())

    def test_module_with_call(self):
        m = Module("m")
        callee = build_linear_function()
        m.add_function(callee)
        caller = Function("caller", [], [], VOID)
        m.add_function(caller)
        b = IRBuilder(caller.add_block("entry"))
        b.call(callee, [const(3)])
        b.ret()
        verify_module(m)


class TestRejectsBrokenIR:
    def test_unterminated_block(self):
        f = Function("f", [], [], VOID)
        blk = f.add_block("entry")
        blk.append(BinaryOp("add", const(1), const(2)))
        with pytest.raises(VerificationError, match="terminator"):
            verify_function(f)

    def test_empty_function(self):
        f = Function("f", [], [], VOID)
        with pytest.raises(VerificationError, match="no basic blocks"):
            verify_function(f)

    def test_ret_type_mismatch(self):
        f = Function("f", [], [], I32)
        b = IRBuilder(f.add_block("entry"))
        b.ret()  # missing value
        with pytest.raises(VerificationError, match="ret"):
            verify_function(f)

    def test_use_before_def_in_block(self):
        f = Function("f", [], [], VOID)
        blk = f.add_block("entry")
        first = BinaryOp("add", const(1), const(2))
        second = BinaryOp("add", const(1), const(2))
        # use 'second' before it is defined by appending a user first
        user = BinaryOp("add", second, const(0))
        blk.append(first)
        blk.append(user)
        blk.append(second)
        blk.append(Ret())
        with pytest.raises(VerificationError, match="before definition"):
            verify_function(f)

    def test_use_not_dominated_across_blocks(self):
        f = Function("f", [I32], ["x"], VOID)
        entry = f.add_block("entry")
        left = f.add_block("left")
        right = f.add_block("right")
        join = f.add_block("join")
        b = IRBuilder(entry)
        cond = b.icmp("slt", f.arguments[0], const(0))
        b.condbr(cond, left, right)
        b.position_at_end(left)
        defined_in_left = b.add(f.arguments[0], const(1))
        b.br(join)
        b.position_at_end(right)
        b.br(join)
        b.position_at_end(join)
        b.add(defined_in_left, const(2))  # not dominated: right path skips def
        b.ret()
        with pytest.raises(VerificationError, match="not dominated"):
            verify_function(f)

    def test_detach_without_reattach(self):
        f = Function("f", [], [], VOID)
        entry = f.add_block("entry")
        body = f.add_block("body")
        cont = f.add_block("cont")
        b = IRBuilder(entry)
        b.detach(body, cont)
        b.position_at_end(body)
        b.br(cont)  # wrong: should reattach
        b.position_at_end(cont)
        b.ret()
        with pytest.raises(VerificationError, match="never reattaches"):
            verify_function(f)

    def test_reattach_without_detach(self):
        f = Function("f", [], [], VOID)
        entry = f.add_block("entry")
        other = f.add_block("other")
        entry.append(Reattach(other))
        IRBuilder(other).ret()
        with pytest.raises(VerificationError, match="no matching detach"):
            verify_function(f)

    def test_detach_target_outside_function(self):
        f = Function("f", [], [], VOID)
        entry = f.add_block("entry")
        cont = f.add_block("cont")
        other = Function("g", [], [], VOID)
        foreign = other.add_block("body")
        IRBuilder(foreign).reattach(cont)
        b = IRBuilder(entry)
        b.detach(foreign, cont)
        b.position_at_end(cont)
        b.ret()
        with pytest.raises(VerificationError, match="not a block"):
            verify_function(f)

    def test_sync_escaping_detached_region(self):
        f = Function("f", [], [], VOID)
        entry = f.add_block("entry")
        body = f.add_block("body")
        cont = f.add_block("cont")
        b = IRBuilder(entry)
        b.detach(body, cont)
        b.position_at_end(body)
        b.sync(cont)  # wrong: the region must close with reattach
        b.position_at_end(cont)
        b.ret()
        with pytest.raises(VerificationError, match="escapes"):
            verify_function(f)

    def test_sync_inside_detached_region_is_legal(self):
        """Nested fork-join inside a detached region syncs *within* the
        region — that must verify (nested cilk_for relies on it)."""
        f = Function("f", [I32], ["x"], VOID)
        entry = f.add_block("entry")
        body = f.add_block("body")
        inner = f.add_block("inner")
        inner_cont = f.add_block("inner_cont")
        joined = f.add_block("joined")
        cont = f.add_block("cont")
        after = f.add_block("after")
        b = IRBuilder(entry)
        b.detach(body, cont)
        b.position_at_end(body)
        b.detach(inner, inner_cont)
        b.position_at_end(inner)
        b.add(f.arguments[0], const(1))
        b.reattach(inner_cont)
        b.position_at_end(inner_cont)
        b.sync(joined)
        b.position_at_end(joined)
        b.reattach(cont)
        b.position_at_end(cont)
        b.sync(after)
        b.position_at_end(after)
        b.ret()
        verify_function(f)

    def test_ret_inside_detached_region(self):
        f = Function("f", [], [], VOID)
        entry = f.add_block("entry")
        body = f.add_block("body")
        cont = f.add_block("cont")
        b = IRBuilder(entry)
        b.detach(body, cont)
        b.position_at_end(body)
        b.ret()
        b.position_at_end(cont)
        b.ret()
        with pytest.raises(VerificationError, match="ret inside detached"):
            verify_function(f)


class TestVerifierAggregation:
    def test_multiple_problems_all_reported(self):
        f = Function("f", [], [], VOID)
        f.add_block("a")  # empty block
        f.add_block("b")  # empty block
        with pytest.raises(VerificationError) as excinfo:
            verify_function(f)
        assert len(excinfo.value.problems) >= 2
