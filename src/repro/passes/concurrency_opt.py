"""Stage-1 concurrency optimisation: sizing hints for task units.

The paper's Stage 1 runs a "Concurrency Opt" step (Fig 3) before emitting
the top-level architecture. Here that means computing, per static task:

* whether its spawn sites sit inside loops (a loop spawner produces many
  children per parent instance -> the *child's* queue should be deep);
* whether the task participates in recursion (needs frame memory and a
  queue deep enough to hold the live spawn tree);
* a recommended task-queue depth (Ntasks), which Stage 3 may override.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.ir.instructions import Detach
from repro.passes.loops import find_loops
from repro.passes.taskgraph import Task, TaskGraph


@dataclass
class TaskSizing:
    """Per-task sizing recommendation consumed by the Stage-3 binder."""

    task: Task
    spawned_in_loop: bool
    recursive: bool
    recommended_queue_depth: int

    def __repr__(self):
        return (f"<TaskSizing T{self.task.sid} loop={self.spawned_in_loop} "
                f"rec={self.recursive} Ntasks={self.recommended_queue_depth}>")


DEFAULT_QUEUE_DEPTH = 4
LOOP_SPAWNED_QUEUE_DEPTH = 32   # paper's Fig 4 example instantiates Nt=32
#: Recursive tasks hold every live node of the spawn tree in the queue
#: (suspended parents keep their entries until children join), so the
#: queue must cover the whole tree or a circular wait ensues. The paper's
#: recursive benchmarks spend 62-74 BRAMs on exactly this (Table IV).
RECURSIVE_QUEUE_DEPTH = 2048


def analyze_concurrency(graph: TaskGraph) -> Dict[Task, TaskSizing]:
    """Compute sizing recommendations for every task in the graph."""
    # which (function, detach) sites are inside loops?
    loop_sites = set()
    for function in graph.module.functions:
        for loop in find_loops(function):
            for block in loop.blocks:
                term = block.terminator
                if isinstance(term, Detach):
                    loop_sites.add(term)

    # which tasks are spawned from inside a loop?
    spawned_in_loop = set()
    for task in graph.tasks:
        for detach, child in task.region_spawns.items():
            if detach in loop_sites:
                spawned_in_loop.add(child)
        for detach, spawn in task.direct_spawns.items():
            if detach in loop_sites:
                spawned_in_loop.add(graph.root_for_function[spawn.callee])

    sizing: Dict[Task, TaskSizing] = {}
    for task in graph.tasks:
        in_loop = task in spawned_in_loop
        recursive = graph.is_recursive_function(task.function)
        if recursive:
            depth = RECURSIVE_QUEUE_DEPTH
        elif in_loop:
            depth = LOOP_SPAWNED_QUEUE_DEPTH
        else:
            depth = DEFAULT_QUEUE_DEPTH
        sizing[task] = TaskSizing(task, in_loop, recursive, depth)
    return sizing
