"""Mergesort: divide-and-conquer recursion + serial merge (paper Fig 11,
Table II: "Recursive parallel")."""

from __future__ import annotations

import random

from repro.ir.types import I32
from repro.workloads.base import PreparedRun, Workload

MAX_ELEMENTS = 4096  # size of the shared scratch global


class Mergesort(Workload):
    name = "mergesort"
    entry = "mergesort"
    challenge = "Recursive parallel"
    memory_pattern = "Regular"
    paper_tiles = 4  # Table IV

    source = """
    global tmp: i32[4096];

    // serial merge of two sorted halves through the shared scratch buffer
    func merge(list: i32*, start: i32, mid: i32, end: i32) {
      var i: i32 = start;
      var j: i32 = mid + 1;
      var k: i32 = start;
      while (i <= mid && j <= end) {
        if (list[i] <= list[j]) {
          tmp[k] = list[i];
          i = i + 1;
        } else {
          tmp[k] = list[j];
          j = j + 1;
        }
        k = k + 1;
      }
      while (i <= mid) { tmp[k] = list[i]; i = i + 1; k = k + 1; }
      while (j <= end) { tmp[k] = list[j]; j = j + 1; k = k + 1; }
      for (var t: i32 = start; t <= end; t = t + 1) {
        list[t] = tmp[t];
      }
    }

    // paper Fig 11: spawn self on each half, sync, then merge
    func mergesort(list: i32*, start: i32, end: i32) {
      if (start < end) {
        var mid: i32 = start + (end - start) / 2;
        spawn mergesort(list, start, mid);
        spawn mergesort(list, mid + 1, end);
        sync;
        merge(list, start, mid, end);
      }
    }
    """

    def default_n(self, scale: int) -> int:
        return min(32 * scale, MAX_ELEMENTS)

    def prepare(self, memory, scale: int = 1) -> PreparedRun:
        n = self.default_n(scale)
        rng = random.Random(5)
        data = [rng.randrange(-10_000, 10_000) for _ in range(n)]
        expected = sorted(data)
        base = memory.alloc_array(I32, data)

        def check(mem, _retval):
            return mem.read_array(base, I32, n) == expected

        return PreparedRun(self.entry, [base, 0, n - 1], check, work_items=n)
