"""Value-range analysis: interval algebra, transfer soundness vs the
executable opsem, and end-to-end inference on compiled programs."""

import random

import pytest

from repro.accel.generator import generate
from repro.analysis.ranges import (
    Interval,
    bits_for,
    full_range,
    infer_design_ranges,
    infer_module_ranges,
    refine_by_predicate,
    transfer_binop,
    transfer_cast,
    transfer_icmp,
)
from repro.errors import SimulationError
from repro.frontend import compile_source
from repro.ir.instructions import INT_BINOPS, ICMP_PREDICATES
from repro.ir.opsem import eval_binop, eval_cast, eval_icmp
from repro.ir.types import I1, I8, I16, I32, I64


# -- interval algebra --------------------------------------------------------

def test_interval_basics():
    a = Interval(-3, 7)
    assert a.contains(-3) and a.contains(7) and not a.contains(8)
    assert a.join(Interval(5, 9)) == Interval(-3, 9)
    assert a.meet(Interval(0, 100)) == Interval(0, 7)
    assert a.meet(Interval(50, 60)) is None
    with pytest.raises(ValueError):
        Interval(1, 0)


def test_widen_moves_unstable_bounds_to_type_extremes():
    full = full_range(I32)
    widened = Interval(0, 10).widen(Interval(0, 11), full)
    assert widened.lo == 0 and widened.hi == full.hi
    widened = Interval(0, 10).widen(Interval(-1, 10), full)
    assert widened.lo == full.lo and widened.hi == 10


def test_bits_for():
    assert bits_for(Interval(0, 0)) == 1
    assert bits_for(Interval(0, 1)) == 1
    assert bits_for(Interval(0, 255)) == 8
    assert bits_for(Interval(0, 2040)) == 11
    assert bits_for(Interval(-1, 0)) == 1
    assert bits_for(Interval(-128, 127)) == 8
    assert bits_for(Interval(-129, 127)) == 9


def test_full_range_matches_types():
    assert full_range(I1) == Interval(0, 1)
    assert full_range(I8) == Interval(-128, 127)
    assert full_range(I32) == Interval(-(1 << 31), (1 << 31) - 1)


# -- transfer soundness vs the executable semantics --------------------------

def _random_interval(rng, full):
    lo = rng.randint(full.lo, full.hi)
    hi = rng.randint(lo, full.hi)
    return Interval(lo, hi)


@pytest.mark.parametrize("op", sorted(INT_BINOPS))
@pytest.mark.parametrize("type_", [I8, I16, I32], ids=lambda t: f"i{t.bits}")
def test_binop_transfer_is_sound(op, type_):
    """For random operand intervals and random points inside them, the
    concrete opsem result must land inside the abstract result."""
    rng = random.Random(hash((op, type_.bits)) & 0xFFFF)
    full = full_range(type_)
    for _ in range(200):
        a, b = _random_interval(rng, full), _random_interval(rng, full)
        out = transfer_binop(op, a, b, type_)
        for _ in range(8):
            x = rng.randint(a.lo, a.hi)
            y = rng.randint(b.lo, b.hi)
            try:
                concrete = eval_binop(op, type_, x, y)
            except SimulationError:
                continue  # division by zero: no defined result to contain
            assert out.contains(concrete), (
                f"{op}: {x} op {y} = {concrete} outside "
                f"[{out.lo}, {out.hi}] for a=[{a.lo},{a.hi}] "
                f"b=[{b.lo},{b.hi}]")


@pytest.mark.parametrize("predicate", sorted(ICMP_PREDICATES))
def test_icmp_transfer_is_sound(predicate):
    rng = random.Random(hash(predicate) & 0xFFFF)
    full = full_range(I16)
    for _ in range(300):
        a, b = _random_interval(rng, full), _random_interval(rng, full)
        out = transfer_icmp(predicate, a, b)
        for _ in range(6):
            x, y = rng.randint(a.lo, a.hi), rng.randint(b.lo, b.hi)
            assert out.contains(eval_icmp(predicate, x, y))


@pytest.mark.parametrize("kind", ["trunc", "sext", "zext"])
@pytest.mark.parametrize("src,dst", [(I32, I8), (I8, I32), (I16, I64),
                                     (I32, I32)])
def test_cast_transfer_is_sound(kind, src, dst):
    if kind == "trunc" and dst.bits > src.bits:
        return
    rng = random.Random(hash((kind, src.bits, dst.bits)) & 0xFFFF)
    full = full_range(src)
    for _ in range(200):
        a = _random_interval(rng, full)
        out = transfer_cast(kind, a, src, dst)
        for _ in range(6):
            x = rng.randint(a.lo, a.hi)
            assert out.contains(eval_cast(kind, x, dst))


def test_refine_by_predicate():
    a, b = Interval(0, 100), Interval(10, 10)
    ra, rb = refine_by_predicate("slt", a, b)
    assert ra == Interval(0, 9)
    ra, rb = refine_by_predicate("sge", a, b)
    assert ra == Interval(10, 100)
    ra, rb = refine_by_predicate("eq", a, b)
    assert ra == Interval(10, 10)
    # infeasible comparison refines the constrained side to None
    ra, rb = refine_by_predicate("slt", Interval(50, 60), Interval(0, 0))
    assert ra is None


# -- whole-program inference --------------------------------------------------

NARROW_SUM = """
func narrow_sum(a: i32*) -> i32 {
  var s: i32 = 0;
  var i: i32 = 0;
  while (i < 8) {
    s = s + (a[i] & 255);
    i = i + 1;
  }
  return s;
}
"""


def _cells_by_name(ranges):
    return {alloca.name: interval
            for alloca, interval in ranges.cell_ranges.items()}


def test_narrow_sum_accumulator_bounds():
    """The headline result: a masked 8-trip accumulator is proven to
    [0, 2040] (11 bits), the induction cell to [0, 8] (4 bits), and the
    return range follows the accumulator."""
    module = compile_source(NARROW_SUM, "narrow_sum")
    design = generate(module)
    ranges = infer_design_ranges(design, entry="narrow_sum")
    cells = _cells_by_name(ranges)
    assert cells["s"] == Interval(0, 2040)
    assert cells["i"] == Interval(0, 8)
    assert bits_for(cells["s"]) == 11
    assert bits_for(cells["i"]) == 4
    fn = module.functions[0]
    assert ranges.ret_ranges[fn] == Interval(0, 2040)


def test_branch_refinement_bounds_loop_counter():
    source = """
func count(n: i32) -> i32 {
  var i: i32 = 0;
  while (i < n) {
    i = i + 1;
  }
  return i;
}
"""
    module = compile_source(source, "count")
    ranges = infer_module_ranges(module, entry="count")
    cells = _cells_by_name(ranges)
    # n is TOP, but i >= 0 always holds and i <= INT_MAX after widening
    assert cells["i"].lo == 0


def test_interprocedural_argument_ranges():
    source = """
func helper(x: i32) -> i32 {
  return x + 1;
}

func entry(a: i32*) -> i32 {
  var r: i32 = spawn helper(5);
  sync;
  return r;
}
"""
    module = compile_source(source, "interproc")
    design = generate(module)
    ranges = infer_design_ranges(design, entry="entry")
    helper = next(f for f in module.functions if f.name == "helper")
    # helper is only ever spawned with 5, so its argument and return
    # ranges are singletons
    assert ranges.arg_ranges[helper][0] == Interval(5, 5)
    assert ranges.ret_ranges[helper] == Interval(6, 6)


def test_entry_none_makes_all_arguments_top():
    module = compile_source(NARROW_SUM, "narrow_sum")
    ranges = infer_module_ranges(module)
    # cells still narrow (they do not depend on the pointer argument)
    cells = _cells_by_name(ranges)
    assert cells["i"] == Interval(0, 8)


def test_channel_bits_narrower_than_declared():
    module = compile_source(NARROW_SUM, "narrow_sum")
    design = generate(module)
    ranges = infer_design_ranges(design, entry="narrow_sum")
    for task in design.graph.tasks:
        widths = ranges.channel_bits(task)
        declared = [v.type.size_bytes * 8 for v in task.args]
        assert all(w <= d for w, d in zip(widths, declared))
