"""Figure 14: ALM utilisation by sub-block for the Table III configs.

Paper result: at 1 task/1 instruction ~60% of the logic is non-compute
overhead (task control, parallel-for control, memory arbitration, misc);
at 50 ops/task the overhead is ~20%; at 10 tiles the control overhead is
amortised to a sliver (~3%) and the memory network stays under 10%.
"""

import pytest

from repro.accel import AcceleratorConfig, TaskUnitParams, build_accelerator
from repro.reports import bench_record, estimate_resources, render_table
from repro.workloads import ScaleMicro

CONFIGS = [(1, 1), (1, 50), (10, 1), (10, 50)]


def breakdown_for(tiles: int, ins: int):
    workload = ScaleMicro(work_ops=ins)
    config = AcceleratorConfig(unit_params={
        "scale": TaskUnitParams(ntiles=1),
        "scale.t0": TaskUnitParams(ntiles=tiles),
    })
    accel = build_accelerator(workload.fresh_module(), config)
    report = estimate_resources(accel)
    return report.breakdown(), report.alms


def test_fig14_alm_breakdown(benchmark, save_result, save_json):
    def run():
        return {cfg: breakdown_for(*cfg) for cfg in CONFIGS}

    data = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    shares = {}
    for (tiles, ins), (breakdown, total) in data.items():
        pct = {k: 100.0 * v / total for k, v in breakdown.items()}
        shares[(tiles, ins)] = pct
        rows.append([f"{tiles}T/{ins}Ins",
                     round(pct["tiles"], 1),
                     round(pct["parallel_for"], 1),
                     round(pct["task_ctrl"], 1),
                     round(pct["mem_arb"], 1),
                     round(pct["misc"], 1)])
    text = render_table(
        ["Config", "Tiles%", "ParallelFor%", "TaskCtrl%", "MemArb%", "Misc%"],
        rows, title="Figure 14 — ALM utilisation by sub-block")
    save_result("fig14_alm_breakdown", text)
    save_json("fig14_alm_breakdown", [
        bench_record("scale_micro",
                     config={"tiles": tiles, "instructions": ins},
                     total_alms=total,
                     **{f"{k}_pct": round(v, 1)
                        for k, v in shares[(tiles, ins)].items()})
        for (tiles, ins), (_breakdown, total) in data.items()])

    def overhead(cfg):
        pct = shares[cfg]
        return pct["task_ctrl"] + pct["mem_arb"] + pct["misc"] + pct["parallel_for"]

    # paper shape: tiny tasks are overhead-dominated (~60%)
    assert overhead((1, 1)) > 45
    # 50 ops amortise the overhead (paper ~20%)
    assert overhead((1, 50)) < 40
    # 10 tiles amortise control to a sliver; memory network < 10%
    assert shares[(10, 50)]["task_ctrl"] < 5
    assert shares[(10, 50)]["mem_arb"] < 10
    assert overhead((10, 50)) < 15
