"""Frontend corner cases: literals, nesting, captures, types."""

import pytest

from repro.accel import build_accelerator
from repro.errors import SemanticError
from repro.frontend import compile_source
from repro.ir.types import I32


def run(source, func, args, modules=None):
    accel = build_accelerator(compile_source(source, "corner"))
    return accel, accel.run(func, args)


class TestLiterals:
    def test_hex_literals(self):
        _, result = run(
            "func f() -> i32 { return 0xFF + 0x10; }", "f", [])
        assert result.retval == 0x10F

    def test_negative_literal_folding(self):
        _, result = run("func f() -> i32 { return -5 * -3; }", "f", [])
        assert result.retval == 15

    def test_i64_arithmetic(self):
        _, result = run("""
        func f(a: i64) -> i64 { return a * 1000000 + 7; }
        """, "f", [5_000_000])
        assert result.retval == 5_000_000_000_007

    def test_i8_wraparound(self):
        _, result = run("func f(a: i8) -> i8 { return a + 1; }", "f", [127])
        assert result.retval == -128


class TestControlFlowCorners:
    def test_deeply_nested_ifs(self):
        src = """
        func f(a: i32) -> i32 {
          if (a > 0) { if (a > 10) { if (a > 100) { return 3; }
          return 2; } return 1; }
          return 0;
        }
        """
        _, r = run(src, "f", [500])
        assert r.retval == 3
        assert run(src, "f", [50])[1].retval == 2
        assert run(src, "f", [5])[1].retval == 1
        assert run(src, "f", [-5])[1].retval == 0

    def test_while_with_compound_condition(self):
        _, result = run("""
        func f(n: i32) -> i32 {
          var i: i32 = 0;
          var acc: i32 = 0;
          while (i < n && acc < 50) { acc = acc + i; i = i + 1; }
          return acc;
        }
        """, "f", [100])
        assert result.retval == 55  # 0+..+10

    def test_for_loop_never_entered(self):
        _, result = run("""
        func f() -> i32 {
          var acc: i32 = 1;
          for (var i: i32 = 5; i < 5; i = i + 1) { acc = acc * 0; }
          return acc;
        }
        """, "f", [])
        assert result.retval == 1

    def test_shadowing_in_inner_scope(self):
        _, result = run("""
        func f() -> i32 {
          var x: i32 = 1;
          {
            var y: i32 = x + 10;
            x = y;
          }
          return x;
        }
        """, "f", [])
        assert result.retval == 11


class TestSpawnCorners:
    def test_nested_spawn_blocks(self):
        source = """
        func f(a: i32*, n: i32) {
          cilk_for (var i: i32 = 0; i < n; i = i + 1) {
            spawn {
              a[i] = a[i] + 1;
            }
            sync;
          }
        }
        """
        accel = build_accelerator(compile_source(source, "nested"))
        base = accel.memory.alloc_array(I32, [0] * 6)
        accel.run("f", [base, 6])
        assert accel.memory.read_array(base, I32, 6) == [1] * 6

    def test_conditional_spawn_fig2(self):
        """The paper's Fig 2: spawn only when the element is 'valid'."""
        source = """
        func work(a: i32*, i: i32) { a[i] = a[i] * 100; }
        func f(a: i32*, n: i32) {
          for (var i: i32 = 0; i < n; i = i + 1) {
            if (a[i] > 0) {
              spawn work(a, i);
            }
          }
          sync;
        }
        """
        accel = build_accelerator(compile_source(source, "fig2"))
        data = [1, -1, 2, 0, 3]
        base = accel.memory.alloc_array(I32, data)
        result = accel.run("f", [base, 5])
        assert accel.memory.read_array(base, I32, 5) == [100, -1, 200, 0, 300]
        # only the valid elements spawned tasks
        work_unit = next(v for k, v in result.stats["units"].items()
                         if k.endswith(":work"))
        assert work_unit["completed"] == 3

    def test_capture_snapshot_semantics(self):
        """The captured value is the value at detach time, even though
        the parent keeps mutating the variable."""
        source = """
        func f(out: i32*, n: i32) {
          var i: i32 = 0;
          while (i < n) {
            spawn { out[i] = i; }
            i = i + 1;
          }
          sync;
        }
        """
        accel = build_accelerator(compile_source(source, "cap"))
        base = accel.memory.alloc_array(I32, [-1] * 5)
        accel.run("f", [base, 5])
        assert accel.memory.read_array(base, I32, 5) == [0, 1, 2, 3, 4]

    def test_spawn_result_read_before_sync_is_legal_but_stale(self):
        """Reading a spawn-result before sync races in Cilk too; here it
        observes the frame's previous contents. After sync it's correct."""
        source = """
        func g() -> i32 { return 7; }
        func f() -> i32 {
          var x: i32 = spawn g();
          sync;
          return x;
        }
        """
        _, result = run(source, "f", [])
        assert result.retval == 7


class TestSemanticCorners:
    def test_global_cannot_shadow_function(self):
        with pytest.raises(SemanticError, match="both a global and a function"):
            compile_source("""
            global f: i32[4];
            func f() { }
            """, "m")

    def test_condition_rejects_float(self):
        with pytest.raises(SemanticError, match="condition"):
            compile_source("func f(x: f32) { if (x) { } }", "m")

    def test_modulo_rejects_float(self):
        with pytest.raises(SemanticError, match="'%'"):
            compile_source("func f(x: f32) -> f32 { return x % 2.0; }", "m")

    def test_pointer_comparison_rejected(self):
        with pytest.raises(SemanticError, match="pointer comparison"):
            compile_source("func f(a: i32*, b: i32*) { if (a == b) { } }", "m")
