"""Dynamic race checking over traced simulations, and cross-validation of
the static verdicts against what actually happened on the accelerator."""

import pytest

from repro.accel import AcceleratorConfig, build_accelerator
from repro.analysis import analyze_design
from repro.analysis.dynamic import DynamicRaceChecker, cross_validate
from repro.analysis.races import find_races
from repro.errors import AnalysisError
from repro.frontend import compile_source
from repro.ir.types import I32
from repro.sim.trace import Trace

RACY_ACCUMULATOR = """
func racy_sum(a: i32*, out: i32*, n: i32) {
  cilk_for (var i: i32 = 0; i < n; i = i + 1) {
    out[0] = out[0] + a[i];
  }
}
"""

CLEAN_DISJOINT = """
func double_all(a: i32*, n: i32) {
  cilk_for (var i: i32 = 0; i < n; i = i + 1) {
    a[i] = a[i] * 2;
  }
}
"""

FIB = """
func fib(n: i32) -> i32 {
  if (n < 2) { return n; }
  var x: i32 = spawn fib(n - 1);
  var y: i32 = spawn fib(n - 2);
  sync;
  return x + y;
}
"""


def traced_run(source, name, setup):
    """Build with tracing, run, return (accelerator, trace, retval)."""
    module = compile_source(source, name)
    trace = Trace(enabled=True)
    acc = build_accelerator(module, AcceleratorConfig(default_ntiles=2),
                            trace=trace)
    function, args = setup(acc.memory)
    result = acc.run(function, args)
    return acc, trace, result.retval


def racy_setup(memory):
    a = memory.alloc_array(I32, list(range(1, 9)))
    out = memory.alloc_array(I32, [0])
    return "racy_sum", [a, out, 8]


def clean_setup(memory):
    a = memory.alloc_array(I32, list(range(8)))
    return "double_all", [a, 8]


class TestDynamicChecker:
    def test_racy_run_observes_conflicts(self):
        acc, trace, _ = traced_run(RACY_ACCUMULATOR, "racy_sum", racy_setup)
        conflicts = trace.race_check(acc.design.graph)
        assert conflicts
        # every conflict involves the out cell, with at least one write
        for conflict in conflicts:
            assert conflict.a.is_write or conflict.b.is_write
            assert conflict.a.addr == conflict.b.addr
            assert conflict.a.gid != conflict.b.gid

    def test_clean_run_is_conflict_free(self):
        acc, trace, _ = traced_run(CLEAN_DISJOINT, "double_all", clean_setup)
        assert trace.race_check(acc.design.graph) == []

    def test_recursive_run_is_conflict_free(self):
        """fib stresses the happens-before reconstruction: recursive direct
        spawns, per-instance ret_ptr epilogue stores, frame-slot reads of
        both children after the sync — none of it may be misreported."""
        acc, trace, retval = traced_run(FIB, "fib",
                                        lambda _mem: ("fib", [10]))
        assert retval == 55
        assert trace.race_check(acc.design.graph) == []

    def test_untraced_run_is_rejected(self):
        trace = Trace(enabled=True)
        trace.emit(0, "x", "spawn-in", "no payloads anywhere")
        with pytest.raises(AnalysisError, match="structured"):
            DynamicRaceChecker(trace)

    def test_empty_trace_is_trivially_clean(self):
        assert DynamicRaceChecker(Trace(enabled=True)).conflicts() == []


class TestCrossValidation:
    def test_static_findings_confirmed_dynamically(self):
        acc, trace, _ = traced_run(RACY_ACCUMULATOR, "racy_sum", racy_setup)
        findings, _ = find_races(acc.design.graph)
        outcome = cross_validate(findings, trace, acc.design.graph)
        assert outcome.sound
        assert len(outcome.confirmed) == len(findings) == 2
        assert outcome.unobserved == []

    def test_clean_program_nothing_to_confirm(self):
        acc, trace, _ = traced_run(CLEAN_DISJOINT, "double_all", clean_setup)
        findings, _ = find_races(acc.design.graph)
        assert findings == []
        outcome = cross_validate(findings, trace, acc.design.graph)
        assert outcome.sound
        assert outcome.confirmed == [] and outcome.missed == []

    def test_diagnostic_ops_also_accepted(self):
        """cross_validate takes rendered diagnostics (with .ops) too."""
        acc, trace, _ = traced_run(RACY_ACCUMULATOR, "racy_sum", racy_setup)
        report = analyze_design(acc.design)
        outcome = cross_validate(report.errors, trace, acc.design.graph)
        assert outcome.sound
        assert outcome.confirmed


class TestWorkloadsUnderTracing:
    """Race-free paper workloads, executed with the dynamic checker on:
    results stay correct and no dynamic race is observed."""

    @pytest.mark.parametrize("name", ["saxpy", "fibonacci", "stencil"])
    def test_workload_run_clean(self, name):
        from repro.workloads import REGISTRY

        workload = REGISTRY.get(name)
        trace = Trace(enabled=True)
        result = workload.run(trace=trace)
        assert result.correct
        # Workload.run built its own accelerator, so check with graph=None
        # (pure happens-before reconstruction, no static matching)
        assert trace.race_check() == []
