"""Stencil: parallel outer loop over positions, serial neighbourhood loops
with boundary conditionals — the paper's Fig 10 kernel verbatim
(Table II: "Nested parallel/serial")."""

from __future__ import annotations

import random

from repro.ir.types import I32
from repro.workloads.base import PreparedRun, Workload


class Stencil(Workload):
    name = "stencil"
    entry = "stencil"
    challenge = "Nested parallel/serial"
    memory_pattern = "Regular"
    paper_tiles = 3  # Table IV

    source = """
    // 3x3 boundary-aware mean filter (paper Fig 10 structure):
    // parallel over positions, serial over the neighbourhood.
    func stencil(in: i32*, out: i32*, NROWS: i32, NCOLS: i32) {
      cilk_for (var pos: i32 = 0; pos < NROWS * NCOLS; pos = pos + 1) {
        var total: i32 = 0;
        var count: i32 = 0;
        for (var nr: i32 = 0; nr <= 2; nr = nr + 1) {
          for (var nc: i32 = 0; nc <= 2; nc = nc + 1) {
            var row: i32 = pos / NCOLS + nr - 1;
            var col: i32 = (pos & (NCOLS - 1)) + nc - 1;  // paper Fig 10 line 9
            if (row >= 0) {
              if (row < NROWS) {
                if (col >= 0) {
                  if (col < NCOLS) {
                    total = total + in[row * NCOLS + col];
                    count = count + 1;
                  }
                }
              }
            }
          }
        }
        out[pos] = total / count;
      }
    }
    """

    def dims(self, scale: int):
        # NCOLS must be a power of two: the kernel uses the paper's
        # `pos & (NCOLS-1)` column computation (Fig 10 line 9)
        return 6 * scale, 1 << (2 + scale)  # NROWS, NCOLS

    @staticmethod
    def golden(grid, nrows, ncols):
        out = [0] * (nrows * ncols)
        for pos in range(nrows * ncols):
            total = count = 0
            for nr in range(3):
                for nc in range(3):
                    row = pos // ncols + nr - 1
                    col = pos % ncols + nc - 1
                    if 0 <= row < nrows and 0 <= col < ncols:
                        total += grid[row * ncols + col]
                        count += 1
            # match the IR's truncating signed division
            q = abs(total) // count
            out[pos] = q if total >= 0 else -q
        return out

    def prepare(self, memory, scale: int = 1) -> PreparedRun:
        nrows, ncols = self.dims(scale)
        rng = random.Random(11)
        grid = [rng.randrange(-50, 200) for _ in range(nrows * ncols)]
        expected = self.golden(grid, nrows, ncols)
        base_in = memory.alloc_array(I32, grid)
        base_out = memory.alloc_array(I32, [0] * len(expected))

        def check(mem, _retval):
            return mem.read_array(base_out, I32, len(expected)) == expected

        return PreparedRun(self.entry, [base_in, base_out, nrows, ncols],
                           check, work_items=nrows * ncols)
