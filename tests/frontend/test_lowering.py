"""Lowering tests: source -> IR structure, and source -> accelerator -> result."""

import pytest

from repro.accel import build_accelerator
from repro.errors import SemanticError
from repro.frontend import compile_source
from repro.ir.instructions import Alloca, Detach
from repro.ir.types import I32
from repro.passes import extract_tasks


class TestIRStructure:
    def test_cilk_for_lowers_to_detach_plus_sync(self):
        m = compile_source("""
        func f(a: i32*, n: i32) {
          cilk_for (var i: i32 = 0; i < n; i = i + 1) { a[i] = i; }
        }
        """)
        f = m.function("f")
        opcodes = [i.opcode for i in f.instructions()]
        assert "detach" in opcodes
        assert "reattach" in opcodes
        assert opcodes.count("sync") >= 1

    def test_serial_for_has_no_parallel_markers(self):
        m = compile_source("""
        func f(a: i32*, n: i32) {
          for (var i: i32 = 0; i < n; i = i + 1) { a[i] = i; }
        }
        """)
        assert not m.function("f").has_parallelism()

    def test_spawn_result_uses_frame_slot(self):
        m = compile_source("""
        func g() -> i32 { return 7; }
        func f() -> i32 {
          var x: i32 = spawn g();
          sync;
          return x;
        }
        """)
        allocas = [i for i in m.function("f").instructions()
                   if isinstance(i, Alloca)]
        assert any(a.in_frame for a in allocas)

    def test_plain_locals_are_register_slots(self):
        m = compile_source("func f() -> i32 { var x: i32 = 3; return x; }")
        allocas = [i for i in m.function("f").instructions()
                   if isinstance(i, Alloca)]
        assert allocas and not any(a.in_frame for a in allocas)

    def test_direct_spawn_extraction(self):
        """spawn f(...) collapses to a direct spawn of f's unit."""
        m = compile_source("""
        func work(a: i32*, i: i32) { a[i] = i; }
        func f(a: i32*, n: i32) {
          for (var i: i32 = 0; i < n; i = i + 1) {
            spawn work(a, i);
          }
          sync;
        }
        """)
        graph = extract_tasks(m)
        root = graph.root_for_function[m.function("f")]
        assert len(root.direct_spawns) == 1
        assert not root.region_spawns

    def test_captured_variable_loaded_before_detach(self):
        m = compile_source("""
        func f(a: i32*, n: i32) {
          var i: i32 = 0;
          while (i < n) {
            spawn { a[i] = 1; }
            i = i + 1;
          }
          sync;
        }
        """)
        f = m.function("f")
        # find the block ending in detach; the capture load must precede it
        for block in f.blocks:
            if isinstance(block.terminator, Detach):
                body_ops = [i.opcode for i in block.body()]
                assert "load" in body_ops
                break
        else:
            pytest.fail("no detach found")

    def test_implicit_sync_before_return_when_spawning(self):
        m = compile_source("""
        func g() { }
        func f() { spawn g(); }
        """)
        f = m.function("f")
        opcodes = [i.opcode for i in f.instructions()]
        assert "sync" in opcodes


class TestExecutionSemantics:
    def run_source(self, source, func, args, arrays=None):
        m = compile_source(source)
        acc = build_accelerator(m)
        bases = {}
        resolved = []
        for a in args:
            if isinstance(a, list):
                base = acc.memory.alloc_array(I32, a)
                bases[id(a)] = base
                resolved.append(base)
            else:
                resolved.append(a)
        result = acc.run(func, resolved)
        return acc, bases, result

    def test_conditional_inside_parallel_loop(self):
        """The Fig 2 pattern: spawn work only for valid elements."""
        src = """
        func f(a: i32*, n: i32) {
          cilk_for (var i: i32 = 0; i < n; i = i + 1) {
            if (a[i] > 0) { a[i] = a[i] * 10; }
          }
        }
        """
        data = [1, -2, 3, -4, 5, 0, 7, -8]
        acc, bases, _ = self.run_source(src, "f", [data, 8])
        got = acc.memory.read_array(bases[id(data)], I32, 8)
        assert got == [10, -2, 30, -4, 50, 0, 70, -8]

    def test_dynamic_exit_loop(self):
        """Saxpy-style dynamic trip count decided at run time."""
        src = """
        func f(a: i32*) -> i32 {
          var i: i32 = 0;
          while (a[i] != -1) { i = i + 1; }
          return i;
        }
        """
        data = [5, 6, 7, -1, 9]
        _, _, result = self.run_source(src, "f", [data])
        assert result.retval == 3

    def test_integer_division_and_modulo(self):
        src = "func f(a: i32, b: i32) -> i32 { return a / b * 100 + a % b; }"
        _, _, result = self.run_source(src, "f", [17, 5])
        assert result.retval == 302

    def test_float_arithmetic(self):
        src = """
        func f(a: f32*, n: i32) {
          cilk_for (var i: i32 = 0; i < n; i = i + 1) {
            a[i] = a[i] * 2.0 + 1.0;
          }
        }
        """
        m = compile_source(src)
        acc = build_accelerator(m)
        from repro.ir.types import F32
        base = acc.memory.alloc_array(F32, [0.5, 1.5, 2.5, 3.5])
        acc.run("f", [base, 4])
        assert acc.memory.read_array(base, F32, 4) == [2.0, 4.0, 6.0, 8.0]

    def test_logical_operators(self):
        src = """
        func f(a: i32, b: i32) -> i32 {
          if (a > 0 && b > 0) { return 1; }
          if (a > 0 || b > 0) { return 2; }
          if (!(a == b)) { return 3; }
          return 4;
        }
        """
        assert self.run_source(src, "f", [1, 1])[2].retval == 1
        assert self.run_source(src, "f", [1, -1])[2].retval == 2
        assert self.run_source(src, "f", [-1, -2])[2].retval == 3
        assert self.run_source(src, "f", [-5, -5])[2].retval == 4

    def test_global_array_shared_between_functions(self):
        src = """
        global buf: i32[8];
        func producer(n: i32) {
          for (var i: i32 = 0; i < n; i = i + 1) { buf[i] = i * i; }
        }
        func f(n: i32) -> i32 {
          producer(n);
          var total: i32 = 0;
          for (var i: i32 = 0; i < n; i = i + 1) { total = total + buf[i]; }
          return total;
        }
        """
        _, _, result = self.run_source(src, "f", [5])
        assert result.retval == 0 + 1 + 4 + 9 + 16

    def test_recursion_via_spawn_results(self):
        src = """
        func fib(n: i32) -> i32 {
          if (n < 2) { return n; }
          var x: i32 = spawn fib(n - 1);
          var y: i32 = spawn fib(n - 2);
          sync;
          return x + y;
        }
        """
        _, _, result = self.run_source(src, "fib", [10])
        assert result.retval == 55

    def test_negative_numbers(self):
        src = "func f(a: i32) -> i32 { return -a * 3; }"
        _, _, result = self.run_source(src, "f", [7])
        assert result.retval == -21

    def test_unreachable_code_rejected(self):
        with pytest.raises(SemanticError, match="unreachable"):
            compile_source("func f() -> i32 { return 1; var x: i32 = 2; }")

    def test_missing_return_rejected(self):
        with pytest.raises(SemanticError, match="fall off the end"):
            compile_source("func f(a: i32) -> i32 { if (a > 0) { return 1; } }")

    def test_both_branches_return(self):
        src = """
        func f(a: i32) -> i32 {
          if (a > 0) { return 1; } else { return 2; }
        }
        """
        assert self.run_source(src, "f", [5])[2].retval == 1
        assert self.run_source(src, "f", [-5])[2].retval == 2
