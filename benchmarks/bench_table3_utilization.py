"""Table III: FPGA utilisation of the Fig 12 microbenchmark.

Paper rows (Cyclone V 5CSEMA5): 1 tile/1 ins -> 185 MHz, 1314 ALM;
1/50 -> 178 MHz, 2955 ALM; 10/1 -> 154 MHz, 7107 ALM; 10/50 -> 159 MHz,
24738 ALM, 85% of chip; one M20K for the task queue. Arria 10: 10/50 at
308 MHz, 12% of chip.
"""

import sweeplib

from repro.accel import (
    ARRIA_10,
    CYCLONE_V,
    AcceleratorConfig,
    TaskUnitParams,
    build_accelerator,
)
from repro.exp import register_evaluator
from repro.reports import (
    estimate_mhz,
    estimate_resources,
    render_table,
    sweep_record,
)
from repro.workloads import ScaleMicro

CONFIGS = [(1, 1), (1, 50), (10, 1), (10, 50)]
PAPER_CYCLONE = {
    (1, 1): (185.46, 1314, 1424, 1, 5),
    (1, 50): (178.09, 2955, 3523, 1, 10),
    (10, 1): (153.61, 7107, 8547, 1, 24),
    (10, 50): (159.24, 24738, 27604, 1, 85),
}


def _eval_table3(spec):
    workload = ScaleMicro(work_ops=spec["ins"])
    config = AcceleratorConfig(unit_params={
        "scale": TaskUnitParams(ntiles=1),
        "scale.t0": TaskUnitParams(ntiles=spec["tiles"]),
    })
    accel = build_accelerator(workload.fresh_module(), config)
    report = estimate_resources(accel)
    return {
        "alms": report.alms, "regs": report.regs, "brams": report.brams,
        "mhz_cyclone": estimate_mhz(CYCLONE_V, report.alms),
        "mhz_arria": estimate_mhz(ARRIA_10, report.alms),
        "pct_cyclone": report.chip_percent(CYCLONE_V.alm_capacity),
        "pct_arria": report.chip_percent(ARRIA_10.alm_capacity),
    }


register_evaluator("table3_utilization", _eval_table3,
                   program_text=sweeplib.file_program_text(__file__))


def test_table3_utilization(benchmark, save_result, save_json,
                            sweep_runner):
    points = [{"evaluator": "table3_utilization", "tiles": tiles,
               "ins": ins} for tiles, ins in CONFIGS]

    def run():
        return sweeplib.run_points(sweep_runner, points)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    reports = {(r["spec"]["tiles"], r["spec"]["ins"]): r["value"]
               for r in result.records}

    rows = []
    for tiles, ins in CONFIGS:
        d = reports[(tiles, ins)]
        rows.append(["Cyclone V", tiles, ins, round(d["mhz_cyclone"], 1),
                     d["alms"], d["regs"], d["brams"],
                     round(d["pct_cyclone"], 1)])
    # Arria 10 point from the paper
    big = reports[(10, 50)]
    rows.append(["Arria 10", 10, 50, round(big["mhz_arria"], 1),
                 big["alms"], big["regs"], big["brams"],
                 round(big["pct_arria"], 1)])

    text = render_table(
        ["Board", "Tiles", "Ins", "MHz", "ALM", "Reg", "BRAM", "%Chip"],
        rows, title="Table III — FPGA utilisation (model vs paper)")
    save_result("table3_utilization", text)
    json_records = [
        sweep_record(record, "scale_micro",
                     config={"board": "Cyclone V",
                             "tiles": record["spec"]["tiles"],
                             "instructions": record["spec"]["ins"]},
                     mhz=round(record["value"]["mhz_cyclone"], 1),
                     alms=record["value"]["alms"],
                     regs=record["value"]["regs"],
                     brams=record["value"]["brams"],
                     chip_percent=round(record["value"]["pct_cyclone"], 1))
        for record in result.records]
    json_records.append(
        sweep_record(result.records[-1], "scale_micro",
                     config={"board": "Arria 10", "tiles": 10,
                             "instructions": 50},
                     mhz=round(big["mhz_arria"], 1), alms=big["alms"],
                     regs=big["regs"], brams=big["brams"],
                     chip_percent=round(big["pct_arria"], 1)))
    save_json("table3_utilization", json_records, sweep=result.summary)

    # model accuracy against the published points
    for config, (p_mhz, p_alm, p_reg, p_bram, p_pct) in PAPER_CYCLONE.items():
        d = reports[config]
        assert abs(d["alms"] - p_alm) / p_alm < 0.25
        assert abs(d["regs"] - p_reg) / p_reg < 0.40
        assert d["brams"] == p_bram
        assert abs(d["mhz_cyclone"] - p_mhz) / p_mhz < 0.20

    # the 10x50 design nearly fills a Cyclone V but is small on Arria 10
    assert big["pct_cyclone"] > 60
    assert big["pct_arria"] < 15
    # Arria closes timing ~2x higher (paper: 308 vs 159 MHz)
    assert big["mhz_arria"] > 1.7 * big["mhz_cyclone"]
