"""Stage-3 parameterisation: boards, per-task-unit knobs, accelerator config.

TAPAS is a parameterised hardware generator with late-stage binding
(paper §III-D): the two headline parameters are the task-queue depth
(Ntasks) and the tile count (Ntiles), settable per task unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.errors import ConfigError
from repro.memory.cache import CacheParams
from repro.task.txu import DEFAULT_LATENCIES


@dataclass(frozen=True)
class Board:
    """An FPGA target. Frequencies/capacities from the paper's Table III."""

    name: str
    base_mhz: float          # achievable clock for a small design
    alm_capacity: int        # adaptive logic modules on the chip
    bram_capacity: int       # M20K block RAMs
    dram_latency_ns: float = 270.0   # Table V setup

    def dram_latency_cycles(self, mhz: Optional[float] = None) -> int:
        mhz = mhz or self.base_mhz
        return max(1, round(self.dram_latency_ns * mhz / 1000.0))


#: Cyclone V 5CSEMA5: 32,070 ALMs, 397 M20Ks (DE1-SoC)
CYCLONE_V = Board("Cyclone V", base_mhz=185.0, alm_capacity=32070,
                  bram_capacity=397)
#: Arria 10 10AS066: 251,680 ALMs, 2,131 M20Ks
ARRIA_10 = Board("Arria 10", base_mhz=308.0, alm_capacity=251680,
                 bram_capacity=2131)

BOARDS = {b.name: b for b in (CYCLONE_V, ARRIA_10)}


@dataclass
class TaskUnitParams:
    """Per-task-unit knobs bound at Stage 3."""

    ntiles: int = 1
    queue_depth: Optional[int] = None    # None -> concurrency-opt hint
    max_inflight_per_tile: int = 8
    databox_entries: int = 8
    policy: Optional[str] = None         # None -> lifo iff recursive

    def __post_init__(self):
        if self.ntiles < 1:
            raise ConfigError("ntiles must be >= 1")
        if self.queue_depth is not None and self.queue_depth < 1:
            raise ConfigError("queue_depth must be >= 1")
        if self.max_inflight_per_tile < 1:
            raise ConfigError("max_inflight_per_tile must be >= 1")


@dataclass
class AcceleratorConfig:
    """Everything Stage 3 needs to elaborate an accelerator."""

    board: Board = CYCLONE_V
    default_ntiles: int = 1
    #: task-name -> overrides (task names are function names, or
    #: "function.tN" for detached-region tasks)
    unit_params: Dict[str, TaskUnitParams] = field(default_factory=dict)
    cache: CacheParams = field(default_factory=CacheParams)
    latencies: Dict[str, int] = field(default_factory=lambda: dict(DEFAULT_LATENCIES))
    memory_bytes: int = 1 << 22
    dram_latency_cycles: Optional[int] = None  # None -> board default
    #: "cache" (the paper's evaluated model: shared L1 + AXI DRAM) or
    #: "scratchpad" (the Fig 8 alternative backend: fixed-latency SRAM,
    #: data preloaded by the host — the streaming-HLS memory model)
    memory_model: str = "cache"
    scratchpad_latency: int = 2
    #: static-analysis gate run before elaboration:
    #:   "none"   — skip the analysis entirely (default)
    #:   "warn"   — print warnings; refuse to build on a *definite* race
    #:   "strict" — refuse to build on any race finding
    analysis_level: str = "none"
    #: simulation kernel: "event" (wakeup scheduling + quiescent
    #: fast-forward), "dense" (tick everything every cycle — the
    #: bit-identical oracle), or "compiled" (per-design generated flat
    #: kernel; falls back to "event" for instrumentation/topologies the
    #: codegen does not cover). Purely a host-side choice; cycle counts
    #: and architectural stats are identical across all three.
    engine: str = "event"

    def __post_init__(self):
        if self.memory_model not in ("cache", "scratchpad"):
            raise ConfigError(
                f"unknown memory model {self.memory_model!r}")
        if self.engine not in ("event", "dense", "compiled"):
            raise ConfigError(
                f"unknown engine {self.engine!r} "
                "(expected event/dense/compiled)")
        if self.analysis_level not in ("none", "warn", "strict"):
            raise ConfigError(
                f"unknown analysis level {self.analysis_level!r} "
                "(expected none/warn/strict)")

    def params_for(self, task_name: str) -> TaskUnitParams:
        params = self.unit_params.get(task_name)
        if params is None:
            return TaskUnitParams(ntiles=self.default_ntiles)
        return params

    def with_tiles(self, ntiles: int) -> "AcceleratorConfig":
        """A copy with a uniform tile count — the Fig 15 sweep knob."""
        return replace(self, default_ntiles=ntiles,
                       unit_params={k: replace(v, ntiles=ntiles)
                                    for k, v in self.unit_params.items()})

    def effective_dram_latency(self) -> int:
        if self.dram_latency_cycles is not None:
            return self.dram_latency_cycles
        return self.board.dram_latency_cycles()
