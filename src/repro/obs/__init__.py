"""Observability: cycle accounting, channel probes, trace export.

The profiling layer over the cycle simulator — attach an
:class:`Observer` to account every cycle of every component to
busy / stalled-on-input / stalled-on-output / idle, probe channel
occupancy, and export Chrome-trace/Perfetto JSON plus text profile
reports. Fully passive: with no observer attached the simulator's
behaviour and cycle counts are untouched.
"""

from repro.obs.accounting import ChannelProbe, CycleLedger
from repro.obs.observer import (
    Observer,
    render_stall_snapshot,
    stall_snapshot,
)
from repro.obs.perfetto import (
    chrome_trace,
    export_chrome_trace,
    validate_chrome_trace,
)

__all__ = [
    "ChannelProbe", "CycleLedger", "Observer",
    "render_stall_snapshot", "stall_snapshot",
    "chrome_trace", "export_chrome_trace", "validate_chrome_trace",
]
