"""Live-variable analysis over IR values.

TAPAS uses liveness for two things (paper §III-F): deriving the argument
list of each extracted task (live-ins of the detached region) and sizing the
per-task register resources. ``use`` here means appearing as an operand;
``def`` means being the producing instruction.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.values import Argument, Value
from repro.passes.cfg import post_order


def _trackable(value: Value) -> bool:
    """Constants and globals are materialised in place, not live values."""
    return isinstance(value, (Instruction, Argument)) and value is not None


def block_uses_defs(block: BasicBlock):
    """(upward-exposed uses, defs) for one block."""
    uses: Set[Value] = set()
    defs: Set[Value] = set()
    for inst in block.instructions:
        for op in inst.operands:
            if op is not None and _trackable(op) and op not in defs:
                uses.add(op)
        if not inst.type.is_void():
            defs.add(inst)
    return uses, defs


class LivenessInfo:
    """Per-block live-in/live-out sets for a function."""

    def __init__(self, function: Function):
        self.function = function
        self.live_in: Dict[BasicBlock, Set[Value]] = {}
        self.live_out: Dict[BasicBlock, Set[Value]] = {}
        self._compute()

    def _compute(self):
        function = self.function
        order = post_order(function)  # backward analysis converges fastest here
        uses: Dict[BasicBlock, Set[Value]] = {}
        defs: Dict[BasicBlock, Set[Value]] = {}
        for block in function.blocks:
            uses[block], defs[block] = block_uses_defs(block)
            self.live_in[block] = set()
            self.live_out[block] = set()

        changed = True
        while changed:
            changed = False
            for block in order:
                out: Set[Value] = set()
                for succ in block.successors():
                    out |= self.live_in[succ]
                inn = uses[block] | (out - defs[block])
                if out != self.live_out[block] or inn != self.live_in[block]:
                    self.live_out[block] = out
                    self.live_in[block] = inn
                    changed = True

    def max_live(self) -> int:
        """Upper bound on simultaneously live values — a register-count
        proxy used by the resource model."""
        best = 0
        for block in self.function.blocks:
            live = set(self.live_out[block])
            best = max(best, len(live))
            for inst in reversed(block.instructions):
                if not inst.type.is_void():
                    live.discard(inst)
                for op in inst.operands:
                    if op is not None and _trackable(op):
                        live.add(op)
                best = max(best, len(live))
        return best


def compute_liveness(function: Function) -> LivenessInfo:
    return LivenessInfo(function)


def region_live_ins(blocks: Iterable[BasicBlock]) -> Set[Value]:
    """Values used inside ``blocks`` but defined outside them.

    This is the task-argument computation of paper §III-F: the live-ins of
    a detached region become the spawn arguments / Args-RAM layout of the
    generated task unit.
    """
    block_set = set(blocks)
    defined: Set[Value] = set()
    for block in block_set:
        for inst in block.instructions:
            defined.add(inst)
    live: Set[Value] = set()
    for block in block_set:
        for inst in block.instructions:
            for op in inst.operands:
                if op is None or not _trackable(op):
                    continue
                if op not in defined:
                    live.add(op)
    return live
