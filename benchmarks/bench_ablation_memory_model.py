"""Ablation: cache vs scratchpad memory model (paper §III-E).

The data box supports both backends; the paper evaluates the cache model
only, because caches are the pre-requisite for dynamic task parallelism
over irregular data. The scratchpad gives deterministic low latency —
this quantifies what the cache's miss handling costs on regular kernels
(data conveniently preloaded), i.e. the gap streaming HLS flows exploit.
"""

import sweeplib

from repro.exp import workload_points
from repro.reports import render_table, sweep_record

NAMES = ["matrix_add", "saxpy", "stencil", "dedup"]
MODELS = ("cache", "scratchpad")


def test_ablation_cache_vs_scratchpad(benchmark, save_result, save_json,
                                      sweep_runner):
    points = []
    for model in MODELS:
        points += workload_points(NAMES, tiles=(4,), scales=2,
                                  overrides={"memory_model": model})

    def run():
        return sweeplib.run_points(sweep_runner, points)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    data = {name: {} for name in NAMES}
    for record in result.records:
        spec = record["spec"]
        data[spec["workload"]][spec["overrides"]["memory_model"]] = \
            record["value"]["cycles"]

    rows = []
    for name in NAMES:
        cache = data[name]["cache"]
        spm = data[name]["scratchpad"]
        rows.append([name, cache, spm, f"{cache / spm:.2f}x"])
    text = render_table(
        ["Benchmark", "cache cycles", "scratchpad cycles", "cache cost"],
        rows, title="Ablation — cache vs scratchpad memory model")
    save_result("ablation_memory_model", text)
    save_json("ablation_memory_model", [
        sweep_record(record, record["spec"]["workload"],
                     config={"ntiles": 4,
                             "memory_model": record["spec"]["overrides"][
                                 "memory_model"],
                             "scale": 2})
        for record in result.records], sweep=result.summary)

    for name in NAMES:
        # deterministic SRAM is never slower than the miss-taking cache
        assert data[name]["scratchpad"] <= data[name]["cache"]
    # a bandwidth-hungry kernel pays visibly for the cache's compulsory
    # misses (saxpy at 4 tiles is spawner-bound, so matrix shows it best)
    matrix_cost = data["matrix_add"]["cache"] / data["matrix_add"]["scratchpad"]
    assert matrix_cost > 1.5
