"""Structural Verilog emission: the post-Chisel view of a design.

The paper's Stage 3 runs "Chisel to Verilog" before bitstream generation
(Fig 3). This emitter renders the same structure as synthesisable-looking
structural Verilog: one module per TXU with one instantiated primitive
per dataflow node, decoupled ready/valid wiring along the DFG edges, and
a top module instantiating the task units, network and memory system.

Like :mod:`repro.rtl.emit` the output exists for inspection/diffing —
the executable form of the netlist is the cycle simulator.
"""

from __future__ import annotations

from typing import List

from repro.accel.generator import GeneratedDesign
from repro.rtl.components import KIND_TO_COMPONENT
from repro.task.compiled import CompiledTask


def _ident(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _width_of(inst) -> int:
    size = getattr(inst.type, "size_bytes", 4)
    return max(1, size * 8)


def emit_txu_verilog(compiled: CompiledTask) -> str:
    """One TXU as a structural Verilog module."""
    name = _ident(compiled.name)
    lines = [
        f"module {name}_txu (",
        "  input  wire        clock,",
        "  input  wire        reset,",
        "  // task-unit interface",
        "  input  wire        task_valid,",
        "  output wire        task_ready,",
        "  output wire        done_valid,",
        "  input  wire        done_ready,",
        "  // data-box interface",
        "  output wire        mem_req_valid,",
        "  input  wire        mem_req_ready,",
        "  input  wire        mem_resp_valid,",
        "  output wire        mem_resp_ready",
        ");",
        "",
    ]
    wires: List[str] = []
    insts: List[str] = []
    for block in compiled.blocks:
        dfg = compiled.dfgs[block]
        blk = _ident(block.name)
        insts.append(f"  // ---- block {block.name} ----")
        for node in dfg.nodes:
            comp = KIND_TO_COMPONENT.get(node.kind, "ALU").lower()
            label = f"{blk}_n{node.index}"
            width = _width_of(node.inst)
            wires.append(f"  wire [{width - 1}:0] {label}_data;")
            wires.append(f"  wire {label}_valid, {label}_ready;")
            ports = [".clock(clock)", ".reset(reset)"]
            for position, dep in enumerate(node.deps):
                src = f"{blk}_n{dep}"
                ports.append(f".in{position}_data({src}_data)")
                ports.append(f".in{position}_valid({src}_valid)")
                ports.append(f".in{position}_ready({src}_ready)")
            ports.append(f".out_data({label}_data)")
            ports.append(f".out_valid({label}_valid)")
            ports.append(f".out_ready({label}_ready)")
            insts.append(f"  tapas_{comp} #(.ID({node.index})) {label} (")
            insts.append("    " + ",\n    ".join(ports))
            insts.append("  );  // " + node.inst.opcode)
    lines.extend(wires)
    lines.append("")
    lines.extend(insts)
    lines.append("endmodule")
    return "\n".join(lines)


def emit_top_verilog(design: GeneratedDesign, queue_depths=None,
                     tile_counts=None) -> str:
    """The accelerator top: task units + network + shared L1 + AXI."""
    queue_depths = queue_depths or {}
    tile_counts = tile_counts or {}
    top = _ident(design.module.name)
    lines = [
        f"module {top}_accelerator (",
        "  input  wire clock,",
        "  input  wire reset,",
        "  // AXI master to DRAM",
        "  output wire axi_arvalid,",
        "  input  wire axi_arready,",
        "  input  wire axi_rvalid,",
        "  output wire axi_rready,",
        "  // host mailbox",
        "  input  wire host_spawn_valid,",
        "  output wire host_spawn_ready,",
        "  output wire host_done_valid,",
        "  input  wire host_done_ready",
        ");",
        "",
        "  tapas_cache #(.SIZE_BYTES(16384), .LINE_BYTES(32), .WAYS(4),"
        " .MSHRS(4)) l1 (.clock(clock), .reset(reset));",
        "  tapas_tasknetwork #(.UNITS("
        f"{len(design.compiled)})) net (.clock(clock), .reset(reset));",
        "",
    ]
    for ct in design.compiled:
        sizing = design.sizing[ct.task]
        depth = queue_depths.get(ct.name, sizing.recommended_queue_depth)
        tiles = tile_counts.get(ct.name, 1)
        unit = _ident(ct.name)
        lines.append(
            f"  tapas_taskunit #(.SID({ct.sid}), .NTASKS({depth}), "
            f".NTILES({tiles})) u_{unit} (")
        lines.append("    .clock(clock), .reset(reset),")
        lines.append(f"    .spawn_in(net.spawn_out[{ct.sid}]),")
        lines.append(f"    .join_in(net.join_out[{ct.sid}]),")
        lines.append(f"    .mem(l1.cpu[{ct.sid}])")
        lines.append(f"  );  // task {ct.name}")
    lines.append("endmodule")
    parts = [f"// TAPAS-generated Verilog for '{design.module.name}'",
             "\n".join(lines)]
    parts.extend(emit_txu_verilog(ct) for ct in design.compiled)
    return "\n\n".join(parts)
