"""Table IV: per-benchmark FPGA resources and power on Cyclone V.

Paper rows: 3-5 tiles, 120-223 MHz, 4.4k-14k ALMs, ~1 W designs; the
loop benchmarks use 3 M20Ks while the recursive pair (fib 62, mergesort
74) spends block RAM on deep task queues; mergesort is the largest design
at ~half the chip and ~1.5 W.
"""

import pytest

from repro.accel import CYCLONE_V
from repro.reports import (
    bench_record,
    estimate_mhz,
    estimate_resources,
    fpga_power_watts,
    render_table,
)
from repro.workloads import REGISTRY

PAPER = {  # name -> (tiles, MHz, ALMs, Regs, BRAM, Power W)
    "saxpy": (5, 149, 7195, 9414, 3, 0.957),
    "stencil": (3, 142, 11927, 11543, 3, 1.272),
    "matrix_add": (3, 223, 4702, 7025, 3, 0.677),
    "image_scale": (4, 141, 4442, 5814, 3, 0.798),
    "dedup": (3, 153, 10487, 6509, 3, 1.014),
    "fibonacci": (4, 120, 5699, 9887, 62, 1.155),
    "mergesort": (4, 134, 14098, 24775, 74, 1.491),
}


def measure(name):
    workload = REGISTRY.get(name)
    accel = workload.build()  # paper tile counts via default_config
    report = estimate_resources(accel)
    mhz = estimate_mhz(CYCLONE_V, report.alms)
    watts = fpga_power_watts(report.alms, report.brams, mhz)
    return report, mhz, watts


def test_table4_resources_power(benchmark, save_result, save_json):
    def run():
        return {name: measure(name) for name in REGISTRY.names()}

    data = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name in REGISTRY.names():
        report, mhz, watts = data[name]
        p = PAPER[name]
        rows.append([name, REGISTRY.get(name).paper_tiles,
                     round(mhz), p[1], report.alms, p[2],
                     report.brams, p[4], round(watts, 2), p[5]])
    text = render_table(
        ["Benchmark", "Tiles", "MHz", "paper", "ALMs", "paper",
         "BRAM", "paper", "Power", "paper"],
        rows, title="Table IV — FPGA resources and power (Cyclone V)")
    save_result("table4_resources_power", text)
    save_json("table4_resources_power", [
        bench_record(name,
                     config={"board": CYCLONE_V.name,
                             "tiles": REGISTRY.get(name).paper_tiles},
                     mhz=round(data[name][1]), alms=data[name][0].alms,
                     regs=data[name][0].regs, brams=data[name][0].brams,
                     watts=round(data[name][2], 3),
                     paper_mhz=PAPER[name][1], paper_alms=PAPER[name][2],
                     paper_brams=PAPER[name][4], paper_watts=PAPER[name][5])
        for name in REGISTRY.names()])

    watts = {name: data[name][2] for name in data}
    brams = {name: data[name][0].brams for name in data}
    alms = {name: data[name][0].alms for name in data}

    # every design is a ~1 W accelerator (paper: 0.68 - 1.49 W)
    assert all(0.4 < w < 2.5 for w in watts.values())
    # the recursive pair spends tens of M20Ks on queue state,
    # the loop benchmarks only a few (paper: 3 vs 62-74)
    for name in ("fibonacci", "mergesort"):
        assert brams[name] > 25
    for name in ("saxpy", "stencil", "matrix_add", "image_scale", "dedup"):
        assert brams[name] <= 6
    # mergesort is among the largest/most power hungry designs
    assert watts["mergesort"] >= sorted(watts.values())[-3]
    # everything fits comfortably on the Cyclone V (paper: <= ~50% chip)
    for name, a in alms.items():
        assert a < 0.9 * CYCLONE_V.alm_capacity, name
