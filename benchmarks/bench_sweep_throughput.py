"""Sweep-runner throughput: parallel fan-out and warm-cache replay.

Not a paper figure — this measures the experiment infrastructure
itself, on the Figure 15 grid (7 workloads x 4 tile counts = 28
simulation points):

* sequential cold: one point at a time, no cache — the pre-sweep
  baseline every benchmark used to be;
* parallel cold: 4 workers into an empty content-addressed cache;
* warm: the same grid again — every point must replay from disk.

Gates: the warm re-run must beat the sequential cold run by >= 10x
(this holds on any host — it is pure cache mechanics), and with >= 4
CPUs the 4-worker cold run must beat sequential by >= 3x (on fewer
cores there is no parallelism to win, so the gate is informational
only). Cached replays must be field-identical to the fresh records.
"""

import os
import time

import bench_fig15_tile_scaling as fig15
import sweeplib

from repro.exp import ResultCache, SweepRunner, workload_points
from repro.reports import bench_record, render_table
from repro.workloads import REGISTRY

#: 4-worker cold-sweep gate (only enforced when the host has the cores)
COLD_PARALLEL_MIN_SPEEDUP = 3.0
PARALLEL_JOBS = 4

#: warm-replay gate vs the sequential cold run (host-independent)
WARM_MIN_SPEEDUP = 10.0


def _timed(runner, points):
    start = time.perf_counter()
    result = sweeplib.run_points(runner, points)
    return result, time.perf_counter() - start


def test_sweep_throughput(save_result, save_json, tmp_path):
    points = workload_points(REGISTRY.names(), tiles=fig15.TILES,
                             scales=fig15.SCALES)
    cache = ResultCache(tmp_path / "cache")  # private: cold is truly cold

    seq, seq_s = _timed(SweepRunner(jobs=1, cache=None), points)
    par, par_s = _timed(SweepRunner(jobs=PARALLEL_JOBS, cache=cache),
                        points)
    warm, warm_s = _timed(SweepRunner(jobs=PARALLEL_JOBS, cache=cache),
                          points)

    # determinism across execution modes: sequential, parallel and
    # cached records all carry identical values (the host-timing keys —
    # seconds, worker, host_seconds inside engine stats — live outside
    # "value"... except engine host timing, which we mask)
    def masked(value):
        out = dict(value)
        stats = dict(out.get("stats") or {})
        engine = dict(stats.get("engine") or {})
        for key in ("host_seconds", "sim_cycles_per_host_second"):
            engine.pop(key, None)
        stats["engine"] = engine
        out["stats"] = stats
        return out

    for a, b, c in zip(seq.records, par.records, warm.records):
        assert masked(a["value"]) == masked(b["value"]) == \
            masked(c["value"])
    assert par.summary["cache_hits"] == 0
    assert warm.summary["cache_hits"] == len(points)
    assert all(r["cache_hit"] for r in warm.records)

    cold_speedup = seq_s / par_s if par_s else float("inf")
    warm_speedup = seq_s / warm_s if warm_s else float("inf")
    cpus = os.cpu_count() or 1

    table = render_table(
        ["Phase", "Jobs", "Cache", "Wall s", "vs sequential"],
        [["sequential cold", 1, "off", round(seq_s, 3), "1.00x"],
         ["parallel cold", PARALLEL_JOBS, "empty", round(par_s, 3),
          f"{cold_speedup:.2f}x"],
         ["warm replay", PARALLEL_JOBS, "full", round(warm_s, 3),
          f"{warm_speedup:.2f}x"]],
        title=f"Sweep throughput — fig15 grid ({len(points)} points, "
              f"{cpus} host CPUs)")
    save_result("sweep_throughput", table)
    save_json("sweep_throughput", [
        bench_record("fig15_grid", config={"points": len(points)},
                     phase="sequential_cold", jobs=1,
                     wall_seconds=round(seq_s, 4)),
        bench_record("fig15_grid", config={"points": len(points)},
                     phase="parallel_cold", jobs=PARALLEL_JOBS,
                     wall_seconds=round(par_s, 4),
                     speedup_vs_sequential=round(cold_speedup, 2)),
        bench_record("fig15_grid", config={"points": len(points)},
                     phase="warm_replay", jobs=PARALLEL_JOBS,
                     wall_seconds=round(warm_s, 4),
                     speedup_vs_sequential=round(warm_speedup, 2),
                     cache_hits=warm.summary["cache_hits"]),
    ], sweep=warm.summary)

    # warm replay is pure cache mechanics: >= 10x on any host
    assert warm_speedup >= WARM_MIN_SPEEDUP, (
        f"warm replay only {warm_speedup:.1f}x faster than sequential")
    # the parallel gate needs actual cores to mean anything
    if cpus >= PARALLEL_JOBS:
        assert cold_speedup >= COLD_PARALLEL_MIN_SPEEDUP, (
            f"4-worker cold sweep only {cold_speedup:.1f}x on "
            f"{cpus} CPUs")
