"""The paper's Fig 1 scenario: a dynamic task pipeline (PARSEC Dedup).

Demonstrates the three things static HLS pipelines cannot express:
  * the pipeline length is decided at run time (sentinel-terminated);
  * stage 2 (compression) is *conditional* — duplicates skip it;
  * stage spawning is heterogeneous (three different task units).

The example runs the pipeline, prints a per-stage execution trace (the
Fig 1 "task graph execution" view) and the per-unit statistics.

Run:  python examples/dedup_pipeline.py
"""

from repro.accel import build_accelerator
from repro.ir.types import I32
from repro.sim import Trace
from repro.workloads import Dedup


def main():
    workload = Dedup()
    trace = Trace(enabled=True)
    accel = build_accelerator(workload.fresh_module(),
                              workload.default_config(), trace=trace)
    prepared = workload.prepare(accel.memory, scale=1)
    result = accel.run(prepared.function, prepared.args)
    assert prepared.check(accel.memory, result.retval)

    chunks = prepared.work_items
    out_base = prepared.args[2]
    out = accel.memory.read_array(out_base, I32, chunks)
    dups = sum(1 for v in out if v == -2)

    print("=== Dedup pipeline (paper Fig 1) ===")
    print(f"chunks processed : {chunks}")
    print(f"duplicates found : {dups} (skipped stage 2 entirely)")
    print(f"compressed chunks: {chunks - dups}")
    print(f"total cycles     : {result.cycles}")

    print("\n=== Per-stage task units ===")
    for name, stats in result.stats["units"].items():
        print(f"{name:22s} spawns={stats['spawns_accepted']:>3} "
              f"completed={stats['completed']:>3} "
              f"peak queue={stats['queue']['peak_occupancy']}")

    print("\n=== First spawn events (Fig 1 execution view) ===")
    spawn_events = [e for e in trace.events if e.kind == "spawn-in"][:12]
    for event in spawn_events:
        print(event)

    # show the dynamic-pipeline property: conditional stage-2 traffic
    process = result.stats["units"]["T1:process_chunk"]
    compress = result.stats["units"]["T0:compress_chunk"]
    print(f"\nstage-1 tasks: {process['completed']}, "
          f"stage-2 tasks: {compress['completed']} "
          f"(stage 2 ran only for non-duplicates — a conditional stage)")


if __name__ == "__main__":
    main()
