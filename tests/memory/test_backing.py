"""Tests for the functional backing memory."""

import pytest

from repro.errors import MemoryError_
from repro.ir.types import F32, I8, I32, I64, ptr
from repro.memory import MainMemory


class TestAllocation:
    def test_alloc_respects_alignment(self):
        mem = MainMemory(1 << 16)
        a = mem.alloc(10, align=8)
        b = mem.alloc(10, align=8)
        assert a % 8 == 0 and b % 8 == 0
        assert b >= a + 10

    def test_address_zero_never_allocated(self):
        mem = MainMemory(1 << 16)
        assert mem.alloc(8) > 0

    def test_out_of_memory(self):
        mem = MainMemory(1024)
        with pytest.raises(MemoryError_, match="out of simulated memory"):
            mem.alloc(4096)

    def test_zero_byte_alloc_rejected(self):
        mem = MainMemory(1024)
        with pytest.raises(MemoryError_):
            mem.alloc(0)


class TestTypedAccess:
    def setup_method(self):
        self.mem = MainMemory(1 << 16)

    def test_i32_roundtrip(self):
        addr = self.mem.alloc(4)
        self.mem.write_value(addr, I32, -12345)
        assert self.mem.read_value(addr, I32) == -12345

    def test_i32_wraps(self):
        addr = self.mem.alloc(4)
        self.mem.write_value(addr, I32, 2 ** 31)  # overflow
        assert self.mem.read_value(addr, I32) == -(2 ** 31)

    def test_i8_roundtrip(self):
        addr = self.mem.alloc(1)
        self.mem.write_value(addr, I8, -5)
        assert self.mem.read_value(addr, I8) == -5

    def test_f32_roundtrip(self):
        addr = self.mem.alloc(4)
        self.mem.write_value(addr, F32, 3.5)
        assert self.mem.read_value(addr, F32) == 3.5

    def test_pointer_roundtrip(self):
        addr = self.mem.alloc(8)
        self.mem.write_value(addr, ptr(I32), 0xDEAD)
        assert self.mem.read_value(addr, ptr(I32)) == 0xDEAD

    def test_adjacent_values_do_not_clobber(self):
        addr = self.mem.alloc(8)
        self.mem.write_value(addr, I32, 1)
        self.mem.write_value(addr + 4, I32, 2)
        assert self.mem.read_value(addr, I32) == 1
        assert self.mem.read_value(addr + 4, I32) == 2


class TestBoundsChecking:
    def test_null_access_faults(self):
        mem = MainMemory(1024)
        with pytest.raises(MemoryError_, match="null"):
            mem.read_value(0, I32)

    def test_out_of_range_faults(self):
        mem = MainMemory(1024)
        with pytest.raises(MemoryError_, match="out of range"):
            mem.read_value(1022, I32)
        with pytest.raises(MemoryError_, match="out of range"):
            mem.write_value(2048, I32, 1)


class TestArrays:
    def test_array_roundtrip(self):
        mem = MainMemory(1 << 16)
        base = mem.alloc_array(I32, range(100))
        assert mem.read_array(base, I32, 100) == list(range(100))

    def test_i64_array(self):
        mem = MainMemory(1 << 16)
        vals = [2 ** 40, -2 ** 40, 7]
        base = mem.alloc_array(I64, vals)
        assert mem.read_array(base, I64, 3) == vals
