"""Tests for the command-line driver."""

import pytest

from repro.cli import main


@pytest.fixture
def kernel_file(tmp_path):
    path = tmp_path / "kernel.tapas"
    path.write_text("""
    func double_all(a: i32*, n: i32) {
      cilk_for (var i: i32 = 0; i < n; i = i + 1) {
        a[i] = a[i] * 2;
      }
    }
    """)
    return str(path)


class TestCommands:
    def test_compile_prints_ir(self, kernel_file, capsys):
        assert main(["compile", kernel_file]) == 0
        out = capsys.readouterr().out
        assert "detach" in out and "sync" in out

    def test_taskgraph_summary(self, kernel_file, capsys):
        assert main(["taskgraph", kernel_file]) == 0
        out = capsys.readouterr().out
        assert "task graph" in out
        assert "spawns" in out

    def test_taskgraph_dot(self, kernel_file, capsys):
        assert main(["taskgraph", kernel_file, "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_emit_chisel(self, kernel_file, capsys):
        assert main(["emit", kernel_file]) == 0
        assert "TaskUnit" in capsys.readouterr().out

    def test_emit_verilog(self, kernel_file, capsys):
        assert main(["emit", kernel_file, "--language", "verilog"]) == 0
        out = capsys.readouterr().out
        assert "module" in out and "endmodule" in out

    def test_estimate(self, kernel_file, capsys):
        assert main(["estimate", kernel_file, "--tiles", "2"]) == 0
        out = capsys.readouterr().out
        assert "Cyclone V" in out and "Arria 10" in out
        assert "ALM breakdown" in out

    def test_run_workload(self, capsys):
        assert main(["run", "saxpy"]) == 0
        out = capsys.readouterr().out
        assert "saxpy: OK" in out

    def test_workloads_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("matrix_add", "dedup", "mergesort"):
            assert name in out


class TestErrors:
    def test_missing_file(self, capsys):
        assert main(["compile", "/nonexistent.tapas"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_source_reports_error(self, tmp_path, capsys):
        path = tmp_path / "bad.tapas"
        path.write_text("func f( {")
        assert main(["compile", str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_workload(self, capsys):
        assert main(["run", "nope"]) == 1
        assert "unknown workload" in capsys.readouterr().err
