"""Chisel-flavoured RTL emission for a generated design.

TAPAS's final artifact is parameterised Chisel (paper Fig 4/Fig 6). This
emitter renders the same two views from our Stage-1/2 output:

* the **top level** — task units declared with their (Ntasks, Ntiles)
  parameters, wired spawn->detach / sync->reattach, data boxes merged
  into the shared L1, L1 on the AXI DRAM master;
* a **per-task TXU module** — one dataflow node instance per operation,
  connected by decoupled (ready/valid) links following the DFG edges.

The output is for inspection and diffing, not re-simulation — the cycle
model in :mod:`repro.sim` is the executable form of the same netlist.
"""

from __future__ import annotations

from typing import List

from repro.accel.generator import GeneratedDesign
from repro.ir.values import Value
from repro.rtl.components import KIND_TO_COMPONENT
from repro.task.compiled import CompiledTask


def _args_bits(values: List[Value]) -> int:
    return sum(max(1, v.type.size_bytes) * 8 for v in values)


def emit_top(design: GeneratedDesign, queue_depths=None,
             tile_counts=None) -> str:
    """Render the Fig 4-style top level in Chisel-flavoured pseudocode."""
    queue_depths = queue_depths or {}
    tile_counts = tile_counts or {}
    name = design.module.name
    lines = [
        f"class {_camel(name)}Accelerator(implicit p: Parameters) extends Module {{",
        "  // shared memory system",
        "  val SharedL1cache = Module(new Cache(SizeBytes=16384, LineBytes=32, Ways=4, MSHRs=4))",
        "  val DRAM = Module(new NastiMemSlave(LatencyCycles=40))",
        "  DRAM.io <> SharedL1cache.io.axi",
        "",
        "  // task units (one per static task)",
    ]
    for ct in design.compiled:
        sizing = design.sizing[ct.task]
        nt = queue_depths.get(ct.name, sizing.recommended_queue_depth)
        tiles = tile_counts.get(ct.name, 1)
        lines.append(
            f"  val Task{ct.sid} = Module(new TaskUnit(Nt={nt}, "
            f"Ntiles={tiles}, ArgsBits={_args_bits(ct.arg_values)}, "
            f"dataflow=new {_camel(ct.name)}TXU()))  // {ct.name}")
    lines.append("")
    lines.append("  // spawn / sync wiring (SID-routed network)")
    for ct in design.compiled:
        for detach, spec in ct.spawn_specs.items():
            lines.append(
                f"  Task{spec.dest_sid}.io.detach.in <> "
                f"Task{ct.sid}.io.spawn.out  // {ct.name} spawns T{spec.dest_sid}")
            lines.append(
                f"  Task{ct.sid}.io.sync.in <> Task{spec.dest_sid}.io.out")
        for call, spec in ct.call_specs.items():
            lines.append(
                f"  Task{spec.dest_sid}.io.detach.in <> "
                f"Task{ct.sid}.io.call.out  // {ct.name} calls T{spec.dest_sid}")
    lines.append("")
    lines.append("  // data boxes -> shared cache")
    for ct in design.compiled:
        lines.append(
            f"  SharedL1cache.io.cpu({ct.sid}) <> Task{ct.sid}.io.mem")
    lines.append("}")
    return "\n".join(lines)


def emit_txu(compiled: CompiledTask) -> str:
    """Render a Fig 6-style TXU module: one node per operation, decoupled
    links along the dataflow edges."""
    lines = [f"class {_camel(compiled.name)}TXU(implicit p: Parameters) "
             "extends TaskDataflow {"]
    node_names = {}
    for block in compiled.blocks:
        dfg = compiled.dfgs[block]
        lines.append(f"  // ---- block {block.name} ----")
        for node in dfg.nodes:
            comp = KIND_TO_COMPONENT.get(node.kind, "ALU")
            label = f"{block.name}_n{node.index}"
            node_names[(block, node.index)] = label
            detail = node.inst.opcode
            lines.append(
                f"  val {label} = Module(new {comp}(ID={node.index}))"
                f"  // {detail}")
        for node in dfg.nodes:
            for dep in node.deps:
                src = node_names[(block, dep)]
                dst = node_names[(block, node.index)]
                lines.append(f"  {dst}.io.in <> {src}.io.out")
    lines.append("}")
    return "\n".join(lines)


def emit_design(design: GeneratedDesign) -> str:
    """The complete RTL dump: top level plus every TXU."""
    parts = [f"// TAPAS-generated RTL for module '{design.module.name}'",
             emit_top(design)]
    parts.extend(emit_txu(ct) for ct in design.compiled)
    return "\n\n".join(parts)


def _camel(name: str) -> str:
    return "".join(part.capitalize() for part in
                   name.replace(".", "_").split("_"))
