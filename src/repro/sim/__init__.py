"""Cycle-level simulation substrate: engine, channels, components, tracing."""

from repro.sim.channel import Channel
from repro.sim.component import Component
from repro.sim.engine import DEADLOCK_WINDOW, Simulator
from repro.sim.stats import StatCounters, utilization
from repro.sim.trace import NULL_TRACE, Trace, TraceEvent

__all__ = [
    "Channel", "Component", "DEADLOCK_WINDOW", "Simulator",
    "StatCounters", "utilization", "NULL_TRACE", "Trace", "TraceEvent",
]
