"""Spawn and join messages exchanged between task units (paper Fig 5).

A spawn is the tuple (Args[], ParentID) where ParentID = [SID, DyID]; the
SID routes the eventual join back to the parent's unit and the DyID
indexes the parent's task-queue entry. ``join_kind`` distinguishes a
fork-join child (decrements the parent entry's Child# on completion) from
a blocking call (delivers its return value to the waiting dataflow node).

Both message classes are ``__slots__`` types: task-heavy workloads
allocate one per spawn/join, and the flat layout keeps the allocation
cheap and the instances picklable across sweep-worker process
boundaries without dragging simulator state along.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

JOIN_SYNC = "sync"
JOIN_CALL = "call"


class SpawnMessage:
    """Routed through the spawn network to ``dest_sid``'s task unit."""

    __slots__ = ("dest_sid", "args", "parent_sid", "parent_dyid",
                 "join_kind", "call_token", "ret_ptr", "parent_gid",
                 "spawn_seq")

    def __init__(self, dest_sid: int, args: Tuple[Any, ...],
                 parent_sid: Optional[int], parent_dyid: Optional[int],
                 join_kind: str = JOIN_SYNC,
                 call_token: Optional[Any] = None,
                 ret_ptr: Optional[int] = None,
                 parent_gid: Optional[Any] = None,
                 spawn_seq: Optional[int] = None):
        self.dest_sid = dest_sid
        self.args = args
        #: None for the host-issued root spawn
        self.parent_sid = parent_sid
        self.parent_dyid = parent_dyid
        self.join_kind = join_kind
        self.call_token = call_token       # identifies the waiting call node
        self.ret_ptr = ret_ptr             # §IV-C shared-memory return slot
        #: dynamic-checker provenance: spawning instance's globally-unique
        #: id and the trace seq of the spawn issue (None when tracing off)
        self.parent_gid = parent_gid
        self.spawn_seq = spawn_seq

    @property
    def port(self) -> int:
        """Demux routing key in the spawn network."""
        return self.dest_sid

    def __eq__(self, other):
        if not isinstance(other, SpawnMessage):
            return NotImplemented
        return all(getattr(self, name) == getattr(other, name)
                   for name in SpawnMessage.__slots__)

    def __repr__(self):
        return (f"SpawnMessage(dest_sid={self.dest_sid!r}, "
                f"args={self.args!r}, parent_sid={self.parent_sid!r}, "
                f"parent_dyid={self.parent_dyid!r}, "
                f"join_kind={self.join_kind!r})")


class JoinMessage:
    """Completion notification routed back to the parent's task unit."""

    __slots__ = ("parent_sid", "parent_dyid", "join_kind", "call_token",
                 "retval", "child_gid")

    def __init__(self, parent_sid: int, parent_dyid: int, join_kind: str,
                 call_token: Optional[Any] = None, retval: Any = None,
                 child_gid: Optional[Any] = None):
        self.parent_sid = parent_sid
        self.parent_dyid = parent_dyid
        self.join_kind = join_kind
        self.call_token = call_token
        self.retval = retval
        self.child_gid = child_gid   # joining instance, for the checker

    @property
    def port(self) -> int:
        return self.parent_sid

    def __eq__(self, other):
        if not isinstance(other, JoinMessage):
            return NotImplemented
        return all(getattr(self, name) == getattr(other, name)
                   for name in JoinMessage.__slots__)

    def __repr__(self):
        return (f"JoinMessage(parent_sid={self.parent_sid!r}, "
                f"parent_dyid={self.parent_dyid!r}, "
                f"join_kind={self.join_kind!r}, retval={self.retval!r})")
