"""Tests for the prediction cross-validation harness
(repro.analysis.perfcheck)."""

import json

import pytest

from repro.analysis.perfcheck import (
    CheckRecord,
    CheckReport,
    PerfChecker,
    bottleneck_class,
    spearman,
)
from repro.workloads import REGISTRY


class TestBottleneckClass:
    @pytest.mark.parametrize("component,reason", [
        ("T0:fib", "memory"),
        ("u0.databox", "allocator-full"),
        ("L1", "mshr-full"),
        ("L1", "resp-backpressure"),
        ("DRAM", "dram-backpressure"),
        ("memnet.mux", "mem-backpressure"),
        ("u2.databox", "cache-backpressure"),
    ])
    def test_memory_class(self, component, reason):
        assert bottleneck_class(component, reason) == "memory"

    @pytest.mark.parametrize("component,reason", [
        ("T0:mergesort", "call-join"),
        ("T1:mergesort.tile0", "call-join"),
    ])
    def test_serial_call_class(self, component, reason):
        assert bottleneck_class(component, reason) == "serial-call"

    @pytest.mark.parametrize("component,reason", [
        ("T0:saxpy", "sync-wait"),
        ("T1:saxpy.t0", "execute"),
        ("T1:saxpy.t0", "tiles-full"),
        ("T0:image_scale", "dispatch"),
        ("tasknet.spawn_arb", "spawn-network"),
        ("tasknet.join_arb", "join-network"),
        ("T0:fib", "spawn-backpressure"),
        ("T1:fib.t0", "output-backpressure"),
    ])
    def test_spawn_throughput_class(self, component, reason):
        assert bottleneck_class(component, reason) == "spawn-throughput"

    def test_memory_component_wins_over_unknown_reason(self):
        assert bottleneck_class("u0.databox", "busy") == "memory"
        assert bottleneck_class("L1.bank0", "busy") == "memory"


class TestSpearman:
    def test_perfect_correlation(self):
        assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == \
            pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        assert spearman([1, 2, 3, 4], [40, 30, 20, 10]) == \
            pytest.approx(-1.0)

    def test_monotone_transform_invariance(self):
        xs = [3.0, 1.0, 4.0, 1.5, 9.0]
        assert spearman(xs, [x ** 3 for x in xs]) == pytest.approx(1.0)

    def test_ties_get_averaged_ranks(self):
        rho = spearman([1, 2, 2, 3], [10, 20, 20, 30])
        assert rho == pytest.approx(1.0)

    def test_degenerate_inputs(self):
        assert spearman([], []) == 0.0
        assert spearman([1], [2]) == 0.0
        assert spearman([5, 5, 5], [1, 2, 3]) == 0.0


def _record(workload="w", tiles=1, scale=1, predicted=100, actual=100,
            predicted_class="memory", actual_class="memory",
            predict_seconds=0.001, sim_seconds=1.0) -> CheckRecord:
    return CheckRecord(
        workload=workload, tiles=tiles, scale=scale,
        predicted_cycles=predicted, actual_cycles=actual,
        rel_error=(predicted - actual) / actual,
        predicted_bottleneck=f"x:{predicted_class}",
        actual_bottleneck=f"y:{actual_class}",
        predicted_class=predicted_class, actual_class=actual_class,
        class_match=(predicted_class == actual_class),
        predict_seconds=predict_seconds, sim_seconds=sim_seconds)


class TestCheckReport:
    def test_aggregates(self):
        report = CheckReport(records=[
            _record(predicted=100, actual=100),
            _record(predicted=220, actual=200),
            _record(predicted=300, actual=400,
                    predicted_class="spawn-throughput"),
        ])
        assert report.spearman == pytest.approx(1.0)
        assert report.median_abs_rel_error == pytest.approx(0.1)
        assert report.class_match_rate == pytest.approx(2 / 3)
        assert report.median_speedup == pytest.approx(1000.0)
        assert report.aggregate_speedup == pytest.approx(1000.0)

    def test_empty_report(self):
        report = CheckReport()
        assert report.spearman == 0.0
        assert report.median_abs_rel_error == 0.0
        assert report.class_match_rate == 0.0
        assert report.median_speedup == 0.0
        assert report.aggregate_speedup == 0.0

    def test_as_dict_json_safe(self):
        report = CheckReport(records=[_record()],
                             build_seconds={"w": 0.01})
        payload = report.as_dict()
        assert payload["schema"] == 1
        assert payload["points"] == 1
        json.dumps(payload)

    def test_render_text(self):
        report = CheckReport(records=[_record(workload="saxpy")])
        text = report.render_text()
        assert "saxpy" in text
        assert "spearman" in text


class TestPerfChecker:
    def test_check_point_runs_both_sides(self):
        checker = PerfChecker()
        record = checker.check_point(REGISTRY.get("saxpy"), 2, 1)
        assert record.predicted_cycles > 0
        assert record.actual_cycles > 0
        assert record.predicted_class in (
            "memory", "spawn-throughput", "serial-call")
        assert record.actual_class in (
            "memory", "spawn-throughput", "serial-call")
        assert record.predict_seconds < record.sim_seconds

    def test_model_reused_across_points(self):
        checker = PerfChecker()
        workload = REGISTRY.get("saxpy")
        checker.predict_point(workload, 1, 1)
        model = checker._models["saxpy"][0]
        checker.predict_point(workload, 4, 2)
        assert checker._models["saxpy"][0] is model


def test_bottleneck_class_matches_simulator_on_most_points():
    """The headline attribution gate: over a workload × tiles × scale
    matrix, the predicted top bottleneck lands in the simulator's
    stall class on at least half the points."""
    checker = PerfChecker()
    report = checker.check_matrix(
        REGISTRY.all(), tiles=(1, 4), scales=(1, 2))
    assert len(report.records) >= 20
    assert report.class_match_rate >= 0.5, report.render_text()
    # the harness scores ranking too — sanity-floor it well below the
    # bench gate so this stays a smoke test, not a second benchmark
    assert report.spearman >= 0.8, report.render_text()
