"""Tests for the error hierarchy, tracing and small report helpers."""


from repro.errors import (
    DeadlockError,
    FrontendError,
    IRError,
    LexError,
    ParseError,
    SemanticError,
    SimulationError,
    TapasError,
    VerificationError,
)
from repro.reports import bar_chart
from repro.sim import NULL_TRACE, Trace, TraceEvent


class TestErrorHierarchy:
    def test_everything_is_a_tapas_error(self):
        for cls in (IRError, FrontendError, LexError, ParseError,
                    SemanticError, SimulationError, DeadlockError,
                    VerificationError):
            assert issubclass(cls, TapasError)

    def test_frontend_errors_carry_position(self):
        error = ParseError("bad token", line=4, column=7)
        assert "line 4:7" in str(error)
        assert error.line == 4 and error.column == 7

    def test_frontend_error_without_position(self):
        assert str(SemanticError("oops")) == "oops"

    def test_verification_error_aggregates(self):
        error = VerificationError(["a broke", "b broke"])
        assert error.problems == ["a broke", "b broke"]
        assert "a broke; b broke" in str(error)

    def test_deadlock_error_records_cycle(self):
        error = DeadlockError(1234, "stuck channels")
        assert error.cycle == 1234
        assert "1234" in str(error) and "stuck channels" in str(error)


class TestTrace:
    def test_disabled_trace_records_nothing(self):
        trace = Trace(enabled=False)
        trace.emit(1, "x", "k", "d")
        assert len(trace) == 0
        NULL_TRACE.emit(1, "x", "k")
        assert len(NULL_TRACE) == 0

    def test_filter(self):
        trace = Trace(enabled=True,
                      filter_=lambda e: e.kind == "keep")
        trace.emit(1, "s", "keep")
        trace.emit(2, "s", "drop")
        assert len(trace) == 1
        assert trace.of_kind("keep")[0].cycle == 1

    def test_render_truncates(self):
        trace = Trace(enabled=True)
        for i in range(10):
            trace.emit(i, "src", "kind", f"event{i}")
        text = trace.render(limit=3)
        assert "event0" in text and "event2" in text
        assert "7 more events" in text

    def test_event_format(self):
        event = TraceEvent(5, "unit", "spawn", "detail")
        assert "unit" in str(event) and "spawn" in str(event)


class TestBarChart:
    def test_bars_scale_to_peak(self):
        text = bar_chart("T", ["a", "bb"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[2].count("#") == 10       # the peak fills the width
        assert 0 < lines[1].count("#") <= 5

    def test_empty_values(self):
        assert bar_chart("T", [], []) == "T"

    def test_zero_peak(self):
        text = bar_chart("T", ["a"], [0.0])
        assert "0.00" in text
