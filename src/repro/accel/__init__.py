"""The TAPAS HLS toolchain: generation stages and elaborated accelerators."""

from repro.accel.accelerator import Accelerator, RunResult, build_accelerator
from repro.accel.config import (
    ARRIA_10,
    BOARDS,
    CYCLONE_V,
    AcceleratorConfig,
    Board,
    TaskUnitParams,
)
from repro.accel.generator import GeneratedDesign, compile_task, generate
from repro.accel.runtime import ARM_COST_MODEL, HostCall, HostProgram

__all__ = [
    "Accelerator", "RunResult", "build_accelerator",
    "ARRIA_10", "BOARDS", "CYCLONE_V", "AcceleratorConfig", "Board",
    "TaskUnitParams",
    "GeneratedDesign", "compile_task", "generate",
    "ARM_COST_MODEL", "HostCall", "HostProgram",
]
