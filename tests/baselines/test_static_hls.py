"""Tests for the static-HLS (Intel HLS style) baseline model."""

import pytest

from repro.baselines import (
    IMAGE_SCALE_SPEC,
    SAXPY_SPEC,
    StaticHLSModel,
    StaticKernelSpec,
    synthesize_static,
)
from repro.errors import ConfigError


class TestTiming:
    def test_unrolling_reduces_cycles_when_compute_bound(self):
        spec = StaticKernelSpec(name="compute", loads_per_iter=0,
                                stores_per_iter=0, alu_per_iter=30)
        r1 = synthesize_static(spec, iterations=10000, unroll=1)
        r3 = synthesize_static(spec, iterations=10000, unroll=3)
        assert r3.cycles < 0.5 * r1.cycles

    def test_unrolling_does_not_help_streaming_kernels(self):
        """SAXPY is stream-bandwidth bound: unrolling buys nothing —
        which is why Table V's parity result is a memory story."""
        r1 = synthesize_static(SAXPY_SPEC, iterations=10000, unroll=1)
        r3 = synthesize_static(SAXPY_SPEC, iterations=10000, unroll=3)
        assert r3.cycles == pytest.approx(r1.cycles, rel=0.02)

    def test_memory_bound_kernel_stops_scaling(self):
        """SAXPY is stream-bandwidth bound: unroll 3 -> 6 barely helps."""
        r3 = synthesize_static(SAXPY_SPEC, iterations=100000, unroll=3)
        r6 = synthesize_static(SAXPY_SPEC, iterations=100000, unroll=6)
        assert r6.cycles > 0.8 * r3.cycles

    def test_cycles_scale_linearly_with_iterations(self):
        small = synthesize_static(SAXPY_SPEC, iterations=1000, unroll=1)
        big = synthesize_static(SAXPY_SPEC, iterations=10000, unroll=1)
        assert big.cycles == pytest.approx(10 * small.cycles, rel=0.15)

    def test_pipeline_fill_charged(self):
        r = synthesize_static(SAXPY_SPEC, iterations=1, unroll=1)
        model = StaticHLSModel()
        assert r.cycles >= model.dram_latency_cycles + SAXPY_SPEC.depth

    def test_zero_unroll_rejected(self):
        with pytest.raises(ConfigError):
            synthesize_static(SAXPY_SPEC, iterations=10, unroll=0)


class TestResources:
    def test_alms_grow_with_unroll(self):
        r1 = synthesize_static(IMAGE_SCALE_SPEC, 1000, unroll=1)
        r4 = synthesize_static(IMAGE_SCALE_SPEC, 1000, unroll=4)
        assert r4.alms > r1.alms

    def test_stream_buffers_dominate_bram(self):
        """Table V's signature: Intel HLS burns tens of M20Ks on LSU
        stream buffers (38-67), far more than TAPAS's ~10."""
        saxpy = synthesize_static(SAXPY_SPEC, 1000, unroll=3)
        image = synthesize_static(IMAGE_SCALE_SPEC, 1000, unroll=3)
        assert saxpy.brams >= 30
        assert image.brams >= 40

    def test_frequency_drops_with_unroll(self):
        model = StaticHLSModel()
        assert model.mhz(6) < model.mhz(1)

    def test_table5_magnitudes(self):
        """ALM counts land in Table V's 3.8k-5.5k band at unroll 3."""
        saxpy = synthesize_static(SAXPY_SPEC, 1000, unroll=3)
        image = synthesize_static(IMAGE_SCALE_SPEC, 1000, unroll=3)
        assert 2000 < saxpy.alms < 9000
        assert 3000 < image.alms < 14000


class TestCustomSpecs:
    def test_compute_bound_kernel_ii_one(self):
        spec = StaticKernelSpec(name="alu_only", loads_per_iter=0,
                                stores_per_iter=0, alu_per_iter=20)
        model = StaticHLSModel()
        assert model.initiation_interval(spec, unroll=1) == 1.0

    def test_runtime_uses_mhz(self):
        r = synthesize_static(SAXPY_SPEC, 100000, unroll=3)
        assert r.runtime_seconds == pytest.approx(
            r.cycles / (r.mhz * 1e6))
