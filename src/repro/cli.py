"""Command-line driver: ``python -m repro <command> ...``.

Subcommands mirror the toolchain stages:

* ``compile``   — source file -> printed parallel IR
* ``taskgraph`` — source file -> task-graph summary (or DOT with --dot)
* ``analyze``   — source file -> static race/dependence diagnostics
* ``lint``      — source file -> hardware lint: value ranges/bitwidths,
  spawn-network and netlist verification (TAP-NET-*/TAP-WIDTH-* rules)
* ``emit``      — source file -> Chisel-flavoured or Verilog RTL
* ``estimate``  — source file -> resources / fmax / power per board
* ``run``       — execute a registered workload and report cycles
* ``sweep``     — expand a workload × tiles × engine grid and run it
  through the parallel sweep runner (worker processes + the
  content-addressed result cache)
* ``predict``   — static performance prediction for a source file:
  predicted cycles + ranked bottlenecks from the analytical model,
  without running any simulation engine
* ``profile``   — run a source file under the cycle profiler (guest
  cycles), or under the host-time profiler with ``--host`` (where do
  host seconds go while simulating this design?)
* ``diff``      — run a source file under both simulation engines and
  fail unless cycle counts and stats are bit-identical
* ``history``   — list the persistent run registry
  (``results/history/runs.jsonl``), diff each series' newest run
  against its predecessor and flag regressions beyond a drift threshold
* ``workloads`` — list the paper's benchmark suite

Every command runs with the host-side span tracer enabled, so
``--trace-out`` exports carry the toolchain phases (parse -> lower ->
passes -> elaborate -> simulate) next to the guest cycle timeline, and
``--stats-json`` runs append a record to the run registry.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.accel import (
    ARRIA_10,
    CYCLONE_V,
    AcceleratorConfig,
    build_accelerator,
    generate,
)
from repro.errors import TapasError
from repro.frontend import compile_source
from repro.ir import print_module
from repro.reports import (
    estimate_mhz,
    estimate_resources,
    fpga_power_watts,
    render_table,
    task_graph_dot,
)
from repro.rtl import emit_design, emit_top_verilog
from repro.sim import ENGINES


def _load_module(path: str):
    with open(path) as handle:
        source = handle.read()
    name = os.path.splitext(os.path.basename(path))[0]
    return compile_source(source, name)


def cmd_compile(args) -> int:
    print(print_module(_load_module(args.source)))
    return 0


def cmd_taskgraph(args) -> int:
    design = generate(_load_module(args.source))
    if args.dot:
        print(task_graph_dot(design.graph))
    else:
        print(design.graph.describe())
    return 0


#: ``--fail-on`` spelling -> diagnostic severity ("note" is the render_text
#: name for info-severity findings)
_FAIL_ON = {"note": "info", "warning": "warning", "error": "error"}


def _report_exit(report, module_name: str, fmt: str, fail_on: str) -> int:
    """Shared ``analyze``/``lint`` tail: render, then exit 1 iff any
    diagnostic is at/above the ``--fail-on`` severity (0 otherwise)."""
    if fmt == "json":
        print(report.render_json(module_name))
    else:
        print(report.render_text(module_name))
    return 1 if report.fails(_FAIL_ON[fail_on]) else 0


def cmd_analyze(args) -> int:
    from repro.analysis import analyze_design

    module = _load_module(args.source)
    design = generate(module)
    report = analyze_design(design)
    return _report_exit(report, module.name, args.format, args.fail_on)


def cmd_lint(args) -> int:
    from repro.accel.accelerator import Accelerator
    from repro.analysis.lint import lint_design

    module = _load_module(args.source)
    design = generate(module)
    entry = args.entry or (module.functions[0].name if module.functions else None)
    config = AcceleratorConfig(default_ntiles=args.tiles,
                               analysis_level="none")
    if args.queue_depth:
        from repro.accel.config import TaskUnitParams

        config.unit_params = {
            task.name: TaskUnitParams(ntiles=args.tiles,
                                      queue_depth=args.queue_depth)
            for task in design.graph.tasks}
    accelerator = None
    if not args.no_netlist:
        # elaborate (but never run) the accelerator so the netlist-scope
        # rules can verify the real component/channel graph
        accelerator = Accelerator(design, config)
    report = lint_design(design, entry=entry, config=config,
                         accelerator=accelerator)
    return _report_exit(report, module.name, args.format, args.fail_on)


def cmd_emit(args) -> int:
    design = generate(_load_module(args.source))
    if args.language == "verilog":
        print(emit_top_verilog(design))
    else:
        print(emit_design(design))
    return 0


def cmd_estimate(args) -> int:
    module = _load_module(args.source)
    config = AcceleratorConfig(default_ntiles=args.tiles)
    accel = build_accelerator(module, config)
    report = estimate_resources(accel, include_cache=args.include_cache,
                                width_aware=args.width_aware)
    rows = []
    for board in (CYCLONE_V, ARRIA_10):
        mhz = estimate_mhz(board, report.alms)
        watts = fpga_power_watts(report.alms, report.brams, mhz)
        rows.append([board.name, report.alms, report.regs, report.brams,
                     round(mhz, 1), round(watts, 2),
                     round(report.chip_percent(board.alm_capacity), 1)])
    print(render_table(
        ["Board", "ALMs", "Regs", "BRAM", "MHz", "Power W", "%Chip"],
        rows, title=f"Estimate for {module.name} ({args.tiles} tiles/unit)"))
    print("\nALM breakdown:", report.breakdown())
    return 0


def _append_history(kind: str, name: str, *, engine=None, cycles=None,
                    host_seconds=None, sim_cycles_per_host_second=None,
                    config=None, metrics=None):
    """Append one record to the persistent run registry. Never fatal:
    an unwritable registry costs the pointer, not the command."""
    from repro.telemetry.history import append_run, run_record

    record = run_record(kind, name, engine=engine, cycles=cycles,
                        host_seconds=host_seconds,
                        sim_cycles_per_host_second=sim_cycles_per_host_second,
                        config=config, metrics=metrics)
    try:
        return append_run(record)
    except OSError as error:
        print(f"warning: run history not recorded: {error}", file=sys.stderr)
        return None


def _write_stats_json(path: str, workload_name: str, config, cycles: int,
                      stats: dict, observer=None, extra=None,
                      host_profile=None, kind: str = "run"):
    """The ``--stats-json`` document: the BENCH_*.json record schema,
    plus the run's ``stats`` dump, the optional host-profile block and
    the pointer to the run-registry record this write appends."""
    from repro.reports.benchjson import (
        bench_record,
        utilization_from_stats,
    )

    utilization = None
    stalls = None
    if observer is not None:
        utilization = {ledger.name: round(ledger.utilization(), 4)
                       for ledger in observer.component_ledgers()}
        stalls = observer.stall_breakdown()
    if utilization is None:
        utilization = utilization_from_stats(stats, cycles) or None
    record = bench_record(workload_name, config=config, cycles=cycles,
                          utilization=utilization, stalls=stalls,
                          engine=stats, **(extra or {}))
    record["stats"] = _json_safe_stats(stats)
    if host_profile is not None:
        record["host_profile"] = host_profile
    engine = record.get("engine") or {}
    record["history"] = _append_history(
        kind, workload_name, engine=engine.get("name"), cycles=cycles,
        host_seconds=engine.get("host_seconds"),
        sim_cycles_per_host_second=engine.get("sim_cycles_per_host_second"),
        config=record.get("config"),
        metrics=_json_safe_stats(extra) if extra else None)
    with open(path, "w") as handle:
        json.dump(record, handle, indent=1)
        handle.write("\n")
    return record


def _json_safe_stats(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe_stats(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe_stats(v) for k, v in value.items()}
    return str(value)


def _instrumented(args):
    """Build (trace, observer) when any observability flag is set."""
    from repro.obs import Observer
    from repro.sim import Trace

    wants = (getattr(args, "trace_out", None)
             or getattr(args, "stats_json", None)
             or getattr(args, "profile", False))
    if not wants:
        return None, None
    return Trace(enabled=True), Observer()


def cmd_run(args) -> int:
    from repro.workloads import REGISTRY

    workload = REGISTRY.get(args.workload)
    config = workload.default_config(
        ntiles=args.tiles if args.tiles else None, engine=args.engine)

    if args.check_repro:
        # zero-cost-when-disabled invariant, checked at the CLI level:
        # the same workload with full instrumentation on and off must
        # report identical cycle counts (the simulator has no hidden
        # seed, so any divergence is an instrumentation perturbation).
        from repro.obs import Observer
        from repro.sim import Trace

        plain = workload.run(config=config, scale=args.scale)
        instrumented = workload.run(
            config=workload.default_config(
                ntiles=args.tiles if args.tiles else None,
                engine=args.engine),
            scale=args.scale, trace=Trace(enabled=True), observer=Observer())
        if plain.cycles != instrumented.cycles:
            print(f"error: {workload.name}: instrumentation changed the "
                  f"cycle count ({plain.cycles} plain vs "
                  f"{instrumented.cycles} instrumented)", file=sys.stderr)
            return 1
        print(f"{workload.name}: reproducible, {plain.cycles} cycles with "
              f"observability off and on")

    trace, observer = _instrumented(args)
    result = workload.run(config=config, scale=args.scale, trace=trace,
                          observer=observer)
    status = "OK" if result.correct else "WRONG RESULT"
    print(f"{workload.name}: {status}, {result.cycles} cycles for "
          f"{result.work_items} work items "
          f"({result.cycles_per_item:.1f} cycles/item)")
    if args.profile and observer is not None:
        from repro.reports import render_profile_report

        print()
        print(render_profile_report(workload.name, result.cycles, observer,
                                    trace=trace, stats=result.stats))
    if args.trace_out:
        from repro.obs import export_chrome_trace
        from repro.telemetry.spans import TRACER

        export_chrome_trace(args.trace_out, observer=observer, trace=trace,
                            host_spans=TRACER)
        print(f"trace written to {args.trace_out}")
    if args.stats_json:
        _write_stats_json(args.stats_json, workload.name, config,
                          result.cycles, result.stats, observer=observer,
                          extra={"work_items": result.work_items,
                                 "correct": result.correct})
        print(f"stats written to {args.stats_json}")
    if not result.correct:
        return 1
    return 0


def _parse_scales(default: int, spec: str, names):
    """``--scales fibonacci=2,saxpy=8`` → per-workload scale map."""
    if not spec:
        return default
    scales = {name: default for name in names}
    for part in spec.split(","):
        name, sep, value = part.partition("=")
        if not sep or name not in scales:
            raise TapasError(
                f"bad --scales entry {part!r} (expected <workload>=<int> "
                f"with workload in {sorted(scales)})")
        scales[name] = int(value)
    return scales


def cmd_sweep(args) -> int:
    from repro.exp import ResultCache, SweepRunner, progress_printer, workload_points
    from repro.reports.benchjson import sweep_record, write_bench_json
    from repro.workloads import REGISTRY

    names = (REGISTRY.names() if args.workloads == "all"
             else args.workloads.split(","))
    for name in names:
        REGISTRY.get(name)  # fail fast on typos, before any fan-out
    tiles = [int(t) for t in args.tiles.split(",")]
    engines = args.engines.split(",")
    scales = _parse_scales(args.scale, args.scales, names)
    points = workload_points(names, tiles=tiles, scales=scales,
                             engines=engines, evaluator=args.evaluator)

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    progress = progress_printer() if sys.stderr.isatty() else None
    runner = SweepRunner(jobs=args.jobs, cache=cache, progress=progress)
    result = runner.run(points)

    rows = []
    for record in result.records:
        spec = record["spec"]
        engine = spec["engine"]
        if record["status"] == "ok":
            value = record["value"]
            outcome = value["cycles"]
            engine = value.get("engine") or engine
        else:
            outcome = f"ERROR: {record['error']['type']}"
        rows.append([spec["workload"], spec["tiles"], engine,
                     spec["scale"], outcome,
                     "hit" if record["cache_hit"] else "miss",
                     round(record["seconds"], 3)])
    summary = result.summary
    print(render_table(
        ["Workload", "Tiles", "Engine", "Scale", "Cycles", "Cache", "s"],
        rows,
        title=f"Sweep: {summary['points']} points, {summary['jobs']} "
              f"job(s), {summary['wall_seconds']:.2f}s wall, "
              f"{summary['cache_hits']} cache hit(s), "
              f"{summary['errors']} error(s)"))
    if args.out:
        records = [
            sweep_record(record, record["spec"]["workload"],
                         config={"ntiles": record["spec"]["tiles"],
                                 "engine": record["spec"]["engine"],
                                 "scale": record["spec"]["scale"]})
            for record in result.records]
        ok_cycles = [r["value"].get("cycles") for r in result.records
                     if r["status"] == "ok" and r["value"]]
        total_cycles = (sum(c for c in ok_cycles if c is not None)
                        if any(c is not None for c in ok_cycles) else None)
        wall = summary["wall_seconds"]
        history = _append_history(
            "sweep", args.workloads, engine=args.engines,
            cycles=total_cycles, host_seconds=wall,
            sim_cycles_per_host_second=(round(total_cycles / wall, 1)
                                        if total_cycles and wall else None),
            config={"workloads": names, "tiles": tiles, "engines": engines,
                    "scales": scales, "evaluator": args.evaluator},
            metrics={"points": summary["points"],
                     "errors": summary["errors"],
                     "cache_hits": summary["cache_hits"]})
        write_bench_json(args.out, "sweep", records, sweep=summary,
                         history=history)
        print(f"results written to {args.out}")
    return 1 if summary["errors"] else 0


def _default_profile_args(function, memory, size: int):
    """Synthesise deterministic entry arguments for ``repro profile``.

    Pointer parameters get ``size``-element arrays (integer arrays are
    filled with ``size`` so length-through-memory idioms stay in bounds,
    float arrays with a small ramp); integer scalars get ``size``; float
    scalars get 2.0.
    """
    from repro.ir.types import FloatType, PointerType

    args = []
    for arg in function.arguments:
        type_ = arg.type
        if isinstance(type_, PointerType):
            if isinstance(type_.pointee, FloatType):
                values = [0.5 * i for i in range(size)]
            else:
                values = [size] * size
            args.append(memory.alloc_array(type_.pointee, values))
        elif isinstance(type_, FloatType):
            args.append(2.0)
        else:
            args.append(size)
    return args


def cmd_predict(args) -> int:
    """Static performance prediction — no engine, no run."""
    from repro.analysis.perf import PerfModel
    from repro.memory.backing import MainMemory

    module = _load_module(args.source)
    function = (module.function(args.entry) if args.entry
                else (module.functions[0] if module.functions else None))
    if function is None:
        print("error: no entry function"
              + (f" named {args.entry!r}" if args.entry else "")
              + f" in {args.source}", file=sys.stderr)
        return 1

    config = AcceleratorConfig(default_ntiles=args.tiles)
    model = PerfModel(module, config=config)
    entry_args = _default_profile_args(function, MainMemory(), args.size)
    prediction = model.predict(entry=function.name, config=config,
                               args=entry_args, size=args.size)

    if args.format == "json":
        payload = prediction.as_dict()
        payload["source"] = args.source
        payload["tiles"] = args.tiles
        payload["size"] = args.size
        text = json.dumps(payload, indent=1)
    else:
        text = prediction.render_text()
    print(text)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(json.dumps(prediction.as_dict(), indent=1) + "\n")
        print(f"prediction written to {args.out}")
    return 0


def cmd_profile(args) -> int:
    from repro.obs import Observer, export_chrome_trace, validate_chrome_trace
    from repro.reports import render_host_profile_report, render_profile_report
    from repro.sim import Trace
    from repro.telemetry.spans import TRACER

    module = _load_module(args.source)
    function = (module.function(args.entry) if args.entry
                else (module.functions[0] if module.functions else None))
    if function is None:
        print("error: no entry function"
              + (f" named {args.entry!r}" if args.entry else "")
              + f" in {args.source}", file=sys.stderr)
        return 1

    config = AcceleratorConfig(default_ntiles=args.tiles, engine=args.engine)
    trace = Trace(enabled=True)
    observer = Observer()
    accel = build_accelerator(module, config, trace=trace, observer=observer)
    profiler = accel.sim.enable_host_profile() if args.host else None
    entry_args = _default_profile_args(function, accel.memory, args.size)
    result = accel.run(function.name, entry_args)

    label = f"{module.name}:{function.name}"
    if profiler is not None:
        print(render_host_profile_report(label, profiler, tracer=TRACER))
    else:
        print(render_profile_report(label, result.cycles, observer,
                                    trace=trace, stats=result.stats))
    if result.retval is not None:
        print(f"\nreturn value: {result.retval}")
    trace_ok = True
    if args.trace_out:
        document = export_chrome_trace(args.trace_out, observer=observer,
                                       trace=trace, host_spans=TRACER)
        print(f"trace written to {args.trace_out}")
        problems = validate_chrome_trace(document)
        if problems:
            for problem in problems[:10]:
                print(f"error: {args.trace_out}: {problem}", file=sys.stderr)
            if len(problems) > 10:
                print(f"error: {args.trace_out}: "
                      f"... {len(problems) - 10} more", file=sys.stderr)
            trace_ok = False
    if args.stats_json:
        _write_stats_json(args.stats_json, label, config, result.cycles,
                          result.stats, observer=observer,
                          host_profile=(profiler.as_dict()
                                        if profiler is not None else None),
                          kind="profile")
        print(f"stats written to {args.stats_json}")
    return 0 if trace_ok else 1


def _channel_drivers(sim) -> dict:
    """Channel name -> name of the component that pushes into it, from
    the components' declared ``ports()`` wiring (opaque components are
    simply absent)."""
    drivers = {}
    for component in sim.components:
        ports = component.ports()
        if not ports:
            continue
        _inputs, outputs = ports
        for channel in outputs:
            if channel is not None:
                drivers.setdefault(channel.name, component.name)
    return drivers


def _first_movement_divergence(base_log, other_log, base_name, other_name,
                               drivers):
    """First cycle where two movement logs disagree, described as the
    channels (with their driving components) that moved under only one
    engine. None when the logs are identical (the divergence is then in
    stats only)."""
    base, other = dict(base_log), dict(other_log)

    def _fmt(names):
        return ", ".join(
            name + (f" (driven by {drivers[name]})" if name in drivers
                    else "")
            for name in sorted(names))

    for cycle in sorted(set(base) | set(other)):
        moved_base = set(base.get(cycle, ()))
        moved_other = set(other.get(cycle, ()))
        if moved_base == moved_other:
            continue
        parts = []
        if moved_base - moved_other:
            parts.append(f"{_fmt(moved_base - moved_other)} moved under "
                         f"{base_name} only")
        if moved_other - moved_base:
            parts.append(f"{_fmt(moved_other - moved_base)} moved under "
                         f"{other_name} only")
        return cycle, "; ".join(parts)
    return None


def cmd_diff(args) -> int:
    """Differential run: every engine against the dense oracle on one
    source file.

    The event and compiled engines' contract is bit-identical cycle
    counts and architectural stats against the dense oracle; this
    command checks it end to end on an arbitrary ``.cilk`` source (CI
    runs it over every file in ``examples/programs/``). On divergence it
    walks the per-cycle channel-movement logs of both runs and reports
    the first cycle the engines disagree on, naming the channel(s) and
    the component driving them.
    """
    module = _load_module(args.source)
    function = (module.function(args.entry) if args.entry
                else (module.functions[0] if module.functions else None))
    if function is None:
        print("error: no entry function"
              + (f" named {args.entry!r}" if args.entry else "")
              + f" in {args.source}", file=sys.stderr)
        return 1
    # the dense oracle leads by default: it is the reference the other
    # engines' bit-identity contract is defined against
    engines = ([e.strip() for e in args.engines.split(",") if e.strip()]
               if args.engines else ["dense", "event", "compiled"])
    unknown = [e for e in engines if e not in ENGINES]
    if unknown or len(engines) < 2:
        print(f"error: --engines needs >= 2 of {', '.join(ENGINES)}",
              file=sys.stderr)
        return 1

    outcomes = {}
    logs = {}
    drivers = {}
    for engine in engines:
        config = AcceleratorConfig(default_ntiles=args.tiles, engine=engine)
        accel = build_accelerator(module, config)
        logs[engine] = accel.sim.enable_movement_log()
        drivers = _channel_drivers(accel.sim)
        entry_args = _default_profile_args(function, accel.memory, args.size)
        result = accel.run(function.name, entry_args)
        stats = dict(result.stats)
        stats.pop("engine", None)  # host-side numbers legitimately differ
        outcomes[engine] = (result.cycles, result.retval, stats)

    baseline = engines[0]
    label = f"{module.name}:{function.name}"
    failed = False
    for engine in engines[1:]:
        if outcomes[engine] == outcomes[baseline]:
            continue
        failed = True
        base, other = outcomes[baseline], outcomes[engine]
        where = _first_movement_divergence(
            logs[baseline], logs[engine], baseline, engine, drivers)
        detail = (f"; first divergent cycle {where[0]}: {where[1]}"
                  if where else "; channel movement identical "
                                "(stats-only divergence)")
        print(f"error: {label}: {baseline} vs {engine} diverge "
              f"({baseline} {base[0]} cycles, {engine} {other[0]} cycles"
              + ("" if base[1:] == other[1:] else "; retval/stats differ")
              + ")" + detail, file=sys.stderr)
    if failed:
        return 1
    print(f"{label}: engines agree ({', '.join(engines)}), "
          f"{outcomes[baseline][0]} cycles "
          f"(retval {outcomes[baseline][1]!r})")
    return 0


def cmd_history(args) -> int:
    """List the run registry; with ``--diff`` compare each series'
    newest record against its predecessor and flag drift."""
    import datetime

    from repro.telemetry.history import (
        default_history_dir,
        diff_history,
        load_history,
    )

    records = load_history(args.dir)
    want_diff = args.diff or args.fail_on_regression
    threshold = args.threshold / 100.0
    diffs = (diff_history(records, last=args.last or None,
                          threshold=threshold, metric=args.metric)
             if want_diff else [])
    regressions = [d for d in diffs if d["regression"]]
    shown = records[-args.last:] if args.last else records

    if args.format == "json":
        print(json.dumps({"records": shown, "diffs": diffs,
                          "regressions": len(regressions)}, indent=1))
    elif not records:
        print(f"no run history in {args.dir or default_history_dir()}")
    else:
        rows = []
        for record in shown:
            when = datetime.datetime.fromtimestamp(
                record.get("ts", 0)).strftime("%Y-%m-%d %H:%M:%S")
            host_s = record.get("host_seconds")
            rows.append([
                when, record.get("kind"), record.get("name"),
                record.get("engine") or "-", record.get("git_rev") or "-",
                record.get("cycles") if record.get("cycles") is not None
                else "-",
                f"{host_s:.3f}" if host_s is not None else "-",
                record.get("fingerprint") or "-"])
        print(render_table(
            ["When", "Kind", "Name", "Engine", "Rev", "Cycles", "Host s",
             "Config"],
            rows, title=f"Run history ({len(records)} record(s), "
                        f"showing {len(shown)})"))
        if want_diff:
            diff_rows = [[d["kind"], d["name"], d["engine"] or "-",
                          d["old"], d["new"], f"{100 * d['drift']:+.1f}%",
                          "REGRESSION" if d["regression"] else "ok"]
                         for d in diffs]
            print()
            if diff_rows:
                print(render_table(
                    ["Kind", "Name", "Engine", "Old", "New", "Drift",
                     "Status"],
                    diff_rows,
                    title=f"{args.metric} vs predecessor "
                          f"(threshold {args.threshold:g}%)"))
            else:
                print("no comparable series (a diff needs two records of "
                      "the same kind/name/engine/config)")
    if args.fail_on_regression and regressions:
        print(f"error: {len(regressions)} series regressed beyond "
              f"{args.threshold:g}% on {args.metric}", file=sys.stderr)
        return 1
    return 0


def cmd_workloads(_args) -> int:
    from repro.workloads import REGISTRY

    rows = [[w.name, w.challenge, w.memory_pattern, w.paper_tiles]
            for w in REGISTRY.all()]
    print(render_table(["Name", "HLS challenge", "Memory", "Tiles (Table IV)"],
                       rows, title="Benchmark suite (paper Table II)"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TAPAS reproduction toolchain (MICRO 2018)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="print the parallel IR for a source file")
    p.add_argument("source")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("taskgraph", help="show the extracted task graph")
    p.add_argument("source")
    p.add_argument("--dot", action="store_true", help="emit GraphViz DOT")
    p.set_defaults(func=cmd_taskgraph)

    p = sub.add_parser("analyze",
                       help="static determinacy-race / dependence analysis")
    p.add_argument("source")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--fail-on", choices=["note", "warning", "error"],
                   default="error",
                   help="exit 1 if any diagnostic at or above this severity "
                        "is reported, 0 otherwise")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "lint",
        help="hardware lint: bitwidth inference + netlist verification")
    p.add_argument("source")
    p.add_argument("--entry", help="entry function (default: first function)")
    p.add_argument("--tiles", type=int, default=1)
    p.add_argument("--queue-depth", type=int, default=0,
                   help="override every task-queue depth (exercises the "
                        "cycle-buffering rule)")
    p.add_argument("--no-netlist", action="store_true",
                   help="design-scope rules only; skip elaborating the "
                        "component netlist")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--fail-on", choices=["note", "warning", "error"],
                   default="error",
                   help="exit 1 if any diagnostic at or above this severity "
                        "is reported, 0 otherwise")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("emit", help="emit generated RTL")
    p.add_argument("source")
    p.add_argument("--language", choices=["chisel", "verilog"],
                   default="chisel")
    p.set_defaults(func=cmd_emit)

    p = sub.add_parser("estimate", help="resource/fmax/power estimate")
    p.add_argument("source")
    p.add_argument("--tiles", type=int, default=1)
    p.add_argument("--include-cache", action="store_true")
    p.add_argument("--width-aware", action="store_true",
                   help="size integer datapaths and Args RAM by the "
                        "inferred value ranges instead of declared widths")
    p.set_defaults(func=cmd_estimate)

    p = sub.add_parser("run", help="run a registered workload")
    p.add_argument("workload")
    p.add_argument("--tiles", type=int, default=0)
    p.add_argument("--scale", type=int, default=1)
    p.add_argument("--profile", action="store_true",
                   help="print the cycle-accounting profile report")
    p.add_argument("--trace-out", metavar="FILE",
                   help="write a Perfetto/chrome://tracing JSON trace")
    p.add_argument("--stats-json", metavar="FILE",
                   help="write cycles/utilization/stall stats as JSON")
    p.add_argument("--check-repro", action="store_true",
                   help="run twice (observability off and on) and fail if "
                        "cycle counts diverge")
    p.add_argument("--engine", choices=list(ENGINES), default="event",
                   help="simulation kernel (default: event)")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "sweep",
        help="run a workload/tiles/engine grid through the sweep runner")
    p.add_argument("--workloads", default="all",
                   help="comma-separated workload names, or 'all' "
                        "(default: all)")
    p.add_argument("--tiles", default="1",
                   help="comma-separated tile counts (default: 1)")
    p.add_argument("--evaluator", choices=["workload", "static"],
                   default="workload",
                   help="who computes each point: the simulator "
                        "(workload) or the analytical model (static)")
    p.add_argument("--engines", default="event",
                   help="comma-separated engines (default: event)")
    p.add_argument("--scale", type=int, default=1,
                   help="problem scale applied to every workload")
    p.add_argument("--scales", default="",
                   help="per-workload overrides, e.g. fibonacci=2,saxpy=8")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (default: 1, inline)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="result-cache root (default: $REPRO_CACHE_DIR "
                        "or ~/.cache/repro)")
    p.add_argument("--no-cache", action="store_true",
                   help="recompute every point, read/write no cache")
    p.add_argument("--out", metavar="FILE",
                   help="write the schema-4 results document as JSON "
                        "(records + sweep summary + telemetry + history "
                        "pointer)")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "predict",
        help="static performance prediction (no simulation run)")
    p.add_argument("source")
    p.add_argument("--entry", help="entry function (default: first function)")
    p.add_argument("--tiles", type=int, default=1)
    p.add_argument("--size", type=int, default=12,
                   help="synthetic input size (pointer args get arrays "
                        "of this length; also the fallback trip count)")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--out", metavar="FILE",
                   help="also write the prediction JSON to FILE")
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("profile",
                       help="run a source file under the cycle profiler")
    p.add_argument("source")
    p.add_argument("--entry", help="entry function (default: first function)")
    p.add_argument("--tiles", type=int, default=1)
    p.add_argument("--size", type=int, default=12,
                   help="synthesized input size / scalar value (default 12)")
    p.add_argument("--trace-out", metavar="FILE",
                   help="write a Perfetto/chrome://tracing JSON trace")
    p.add_argument("--stats-json", metavar="FILE",
                   help="write cycles/utilization/stall stats as JSON")
    p.add_argument("--host", action="store_true",
                   help="profile the host time the simulator spends per "
                        "component class instead of the guest cycles")
    p.add_argument("--engine", choices=list(ENGINES), default="event",
                   help="simulation kernel (default: event)")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("diff",
                       help="check the simulation engines agree bit-exactly")
    p.add_argument("source")
    p.add_argument("--entry", help="entry function (default: first function)")
    p.add_argument("--tiles", type=int, default=1)
    p.add_argument("--size", type=int, default=12,
                   help="synthesized input size / scalar value (default 12)")
    p.add_argument("--engines", metavar="A,B[,C]",
                   help="engines to compare, first is the baseline "
                        "(default: dense,event,compiled)")
    p.set_defaults(func=cmd_diff)

    p = sub.add_parser(
        "history",
        help="list recorded runs and flag cycle/host-time regressions")
    p.add_argument("--dir", metavar="DIR",
                   help="registry directory (default: $REPRO_HISTORY_DIR "
                        "or results/history)")
    p.add_argument("--last", type=int, default=0,
                   help="show/diff only the newest N records (default: all)")
    p.add_argument("--diff", action="store_true",
                   help="diff each series' newest record against its "
                        "predecessor")
    p.add_argument("--threshold", type=float, default=10.0,
                   help="drift percent flagged as a regression (default: 10)")
    p.add_argument("--metric",
                   choices=["cycles", "host_seconds",
                            "sim_cycles_per_host_second"],
                   default="cycles",
                   help="which recorded metric to diff (default: cycles)")
    p.add_argument("--fail-on-regression", action="store_true",
                   help="exit 1 if any series regressed beyond the "
                        "threshold (implies --diff)")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.set_defaults(func=cmd_history)

    p = sub.add_parser("workloads", help="list the benchmark suite")
    p.set_defaults(func=cmd_workloads)

    return parser


def main(argv=None) -> int:
    from repro.telemetry.spans import TRACER

    parser = build_parser()
    args = parser.parse_args(argv)
    # host-side pipeline tracing is on for every CLI invocation: a few
    # spans per toolchain phase, exported by --trace-out alongside the
    # guest cycle timeline (reset keeps repeated in-process main() calls
    # — the test suite — from accumulating spans across commands)
    TRACER.reset()
    TRACER.enable()
    try:
        return args.func(args)
    except TapasError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
