"""Compiled engine: per-design specialized flat kernels.

The third engine (``Simulator(engine="compiled")``) flattens an
elaborated netlist into ONE generated Python module specialized for that
exact design: every task unit / TXU tile is inlined down to straight-line
per-dataflow-node code (operand reads, two's-complement wrap masks,
handshake checks and latency literals baked in as constants), while the
rarely-hot plumbing components (arbiters, demuxes, cache, DRAM,
scratchpad, data boxes) keep their real ``tick()`` bodies but run behind
*no-op guards* — start-of-cycle state checks that are provably false
exactly when the tick could not change any architectural state.

The contract is the same bit-identity the dense and event engines share:
cycle counts, architectural stats, channel traffic and error behaviour
are identical, enforced by the ``repro diff`` matrix and the hypothesis
engine-parity property tests. All speed comes from removing Python
interpretation overhead (attribute lookups, dict dispatch, dead guard
re-evaluation), never from changing semantics: the kernel operates on
the *real* simulator objects (channels, task queues, instances,
messages), so any state it leaves behind is exactly the state the dense
engine would have produced.

Caching: the generated source is content-addressed. The digest folds the
source itself (a pure function of the elaborated design: topology,
parameters, IR, memory layout) together with
:func:`repro.exp.cache.code_fingerprint` — the same discipline as
``ResultCache`` — so editing anything under ``src/repro`` rolls every
kernel over and a stale kernel can never be replayed. Kernels are kept
in an in-process module cache and mirrored to
``<cache-dir>/kernels/<digest>.py`` for inspection.

Designs or instrumentation the codegen does not cover (observers, host
profiling, value probes, analysis traces, unrecognized component
classes, exotic IR) fall back to the event engine — still bit-identical,
just slower — with the reason recorded in
``Simulator.compiled_fallback``.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.ir.instructions import (
    GEP,
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    CondBr,
    Detach,
    FCmp,
    ICmp,
    Load,
    Reattach,
    Ret,
    Select,
    Store,
    Sync,
)
from repro.ir.types import FloatType, IntType, PointerType
from repro.ir.values import Constant, GlobalVariable
from repro.memory.arbiter import Demux, RoundRobinArbiter
from repro.memory.cache import Cache
from repro.memory.databox import DataBox
from repro.memory.dram import DRAMModel
from repro.memory.scratchpad import Scratchpad
from repro.task.task_unit import OUTBOUND_BUFFER, TaskUnit
from repro.task.txu import TXUTile

__all__ = [
    "prepare_kernel",
    "generate_source",
    "kernel_digest",
    "kernel_cache_dir",
    "clear_kernel_cache",
]


class UnsupportedDesign(Exception):
    """Raised (internally) when a design cannot be specialized; the
    caller turns it into an event-engine fallback with this reason."""


#: in-process cache: digest -> exec'd module namespace (holds make_kernel)
_MODULES: Dict[str, dict] = {}

_ICMP_PY = {"eq": "==", "ne": "!=", "slt": "<", "sle": "<=",
            "sgt": ">", "sge": ">="}
_FCMP_PY = {"oeq": "==", "one": "!=", "olt": "<", "ole": "<=",
            "ogt": ">", "oge": ">="}
_INT_OPS = {"add": "+", "sub": "-", "mul": "*", "and": "&", "or": "|",
            "xor": "^"}
_FLT_OPS = {"fadd": "+", "fsub": "-", "fmul": "*"}


def kernel_cache_dir() -> Path:
    """On-disk home of generated kernel sources (content-addressed)."""
    from repro.exp.cache import default_cache_dir

    return default_cache_dir() / "kernels"


def kernel_digest(source: str) -> str:
    """Content address of a generated kernel: the specialized source
    (a pure function of the elaborated design) plus the ``src/repro``
    code fingerprint, so editing the simulator invalidates every cached
    kernel — the ``ResultCache`` hashing discipline."""
    from repro.exp.cache import code_fingerprint

    digest = hashlib.sha256()
    digest.update(source.encode("utf-8"))
    digest.update(b"\0")
    digest.update(code_fingerprint().encode("ascii"))
    return digest.hexdigest()


def clear_kernel_cache():
    """Drop the in-process kernel module cache (tests)."""
    _MODULES.clear()


def _store_kernel_source(digest: str, source: str) -> Optional[Path]:
    """Mirror the kernel source to disk (atomic, best-effort)."""
    try:
        root = kernel_cache_dir()
        path = root / (digest + ".py")
        if path.exists():
            return path
        root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(root), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(source)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path
    except OSError:
        return None


def _fallback_reason(sim) -> Optional[str]:
    """Instrumentation / topology checks that force the event engine.

    Everything here is either observably different under the compiled
    kernel (per-cycle observers, host-time attribution, value probes,
    analysis traces) or structurally unknown to the codegen.
    """
    if sim.observer is not None:
        return "observer attached (per-cycle sampling needs real ticks)"
    if sim.host_profile is not None:
        return "host profiling enabled (per-component attribution)"
    if TXUTile.value_probe is not None:
        return "TXU value probe installed (range checker)"
    known = (RoundRobinArbiter, Demux, Cache, DRAMModel, Scratchpad,
             DataBox, TaskUnit)
    for comp in sim.components:
        if not isinstance(comp, known):
            return f"unsupported component class {type(comp).__name__}"
        if isinstance(comp, TaskUnit) and comp.trace is not None:
            return "analysis trace enabled (dynamic checker events)"
    return None


def prepare_kernel(sim):
    """Return ``(kernel, None)`` for a supported design, else
    ``(None, reason)``. ``kernel(sim, done, start, max_cycles, mlog)``
    runs the simulation exactly like the dense engine would."""
    reason = _fallback_reason(sim)
    if reason is not None:
        return None, reason
    try:
        source, ctx = _generate(sim)
    except UnsupportedDesign as exc:
        return None, str(exc)
    digest = kernel_digest(source)
    module = _MODULES.get(digest)
    if module is None:
        path = _store_kernel_source(digest, source)
        filename = str(path) if path is not None else f"<kernel {digest[:12]}>"
        module = {"__name__": f"repro_kernel_{digest[:12]}"}
        exec(compile(source, filename, "exec"), module)
        _MODULES[digest] = module
    sim.compiled_digest = digest
    return module["make_kernel"](ctx), None


def generate_source(sim) -> str:
    """The specialized kernel source for ``sim``'s design. Deterministic:
    the same elaborated design always yields byte-identical source (the
    precondition for content-addressed caching)."""
    return _generate(sim)[0]


# ---------------------------------------------------------------------------
# codegen
# ---------------------------------------------------------------------------
#
# The generated module has the shape
#
#     def make_kernel(ctx):
#         (_o0, _o1, ...) = ctx["objects"]   # per-sim object references
#         def kernel(sim, done, start, max_cycles, mlog):
#             <aliases, per-block stepper defs, dispatch dicts>
#             try:
#                 while True:           # one iteration per executed cycle
#                     <guarded component ticks, registration order>
#                     <inline commit over sim._dirty_channels>
#                     <idle/quiet accounting, stall check>
#                     <quiescent fast-forward>
#             finally:
#                 <sync scalar counters back onto sim>
#         return kernel
#
# Everything design-shaped (node indices, dependency chains, wrap masks,
# latencies, capacities, frame layout, global addresses) is baked into the
# source as literals; everything per-simulation (channel/component/IR
# objects) arrives through ctx, so the same design always yields
# byte-identical source and one cached module serves every sim of it.

_PARKED = 1 << 60  # txu PARKED == the missing-dep sentinel (1 << 60)
_CAST_INT = ("trunc", "sext", "zext")


class _Emitter:
    """Collects ctx objects and source lines with deterministic naming.

    Channels are addressed by their index in ``sim.channels``
    (registration order): the kernel keeps pending-push / pending-pop /
    moved-counter state in flat preallocated lists (``CP``/``CQ``/``CU``/
    ``CO``) indexed by that integer, and ``c<K>i`` aliases channel K's
    item deque (``_items`` is assigned once in the constructor). A push
    is ``CP[K] = msg`` plus appending K to the moved-list ``dl``; a pop
    is ``CQ[K] = 1`` plus the same append — the end-of-cycle commit
    walks ``dl`` only."""

    def __init__(self, channels):
        self.objs: List[object] = []
        self._obj_names: Dict[int, str] = {}
        self.pre: List[str] = []    # kernel preamble (aliases, bound methods)
        self.channels = list(channels)
        self._chan_idx = {id(ch): k for k, ch in enumerate(self.channels)}
        self._chan_alias: set = set()

    def ref(self, obj) -> str:
        """Name of ``obj`` in the ctx object tuple (registered on first use;
        the objs list keeps every referenced object alive so id() keys
        stay unique)."""
        name = self._obj_names.get(id(obj))
        if name is None:
            name = "_o%d" % len(self.objs)
            self._obj_names[id(obj)] = name
            self.objs.append(obj)
        return name

    # -- flat channel ops --------------------------------------------------

    def ci(self, ch) -> int:
        """Flat index of ``ch`` (emits its item-deque alias on first use)."""
        k = self._chan_idx.get(id(ch))
        if k is None:
            raise UnsupportedDesign(
                f"channel {ch.name} not registered with the simulator")
        if k not in self._chan_alias:
            self._chan_alias.add(k)
            self.pre.append("c%di = CI[%d]" % (k, k))
        return k

    def items(self, ch) -> str:
        return "c%di" % self.ci(ch)

    def can_push(self, ch) -> str:
        k = self.ci(ch)
        return "len(c%di) < %d and CP[%d] is None" % (k, ch.capacity, k)

    def can_pop(self, ch) -> str:
        k = self.ci(ch)
        return "c%di and not CQ[%d]" % (k, k)

    def push(self, ch, expr: str, ind: str) -> List[str]:
        k = self.ci(ch)
        return [ind + "CP[%d] = %s" % (k, expr),
                ind + "dl.append(%d)" % k]

    def pop_into(self, ch, var: Optional[str], ind: str) -> List[str]:
        k = self.ci(ch)
        L = []
        if var is not None:
            L.append(ind + "%s = c%di[0]" % (var, k))
        L.append(ind + "CQ[%d] = 1" % k)
        L.append(ind + "dl.append(%d)" % k)
        return L


def _fmt_const(value) -> Optional[str]:
    """Literal source for a constant, or None when it cannot be spelled
    (non-finite floats go through ctx instead)."""
    if isinstance(value, bool):
        return None  # be conservative: route bools through ctx
    if isinstance(value, int):
        return "(%r)" % (value,)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return None
        return "(%r)" % (value,)
    return None


class _StepperGen:
    """Emits one specialized stepper function per (tile, block): the
    straight-line unrolling of ``TXUTile._step_instance`` +
    ``_maybe_transition`` for that block's dataflow graph, with the
    tile's memory port (request channel index, SID, tile index, port)
    baked in so ``_fire_memory`` and ``_finish`` are inlined flat ops."""

    def __init__(self, em: _Emitter, unit, compiled, latencies,
                 tile, tile_index: int, tn: str, ep: str, un: str):
        self.em = em
        self.unit = unit
        self.compiled = compiled
        self.latencies = latencies
        self.tile = tile
        self.ti = tile_index
        self.tn = tn          # kernel alias of the tile object
        self.ep = ep          # name of the tile's epilogue-store closure
        self.un = un          # kernel alias of the owning task unit
        self.ro = em.ci(tile.request_out)
        self.rocap = tile.request_out.capacity

    # -- value resolution (mirrors TXUTile._resolve) -----------------------

    def rv(self, v) -> str:
        if isinstance(v, Constant):
            lit = _fmt_const(v.value)
            return lit if lit is not None else self.em.ref(v.value)
        if isinstance(v, GlobalVariable):
            if v.address is None:
                raise UnsupportedDesign(
                    f"global @{v.name} has no address at codegen time")
            return "(%r)" % (v.address,)
        return "env[%s]" % self.em.ref(v)

    def rvi(self, v) -> str:
        """Resolve in an ``int(...)`` context, skipping the coercion when
        the operand is statically an int literal."""
        if isinstance(v, Constant) and isinstance(v.value, int) \
                and not isinstance(v.value, bool):
            return "(%r)" % (v.value,)
        if isinstance(v, GlobalVariable):
            if v.address is None:
                raise UnsupportedDesign(
                    f"global @{v.name} has no address at codegen time")
            return "(%r)" % (int(v.address),)
        return "int(%s)" % self.rv(v)

    def rvf(self, v) -> str:
        if isinstance(v, Constant) and isinstance(v.value, (int, float)) \
                and not isinstance(v.value, bool):
            lit = _fmt_const(float(v.value))
            if lit is not None:
                return lit
        return "float(%s)" % self.rv(v)

    # -- helpers -----------------------------------------------------------

    def _lat(self, kind: str) -> int:
        return self.latencies.get(kind, 1)

    def _wrap(self, target: str, type_, ind: str) -> List[str]:
        """Two's-complement wrap of local ``r`` into ``target``
        (mirrors IntType.wrap)."""
        if not isinstance(type_, IntType):
            raise UnsupportedDesign(
                f"integer wrap on non-integer type {type_}")
        bits = type_.bits
        if bits == 1:
            return [ind + "%s = r & 1" % target]
        return [ind + "r &= %d" % ((1 << bits) - 1),
                ind + "if r >= %d:" % (1 << (bits - 1)),
                ind + "    r -= %d" % (1 << bits),
                ind + "%s = r" % target]

    def _f32(self, expr: str) -> str:
        """Round-trip through single precision (opsem's float results)."""
        return '_up("<f", _pk("<f", %s))[0]' % expr

    # -- node firing (mirrors TXUTile._fire) -------------------------------

    def fire_lines(self, node, ind: str) -> List[str]:
        ir = node.inst
        kind = node.kind
        tgt = "env[%s]" % self.em.ref(ir)
        L: List[str] = []

        if kind == "regread":
            L.append(ind + "%s = inst.regs.get(%s, 0)"
                     % (tgt, self.em.ref(ir.pointer)))
        elif kind == "regwrite":
            L.append(ind + "inst.regs[%s] = %s"
                     % (self.em.ref(ir.pointer), self.rv(ir.value)))
        elif kind == "nop":
            if not isinstance(ir, Alloca):
                raise UnsupportedDesign(f"nop node is not an alloca: {ir!r}")
            if ir.in_frame:
                if self.unit.frame_size == 0:
                    L.append(ind + "raise SimulationError(%r)"
                             % (f"{self.unit.name}: task has no frame "
                                f"storage",))
                else:
                    offset = self.compiled.frame_offsets[ir]
                    L.append(ind + "%s = %d + inst.entry.dyid * %d + %d"
                             % (tgt, self.unit.frame_base,
                                self.unit.frame_size, offset))
            else:
                L.append(ind + "%s = _RegSlot(%s)" % (tgt, self.em.ref(ir)))
        elif isinstance(ir, BinaryOp):
            L.extend(self._binop_lines(ir, tgt, ind))
        elif isinstance(ir, ICmp):
            op = _ICMP_PY.get(ir.predicate)
            if op is None:
                raise UnsupportedDesign(f"icmp predicate {ir.predicate}")
            L.append(ind + "%s = 1 if %s %s %s else 0"
                     % (tgt, self.rvi(ir.lhs), op, self.rvi(ir.rhs)))
        elif isinstance(ir, FCmp):
            op = _FCMP_PY.get(ir.predicate)
            if op is None:
                raise UnsupportedDesign(f"fcmp predicate {ir.predicate}")
            L.append(ind + "%s = 1 if %s %s %s else 0"
                     % (tgt, self.rvf(ir.operands[0]), op,
                        self.rvf(ir.operands[1])))
        elif isinstance(ir, Select):
            cond, if_true, if_false = ir.operands
            L.append(ind + "%s = (%s) if (%s) else (%s)"
                     % (tgt, self.rv(if_true), self.rv(cond),
                        self.rv(if_false)))
        elif isinstance(ir, Cast):
            L.extend(self._cast_lines(ir, tgt, ind))
        elif isinstance(ir, GEP):
            L.extend(self._gep_lines(ir, tgt, ind))
        else:
            raise UnsupportedDesign(
                f"TXU codegen cannot execute {type(ir).__name__}")

        # chained assignment keeps the hoisted per-node local in sync so a
        # 0-latency dependent sees the fresh deadline within the same call
        L.append(ind + "nd[%d] = dn%d = cycle + %d"
                 % (node.index, node.index, self._lat(kind)))
        return L

    def _binop_lines(self, ir, tgt: str, ind: str) -> List[str]:
        op = ir.op
        if isinstance(ir.type, IntType):
            bits = ir.type.bits
            L = [ind + "ia = %s" % self.rvi(ir.lhs),
                 ind + "ib = %s" % self.rvi(ir.rhs)]
            if op in _INT_OPS:
                L.append(ind + "r = ia %s ib" % _INT_OPS[op])
            elif op in ("sdiv", "srem"):
                what = "division" if op == "sdiv" else "remainder"
                L.append(ind + "if ib == 0:")
                L.append(ind + "    raise SimulationError(%r)"
                         % ("integer %s by zero" % what,))
                q = "abs(ia) // abs(ib) * (1 if (ia >= 0) == (ib >= 0) else -1)"
                if op == "sdiv":
                    L.append(ind + "r = " + q)
                else:
                    L.append(ind + "r = ia - (%s) * ib" % q)
            elif op == "shl":
                L.append(ind + "r = ia << (ib & %d)" % (bits - 1))
            elif op == "ashr":
                L.append(ind + "r = ia >> (ib & %d)" % (bits - 1))
            elif op == "lshr":
                L.append(ind + "r = (ia & %d) >> (ib & %d)"
                         % ((1 << bits) - 1, bits - 1))
            elif op == "smin":
                L.append(ind + "r = ia if ia < ib else ib")
            elif op == "smax":
                L.append(ind + "r = ia if ia > ib else ib")
            else:
                raise UnsupportedDesign(f"integer binop {op}")
            L.extend(self._wrap(tgt, ir.type, ind))
            return L
        L = [ind + "fa = %s" % self.rvf(ir.lhs),
             ind + "fb = %s" % self.rvf(ir.rhs)]
        if op in _FLT_OPS:
            L.append(ind + "r = fa %s fb" % _FLT_OPS[op])
        elif op == "fdiv":
            L.append(ind + "if fb == 0.0:")
            L.append(ind + "    r = _INF if fa > 0 else "
                           "_NINF if fa < 0 else _NAN")
            L.append(ind + "else:")
            L.append(ind + "    r = fa / fb")
        elif op == "fmin":
            L.append(ind + "r = fa if fa < fb else fb")
        elif op == "fmax":
            L.append(ind + "r = fa if fa > fb else fb")
        else:
            raise UnsupportedDesign(f"float binop {op}")
        L.append(ind + "%s = %s" % (tgt, self._f32("r")))
        return L

    def _cast_lines(self, ir, tgt: str, ind: str) -> List[str]:
        kind = ir.kind
        v = ir.operands[0]
        if kind in _CAST_INT:
            L = [ind + "r = %s" % self.rvi(v)]
            L.extend(self._wrap(tgt, ir.type, ind))
            return L
        if kind == "sitofp":
            return [ind + "%s = float(%s)" % (tgt, self.rvi(v))]
        if kind == "fptosi":
            L = [ind + "r = int(%s)" % self.rvf(v)]
            L.extend(self._wrap(tgt, ir.type, ind))
            return L
        if kind == "bitcast":
            return [ind + "%s = %s" % (tgt, self.rv(v))]
        raise UnsupportedDesign(f"cast kind {kind}")

    def _gep_lines(self, ir, tgt: str, ind: str) -> List[str]:
        terms = ["%s * %d" % (self.rvi(idx), stride)
                 for idx, stride in zip(ir.indices, ir.strides)]
        base = ir.base
        static_base = (isinstance(base, Constant)
                       or isinstance(base, GlobalVariable))
        if static_base:
            expr = " + ".join([self.rvi(base)] + terms)
            return [ind + "%s = %s" % (tgt, expr)]
        L = [ind + "ba = %s" % self.rv(base),
             ind + "if type(ba) is _RegSlot:",
             ind + "    raise SimulationError(%r)"
             % ("address arithmetic on a register slot — scalar allocas "
                "may only be loaded/stored directly",)]
        expr = " + ".join(["int(ba)"] + terms)
        L.append(ind + "%s = %s" % (tgt, expr))
        return L

    # -- inlined _fire_memory / _finish ------------------------------------

    def mem_fire_lines(self, node, key: str, ind: str) -> List[str]:
        """The ``elif``-chain tail of a load/store node attempt (mirrors
        ``TXUTile._fire_memory``): already-issued and backpressure checks,
        then the flat push of the request."""
        ir = node.inst
        ro, tn = self.ro, self.tn
        L = [ind + "elif %s._mem_issued_this_cycle:" % tn,
             ind + "    b = 1",
             ind + "elif len(c%di) < %d and CP[%d] is None:"
             % (ro, self.rocap, ro)]
        ptr = ir.pointer
        if isinstance(ptr, (Constant, GlobalVariable)):
            addr = self.rvi(ptr)
        else:
            L.append(ind + "    a_ = %s" % self.rv(ptr))
            L.append(ind + "    if type(a_) is _RegSlot:")
            L.append(ind + "        raise SimulationError(%r)"
                     % ("register access classified as memory op",))
            addr = "int(a_)"
        tag = "MemTag(%d, %d, inst.uid, %d)" % (self.unit.sid, self.ti,
                                                node.index)
        if isinstance(ir, Load):
            req = ('MemRequest(tag=%s, op="load", addr=%s, size=%d, port=%d)'
                   % (tag, addr, ir.type.size_bytes, self.unit.port))
        else:
            req = ('MemRequest(tag=%s, op="store", addr=%s, size=%d, '
                   'data=_v2r(%s, %s), port=%d)'
                   % (tag, addr, ir.value.type.size_bytes,
                      self.em.ref(ir.value.type), self.rv(ir.value),
                      self.unit.port))
        L.append(ind + "    CP[%d] = %s" % (ro, req))
        L.append(ind + "    dl.append(%d)" % ro)
        L.append(ind + "    %s._mem_issued_this_cycle = True" % tn)
        L.append(ind + "    pm.add(%d)" % node.index)
        L.append(ind + "    fired.add(%s)" % key)
        L.append(ind + "    f = 1")
        L.append(ind + "else:")
        L.append(ind + "    %s._mem_blocked = True" % tn)
        L.append(ind + "    b = 1")
        return L

    def finish_lines(self, retval_expr: str, ind: str) -> List[str]:
        """Inlined ``TXUTile._finish``: record the return value and either
        enter the epilogue store (shared-cache return) or complete."""
        if retval_expr == "None":
            return [ind + "inst.retval = None",
                    ind + 'inst.phase = "done"']
        return [ind + "rv_ = %s" % retval_expr,
                ind + "inst.retval = rv_",
                ind + "if inst.entry.ret_ptr is not None "
                      "and rv_ is not None:",
                ind + '    inst.phase = "epilogue_issue"',
                ind + "    %s(inst, cycle)" % self.ep,
                ind + "else:",
                ind + '    inst.phase = "done"']

    # -- block entry (mirrors TXUTile._enter_block) ------------------------

    def enter_lines(self, target, ind: str) -> List[str]:
        if not self.compiled.owns_block(target):
            return [ind + "raise SimulationError(%r)"
                    % (f"task {self.compiled.name}: control left the task "
                       f"region into {target.name}",)]
        return [ind + "inst.block = %s" % self.em.ref(target),
                ind + "inst.node_done = {}",
                ind + "inst.pending_mem = set()",
                ind + "inst.pending_call = set()",
                ind + "inst.block_entry_cycle = cycle + 1"]

    # -- the whole stepper -------------------------------------------------

    def stepper(self, name: str, block) -> List[str]:
        em = self.em
        dfg = self.compiled.dfg(block)
        nodes = dfg.nodes
        body = nodes[:-1]
        term_node = nodes[-1]
        has_mem = any(n.kind in ("load", "store") for n in body)
        has_call = any(n.kind == "call" for n in body)

        L = ["def %s(inst, cycle):" % name,
             "    nonlocal act",
             "    nd = inst.node_done",
             "    g = nd.get",
             "    env = inst.env",
             "    fired = %sf" % self.tn]
        if has_mem:
            L.append("    pm = inst.pending_mem")
        if has_call:
            L.append("    pc = inst.pending_call")
        L.extend(["    f = 0", "    d = 0", "    b = 0",
                  "    m = 0", "    blk = 0"])
        # hoist each body node's done-cycle into a local: one dict probe
        # per node per call instead of one per membership test plus one
        # per dependent. The sentinel B comes back by identity when the
        # node has not fired, so ``dnX is B`` is the not-in-nd test.
        for node in body:
            L.append("    dn%d = g(%d, B)" % (node.index, node.index))

        def deps(node) -> str:
            return " and ".join("dn%d <= cycle" % dep
                                for dep in node.deps)

        for node in body:
            idx = node.index
            key = em.ref((block, idx))
            cond = "dn%d is B" % idx
            if node.kind in ("load", "store"):
                cond += " and %d not in pm" % idx
            elif node.kind == "call":
                cond += " and %d not in pc" % idx
            dc = deps(node)
            if dc:
                cond += " and " + dc
            L.append("    if %s:" % cond)
            L.append("        if %s in fired:" % key)
            L.append("            d = 1")
            if node.kind in ("load", "store"):
                L.extend(self.mem_fire_lines(node, key, "        "))
            elif node.kind == "call":
                L.append("        elif %sfc(inst, %s, cycle):"
                         % (self.tn, em.ref(node)))
                L.append("            fired.add(%s)" % key)
                L.append("            f = 1")
                L.append("        else:")
                L.append("            b = 1")
            else:
                L.append("        else:")
                L.extend(self.fire_lines(node, "            "))
                L.append("            fired.add(%s)" % key)
                L.append("            f = 1")

        # -- transition (mirrors _maybe_transition) ------------------------
        trans = ["dn%d <= cycle" % n.index for n in body]
        if has_mem:
            trans.append("not pm")
        else:
            trans.append("not inst.pending_mem")
        if has_call:
            trans.append("not pc")
        else:
            trans.append("not inst.pending_call")
        tdeps = deps(term_node)
        if tdeps:
            trans.append(tdeps)
        L.append("    if %s:" % " and ".join(trans))
        term = term_node.inst
        if isinstance(term, Detach):
            # inlined _fire_spawn + TaskUnit.issue_spawn: the spawn spec
            # (dest SID, marshalled args, ret pointer) is static, so the
            # SpawnMessage fields are baked in as literals/env reads.
            # analysis_event is skipped (trace is None by _fallback_reason).
            spec = self.compiled.spawn_specs[term]
            args = ", ".join(self.rv(v) for v in spec.arg_values)
            if args:
                args += ","
            ret_ptr = ("int(%s)" % self.rv(spec.ret_ptr_value)
                       if spec.ret_ptr_value is not None else "None")
            L.append("        if len(%sso) >= %d:"
                     % (self.un, OUTBOUND_BUFFER))
            L.append("            %s._spawn_blocked = True" % self.tn)
            L.append("            blk = 1")
            L.append("        else:")
            L.append("            en_ = inst.entry")
            L.append("            %sso.append(SpawnMessage(dest_sid=%d, "
                     "args=(%s), parent_sid=%d, parent_dyid=en_.dyid, "
                     'join_kind="sync", ret_ptr=%s, parent_gid=en_.gid, '
                     "spawn_seq=None))"
                     % (self.un, spec.dest_sid, args, self.unit.sid,
                        ret_ptr))
            L.append("            en_.child_count += 1")
            L.append("            %s.spawns_issued += 1" % self.un)
            L.append("            inst.spawned += 1")
            L.extend(self.enter_lines(term.continuation, "            "))
            L.append("            m = 1")
        elif isinstance(term, Sync):
            L.append("        if inst.entry.child_count > 0:")
            L.append("            %ssu(inst, %s)"
                     % (self.tn, em.ref(term.continuation)))
            L.append("        else:")
            L.extend(self.enter_lines(term.continuation, "            "))
            L.append("        m = 1")
        elif isinstance(term, Br):
            L.extend(self.enter_lines(term.dest, "        "))
            L.append("        m = 1")
        elif isinstance(term, CondBr):
            L.append("        if %s:" % self.rv(term.cond))
            L.extend(self.enter_lines(term.if_true, "            "))
            L.append("        else:")
            L.extend(self.enter_lines(term.if_false, "            "))
            L.append("        m = 1")
        elif isinstance(term, Reattach):
            L.extend(self.finish_lines("None", "        "))
            L.append("        m = 1")
        elif isinstance(term, Ret):
            retval = (self.rv(term.value)
                      if term.value is not None else "None")
            L.extend(self.finish_lines(retval, "        "))
            L.append("        m = 1")
        else:
            raise UnsupportedDesign(
                f"terminator {type(term).__name__} not supported")

        # -- wake bookkeeping (mirrors _step_instance's epilogue) ----------
        L.extend([
            "    if f or m:",
            "        act = 1",
            '    if m or f or d or b or blk or inst.phase != "run":',
            "        inst.wake_at = cycle + 1",
            '        if inst.phase != "run":',
            "            return P",
            "        if m or f or d:",
            "            return cycle + 1",
            "        return P",
            "    w = P",
            "    for x in nd.values():",
            "        if x > cycle and x < w:",
            "            w = x",
            "    if w is P and not inst.pending_mem and not inst.pending_call:",
            "        w = cycle + 1",
            "    inst.wake_at = w",
            "    return w",
        ])
        return L


def _emit_plumbing(em: _Emitter, k: int, comp, tick, busy, skip):
    """Fully inlined tick for a non-TXU component, behind a no-op guard:
    a start-of-cycle state check that is false exactly when the tick
    could not change architectural state. The inlined bodies mirror the
    real ``tick()`` methods statement for statement, with channel
    handshakes turned into flat-array ops and static config (latencies,
    capacities, fan-in) baked in as literals."""
    x = "x%d" % k
    em.pre.append("%s = %s" % (x, em.ref(comp)))
    if isinstance(comp, RoundRobinArbiter):
        _emit_arbiter(em, x, comp, tick, busy, skip)
    elif isinstance(comp, Demux):
        _emit_demux(em, x, comp, tick, busy, skip)
    elif isinstance(comp, Cache):
        _emit_cache(em, x, comp, tick, busy, skip)
    elif isinstance(comp, DRAMModel):
        _emit_dram(em, x, comp, tick, busy, skip)
    elif isinstance(comp, Scratchpad):
        _emit_scratchpad(em, x, comp, tick, busy, skip)
    elif isinstance(comp, DataBox):
        _emit_databox(em, x, comp, tick, busy, skip)
    else:  # pragma: no cover - _fallback_reason filters these earlier
        raise UnsupportedDesign(
            f"unsupported component class {type(comp).__name__}")


def _emit_arbiter(em, x, comp, tick, busy, skip):
    em.pre.append("%sp = %s._pipe" % (x, x))
    out = em.ci(comp.output)
    ins = [em.ci(c) for c in comp.inputs]
    lev = comp.levels
    tick.append("if %s:" % " or ".join(
        [x + "p"] + ["c%di" % i for i in ins]))
    tick.append("    if %sp and %sp[0][0] <= cycle and len(c%di) < %d "
                "and CP[%d] is None:" % (x, x, out, comp.output.capacity, out))
    tick.append("        CP[%d] = %sp.popleft()[1]" % (out, x))
    tick.append("        dl.append(%d)" % out)
    tick.append("    if len(%sp) <= %d:" % (x, lev))
    n = len(ins)
    if n == 1:
        i0 = ins[0]
        tick.append("        if c%di and not CQ[%d]:" % (i0, i0))
        tick.append("            CQ[%d] = 1" % i0)
        tick.append("            dl.append(%d)" % i0)
        tick.append("            %sp.append((cycle + %d, c%di[0]))"
                    % (x, lev, i0))
        tick.append("            %s.grants += 1" % x)
    else:
        em.pre.append("%sq = (%s)" % (x, ", ".join(
            "(c%di, %d)" % (i, i) for i in ins)))
        tick.append("        j = %s._next" % x)
        tick.append("        for _ in range(%d):" % n)
        tick.append("            dq, kk = %sq[j]" % x)
        tick.append("            if dq and not CQ[kk]:")
        tick.append("                CQ[kk] = 1")
        tick.append("                dl.append(kk)")
        tick.append("                %sp.append((cycle + %d, dq[0]))"
                    % (x, lev))
        tick.append("                %s._next = j + 1 if j + 1 < %d else 0"
                    % (x, n))
        tick.append("                %s.grants += 1" % x)
        tick.append("                break")
        tick.append("            j = j + 1 if j + 1 < %d else 0" % n)
    busy.append(x + "p")
    skip.extend(_pipe_deadline(x + "p"))


def _emit_demux(em, x, comp, tick, busy, skip):
    em.pre.append("%sp = %s._pipe" % (x, x))
    em.pre.append("%sr = %s.route" % (x, x))
    inp = em.ci(comp.input)
    outs = [(em.ci(c), c.capacity) for c in comp.outputs]
    em.pre.append("%so = (%s%s)" % (x, ", ".join(
        "(c%di, %d, %d)" % (o, o, cap) for o, cap in outs),
        "," if len(outs) == 1 else ""))
    tick.append("if %sp or c%di:" % (x, inp))
    tick.append("    if %sp and %sp[0][0] <= cycle:" % (x, x))
    tick.append("        msg = %sp[0][1]" % x)
    tick.append("        prt = %sr(msg)" % x)
    tick.append("        if prt < 0 or prt >= %d:" % len(outs))
    tick.append("            raise SimulationError(%r %% prt)"
                % ("demux %s: bad port %%d of %d"
                   % (comp.name, len(outs)),))
    tick.append("        dq, kk, cap = %so[prt]" % x)
    tick.append("        if len(dq) < cap and CP[kk] is None:")
    tick.append("            %sp.popleft()" % x)
    tick.append("            CP[kk] = msg")
    tick.append("            dl.append(kk)")
    tick.append("            %s.routed += 1" % x)
    tick.append("    if c%di and not CQ[%d] and len(%sp) <= %d:"
                % (inp, inp, x, comp.levels))
    tick.append("        CQ[%d] = 1" % inp)
    tick.append("        dl.append(%d)" % inp)
    tick.append("        %sp.append((cycle + %d, c%di[0]))"
                % (x, comp.levels, inp))
    busy.append(x + "p")
    skip.extend(_pipe_deadline(x + "p"))


def _emit_dram(em, x, comp, tick, busy, skip):
    em.pre.append("%sf = %s._in_flight" % (x, x))
    rq = em.ci(comp.request_in)
    rs = em.ci(comp.response_out)
    tick.append("if %sf or c%di:" % (x, rq))
    tick.append("    while %sf and %sf[0][0] <= cycle:" % (x, x))
    tick.append("        msg = %sf[0][1]" % x)
    tick.append('        if msg.op != "load":')
    tick.append("            %sf.popleft()" % x)
    tick.append("            continue")
    tick.append("        if len(c%di) < %d and CP[%d] is None:"
                % (rs, comp.response_out.capacity, rs))
    tick.append("            %sf.popleft()" % x)
    tick.append("            CP[%d] = msg" % rs)
    tick.append("            dl.append(%d)" % rs)
    tick.append("        break")
    tick.append("    if c%di and not CQ[%d]:" % (rq, rq))
    tick.append("        CQ[%d] = 1" % rq)
    tick.append("        dl.append(%d)" % rq)
    tick.append("        %sf.append((cycle + %d, c%di[0]))"
                % (x, comp.latency, rq))
    tick.append("        %s.accesses += 1" % x)
    busy.append(x + "f")
    skip.extend(_pipe_deadline(x + "f"))


def _emit_scratchpad(em, x, comp, tick, busy, skip):
    em.pre.append("%sp = %s._pipe" % (x, x))
    em.pre.append("%sb = %s.backing" % (x, x))
    rq = em.ci(comp.request_in)
    rs = em.ci(comp.response_out)
    tick.append("if %sp or c%di:" % (x, rq))
    tick.append("    if %sp and %sp[0][0] <= cycle and len(c%di) < %d "
                "and CP[%d] is None:" % (x, x, rs, comp.response_out.capacity,
                                         rs))
    tick.append("        CP[%d] = %sp.popleft()[1]" % (rs, x))
    tick.append("        dl.append(%d)" % rs)
    tick.append("    if c%di and not CQ[%d]:" % (rq, rq))
    tick.append("        req = c%di[0]" % rq)
    tick.append("        CQ[%d] = 1" % rq)
    tick.append("        dl.append(%d)" % rq)
    tick.append("        %s.accesses += 1" % x)
    tick.append('        if req.op == "load":')
    tick.append("            data = %sb.read_int(req.addr, req.size, "
                "signed=False)" % x)
    tick.append("        else:")
    tick.append("            %sb.write_int(req.addr, req.size, "
                "req.data or 0)" % x)
    tick.append("            data = None")
    tick.append("        %sp.append((cycle + %d, MemResponse(req.tag, data, "
                "port=req.port)))" % (x, comp.latency))
    busy.append(x + "p")
    skip.extend(_pipe_deadline(x + "p"))


def _emit_cache(em, x, comp, tick, busy, skip):
    em.pre.append("%sr = %s._ready_responses" % (x, x))
    em.pre.append("%sm = %s._mshrs" % (x, x))
    em.pre.append("%sw = %s._pending_writebacks" % (x, x))
    em.pre.append("%sfn = %s._functional" % (x, x))
    em.pre.append("%slk = %s._lookup" % (x, x))
    em.pre.append("%saf = %s._apply_fill" % (x, x))
    rq = em.ci(comp.request_in)
    rs = em.ci(comp.response_out)
    dq = em.ci(comp.dram_request)
    ds = em.ci(comp.dram_response)
    p = comp.params
    lb, hl = p.line_bytes, p.hit_latency
    tick.append("if %sr or %sm or %sw or c%di or c%di:" % (x, x, x, rq, ds))
    tick.append("    %s._blocked = None" % x)
    # _drain_writebacks
    tick.append("    if %sw and len(c%di) < %d and CP[%d] is None:"
                % (x, dq, comp.dram_request.capacity, dq))
    tick.append("        CP[%d] = %sw.popleft()" % (dq, x))
    tick.append("        dl.append(%d)" % dq)
    tick.append("        %s.writebacks += 1" % x)
    # _handle_fill
    tick.append("    if c%di and not CQ[%d]:" % (ds, ds))
    tick.append("        fl = c%di[0]" % ds)
    tick.append("        CQ[%d] = 1" % ds)
    tick.append("        dl.append(%d)" % ds)
    tick.append("        %saf(fl, cycle)" % x)
    # _accept_request
    tick.append("    if c%di and not CQ[%d]:" % (rq, rq))
    tick.append("        req = c%di[0]" % rq)
    tick.append("        la = req.addr // %d" % lb)
    tick.append("        way = %slk(la)" % x)
    tick.append("        if way is not None:")
    tick.append("            CQ[%d] = 1" % rq)
    tick.append("            dl.append(%d)" % rq)
    tick.append("            data = %sfn(req)" % x)
    tick.append("            way.last_used = cycle")
    tick.append('            if req.op != "load":')
    tick.append("                way.dirty = True")
    tick.append("            %s.hits += 1" % x)
    tick.append("            %sr.append((cycle + %d + (0 if (req.size >= 4 "
                "and req.addr %% 4 == 0) else %d), MemResponse(req.tag, "
                "data, port=req.port)))"
                % (x, hl, p.subword_penalty))
    tick.append("        else:")
    tick.append("            mh = %sm.get(la)" % x)
    tick.append("            if mh is not None:")
    tick.append("                CQ[%d] = 1" % rq)
    tick.append("                dl.append(%d)" % rq)
    tick.append("                mh.waiters.append((req, %sfn(req)))" % x)
    tick.append("                %s.misses += 1" % x)
    tick.append("            elif len(%sm) >= %d:" % (x, p.mshr_count))
    tick.append('                %s._blocked = "mshr-full"' % x)
    tick.append("            elif len(c%di) < %d and CP[%d] is None:"
                % (dq, comp.dram_request.capacity, dq))
    tick.append("                CQ[%d] = 1" % rq)
    tick.append("                dl.append(%d)" % rq)
    tick.append("                data = %sfn(req)" % x)
    tick.append("                %sm[la] = _MSHR(la, [(req, data)])" % x)
    tick.append('                CP[%d] = MemRequest(tag=la, op="load", '
                "addr=la * %d, size=%d)" % (dq, lb, lb))
    tick.append("                dl.append(%d)" % dq)
    tick.append("                %s.misses += 1" % x)
    tick.append("            else:")
    tick.append('                %s._blocked = "dram-backpressure"' % x)
    # _send_response
    tick.append("    if %sr and %sr[0][0] <= cycle and len(c%di) < %d "
                "and CP[%d] is None:" % (x, x, rs, comp.response_out.capacity,
                                         rs))
    tick.append("        CP[%d] = %sr.popleft()[1]" % (rs, x))
    tick.append("        dl.append(%d)" % rs)
    busy.append("%sr or %sm or %sw" % (x, x, x))
    skip.extend(_pipe_deadline(x + "r"))


def _emit_databox(em, x, comp, tick, busy, skip):
    fc = em.ci(comp.from_cache)
    tc = em.ci(comp.to_cache)
    rts = [(em.ci(c), c.capacity) for c in comp.tile_response]
    rqs = [em.ci(c) for c in comp.tile_request]
    ent = comp.entries
    em.pre.append("%st = (%s%s)" % (x, ", ".join(
        "(c%di, %d, %d)" % (o, o, cap) for o, cap in rts),
        "," if len(rts) == 1 else ""))
    tick.append("if %s:" % " or ".join(
        ["c%di" % fc] + ["c%di" % q for q in rqs]))
    # _catch_up: stalled-cycle attribution over the skipped gap
    tick.append("    st = %s._synced_to" % x)
    tick.append("    if st < cycle - 1 and %s._outstanding >= %d:" % (x, ent))
    tick.append("        %s.stalled_cycles += cycle - 1 - st" % x)
    tick.append("    %s._synced_to = cycle" % x)
    # response path
    tick.append("    if c%di and not CQ[%d]:" % (fc, fc))
    tick.append("        resp = c%di[0]" % fc)
    tick.append("        dq, kk, cap = %st[resp.tag.tile]" % x)
    tick.append("        if len(dq) < cap and CP[kk] is None:")
    tick.append("            CQ[%d] = 1" % fc)
    tick.append("            dl.append(%d)" % fc)
    tick.append("            CP[kk] = resp")
    tick.append("            dl.append(kk)")
    tick.append("            %s._outstanding -= 1" % x)
    # request path
    tick.append("    o = %s._outstanding" % x)
    tick.append("    if o >= %d:" % ent)
    tick.append("        %s.stalled_cycles += 1" % x)
    tick.append("    elif len(c%di) < %d and CP[%d] is None:"
                % (tc, comp.to_cache.capacity, tc))
    n = len(rqs)
    if n == 1:
        q0 = rqs[0]
        tick.append("        if c%di and not CQ[%d]:" % (q0, q0))
        tick.append("            CQ[%d] = 1" % q0)
        tick.append("            dl.append(%d)" % q0)
        tick.append("            CP[%d] = c%di[0]" % (tc, q0))
        tick.append("            dl.append(%d)" % tc)
        tick.append("            o += 1")
        tick.append("            %s._outstanding = o" % x)
        tick.append("            %s.forwarded += 1" % x)
        tick.append("            if o > %s.peak_outstanding:" % x)
        tick.append("                %s.peak_outstanding = o" % x)
    else:
        em.pre.append("%sq = (%s)" % (x, ", ".join(
            "(c%di, %d)" % (q, q) for q in rqs)))
        tick.append("        j = %s._rr" % x)
        tick.append("        for _ in range(%d):" % n)
        tick.append("            dq, kk = %sq[j]" % x)
        tick.append("            if dq and not CQ[kk]:")
        tick.append("                CQ[kk] = 1")
        tick.append("                dl.append(kk)")
        tick.append("                CP[%d] = dq[0]" % tc)
        tick.append("                dl.append(%d)" % tc)
        tick.append("                %s._rr = j + 1 if j + 1 < %d else 0"
                    % (x, n))
        tick.append("                o += 1")
        tick.append("                %s._outstanding = o" % x)
        tick.append("                %s.forwarded += 1" % x)
        tick.append("                if o > %s.peak_outstanding:" % x)
        tick.append("                    %s.peak_outstanding = o" % x)
        tick.append("                break")
        tick.append("            j = j + 1 if j + 1 < %d else 0" % n)
    busy.append("%s._outstanding > 0" % x)
    # next_wake is NEVER: every databox stall resolves via a channel


def _pipe_deadline(name: str) -> List[str]:
    """Fast-forward contribution of a deadline deque (pipes, DRAM
    in-flight, cache ready-responses): the head entry's due cycle if it
    is not yet overdue. The comparison is ``>=`` because the skip runs
    after the cycle increment while the event engine's ``next_wake``
    sees the just-executed cycle: a head due exactly now clamps the
    target to the current cycle (no skip). An overdue head is
    backpressure — channel-driven, like the components' next_wake."""
    return ["if %s:" % name,
            "    w = %s[0][0]" % name,
            "    if w >= cycle and w < tw:",
            "        tw = w"]


def _emit_unit(em: _Emitter, k: int, unit, tick, busy, skip, sdefs):
    """Fully inlined TaskUnit tick: queue/join plumbing via guarded real
    helper calls, tile instance stepping via the per-block steppers."""
    compiled = unit.tiles[0].compiled if unit.tiles else None
    if compiled is None:
        raise UnsupportedDesign(f"{unit.name}: task unit has no tiles")
    for t in unit.tiles:
        if t.compiled is not compiled:
            raise UnsupportedDesign(
                f"{unit.name}: tiles disagree on compiled task")
        if t.latencies != unit.tiles[0].latencies:
            raise UnsupportedDesign(
                f"{unit.name}: tiles disagree on latency table")

    u = "u%d" % k
    em.pre.append("%s = %s" % (u, em.ref(unit)))
    em.pre.append("%sq = %s.queue" % (u, u))
    em.pre.append("%sqf = %sq._free" % (u, u))
    em.pre.append("%sqr = %sq._ready" % (u, u))
    em.pre.append("%sjr = %s._join_ready" % (u, u))
    em.pre.append("%sso = %s._spawn_outbuf" % (u, u))
    em.pre.append("%sjo = %s._join_outbuf" % (u, u))
    em.pre.append("%saj = %s._apply_join" % (u, u))
    em.pre.append("%sas = %s._apply_spawn" % (u, u))
    em.pre.append("%sqe = %sq.entries" % (u, u))
    em.pre.append("%ssj = %s._send_join" % (u, u))
    em.pre.append("%sfi = %s.instance_finished" % (u, u))
    si, ji = em.ci(unit.spawn_in), em.ci(unit.join_in)
    so, jo = em.ci(unit.spawn_out), em.ci(unit.join_out)

    tiles = []
    for ti, t in enumerate(unit.tiles):
        tn = "%s_t%d" % (u, ti)
        em.pre.append("%s = %s" % (tn, em.ref(t)))
        em.pre.append("%si = %s.instances" % (tn, tn))
        em.pre.append("%sb = %s._by_uid" % (tn, tn))
        em.pre.append("%sf = %s._fired" % (tn, tn))
        em.pre.append("%spr = %s._apply_response" % (tn, tn))
        em.pre.append("%sfc = %s._fire_call" % (tn, tn))
        em.pre.append("%ssu = %s._suspend" % (tn, tn))
        tiles.append((tn, em.ci(t.response_in), t))

    # -- per-tile epilogue closures, steppers, dispatch dicts --------------
    rettype = compiled.task.function.return_type
    for ti, (tn, _rc, t) in enumerate(tiles):
        ep = "_e%d_%d" % (k, ti)
        if rettype.is_void():
            # unreachable: a void task never has (ret_ptr, retval) set
            sdefs.append("def %s(inst, cycle):" % ep)
            sdefs.append("    raise SimulationError(%r)"
                         % ("epilogue store for void task",))
        else:
            ro = em.ci(t.request_out)
            sdefs.append("def %s(inst, cycle):" % ep)
            sdefs.append("    if %s._mem_issued_this_cycle:" % tn)
            sdefs.append("        return")
            sdefs.append("    if len(c%di) < %d and CP[%d] is None:"
                         % (ro, t.request_out.capacity, ro))
            sdefs.append('        CP[%d] = MemRequest(tag=MemTag(%d, %d, '
                         'inst.uid, -1), op="store", '
                         "addr=int(inst.entry.ret_ptr), size=%d, "
                         "data=_v2r(%s, inst.retval), port=%d)"
                         % (ro, unit.sid, ti, rettype.size_bytes,
                            em.ref(rettype), unit.port))
            sdefs.append("        dl.append(%d)" % ro)
            sdefs.append("        %s._mem_issued_this_cycle = True" % tn)
            sdefs.append('        inst.phase = "epilogue_wait"')
            sdefs.append("    else:")
            sdefs.append("        %s._mem_blocked = True" % tn)
        gen = _StepperGen(em, unit, compiled, t.latencies, t, ti, tn, ep, u)
        entries = []
        for bi, block in enumerate(compiled.blocks):
            if not compiled.owns_block(block):
                continue
            name = "_s%d_%d_%d" % (k, ti, bi)
            sdefs.extend(gen.stepper(name, block))
            entries.append("%s: %s" % (em.ref(block), name))
        sdefs.append("%sd = {%s}" % (tn, ", ".join(entries)))

    # -- the tick section --------------------------------------------------
    guard = ["c%di" % ji, "c%di" % si, u + "jr", u + "so", u + "jo",
             u + "qr"]
    for tn, rc, _t in tiles:
        guard.extend([tn + "i", "c%di" % rc, "%s._min_wake <= cycle" % tn])
    tick.append("if %s:" % " or ".join(guard))
    tick.append("    st = %s._synced_to" % u)
    tick.append("    if st < cycle - 1:")
    tick.append("        gap = cycle - 1 - st")
    for tn, _rc, _t in tiles:
        tick.append("        if %si:" % tn)
        tick.append("            %s.busy_cycles += gap" % tn)
    tick.append("    %s._synced_to = cycle" % u)
    tick.append("    wk_ = 0")
    tick.append("    if c%di and not CQ[%d]:" % (ji, ji))
    tick.append("        msg = c%di[0]" % ji)
    tick.append("        CQ[%d] = 1" % ji)
    tick.append("        dl.append(%d)" % ji)
    tick.append("        %saj(msg, cycle)" % u)
    tick.append("        wk_ = 1")
    tick.append("    if c%di and not CQ[%d] and %sqf:" % (si, si, u))
    tick.append("        msg = c%di[0]" % si)
    tick.append("        CQ[%d] = 1" % si)
    tick.append("        dl.append(%d)" % si)
    tick.append("        %sas(msg, cycle)" % u)
    # inlined TaskUnit._dispatch: round-robin over the (static) tile
    # list for a tile with capacity, pop one READY entry, start it
    take = ("%sqr.pop()" if unit.queue.policy == "lifo"
            else "%sqr.popleft()") % u
    nt = len(unit.tiles)
    tick.append("    if %sqr:" % u)
    if nt == 1:
        tn0, _rc0, t0 = tiles[0]
        tick.append("        if len(%si) < %d:" % (tn0, t0.max_inflight))
        tick.append("            dyid_ = %s" % take)
        tick.append("            en_ = %sqe[dyid_]" % u)
        tick.append('            if en_.state != "READY":')
        tick.append("                raise SimulationError(")
        tick.append('                    "task queue %s: ready-list entry '
                    '%%d in state %%s" %% (dyid_, en_.state))'
                    % unit.queue.name.replace("%", "%%"))
        tick.append('            en_.state = "EXE"')
        tick.append("            %s.start(%s._uid_counter, en_, cycle)"
                    % (tn0, u))
        tick.append("            %s._uid_counter += 1" % u)
        tick.append("            wk_ = 1")
        tick.append("            if %s.first_dispatch_cycle is None:" % u)
        tick.append("                %s.first_dispatch_cycle = cycle" % u)
    else:
        em.pre.append("%stl = (%s)" % (u, ", ".join(
            "(%s, %si, %d)" % (tn, tn, t.max_inflight)
            for tn, _rc, t in tiles)))
        tick.append("        ix_ = %s._dispatch_rr" % u)
        tick.append("        for _ in range(%d):" % nt)
        tick.append("            tt_ = %stl[ix_]" % u)
        tick.append("            if len(tt_[1]) < tt_[2]:")
        tick.append("                if not %sqr:" % u)
        tick.append("                    break")
        tick.append("                dyid_ = %s" % take)
        tick.append("                en_ = %sqe[dyid_]" % u)
        tick.append('                if en_.state != "READY":')
        tick.append("                    raise SimulationError(")
        tick.append('                        "task queue %s: ready-list '
                    'entry %%d in state %%s" %% (dyid_, en_.state))'
                    % unit.queue.name.replace("%", "%%"))
        tick.append('                en_.state = "EXE"')
        tick.append("                tt_[0].start(%s._uid_counter, en_, "
                    "cycle)" % u)
        tick.append("                %s._uid_counter += 1" % u)
        tick.append("                wk_ = 1")
        tick.append("                %s._dispatch_rr = ix_ + 1 if ix_ + 1 "
                    "< %d else 0" % (u, nt))
        tick.append("                if %s.first_dispatch_cycle is None:"
                    % u)
        tick.append("                    %s.first_dispatch_cycle = cycle"
                    % u)
        tick.append("                break")
        tick.append("            ix_ = ix_ + 1 if ix_ + 1 < %d else 0" % nt)
    for ti, (tn, rc, _t) in enumerate(tiles):
        # the instance loop is a pure no-op (each instance would hit its
        # cycle < wake_at early-out) unless a wake event happened: a
        # memory response or join arrived, a dispatch started/resumed an
        # instance, a blocked epilogue store must retry (%sw, persisted
        # across cycles), or a node-latency deadline (_min_wake) is due.
        em.pre.append("%sw = 1" % tn)
        em.pre.append("%sn = 0" % tn)
        tick.append("    if %sf:" % tn)
        tick.append("        %sf.clear()" % tn)
        tick.append("    %s._mem_issued_this_cycle = False" % tn)
        tick.append("    %s._mem_blocked = False" % tn)
        tick.append("    %s._spawn_blocked = False" % tn)
        tick.append("    rs_ = wk_")
        tick.append("    if c%di and not CQ[%d]:" % (rc, rc))
        tick.append("        resp = c%di[0]" % rc)
        tick.append("        CQ[%d] = 1" % rc)
        tick.append("        dl.append(%d)" % rc)
        tick.append("        %spr(resp, cycle)" % tn)
        tick.append("        rs_ = 1")
        tick.append("    if %si:" % tn)
        tick.append("        %s.busy_cycles += 1" % tn)
        tick.append("        if rs_ or %sw or cycle >= %sn:" % (tn, tn))
        tick.append("            %sw = 0" % tn)
        tick.append("            mw = P")
        tick.append("            nw_ = P")
        tick.append("            fin = None")
        tick.append("            for inst in %si[:]:" % tn)
        tick.append("                ph = inst.phase")
        tick.append('                if ph == "run":')
        tick.append("                    wa = inst.wake_at")
        tick.append("                    if cycle < wa:")
        tick.append("                        if wa < mw:")
        tick.append("                            mw = wa")
        tick.append("                        if wa < nw_:")
        tick.append("                            nw_ = wa")
        tick.append("                        continue")
        tick.append("                    _w = %sd[inst.block](inst, cycle)"
                    % tn)
        tick.append('                elif ph == "epilogue_issue":')
        tick.append("                    _e%d_%d(inst, cycle)" % (k, ti))
        tick.append("                    _w = P")
        tick.append("                else:")
        tick.append("                    _w = P")
        tick.append("                ph = inst.phase")
        tick.append('                if ph == "done":')
        tick.append("                    if fin is None:")
        tick.append("                        fin = [inst]")
        tick.append("                    else:")
        tick.append("                        fin.append(inst)")
        tick.append("                else:")
        tick.append('                    if ph == "epilogue_issue":')
        tick.append("                        %sw = 1" % tn)
        tick.append('                    elif ph == "run":')
        tick.append("                        wa = inst.wake_at")
        tick.append("                        if wa < nw_:")
        tick.append("                            nw_ = wa")
        tick.append("                    if _w < mw:")
        tick.append("                        mw = _w")
        tick.append("            %sn = nw_" % tn)
        tick.append("            %s._min_wake = mw" % tn)
        tick.append("            if fin is not None:")
        tick.append("                for inst in fin:")
        tick.append("                    %si.remove(inst)" % tn)
        tick.append("                    del %sb[inst.uid]" % tn)
        tick.append("                    %s.completed_instances += 1" % tn)
        tick.append("                    %sfi(inst)" % u)
        tick.append("    else:")
        tick.append("        %s._min_wake = P" % tn)
    tick.append("    if %sjr:" % u)
    tick.append("        %ssj(cycle)" % u)
    tick.append("    if %sso and len(c%di) < %d and CP[%d] is None:"
                % (u, so, unit.spawn_out.capacity, so))
    tick.append("        CP[%d] = %sso.popleft()" % (so, u))
    tick.append("        dl.append(%d)" % so)
    tick.append("    if %sjo and len(c%di) < %d and CP[%d] is None:"
                % (u, jo, unit.join_out.capacity, jo))
    tick.append("        CP[%d] = %sjo.popleft()" % (jo, u))
    tick.append("        dl.append(%d)" % jo)

    # -- is_busy -----------------------------------------------------------
    terms = ["%sso" % u, "%sjo" % u, "%sjr" % u,
             "len(%sqf) < %d" % (u, unit.queue.depth)]
    terms.extend("%si" % tn for tn, _rc, _t in tiles)
    busy.append(" or ".join(terms))

    # -- fast-forward contribution (mirrors TaskUnit.next_wake) ------------
    caps = " or ".join("len(%si) < %d" % (tn, t.max_inflight)
                       for tn, _rc, t in tiles)
    skip.append("if %sjr or (c%di and %sqf) or (%sqr and (%s)):"
                % (u, si, u, u, caps))
    skip.append("    tw = cycle")
    skip.append("else:")
    first = True
    for tn, _rc, _t in tiles:
        if first:
            skip.append("    w = %s._min_wake" % tn)
            first = False
        else:
            skip.append("    w2 = %s._min_wake" % tn)
            skip.append("    if w2 < w:")
            skip.append("        w = w2")
    skip.append("    if w <= cycle:")
    skip.append("        tw = cycle")
    skip.append("    elif w < tw and w < P:")
    skip.append("        tw = w")


def _generate(sim) -> Tuple[str, dict]:
    """Walk the elaborated netlist and emit (source, ctx) for its
    specialized kernel. Deterministic for a given design: iteration is
    over registration-order lists only, names are assigned by traversal
    index, and nothing depends on id()/hash ordering."""
    import struct as _struct

    from repro.errors import SimulationError as _SimulationError
    from repro.ir.opsem import value_to_raw as _value_to_raw
    from repro.memory.cache import _MSHR as _MSHRCls
    from repro.memory.databox import MemTag as _MemTagCls
    from repro.memory.messages import MemRequest as _MemRequestCls
    from repro.memory.messages import MemResponse as _MemResponseCls
    from repro.task.messages import SpawnMessage as _SpawnMessageCls
    from repro.task.txu import _RegSlot as _RegSlotCls

    em = _Emitter(sim.channels)
    tick: List[str] = []   # per-cycle component sections (base indent 0)
    busy: List[str] = []   # is_busy terms, registration order
    skip: List[str] = []   # fast-forward deadline contributions
    sdefs: List[str] = []  # stepper defs + dispatch dicts

    comps = list(sim.components)
    for k, comp in enumerate(comps):
        if isinstance(comp, TaskUnit):
            _emit_unit(em, k, comp, tick, busy, skip, sdefs)
        else:
            _emit_plumbing(em, k, comp, tick, busy, skip)

    busy_expr = " or ".join("(%s)" % t for t in busy) if busy else "0"
    nch = len(em.channels)

    body: List[str] = []
    w = body.append
    w("P = %d" % _PARKED)
    w("B = P")
    w('_INF = float("inf")')
    w('_NINF = float("-inf")')
    w('_NAN = float("nan")')
    w("limit = start + max_cycles")
    w("cycle = sim.cycle")
    w("idle = sim._idle_cycles")
    w("quiet = sim._quiet_cycles")
    w("act = 1 if sim._activity_flag else 0")
    w("sim._activity_flag = False")
    w("ticks = 0")
    w("ff = 0")
    w("dirty = sim._dirty_channels")
    # flat channel state: item deques, pending push/pop, moved counters
    w("CI = tuple([c._items for c in CH])")
    w("CN = tuple([c.name for c in CH])")
    w("CP = [None] * %d" % nch)
    w("CQ = [0] * %d" % nch)
    w("CU = [0] * %d" % nch)
    w("CO = [0] * %d" % nch)
    w("dl = []")
    # absorb pre-existing pending channel state (the host pushes the
    # root spawn before run()) into the flat arrays so the first commit
    # sees it exactly like the dense engine's dirty list would
    w("i = 0")
    w("for c in CH:")
    w("    c._dirty = False")
    w("    if c._pending_pop:")
    w("        CQ[i] = 1")
    w("        c._pending_pop = False")
    w("        dl.append(i)")
    w("    v = c._pending_push")
    w("    if v is not None:")
    w("        CP[i] = v")
    w("        c._pending_push = None")
    w("        dl.append(i)")
    w("    i += 1")
    w("del dirty[:]")
    # cold-path helper: fold the flat moved-counters back into the real
    # channel objects (stall post-mortems and stats() read them there)
    w("def _sync_totals():")
    w("    i = 0")
    w("    for c in CH:")
    w("        c.total_pushed += CU[i]")
    w("        CU[i] = 0")
    w("        c.total_popped += CO[i]")
    w("        CO[i] = 0")
    w("        i += 1")
    body.extend(em.pre)
    body.extend(sdefs)
    # the hot loop allocates only acyclic objects (messages, instances,
    # small lists); pausing the cyclic collector avoids threshold-driven
    # generation-0 sweeps every few hundred cycles
    w("_gc_on = _gc.isenabled()")
    w("if _gc_on:")
    w("    _gc.disable()")
    w("try:")
    w("    while True:")
    w("        sim.cycle = cycle")
    w("        if done():")
    w("            break")
    w("        if cycle >= limit:")
    w("            raise SimulationError(")
    w('                f"simulation exceeded {max_cycles} cycles '
      'without finishing")')
    w("        act = 0")
    body.extend("        " + line for line in tick)
    w("        ticks += 1")
    w("        if dl:")
    w("            if mlog is None:")
    w("                for k in dl:")
    w("                    if CQ[k]:")
    w("                        CI[k].popleft()")
    w("                        CO[k] += 1")
    w("                        CQ[k] = 0")
    w("                    v = CP[k]")
    w("                    if v is not None:")
    w("                        CI[k].append(v)")
    w("                        CU[k] += 1")
    w("                        CP[k] = None")
    w("            else:")
    w("                nm = set()")
    w("                for k in dl:")
    w("                    if CQ[k]:")
    w("                        CI[k].popleft()")
    w("                        CO[k] += 1")
    w("                        CQ[k] = 0")
    w("                    v = CP[k]")
    w("                    if v is not None:")
    w("                        CI[k].append(v)")
    w("                        CU[k] += 1")
    w("                        CP[k] = None")
    w("                    nm.add(CN[k])")
    w("                if len(mlog) < 1000000:")
    w("                    mlog.append((cycle, tuple(sorted(nm))))")
    w("            del dl[:]")
    w("            cycle += 1")
    w("            quiet = 0")
    w("            idle = 0")
    w("            continue")
    w("        cycle += 1")
    w("        if act:")
    w("            quiet = 0")
    w("        else:")
    w("            quiet += 1")
    w("        if %s:" % busy_expr)
    w("            idle = 0")
    w("            busy = 1")
    w("        else:")
    w("            idle += 1")
    w("            busy = 0")
    w("        if idle > 2048 or quiet > 32768:")
    w("            sim.cycle = cycle")
    w("            sim._idle_cycles = idle")
    w("            sim._quiet_cycles = quiet")
    w("            _sync_totals()")
    w("            sim._check_stalls()")
    w("        if act:")
    w("            continue")
    w("        tw = limit")
    body.extend("        " + line for line in skip)
    w("        if not busy:")
    w("            w = cycle + 2049 - idle")
    w("            if w < tw:")
    w("                tw = w")
    w("        w = cycle + 32769 - quiet")
    w("        if w < tw:")
    w("            tw = w")
    w("        span = tw - cycle")
    w("        if span > 0:")
    w("            cycle += span")
    w("            quiet += span")
    w("            if not busy:")
    w("                idle += span")
    w("            ff += span")
    w("            if idle > 2048 or quiet > 32768:")
    w("                sim.cycle = cycle")
    w("                sim._idle_cycles = idle")
    w("                sim._quiet_cycles = quiet")
    w("                _sync_totals()")
    w("                sim._check_stalls()")
    w("finally:")
    w("    if _gc_on:")
    w("        _gc.enable()")
    w("    sim.cycle = cycle")
    w("    sim._idle_cycles = idle")
    w("    sim._quiet_cycles = quiet")
    w("    sim._ticks_executed += ticks")
    w("    sim._component_ticks += ticks * %d" % len(comps))
    w("    sim._fast_forwarded_cycles += ff")
    w("    _sync_totals()")
    # error-state parity: a mid-cycle exception leaves this cycle's
    # pending pushes/pops on the real channel objects, exactly as the
    # dense engine would (uncommitted, marked dirty)
    w("    for k in dl:")
    w("        c = CH[k]")
    w("        if CQ[k]:")
    w("            c._pending_pop = True")
    w("            CQ[k] = 0")
    w("        v = CP[k]")
    w("        if v is not None:")
    w("            c._pending_push = v")
    w("            CP[k] = None")
    w("        if not c._dirty:")
    w("            c._dirty = True")
    w("            dirty.append(c)")

    lines = ['"""Autogenerated compiled-engine kernel. Do not edit: '
             'regenerated from the',
             'elaborated design by repro.sim.compile (content-addressed '
             'by source +',
             'code fingerprint)."""',
             "",
             "",
             "def make_kernel(ctx):"]
    if em.objs:
        lines.append("    (%s,) = ctx[\"objects\"]"
                     % ", ".join("_o%d" % i for i in range(len(em.objs))))
    lines.append('    CH = ctx["channels"]')
    lines.append('    SimulationError = ctx["SimulationError"]')
    lines.append('    _RegSlot = ctx["RegSlot"]')
    lines.append('    _pk = ctx["pack"]')
    lines.append('    _up = ctx["unpack"]')
    lines.append('    MemRequest = ctx["MemRequest"]')
    lines.append('    MemResponse = ctx["MemResponse"]')
    lines.append('    MemTag = ctx["MemTag"]')
    lines.append('    _MSHR = ctx["MSHR"]')
    lines.append('    _v2r = ctx["v2r"]')
    lines.append('    SpawnMessage = ctx["SpawnMessage"]')
    lines.append("    import gc as _gc")
    lines.append("    def kernel(sim, done, start, max_cycles, mlog):")
    lines.extend("        " + line for line in body)
    lines.append("    return kernel")
    source = "\n".join(lines) + "\n"
    ctx = {
        "objects": tuple(em.objs),
        "channels": tuple(em.channels),
        "SimulationError": _SimulationError,
        "RegSlot": _RegSlotCls,
        "pack": _struct.pack,
        "unpack": _struct.unpack,
        "MemRequest": _MemRequestCls,
        "MemResponse": _MemResponseCls,
        "MemTag": _MemTagCls,
        "MSHR": _MSHRCls,
        "v2r": _value_to_raw,
        "SpawnMessage": _SpawnMessageCls,
    }
    return source, ctx
