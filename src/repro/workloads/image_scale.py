"""Image scaling: nested parallel loops with if/else interpolation
(Table II: "Nested, If-else loops")."""

from __future__ import annotations

import random

from repro.ir.types import I32
from repro.workloads.base import PreparedRun, Workload


class ImageScale(Workload):
    name = "image_scale"
    entry = "image_scale"
    challenge = "Nested, If-else loops"
    memory_pattern = "Regular"
    paper_tiles = 4  # Table IV

    source = """
    // 2x upscale with edge-aware linear interpolation
    func image_scale(in: i32*, out: i32*, IH: i32, IW: i32) {
      cilk_for (var y: i32 = 0; y < IH * 2; y = y + 1) {
        cilk_for (var x: i32 = 0; x < IW * 2; x = x + 1) {
          var sy: i32 = y / 2;
          var sx: i32 = x / 2;
          var v: i32 = in[sy * IW + sx];
          if (x % 2 == 1 && sx + 1 < IW) {
            v = (v + in[sy * IW + sx + 1]) / 2;
          }
          if (y % 2 == 1 && sy + 1 < IH) {
            v = (v + in[(sy + 1) * IW + sx]) / 2;
          }
          out[y * (IW * 2) + x] = v;
        }
      }
    }
    """

    def dims(self, scale: int):
        return 6 * scale, 6 * scale  # IH, IW

    @staticmethod
    def golden(pixels, ih, iw):
        out = [0] * (ih * 2 * iw * 2)
        for y in range(ih * 2):
            for x in range(iw * 2):
                sy, sx = y // 2, x // 2
                v = pixels[sy * iw + sx]
                if x % 2 == 1 and sx + 1 < iw:
                    v = (v + pixels[sy * iw + sx + 1]) // 2
                if y % 2 == 1 and sy + 1 < ih:
                    v = (v + pixels[(sy + 1) * iw + sx]) // 2
                out[y * iw * 2 + x] = v
        return out

    def prepare(self, memory, scale: int = 1) -> PreparedRun:
        ih, iw = self.dims(scale)
        rng = random.Random(7)
        pixels = [rng.randrange(0, 256) for _ in range(ih * iw)]
        expected = self.golden(pixels, ih, iw)
        base_in = memory.alloc_array(I32, pixels)
        base_out = memory.alloc_array(I32, [0] * len(expected))

        def check(mem, _retval):
            return mem.read_array(base_out, I32, len(expected)) == expected

        return PreparedRun(self.entry, [base_in, base_out, ih, iw],
                           check, work_items=len(expected))
