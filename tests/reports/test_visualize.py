"""Tests for DOT emission and execution timelines."""


from repro.accel import build_accelerator
from repro.passes import extract_tasks
from repro.reports import (
    execution_timeline,
    task_graph_dot,
    utilization_summary,
)
from repro.sim import Trace
from repro.workloads import REGISTRY

from tests.irprograms import build_fib_module, build_matrix_add_module


class TestDot:
    def test_nodes_and_spawn_edges(self):
        graph = extract_tasks(build_matrix_add_module())
        dot = task_graph_dot(graph)
        assert dot.startswith('digraph "matrix_add"')
        assert dot.count("[label=") >= 5  # 3 nodes + 2 edges
        assert 't0 -> t1 [label="spawn"]' in dot
        assert 't1 -> t2 [label="spawn"]' in dot
        assert dot.rstrip().endswith("}")

    def test_recursive_self_edge_dashed(self):
        graph = extract_tasks(build_fib_module())
        dot = task_graph_dot(graph)
        assert 't0 -> t0 [label="spawn" style=dashed]' in dot

    def test_serial_call_edges(self):
        graph = extract_tasks(REGISTRY.get("mergesort").fresh_module())
        dot = task_graph_dot(graph)
        assert 'label="call"' in dot


class TestTimeline:
    def run_traced(self):
        workload = REGISTRY.get("dedup")
        trace = Trace(enabled=True)
        accel = build_accelerator(workload.fresh_module(),
                                  workload.default_config(), trace=trace)
        prepared = workload.prepare(accel.memory, 1)
        result = accel.run(prepared.function, prepared.args)
        return trace, result

    def test_timeline_has_row_per_active_unit(self):
        trace, result = self.run_traced()
        text = execution_timeline(trace, result.cycles)
        assert "T1:process_chunk" in text
        assert "T0:compress_chunk" in text
        assert "s" in text and "c" in text

    def test_timeline_filters_by_source(self):
        trace, result = self.run_traced()
        text = execution_timeline(trace, result.cycles,
                                  sources=["T1:process_chunk"])
        assert "T1:process_chunk" in text
        assert "T0:compress_chunk" not in text

    def test_empty_run(self):
        assert execution_timeline(Trace(enabled=True), 0) == "(empty run)"

    def test_utilization_summary(self):
        _, result = self.run_traced()
        text = utilization_summary(result.stats, result.cycles)
        assert "T1:process_chunk" in text
        assert "%" in text
