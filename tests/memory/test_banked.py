"""Tests for the banked shared-L1 (§VI future-work extension)."""

import pytest

from dataclasses import replace

from repro.errors import ConfigError
from repro.memory.cache import CacheParams
from repro.workloads import REGISTRY


class TestBankParams:
    def test_bank_count_must_be_power_of_two(self):
        with pytest.raises(ConfigError):
            CacheParams(banks=3)

    def test_bank_slice_geometry(self):
        params = CacheParams(size_bytes=16 * 1024, banks=4)
        slice_ = params.bank_params()
        assert slice_.size_bytes == 4 * 1024
        assert slice_.banks == 1
        # total sets across banks equal the unbanked configuration
        unbanked = CacheParams(size_bytes=16 * 1024, banks=1)
        assert params.sets * 4 == unbanked.sets

    def test_indivisible_geometry_rejected(self):
        with pytest.raises(ConfigError):
            CacheParams(size_bytes=256, line_bytes=32, associativity=2,
                        banks=8)


@pytest.mark.parametrize("banks", [2, 4])
class TestBankedCorrectness:
    """Every workload computes identical results on a banked L1."""

    @pytest.mark.parametrize("name", ["matrix_add", "dedup", "mergesort",
                                      "fibonacci", "saxpy"])
    def test_workload_correct(self, name, banks):
        workload = REGISTRY.get(name)
        config = replace(workload.default_config(),
                         cache=CacheParams(banks=banks))
        result = workload.run(config=config)
        assert result.correct, f"{name} wrong with {banks} banks"

    def test_stats_aggregate_across_banks(self, banks):
        workload = REGISTRY.get("matrix_add")
        config = replace(workload.default_config(),
                         cache=CacheParams(banks=banks))
        result = workload.run(config=config)
        cache_stats = result.stats["cache"]
        assert cache_stats["banks"] == banks
        assert cache_stats["hits"] + cache_stats["misses"] > 0


class TestBankDistribution:
    def test_lines_spread_across_banks(self):
        """Sequential lines must land in different banks (interleaving),
        and the index shift must use every set of every bank."""
        workload = REGISTRY.get("matrix_add")
        config = replace(workload.default_config(ntiles=4),
                         cache=CacheParams(banks=4))
        accel = workload.build(config)
        prepared = workload.prepare(accel.memory, 2)
        accel.run(prepared.function, prepared.args)
        per_bank = [c.hits + c.misses for c in accel.banked.caches]
        assert all(count > 0 for count in per_bank), per_bank
        # traffic is roughly balanced (within 4x of each other)
        assert max(per_bank) < 4 * max(1, min(per_bank))
