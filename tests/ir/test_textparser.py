"""Round-trip tests: print -> parse -> print must be a fixpoint, and the
reparsed module must behave identically."""

import pytest

from repro.accel import build_accelerator
from repro.errors import IRError
from repro.ir import print_module, verify_module
from repro.ir.textparser import parse_ir, parse_type
from repro.ir.types import F32, I32, I64, PointerType
from repro.workloads import REGISTRY, fib_reference

from tests.irprograms import (
    build_fib_module,
    build_matrix_add_module,
    build_scale_module,
    build_serial_sum_module,
)


class TestParseType:
    def test_base_types(self):
        assert parse_type("i32") == I32
        assert parse_type("f32") == F32

    def test_pointers(self):
        assert parse_type("i32*") == PointerType(I32)
        assert parse_type("i64**") == PointerType(PointerType(I64))

    def test_unknown_type(self):
        with pytest.raises(IRError):
            parse_type("i33")


class TestRoundTrip:
    @pytest.mark.parametrize("builder", [
        build_scale_module, build_matrix_add_module, build_fib_module,
        build_serial_sum_module,
    ])
    def test_print_parse_print_fixpoint(self, builder):
        module = builder()
        text1 = print_module(module)
        reparsed = parse_ir(text1)
        verify_module(reparsed)
        text2 = print_module(reparsed)
        assert text1 == text2

    @pytest.mark.parametrize("name", REGISTRY.names())
    def test_workload_sources_round_trip(self, name):
        module = REGISTRY.get(name).fresh_module()
        text1 = print_module(module)
        reparsed = parse_ir(text1)
        verify_module(reparsed)
        assert print_module(reparsed) == text1


class TestReparsedExecution:
    def test_reparsed_fib_runs_identically(self):
        original = build_fib_module()
        reparsed = parse_ir(print_module(original))
        accel = build_accelerator(reparsed)
        result = accel.run("fib", [11])
        assert result.retval == fib_reference(11)

    def test_reparsed_scale_runs_identically(self):
        reparsed = parse_ir(print_module(build_scale_module(work_ops=3)))
        accel = build_accelerator(reparsed)
        base = accel.memory.alloc_array(I32, [0] * 12)
        accel.run("scale", [base, 12])
        assert accel.memory.read_array(base, I32, 12) == [3] * 12

    def test_reparsed_module_with_globals(self):
        module = REGISTRY.get("mergesort").fresh_module()
        reparsed = parse_ir(print_module(module))
        assert reparsed.global_("tmp") is not None
        accel = build_accelerator(reparsed)
        data = [5, 3, 8, 1]
        base = accel.memory.alloc_array(I32, data)
        accel.run("mergesort", [base, 0, 3])
        assert accel.memory.read_array(base, I32, 4) == sorted(data)


class TestHandWrittenIR:
    def test_minimal_function(self):
        module = parse_ir("""
        ; module hand
        func @inc(x: i32) -> i32 {
        entry:
          %r = add i32 %x, 1
          ret %r
        }
        """)
        verify_module(module)
        accel = build_accelerator(module)
        assert accel.run("inc", [41]).retval == 42

    def test_parallel_markers(self):
        module = parse_ir("""
        ; module hand
        func @f(a: i32*) -> void {
        entry:
          detach body, continue cont
        body:
          store 7, %a
          reattach cont
        cont:
          sync done
        done:
          ret
        }
        """)
        verify_module(module)
        accel = build_accelerator(module)
        addr = accel.memory.alloc(4)
        accel.run("f", [addr])
        assert accel.memory.read_value(addr, I32) == 7

    def test_errors_are_reported(self):
        with pytest.raises(IRError, match="undefined value"):
            parse_ir("""
            ; module bad
            func @f() -> i32 {
            entry:
              ret %nope
            }
            """)
        with pytest.raises(IRError, match="unknown block"):
            parse_ir("""
            ; module bad
            func @f() -> void {
            entry:
              br missing
            }
            """)
        with pytest.raises(IRError, match="unknown function"):
            parse_ir("""
            ; module bad
            func @f() -> void {
            entry:
              call @ghost()
              ret
            }
            """)
