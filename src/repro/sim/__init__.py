"""Cycle-level simulation substrate: engine, channels, components, tracing."""

from repro.sim.channel import Channel
from repro.sim.component import (
    NEVER,
    OBS_BUSY,
    OBS_IDLE,
    OBS_STALL_IN,
    OBS_STALL_OUT,
    OBS_STATES,
    Component,
)
from repro.sim.engine import DEADLOCK_WINDOW, ENGINES, STALL_WINDOW, Simulator
from repro.sim.stats import StatCounters, utilization
from repro.sim.trace import NULL_TRACE, Trace, TraceEvent

__all__ = [
    "Channel", "Component", "DEADLOCK_WINDOW", "ENGINES", "NEVER",
    "STALL_WINDOW", "Simulator",
    "OBS_BUSY", "OBS_IDLE", "OBS_STALL_IN", "OBS_STALL_OUT", "OBS_STATES",
    "StatCounters", "utilization", "NULL_TRACE", "Trace", "TraceEvent",
]
