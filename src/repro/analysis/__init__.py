"""Static analysis over the parallel IR (post Stage-1).

TAPAS synthesizes one accelerator per *static task graph*; a determinacy
race in the source program becomes a silicon-level data race between task
units sharing the cache. This package analyses the extracted task graph
*before* accelerator generation:

* :mod:`repro.analysis.mhp`     — may-happen-in-parallel facts from the
  detach/sync structure (which spawn subtrees overlap in time).
* :mod:`repro.analysis.memdep`  — affine memory-dependence / alias
  analysis over load/store/GEP chains, with per-function effect
  summaries so recursion (fib, mergesort) is handled.
* :mod:`repro.analysis.races`   — the determinacy-race detector that
  joins the two: MHP pairs whose footprints may alias with >=1 write.
* :mod:`repro.analysis.diagnostics` — structured diagnostics (codes,
  severities, source locations, text/JSON renderers).
* :mod:`repro.analysis.dynamic` — a trace-based dynamic checker that
  cross-validates the static verdicts against a simulation run.

A second, hardware-facing layer lints the design that would be generated
(surfaced as ``repro lint``):

* :mod:`repro.analysis.ranges`  — interprocedural value-range analysis
  with widening/narrowing; infers minimal bitwidths per value, register
  cell and spawn channel (drives the width-aware resource reports).
* :mod:`repro.analysis.netlist` — channel-graph verification of the
  elaborated component network (dangling channels, unreachable blocks,
  communication cycles and their aggregate buffering).
* :mod:`repro.analysis.lint`    — the rule registry joining the two:
  TAP-NET-* / TAP-WIDTH-* diagnostics, plus the build-gate hook.

A third layer predicts performance without running the simulator
(surfaced as ``repro predict`` and the ``static`` sweep evaluator):

* :mod:`repro.analysis.perf`      — the analytical throughput model:
  per-task initiation intervals and critical paths from the compiled
  DFGs, interprocedural work/span propagation over the spawn graph, and
  closed-form memory/network bounds; emits a predicted cycle count plus
  ranked bottlenecks in the stall-ledger vocabulary.
* :mod:`repro.analysis.perfcheck` — the cross-validation harness that
  scores those predictions against event-engine runs (rank correlation,
  relative error, bottleneck-class agreement).
"""

from repro.analysis.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    Diagnostic,
    DiagnosticReport,
)
from repro.analysis.lint import (
    LintRule,
    lint_accelerator,
    lint_design,
    lint_rules,
)
from repro.analysis.netlist import build_channel_graph, verify_netlist
from repro.analysis.perf import (
    PerfModel,
    PerfParams,
    PredictedBottleneck,
    Prediction,
    TaskEstimate,
)
from repro.analysis.perfcheck import (
    CheckRecord,
    CheckReport,
    PerfChecker,
    bottleneck_class,
    spearman,
)
from repro.analysis.races import (
    RaceFinding,
    analyze_design,
    analyze_module,
    analyze_task_graph,
    find_races,
)
from repro.analysis.ranges import (
    Interval,
    ModuleRanges,
    bits_for,
    infer_design_ranges,
    infer_module_ranges,
)

__all__ = [
    "CheckRecord",
    "CheckReport",
    "Diagnostic",
    "DiagnosticReport",
    "Interval",
    "LintRule",
    "ModuleRanges",
    "PerfChecker",
    "PerfModel",
    "PerfParams",
    "PredictedBottleneck",
    "Prediction",
    "RaceFinding",
    "TaskEstimate",
    "SEVERITY_ERROR",
    "SEVERITY_INFO",
    "SEVERITY_WARNING",
    "analyze_design",
    "analyze_module",
    "analyze_task_graph",
    "bits_for",
    "bottleneck_class",
    "build_channel_graph",
    "find_races",
    "infer_design_ranges",
    "infer_module_ranges",
    "lint_accelerator",
    "lint_design",
    "lint_rules",
    "spearman",
    "verify_netlist",
]
