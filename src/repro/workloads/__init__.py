"""The paper's benchmark suite (Table II) plus the Fig 12 microbenchmark."""

from repro.workloads.base import (
    REGISTRY,
    PreparedRun,
    Workload,
    WorkloadRegistry,
    WorkloadResult,
)
from repro.workloads.dedup import Dedup
from repro.workloads.fibonacci import Fibonacci, fib_reference
from repro.workloads.image_scale import ImageScale
from repro.workloads.matrix_add import MatrixAdd
from repro.workloads.mergesort import Mergesort
from repro.workloads.saxpy import Saxpy
from repro.workloads.scale_micro import ScaleMicro, scale_source
from repro.workloads.stencil import Stencil

# Table II order
REGISTRY.register(MatrixAdd())
REGISTRY.register(ImageScale())
REGISTRY.register(Saxpy())
REGISTRY.register(Stencil())
REGISTRY.register(Dedup())
REGISTRY.register(Mergesort())
REGISTRY.register(Fibonacci())

__all__ = [
    "REGISTRY", "PreparedRun", "Workload", "WorkloadRegistry",
    "WorkloadResult",
    "Dedup", "Fibonacci", "fib_reference", "ImageScale", "MatrixAdd",
    "Mergesort", "Saxpy", "ScaleMicro", "scale_source", "Stencil",
]
