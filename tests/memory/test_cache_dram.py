"""Tests for the cache + DRAM timing models."""

import pytest

from repro.errors import ConfigError
from repro.memory import (
    Cache,
    CacheParams,
    DRAMModel,
    MainMemory,
    MemRequest,
)
from repro.sim import Simulator


class CacheHarness:
    """A simulator wiring request -> cache -> DRAM and collecting responses."""

    def __init__(self, params=None, dram_latency=40):
        self.sim = Simulator()
        self.mem = MainMemory(1 << 20)
        self.req = self.sim.add_channel("req", capacity=8)
        self.resp = self.sim.add_channel("resp", capacity=8)
        dram_req = self.sim.add_channel("dram_req", capacity=4)
        dram_resp = self.sim.add_channel("dram_resp", capacity=4)
        self.cache = self.sim.add_component(Cache(
            "L1", params or CacheParams(), self.mem,
            self.req, self.resp, dram_req, dram_resp))
        self.dram = self.sim.add_component(DRAMModel(
            "DRAM", dram_req, dram_resp, latency=dram_latency))
        self.received = []

    def run_requests(self, requests, max_cycles=100000):
        pending = list(requests)
        expected = len(pending)

        def pump():
            if pending and self.req.can_push():
                self.req.push(pending.pop(0))
            if self.resp.can_pop():
                self.received.append((self.sim.cycle, self.resp.pop()))

        start = self.sim.cycle
        while len(self.received) < expected:
            pump()
            self.sim.tick()
            assert self.sim.cycle - start < max_cycles, "harness timeout"
        return self.sim.cycle - start


def load(addr, tag=0, size=4):
    return MemRequest(tag=tag, op="load", addr=addr, size=size)


def store(addr, value, tag=0, size=4):
    return MemRequest(tag=tag, op="store", addr=addr, size=size, data=value)


class TestCacheFunctional:
    def test_store_then_load_returns_value(self):
        h = CacheHarness()
        addr = h.mem.alloc(4)
        h.run_requests([store(addr, 99, tag=1), load(addr, tag=2)])
        assert h.received[-1][1].data == 99

    def test_loads_see_backing_data(self):
        h = CacheHarness()
        addr = h.mem.alloc_array_type = h.mem.alloc(4)
        h.mem.write_int(addr, 4, 1234)
        h.run_requests([load(addr, tag=7)])
        assert h.received[0][1].data == 1234

    def test_subword_store_does_not_clobber_neighbours(self):
        h = CacheHarness()
        addr = h.mem.alloc(8)
        h.mem.write_int(addr, 4, 0x11111111)
        h.mem.write_int(addr + 4, 4, 0x22222222)
        h.run_requests([store(addr + 4, 0xAB, size=1)])
        assert h.mem.read_int(addr, 4, signed=False) == 0x11111111
        assert h.mem.read_int(addr + 4, 4, signed=False) == 0x222222AB


class TestCacheTiming:
    def test_miss_then_hit_latency_gap(self):
        h = CacheHarness(dram_latency=40)
        addr = h.mem.alloc(64)
        h.run_requests([load(addr, tag=1)])
        miss_cycle = h.received[0][0]
        h.received.clear()
        h.run_requests([load(addr, tag=2)])
        hit_cycle = h.received[0][0] - miss_cycle
        assert miss_cycle > 40          # includes the DRAM round trip
        assert hit_cycle < 10           # served from the array

    def test_same_line_requests_merge_in_mshr(self):
        params = CacheParams(line_bytes=32)
        h = CacheHarness(params=params, dram_latency=40)
        base = h.mem.alloc(64, align=32)
        cycles = h.run_requests([load(base, tag=1), load(base + 4, tag=2),
                                 load(base + 8, tag=3)])
        # one fill serves all three: far less than 3 full round trips
        assert cycles < 2 * 40
        assert h.cache.misses == 3
        assert h.dram.accesses == 1

    def test_mshr_limit_serialises_independent_misses(self):
        params = CacheParams(mshr_count=1, line_bytes=32)
        h = CacheHarness(params=params, dram_latency=40)
        a = h.mem.alloc(32, align=32)
        b = h.mem.alloc(4096, align=32)  # different line, different set
        serial = h.run_requests([load(a, tag=1), load(b, tag=2)])
        params2 = CacheParams(mshr_count=4, line_bytes=32)
        h2 = CacheHarness(params=params2, dram_latency=40)
        a2 = h2.mem.alloc(32, align=32)
        b2 = h2.mem.alloc(4096, align=32)
        overlapped = h2.run_requests([load(a2, tag=1), load(b2, tag=2)])
        assert serial > overlapped  # MSHRs overlap the two round trips

    def test_eviction_on_conflict(self):
        params = CacheParams(size_bytes=256, line_bytes=32, associativity=1)
        h = CacheHarness(params=params)
        sets = params.sets
        stride = sets * params.line_bytes
        a = h.mem.alloc(stride * 3, align=32)
        conflicting = [load(a, tag=1), load(a + stride, tag=2), load(a, tag=3)]
        h.run_requests(conflicting)
        assert h.cache.evictions >= 1
        assert h.cache.misses == 3  # the third access misses again

    def test_dirty_eviction_writes_back(self):
        params = CacheParams(size_bytes=256, line_bytes=32, associativity=1)
        h = CacheHarness(params=params)
        stride = params.sets * params.line_bytes
        a = h.mem.alloc(stride * 3, align=32)
        h.run_requests([store(a, 5, tag=1), load(a + stride, tag=2)])
        # run a few extra cycles so the writeback drains
        for _ in range(100):
            h.sim.tick()
        assert h.cache.writebacks >= 1

    def test_hit_rate_statistic(self):
        h = CacheHarness()
        addr = h.mem.alloc(4)
        h.run_requests([load(addr, tag=0)])     # fill the line first
        h.received.clear()
        h.run_requests([load(addr, tag=i) for i in range(1, 10)])
        stats = h.cache.stats()
        assert stats["hits"] == 9
        assert stats["misses"] == 1
        assert 0.89 < stats["hit_rate"] < 0.91


class TestCacheParams:
    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigError):
            CacheParams(size_bytes=1000, line_bytes=32, associativity=4)

    def test_paper_configuration(self):
        p = CacheParams()  # the paper's 16K L1
        assert p.size_bytes == 16 * 1024
        assert p.sets * p.line_bytes * p.associativity == p.size_bytes


class TestDRAM:
    def test_fixed_latency(self):
        sim = Simulator()
        req = sim.add_channel("rq", 2)
        resp = sim.add_channel("rs", 2)
        sim.add_component(DRAMModel("d", req, resp, latency=40))
        req.push(MemRequest(tag=9, op="load", addr=0, size=32))
        issued = sim.cycle
        got = []
        while not got:
            if resp.can_pop():
                got.append((sim.cycle, resp.pop()))
            sim.tick()
            assert sim.cycle < 200
        latency = got[0][0] - issued
        assert 40 <= latency <= 45  # latency plus handshake stages

    def test_pipelined_throughput(self):
        """Back-to-back requests complete ~1/cycle after the first."""
        sim = Simulator()
        req = sim.add_channel("rq", 8)
        resp = sim.add_channel("rs", 8)
        sim.add_component(DRAMModel("d", req, resp, latency=40))
        sent = 0
        got = []
        while len(got) < 8:
            if sent < 8 and req.can_push():
                req.push(MemRequest(tag=sent, op="load", addr=0, size=32))
                sent += 1
            if resp.can_pop():
                got.append(sim.cycle)
            sim.tick()
            assert sim.cycle < 500
        assert got[-1] - got[0] <= 16  # near-back-to-back completions


class TestWritebackProtocol:
    """Regression: DRAM must not respond to posted writes — a writeback
    echoed back as a 'fill' would spuriously re-install the evicted line
    (and evict something else)."""

    def test_dirty_eviction_does_not_reinstall_victim(self):
        params = CacheParams(size_bytes=256, line_bytes=32, associativity=1)
        h = CacheHarness(params=params)
        stride = params.sets * params.line_bytes
        a = h.mem.alloc(stride * 3, align=32)
        # dirty line A, then conflict-load B (evicts A, writes A back)
        h.run_requests([store(a, 5, tag=1), load(a + stride, tag=2)])
        for _ in range(200):
            h.sim.tick()
        # B must still be resident: a re-load of B hits
        h.received.clear()
        hits_before = h.cache.hits
        h.run_requests([load(a + stride, tag=3)])
        assert h.cache.hits == hits_before + 1

    def test_write_requests_produce_no_dram_response(self):
        from repro.memory import DRAMModel, MemRequest
        from repro.sim import Simulator

        sim = Simulator()
        req = sim.add_channel("rq", 2)
        resp = sim.add_channel("rs", 2)
        sim.add_component(DRAMModel("d", req, resp, latency=5))
        req.push(MemRequest(tag=1, op="store", addr=0, size=32, data=0))
        req.commit()
        for _ in range(40):
            sim.tick()
        assert not resp.can_pop()

    def test_reads_after_writes_still_respond(self):
        from repro.memory import DRAMModel, MemRequest
        from repro.sim import Simulator

        sim = Simulator()
        req = sim.add_channel("rq", 4)
        resp = sim.add_channel("rs", 4)
        sim.add_component(DRAMModel("d", req, resp, latency=5))
        req.push(MemRequest(tag="w", op="store", addr=0, size=32, data=0))
        req.commit()
        req.push(MemRequest(tag="r", op="load", addr=0, size=32))
        req.commit()
        got = []
        for _ in range(60):
            sim.tick()
            if resp.can_pop():
                got.append(resp.pop().tag)
        assert got == ["r"]
