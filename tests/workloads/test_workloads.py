"""Integration tests: every paper benchmark runs correctly end to end."""

import pytest

from repro.workloads import (
    REGISTRY,
    Dedup,
    Fibonacci,
    Mergesort,
    ScaleMicro,
    fib_reference,
)

ALL_NAMES = ["matrix_add", "image_scale", "saxpy", "stencil", "dedup",
             "mergesort", "fibonacci"]


class TestRegistry:
    def test_all_seven_registered_in_table2_order(self):
        assert REGISTRY.names() == ALL_NAMES

    def test_lookup_unknown_raises(self):
        from repro.errors import TapasError

        with pytest.raises(TapasError, match="unknown workload"):
            REGISTRY.get("nope")

    def test_table2_metadata_present(self):
        for w in REGISTRY.all():
            assert w.challenge
            assert w.memory_pattern in ("Regular", "Irregular")
            assert w.paper_tiles >= 1


@pytest.mark.parametrize("name", ALL_NAMES)
class TestCorrectness:
    def test_runs_correctly_at_default_scale(self, name):
        result = REGISTRY.get(name).run()
        assert result.correct, f"{name} produced wrong output"
        assert result.cycles > 0
        assert result.work_items > 0

    def test_runs_correctly_with_one_tile(self, name):
        w = REGISTRY.get(name)
        result = w.run(config=w.default_config(ntiles=1))
        assert result.correct


class TestScaling:
    @pytest.mark.parametrize("name", ["matrix_add", "saxpy", "stencil"])
    def test_larger_problem_takes_longer(self, name):
        w = REGISTRY.get(name)
        small = w.run(scale=1)
        large = w.run(scale=2)
        assert large.correct
        assert large.cycles > small.cycles

    def test_more_tiles_helps_stencil(self):
        """Fig 15: stencil is compute-heavy and scales with tiles."""
        w = REGISTRY.get("stencil")
        one = w.run(config=w.default_config(ntiles=1), scale=2)
        four = w.run(config=w.default_config(ntiles=4), scale=2)
        assert four.cycles < one.cycles * 0.75

    def test_dedup_pipeline_flat_with_tiles(self):
        """Fig 15: dedup's baseline is already a 3-unit pipeline; extra
        tiles per task change little (stages are roughly balanced)."""
        w = REGISTRY.get("dedup")
        one = w.run(config=w.default_config(ntiles=1), scale=2)
        four = w.run(config=w.default_config(ntiles=4), scale=2)
        assert four.cycles > one.cycles * 0.5  # far from 4x scaling


class TestDedupSpecifics:
    def test_duplicates_marked(self):
        w = Dedup()
        acc = w.build()
        prepared = w.prepare(acc.memory, 1)
        acc.run(prepared.function, prepared.args)
        from repro.ir.types import I32

        out = acc.memory.read_array(prepared.args[2], I32,
                                    prepared.work_items)
        assert -2 in out           # some duplicates found
        assert any(v != -2 for v in out)

    def test_three_heterogeneous_units(self):
        acc = Dedup().build()
        names = {u.compiled.name for u in acc.units}
        assert names == {"dedup", "process_chunk", "compress_chunk"}


class TestFibonacciSpecifics:
    def test_fib_scale2_is_paper_n15(self):
        w = Fibonacci()
        assert w.default_n(2) == 15

    def test_result_matches_reference(self):
        result = Fibonacci().run()
        assert result.retval == fib_reference(12)


class TestMergesortSpecifics:
    def test_sorted_output_with_duplicate_keys(self):
        w = Mergesort()
        acc = w.build()
        from repro.ir.types import I32

        data = [5, 1, 5, 3, 5, 1, 2, 2]
        base = acc.memory.alloc_array(I32, data)
        acc.run("mergesort", [base, 0, len(data) - 1])
        assert acc.memory.read_array(base, I32, len(data)) == sorted(data)

    def test_single_element(self):
        w = Mergesort()
        acc = w.build()
        from repro.ir.types import I32

        base = acc.memory.alloc_array(I32, [42])
        acc.run("mergesort", [base, 0, 0])
        assert acc.memory.read_array(base, I32, 1) == [42]


class TestScaleMicro:
    def test_work_ops_reflected_in_source(self):
        w = ScaleMicro(work_ops=7)
        # 7 chained adders in the body plus the loop increment
        assert w.source.count("+ 1") == 8

    def test_runs_correctly(self):
        for ops in (1, 10, 50):
            result = ScaleMicro(work_ops=ops).run()
            assert result.correct, f"scale micro with {ops} adders failed"

    def test_more_work_more_cycles(self):
        fast = ScaleMicro(work_ops=1).run()
        slow = ScaleMicro(work_ops=50).run()
        assert slow.cycles > fast.cycles
