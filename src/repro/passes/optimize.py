"""IR optimisations: the "Concurrency Opt" / "Task Opt" boxes of Fig 3.

Three conservative, hardware-motivated transforms:

* **constant folding** — a folded operation is a wire, not a functional
  unit: it costs zero ALMs and zero latency in the TXU;
* **dead-code elimination** — unused pure operations would synthesise
  real hardware (the elaborator instantiates every DFG node);
* **block-local CSE** — duplicate pure operations in one block become a
  single functional unit with fan-out, which is exactly what a Chisel
  elaborator would share.

All three preserve the parallel markers untouched and never touch memory
operations, calls, or anything with side effects.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    GEP,
    BinaryOp,
    Cast,
    FCmp,
    ICmp,
    Instruction,
    Select,
)
from repro.ir.module import Module
from repro.ir.opsem import eval_binop, eval_cast, eval_fcmp, eval_gep, eval_icmp
from repro.ir.values import Constant, Value

#: instruction classes that are pure (no side effects, no memory)
_PURE = (BinaryOp, ICmp, FCmp, Select, Cast, GEP)


def _fold(inst: Instruction):
    """Return a Constant replacing ``inst`` if all operands are constants."""
    if not all(isinstance(op, Constant) for op in inst.operands):
        return None
    vals = [op.value for op in inst.operands]
    try:
        if isinstance(inst, BinaryOp):
            return Constant(inst.type, eval_binop(inst.op, inst.type, *vals))
        if isinstance(inst, ICmp):
            return Constant(inst.type, eval_icmp(inst.predicate, *vals))
        if isinstance(inst, FCmp):
            return Constant(inst.type, eval_fcmp(inst.predicate, *vals))
        if isinstance(inst, Select):
            return Constant(inst.type, vals[1] if vals[0] else vals[2])
        if isinstance(inst, Cast):
            return Constant(inst.type, eval_cast(inst.kind, vals[0], inst.type))
    except Exception:
        return None  # e.g. constant division by zero: leave it to run time
    return None


def _replace_everywhere(function: Function, old: Instruction, new: Value) -> int:
    count = 0
    for block in function.blocks:
        for inst in block.instructions:
            count += inst.replace_operand(old, new)
    return count


def constant_fold(function: Function) -> int:
    """Fold constant expressions; returns the number of folds."""
    folded = 0
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            for inst in list(block.body()):
                if not isinstance(inst, _PURE):
                    continue
                replacement = _fold(inst)
                if replacement is None:
                    continue
                _replace_everywhere(function, inst, replacement)
                block.instructions.remove(inst)
                folded += 1
                changed = True
    return folded


def eliminate_dead_code(function: Function) -> int:
    """Remove pure instructions whose results are never used."""
    removed = 0
    changed = True
    while changed:
        changed = False
        used: Set[Value] = set()
        for block in function.blocks:
            for inst in block.instructions:
                for op in inst.operands:
                    used.add(op)
        for block in function.blocks:
            for inst in list(block.body()):
                if isinstance(inst, _PURE) and inst not in used:
                    block.instructions.remove(inst)
                    removed += 1
                    changed = True
    return removed


def _cse_key(inst: Instruction):
    """A structural hash for pure operations."""
    ids = tuple(id(op) if not isinstance(op, Constant)
                else ("const", op.type, op.value)
                for op in inst.operands)
    if isinstance(inst, BinaryOp):
        ops = ids
        if inst.op in ("add", "mul", "and", "or", "xor",
                       "fadd", "fmul", "smin", "smax"):
            ops = tuple(sorted(ids, key=repr))  # commutative
        return ("bin", inst.op, ops)
    if isinstance(inst, ICmp):
        return ("icmp", inst.predicate, ids)
    if isinstance(inst, FCmp):
        return ("fcmp", inst.predicate, ids)
    if isinstance(inst, Select):
        return ("select", ids)
    if isinstance(inst, Cast):
        return ("cast", inst.kind, inst.type, ids)
    if isinstance(inst, GEP):
        return ("gep", tuple(inst.strides), ids)
    return None


def common_subexpression_elimination(function: Function) -> int:
    """Share duplicate pure operations within each block."""
    shared = 0
    for block in function.blocks:
        seen: Dict[tuple, Instruction] = {}
        for inst in list(block.body()):
            if not isinstance(inst, _PURE):
                continue
            key = _cse_key(inst)
            if key is None:
                continue
            original = seen.get(key)
            if original is None:
                seen[key] = inst
                continue
            _replace_everywhere(function, inst, original)
            block.instructions.remove(inst)
            shared += 1
    return shared


def optimize_function(function: Function) -> Dict[str, int]:
    """Run the full pipeline to a fixpoint; returns per-pass counts."""
    totals = {"folded": 0, "cse": 0, "dce": 0}
    while True:
        folded = constant_fold(function)
        cse = common_subexpression_elimination(function)
        dce = eliminate_dead_code(function)
        totals["folded"] += folded
        totals["cse"] += cse
        totals["dce"] += dce
        if folded + cse + dce == 0:
            return totals


def optimize_module(module: Module) -> Dict[str, int]:
    """Optimise every function; returns summed per-pass counts."""
    totals = {"folded": 0, "cse": 0, "dce": 0}
    for function in module.functions:
        counts = optimize_function(function)
        for key in totals:
            totals[key] += counts[key]
    return totals
