"""Host-time attribution: bit-identical cycles, coverage, uninstall."""

import pytest

from repro.accel import AcceleratorConfig, build_accelerator
from repro.errors import SimulationError
from repro.frontend import compile_source
from repro.telemetry.hostprof import HostProfiler

SOURCE = """
func work(a: i32*, n: i32) -> i32 {
  var total: i32 = 0;
  cilk_for (var i: i32 = 0; i < n; i = i + 1) {
    a[i] = a[i] + 1;
  }
  for (var j: i32 = 0; j < n; j = j + 1) {
    total = total + a[j];
  }
  return total;
}
"""


def _run(engine, profiled):
    accel = build_accelerator(
        compile_source(SOURCE, "hostprof"),
        AcceleratorConfig(default_ntiles=2, engine=engine))
    profiler = accel.sim.enable_host_profile() if profiled else None
    n = 6
    addr = accel.memory.alloc_array(
        accel.design.module.functions[0].arguments[0].type.pointee,
        [3] * n)
    result = accel.run("work", [addr, n])
    return result, profiler


@pytest.mark.parametrize("engine", ["dense", "event"])
def test_cycles_bit_identical_with_profiler(engine):
    """The tentpole invariant: host attribution is pure instrumentation
    — the simulated machine cannot tell whether it is being profiled."""
    plain, _ = _run(engine, profiled=False)
    profiled, profiler = _run(engine, profiled=True)
    assert plain.cycles == profiled.cycles
    assert plain.retval == profiled.retval
    assert profiler.wall_ns > 0


@pytest.mark.parametrize("engine", ["dense", "event"])
def test_attribution_covers_the_run(engine):
    _, profiler = _run(engine, profiled=True)
    # every wrapped class shows up with real tick counts
    classes = {row["class"]: row for row in profiler.ranked_classes()}
    assert "TaskUnit" in classes
    assert classes["TaskUnit"]["ticks"] > 0
    assert len(classes) >= 3
    # attribution is exhaustive: named classes + phases cover the wall
    assert profiler.coverage() >= 0.9
    assert 0.0 < profiler.measured_fraction() <= 1.0
    phases = profiler.phases()
    assert set(phases) == {"channels.commit", "observer", "engine.schedule"}
    payload = profiler.as_dict()
    assert payload["schema"] == 1
    assert payload["engine"] == engine
    assert payload["wall_seconds"] > 0


def test_uninstall_restores_methods():
    accel = build_accelerator(
        compile_source(SOURCE, "hostprof_un"),
        AcceleratorConfig(default_ntiles=1))
    profiler = accel.sim.enable_host_profile()
    component = accel.sim.components[0]
    assert "tick" in component.__dict__  # instance shadow installed
    profiler.uninstall()
    assert "tick" not in component.__dict__
    assert accel.sim.host_profile is None
    # the design still runs after uninstall
    n = 4
    addr = accel.memory.alloc_array(
        accel.design.module.functions[0].arguments[0].type.pointee, [1] * n)
    result = accel.run("work", [addr, n])
    assert result.retval == n * 2


def test_double_install_refused():
    accel = build_accelerator(
        compile_source(SOURCE, "hostprof_dbl"),
        AcceleratorConfig(default_ntiles=1))
    profiler = HostProfiler()
    accel.sim.enable_host_profile(profiler)
    with pytest.raises(SimulationError):
        profiler.install(accel.sim)


def test_observer_time_lands_in_observer_phase():
    from repro.obs import Observer

    observer = Observer()
    accel = build_accelerator(
        compile_source(SOURCE, "hostprof_obs"),
        AcceleratorConfig(default_ntiles=1), observer=observer)
    accel.sim.enable_host_profile()
    n = 4
    addr = accel.memory.alloc_array(
        accel.design.module.functions[0].arguments[0].type.pointee, [1] * n)
    accel.run("work", [addr, n])
    assert accel.sim.host_profile.observer_ns > 0
