"""The TAPAS HLS generator: Stage 1 + Stage 2 lowering (paper Fig 3).

Stage 1 extracts the task graph and concurrency hints; Stage 2 lowers each
task into a :class:`~repro.task.compiled.CompiledTask` — per-block dataflow
graphs, spawn/call specifications and frame layout. Stage 3 (elaboration
into a simulatable accelerator) lives in :mod:`repro.accel.accelerator`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import SynthesisError
from repro.ir.instructions import Alloca, Call, Detach
from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.passes.concurrency_opt import TaskSizing, analyze_concurrency
from repro.passes.dataflow_graph import build_block_dfg
from repro.passes.task_extraction import extract_tasks
from repro.passes.taskgraph import Task, TaskGraph
from repro.task.compiled import CallSpec, CompiledTask, SpawnSpec


def _frame_layout(task: Task) -> (int, dict):
    """Assign offsets to the in-frame allocas of a task's own blocks."""
    offsets: Dict[Alloca, int] = {}
    cursor = 0
    for block in task.blocks:
        for inst in block.instructions:
            if isinstance(inst, Alloca) and inst.in_frame:
                size = max(1, inst.allocated_type.size_bytes)
                align = min(8, size)
                cursor = (cursor + align - 1) // align * align
                offsets[inst] = cursor
                inst.frame_offset = cursor
                cursor += size
    # round the frame to 8 bytes so per-dyid frames stay aligned
    frame_size = (cursor + 7) // 8 * 8 if cursor else 0
    return frame_size, offsets


def compile_task(graph: TaskGraph, task: Task) -> CompiledTask:
    """Stage 2 for one task: spawn specs, call specs, DFGs, frame layout."""
    spawn_specs: Dict[Detach, SpawnSpec] = {}
    for detach, child in task.region_spawns.items():
        spawn_specs[detach] = SpawnSpec(
            dest_sid=child.sid, arg_values=list(child.args))
    for detach, direct in task.direct_spawns.items():
        dest = graph.root_for_function[direct.callee]
        spawn_specs[detach] = SpawnSpec(
            dest_sid=dest.sid, arg_values=list(direct.args),
            ret_ptr_value=direct.ret_ptr)

    call_specs: Dict[Call, CallSpec] = {}
    for call in task.calls:
        dest = graph.root_for_function[call.callee]
        call_specs[call] = CallSpec(dest_sid=dest.sid,
                                    arg_values=list(call.args))

    # spawn-argument marshalling becomes a dependency of each detach
    spawn_deps = {}
    for detach, spec in spawn_specs.items():
        values = list(spec.arg_values)
        if spec.ret_ptr_value is not None:
            values.append(spec.ret_ptr_value)
        spawn_deps[detach] = values

    dfgs = {}
    for block in task.blocks:
        term = block.terminator
        extra = spawn_deps.get(term, ()) if term is not None else ()
        dfgs[block] = build_block_dfg(block, extra)

    frame_size, frame_offsets = _frame_layout(task)

    return CompiledTask(
        sid=task.sid,
        name=task.name,
        task=task,
        entry_block=task.entry,
        blocks=list(task.blocks),
        dfgs=dfgs,
        arg_values=list(task.args),
        spawn_specs=spawn_specs,
        call_specs=call_specs,
        frame_size=frame_size,
        frame_offsets=frame_offsets,
    )


class GeneratedDesign:
    """Output of Stages 1+2: the architecture blueprint before elaboration."""

    def __init__(self, module: Module, graph: TaskGraph,
                 compiled: List[CompiledTask],
                 sizing: Dict[Task, TaskSizing]):
        self.module = module
        self.graph = graph
        self.compiled = compiled
        self.sizing = sizing

    def compiled_for(self, name: str) -> CompiledTask:
        for ct in self.compiled:
            if ct.name == name:
                return ct
        raise SynthesisError(f"no task named {name}")

    def __repr__(self):
        return f"<GeneratedDesign {self.module.name}: {len(self.compiled)} units>"


def generate(module: Module, optimize: bool = True) -> GeneratedDesign:
    """Run Stage 1 and Stage 2 over a verified module.

    ``optimize`` runs the Fig 3 "opt" boxes first (constant folding,
    CSE, dead-code elimination) — every surviving operation becomes a
    real functional unit, so cleanup directly shrinks the TXUs.
    """
    from repro.telemetry.spans import TRACER

    verify_module(module)
    if optimize:
        from repro.passes.optimize import optimize_module

        with TRACER.span("passes.optimize", category="generate",
                         module=module.name):
            optimize_module(module)
        verify_module(module)
    with TRACER.span("generate.tasks", category="generate",
                     module=module.name):
        graph = extract_tasks(module)
        if not graph.tasks:
            raise SynthesisError(f"module {module.name} has no functions")
        sizing = analyze_concurrency(graph)
        compiled = [compile_task(graph, task) for task in graph.tasks]
    # SIDs must be dense and positional: unit i serves SID i
    for i, ct in enumerate(compiled):
        if ct.sid != i:
            raise SynthesisError("task SIDs are not dense")
    return GeneratedDesign(module, graph, compiled, sizing)
