"""Shared benchmark infrastructure.

Every bench regenerates one table or figure from the paper's evaluation
(§V). The reproduced rows are printed and also written to
``results/<name>.txt`` so EXPERIMENTS.md can reference them.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "..", "results")


@pytest.fixture
def save_result():
    """Print a reproduced table and persist it under results/."""

    def _save(name: str, text: str):
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print()
        print(text)

    return _save


@pytest.fixture
def save_json():
    """Persist machine-readable records under results/<name>.json.

    ``records`` is a list of dicts from
    :func:`repro.reports.benchjson.bench_record`; the document schema is
    validated on write so every bench stays comparable across PRs.
    """
    from repro.reports.benchjson import write_bench_json

    def _save(name: str, records, sweep=None):
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.json")
        write_bench_json(path, name, records, sweep=sweep)

    return _save


@pytest.fixture
def sweep_runner():
    """The bench-standard SweepRunner (parallel workers + result cache,
    both controlled by REPRO_BENCH_JOBS / REPRO_BENCH_CACHE)."""
    import sweeplib

    return sweeplib.make_runner()
