"""May-happen-in-parallel facts from the detach/reattach/sync structure.

Tapir's parallelism is *fully scoped* (series-parallel): a detach forks a
child region, and the only joins are the matching reattach (child side)
and a sync (parent side). That makes MHP decidable by a simple walk — no
whole-program interleaving exploration is needed:

for every spawn site ``D`` of a task,

* the spawned subtree runs in parallel with whatever the spawning task
  executes between ``D``'s continuation and the next ``sync``
  (``par_blocks``),
* it runs in parallel with the subtrees of any *sibling* spawn site
  reached in that window, and
* if the walk re-reaches ``D`` itself (a spawning loop, e.g. the body of
  a ``cilk_for``), distinct *instances* of the same subtree overlap
  (``self_parallel``).

Recursive parallelism (fib/mergesort spawning themselves) needs no
special casing here: it surfaces as sibling or self-parallel spawn sites
whose subtree *effects* are function summaries (see
:mod:`repro.analysis.memdep`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import Detach, Reattach, Ret, Sync
from repro.passes.taskgraph import Task, TaskGraph


def region_blocks(detach: Detach) -> List[BasicBlock]:
    """All raw-IR blocks of the detached region rooted at ``detach`` —
    the blocks reachable from ``detach.detached`` without passing through
    the continuation. Nested detached regions are included: everything a
    spawn of this region can execute directly."""
    seen = set()
    order: List[BasicBlock] = []
    stack = [detach.detached]
    while stack:
        block = stack.pop()
        if block in seen or block is detach.continuation:
            continue
        seen.add(block)
        order.append(block)
        term = block.terminator
        if term is None or isinstance(term, (Reattach, Ret)):
            continue
        stack.extend(term.successors())
    return order


@dataclass
class SpawnContext:
    """Everything that may run in parallel with one spawn site's subtree."""

    task: Task
    detach: Detach
    #: raw-IR blocks of the spawned region (direct work of the subtree)
    region: List[BasicBlock] = field(default_factory=list)
    #: task-owned blocks racing the subtree: continuation up to the sync
    par_blocks: List[BasicBlock] = field(default_factory=list)
    #: other spawn sites whose subtrees overlap this one in time
    siblings: List[Detach] = field(default_factory=list)
    #: a loop re-reaches this detach: instances of the subtree overlap
    self_parallel: bool = False


def spawn_context(task: Task, detach: Detach) -> SpawnContext:
    ctx = SpawnContext(task, detach, region=region_blocks(detach))
    owned = set(task.blocks)
    seen = set()
    stack = [detach.continuation]
    while stack:
        block = stack.pop()
        if block in seen or block not in owned:
            continue
        seen.add(block)
        ctx.par_blocks.append(block)
        term = block.terminator
        if term is None or isinstance(term, (Sync, Reattach, Ret)):
            continue  # a sync joins every outstanding child: stop the race
        if isinstance(term, Detach):
            if term is detach:
                ctx.self_parallel = True
            elif term not in ctx.siblings:
                ctx.siblings.append(term)
            stack.append(term.continuation)
            continue
        stack.extend(term.successors())
    return ctx


def spawn_contexts(graph: TaskGraph) -> List[SpawnContext]:
    """One :class:`SpawnContext` per spawn site in the task graph."""
    return [spawn_context(task, detach)
            for task in graph.tasks
            for detach in task.spawn_sites()]
