"""AST for the Cilk-like frontend language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.ir.types import Type


@dataclass
class Node:
    line: int = 0


# -- expressions -----------------------------------------------------------

@dataclass
class Expr(Node):
    #: filled in by semantic analysis
    type: Optional[Type] = None


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class Index(Expr):
    """``base[index]`` — base is a pointer or global array."""
    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class AddrOf(Expr):
    """``&base[index]`` or ``&name`` — address without the load."""
    target: Optional[Expr] = None


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""
    lhs: Optional[Expr] = None
    rhs: Optional[Expr] = None


@dataclass
class CallExpr(Expr):
    callee: str = ""
    args: List[Expr] = field(default_factory=list)


# -- statements ---------------------------------------------------------------

@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    name: str = ""
    declared_type: Optional[Type] = None
    init: Optional[Expr] = None
    #: ``var x: T = spawn f(...)`` — result arrives via a frame slot
    spawn_init: Optional[CallExpr] = None


@dataclass
class Assign(Stmt):
    target: Optional[Expr] = None   # VarRef or Index
    value: Optional[Expr] = None


@dataclass
class If(Stmt):
    condition: Optional[Expr] = None
    then_body: Optional[Block] = None
    else_body: Optional[Stmt] = None  # Block or nested If


@dataclass
class While(Stmt):
    condition: Optional[Expr] = None
    body: Optional[Block] = None


@dataclass
class For(Stmt):
    """``for`` / ``cilk_for`` with assignment init/step clauses."""
    init: Optional[Stmt] = None      # VarDecl or Assign
    condition: Optional[Expr] = None
    step: Optional[Assign] = None
    body: Optional[Block] = None
    parallel: bool = False           # True for cilk_for


@dataclass
class SpawnStmt(Stmt):
    """``spawn f(...);`` or ``spawn { ... }`` (pipe stage)."""
    call: Optional[CallExpr] = None
    block: Optional[Block] = None


@dataclass
class SyncStmt(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None      # calls only (checked by sema)


# -- declarations -----------------------------------------------------------

@dataclass
class Param(Node):
    name: str = ""
    type: Optional[Type] = None


@dataclass
class GlobalDecl(Node):
    """``global name: T[count];`` — a shared-memory array."""
    name: str = ""
    element_type: Optional[Type] = None
    count: int = 0


@dataclass
class FuncDecl(Node):
    name: str = ""
    params: List[Param] = field(default_factory=list)
    return_type: Optional[Type] = None   # None = void
    body: Optional[Block] = None


@dataclass
class Program(Node):
    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FuncDecl] = field(default_factory=list)


def walk(node):
    """Yield every AST node in a subtree (pre-order)."""
    if node is None:
        return
    yield node
    for name in getattr(node, "__dataclass_fields__", {}):
        value = getattr(node, name)
        if isinstance(value, Node):
            yield from walk(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, Node):
                    yield from walk(item)


def contains_spawn(node) -> bool:
    """True if the subtree spawns tasks (SpawnStmt or cilk_for)."""
    for n in walk(node):
        if isinstance(n, SpawnStmt):
            return True
        if isinstance(n, For) and n.parallel:
            return True
    return False
