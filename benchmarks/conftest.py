"""Shared benchmark infrastructure.

Every bench regenerates one table or figure from the paper's evaluation
(§V). The reproduced rows are printed and also written to
``results/<name>.txt`` so EXPERIMENTS.md can reference them.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "..", "results")


@pytest.fixture
def save_result():
    """Print a reproduced table and persist it under results/."""

    def _save(name: str, text: str):
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print()
        print(text)

    return _save


@pytest.fixture
def save_json():
    """Persist machine-readable records under results/<name>.json.

    ``records`` is a list of dicts from
    :func:`repro.reports.benchjson.bench_record`; the document schema is
    validated on write so every bench stays comparable across PRs.

    Every saved bench also appends one record to the persistent run
    registry (``results/history/runs.jsonl``), so ``repro history``
    tracks the bench trajectory across commits; the document embeds the
    registry pointer under its ``history`` key.
    """
    from repro.reports.benchjson import write_bench_json
    from repro.telemetry.history import append_run, run_record

    def _save(name: str, records, sweep=None, telemetry=None):
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.json")
        cycles = [r.get("cycles") for r in records]
        host = [r.get("host_seconds") for r in records]
        engines = {(r.get("engine") or {}).get("name") for r in records}
        engines.discard(None)
        history = None
        try:
            history = append_run(run_record(
                "bench", name,
                engine=engines.pop() if len(engines) == 1 else None,
                cycles=(sum(c for c in cycles if c is not None)
                        if any(c is not None for c in cycles) else None),
                host_seconds=(sum(h for h in host if h is not None)
                              if any(h is not None for h in host) else None),
                config={"records": len(records)},
                metrics={"sweep": {k: sweep[k] for k in
                                   ("points", "errors", "wall_seconds")}
                         if sweep else None}))
        except OSError:
            pass  # an unwritable registry never fails a bench
        write_bench_json(path, name, records, sweep=sweep,
                         telemetry=telemetry, history=history)

    return _save


@pytest.fixture
def sweep_runner():
    """The bench-standard SweepRunner (parallel workers + result cache,
    both controlled by REPRO_BENCH_JOBS / REPRO_BENCH_CACHE)."""
    import sweeplib

    return sweeplib.make_runner()
