"""Machine-readable benchmark results.

Every ``benchmarks/bench_*.py`` writes, next to its ``results/*.txt``
table, a ``results/*.json`` document so the performance trajectory can
be tracked across PRs. The schema is one document per bench::

    {"bench": str, "schema": 4,
     "sweep": {"wall_seconds": float, "jobs": int, "points": int,
               "cache_hits": int, "cache_misses": int,
               "errors": int}|null,
     "telemetry": {...}|null,
     "history": {"path": str, "seq": int}|null,
     "records": [{"workload": str, "config": {...}, "cycles": int|null,
                  "utilization": {...}|null, "stalls": {...}|null,
                  "engine": {...}|null, "cache_hit": bool|null,
                  "worker": int|null, "host_seconds": float|null,
                  "sim_cycles_per_host_second": float|null,
                  "metrics": {...}}]}

``bench_record`` builds one record; non-simulation benches (resource
tables) set ``cycles`` to None and carry their numbers in ``metrics``.
Schema 2 added the ``engine`` key: host-side performance of the
simulation itself (engine name, ``host_seconds``,
``sim_cycles_per_host_second``). Schema 3 added sweep-runner
provenance: per-record ``cache_hit`` (served from the content-addressed
result cache?) and ``worker`` (pid of the sweep worker that computed
it), plus the top-level ``sweep`` wall-clock summary. Schema 4
surfaces host-time telemetry: per-record ``host_seconds`` /
``sim_cycles_per_host_second`` (lifted out of ``engine`` so they are
flat, greppable and diffable), a top-level ``telemetry`` block (the
sweep runner's worker-utilization/queue-wait/latency histograms, see
:mod:`repro.exp.runner`) and a top-level ``history`` pointer into the
persistent run registry (:mod:`repro.telemetry.history`).
:func:`read_bench_json` reads schemas 2-4, normalising older documents
up, so existing ``results/*.json`` stay valid.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

BENCH_SCHEMA_VERSION = 4

#: schemas read_bench_json understands (older ones are normalised up)
READABLE_SCHEMAS = (2, 3, 4)

#: keys every record must carry (value may be None)
RECORD_KEYS = ("workload", "config", "cycles", "utilization", "stalls",
               "engine", "cache_hit", "worker", "host_seconds",
               "sim_cycles_per_host_second", "metrics")

#: record keys added by schema 3 (defaulted when reading schema 2)
_SCHEMA3_RECORD_KEYS = ("cache_hit", "worker")

#: record keys added by schema 4 (defaulted from ``engine`` when reading
#: schema 2/3 documents)
_SCHEMA4_RECORD_KEYS = ("host_seconds", "sim_cycles_per_host_second")

#: document keys added by schema 4 (defaulted when reading older schemas)
_SCHEMA4_DOCUMENT_KEYS = ("telemetry", "history")

#: subset of Simulator.engine_stats() carried in bench records
ENGINE_RECORD_KEYS = ("name", "host_seconds", "sim_cycles_per_host_second")

#: the sweep summary block carried at document level
SWEEP_KEYS = ("points", "jobs", "wall_seconds", "cache_hits",
              "cache_misses", "errors")


def config_summary(config) -> Dict[str, Any]:
    """JSON-safe summary of an AcceleratorConfig."""
    out = {
        "board": config.board.name,
        "default_ntiles": config.default_ntiles,
        "memory_model": config.memory_model,
        "dram_latency": config.effective_dram_latency(),
        "analysis_level": config.analysis_level,
        "engine": config.engine,
        "cache": {
            "size_bytes": config.cache.size_bytes,
            "line_bytes": config.cache.line_bytes,
            "associativity": config.cache.associativity,
            "mshr_count": config.cache.mshr_count,
            "banks": config.cache.banks,
        },
    }
    if config.unit_params:
        out["unit_params"] = {
            name: {"ntiles": p.ntiles, "queue_depth": p.queue_depth,
                   "max_inflight_per_tile": p.max_inflight_per_tile,
                   "policy": p.policy}
            for name, p in config.unit_params.items()
        }
    return out


def utilization_from_stats(stats: Dict[str, Any],
                           cycles: int) -> Dict[str, float]:
    """Per-unit tile utilization out of a RunResult stats dict."""
    out = {}
    for name, unit in stats.get("units", {}).items():
        tiles = unit.get("tiles", [])
        if tiles and cycles:
            busy = sum(t.get("busy_cycles", 0) for t in tiles)
            out[name] = round(busy / (len(tiles) * cycles), 4)
    return out


def engine_summary(source: Any) -> Optional[Dict[str, Any]]:
    """The record ``engine`` key from a stats dict or engine_stats dict.

    Accepts a ``RunResult.stats`` dict (engine stats nested under
    ``"engine"``) or a ``Simulator.engine_stats()`` dict directly.
    """
    if source is None:
        return None
    engine = source.get("engine", source)
    if not isinstance(engine, dict) or "name" not in engine:
        return None
    return {key: engine.get(key) for key in ENGINE_RECORD_KEYS}


def bench_record(workload: str, config: Any = None,
                 cycles: Optional[int] = None,
                 utilization: Optional[dict] = None,
                 stalls: Optional[dict] = None,
                 stats: Optional[dict] = None,
                 engine: Optional[dict] = None,
                 cache_hit: Optional[bool] = None,
                 worker: Optional[int] = None,
                 **metrics) -> Dict[str, Any]:
    """One benchmark data point in the BENCH_*.json schema.

    ``cache_hit``/``worker`` are sweep-runner provenance: None for
    benches that do not run through the SweepRunner. The schema-4 flat
    ``host_seconds``/``sim_cycles_per_host_second`` keys are derived
    from the engine summary (None when no engine stats are available).
    """
    if not isinstance(config, (dict, type(None))):
        config = config_summary(config)
    if utilization is None and stats is not None and cycles:
        utilization = utilization_from_stats(stats, cycles) or None
    if engine is None and stats is not None:
        engine = engine_summary(stats)
    else:
        engine = engine_summary(engine)
    host_seconds = engine.get("host_seconds") if engine else None
    cycles_per_s = (engine.get("sim_cycles_per_host_second")
                    if engine else None)
    return {
        "workload": workload,
        "config": config,
        "cycles": cycles,
        "utilization": utilization,
        "stalls": stalls,
        "engine": engine,
        "cache_hit": cache_hit,
        "worker": worker,
        "host_seconds": host_seconds,
        "sim_cycles_per_host_second": cycles_per_s,
        "metrics": metrics,
    }


def sweep_record(point_record: Dict[str, Any], workload: str,
                 config: Any = None, **metrics) -> Dict[str, Any]:
    """A bench record carrying a SweepRunner point record's provenance.

    ``point_record`` is one entry of
    :attr:`repro.exp.SweepResult.records`; its value's cycles/stats feed
    the architectural fields, its ``cache_hit``/``worker`` feed the
    schema-3 provenance keys. Failed points produce a record with None
    cycles and the structured error in ``metrics``.
    """
    value = point_record.get("value") or {}
    if point_record.get("queue_wait") is not None:
        metrics.setdefault("queue_wait", point_record["queue_wait"])
    return bench_record(
        workload,
        config=config,
        cycles=value.get("cycles"),
        stats=value.get("stats"),
        cache_hit=point_record.get("cache_hit"),
        worker=point_record.get("worker"),
        **({"error": point_record["error"]}
           if point_record.get("status") == "error" else {}),
        **metrics)


def bench_document(bench: str, records: List[dict],
                   sweep: Optional[Dict[str, Any]] = None,
                   telemetry: Optional[Dict[str, Any]] = None,
                   history: Optional[Dict[str, Any]] = None
                   ) -> Dict[str, Any]:
    for record in records:
        missing = [k for k in RECORD_KEYS if k not in record]
        if missing:
            raise ValueError(f"bench {bench}: record missing {missing}")
    if sweep is not None:
        missing = [k for k in SWEEP_KEYS if k not in sweep]
        if missing:
            raise ValueError(f"bench {bench}: sweep summary missing {missing}")
        # the sweep runner's telemetry block rides at document level, not
        # inside the strictly-keyed sweep summary
        if telemetry is None:
            telemetry = sweep.get("telemetry")
        sweep = {key: sweep[key] for key in SWEEP_KEYS}
    return {"bench": bench, "schema": BENCH_SCHEMA_VERSION,
            "sweep": sweep, "telemetry": telemetry, "history": history,
            "records": records}


def read_bench_json(path: str) -> Dict[str, Any]:
    """Load a results document, accepting schema 2, 3 or 4.

    Older documents are normalised in place — schema 2 gains
    ``sweep``/``cache_hit``/``worker``, schema 2 and 3 gain
    ``telemetry``/``history`` (None) and the flat per-record
    ``host_seconds``/``sim_cycles_per_host_second`` (lifted from the
    record's ``engine`` block when present) — so downstream consumers
    only ever see the schema-4 shape.
    """
    with open(path) as handle:
        document = json.load(handle)
    schema = document.get("schema")
    if schema not in READABLE_SCHEMAS:
        raise ValueError(
            f"{path}: unsupported bench schema {schema!r} "
            f"(readable: {READABLE_SCHEMAS})")
    if schema < BENCH_SCHEMA_VERSION:
        document.setdefault("sweep", None)
        for key in _SCHEMA4_DOCUMENT_KEYS:
            document.setdefault(key, None)
        for record in document.get("records", []):
            for key in _SCHEMA3_RECORD_KEYS:
                record.setdefault(key, None)
            engine = record.get("engine") or {}
            for key in _SCHEMA4_RECORD_KEYS:
                record.setdefault(key, engine.get(key))
        document["schema"] = BENCH_SCHEMA_VERSION
    return document


def write_bench_json(path: str, bench: str, records: List[dict],
                     sweep: Optional[Dict[str, Any]] = None,
                     telemetry: Optional[Dict[str, Any]] = None,
                     history: Optional[Dict[str, Any]] = None) -> dict:
    document = bench_document(bench, records, sweep=sweep,
                              telemetry=telemetry, history=history)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=False)
        handle.write("\n")
    return document
