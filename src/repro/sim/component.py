"""Base class for clocked hardware components."""

from __future__ import annotations

#: cycle-accounting states — every simulated cycle of every component is
#: attributed to exactly one of these (the Table III utilization model):
#: doing useful work, waiting for upstream data, blocked by downstream
#: backpressure, or idle with nothing to do.
OBS_BUSY = "busy"
OBS_STALL_IN = "stall_in"
OBS_STALL_OUT = "stall_out"
OBS_IDLE = "idle"

OBS_STATES = (OBS_BUSY, OBS_STALL_IN, OBS_STALL_OUT, OBS_IDLE)


class Component:
    """A clocked block. Once per cycle the engine calls :meth:`tick`;
    channel reads inside tick observe start-of-cycle state, so tick order
    between components never changes behaviour."""

    def __init__(self, name: str):
        self.name = name
        self.sim = None  # set on registration

    def tick(self, cycle: int):
        """Do one cycle of work: read input channels, update internal
        state, push output channels."""

    def is_busy(self) -> bool:
        """True while the component holds in-flight work that will make
        progress without new channel traffic (e.g. a DRAM access counting
        down). Used by deadlock detection."""
        return False

    def stats(self) -> dict:
        """Per-component statistics merged into the simulation report."""
        return {}

    # -- observability -----------------------------------------------------

    def obs_classify(self, cycle: int):
        """Attribute the cycle that just executed to one accounting state.

        Returns ``(state, reason)`` where ``state`` is one of
        :data:`OBS_STATES` and ``reason`` is an optional short stall tag
        (e.g. ``"memory"``, ``"mshr-full"``). Called only when an
        observer is attached (or for a deadlock post-mortem), strictly
        after :meth:`tick` — implementations must read state, never
        mutate it, so instrumentation cannot perturb timing.
        """
        return (OBS_BUSY, None) if self.is_busy() else (OBS_IDLE, None)

    def obs_children(self, cycle: int):
        """Per-subunit attribution for components that own inner tiles.

        Yields ``(name, state, reason)`` triples; the observer keeps a
        separate ledger (and trace track) per subunit name.
        """
        return ()

    def __repr__(self):
        return f"<{type(self).__name__} {self.name}>"
