"""Reporting models: resources, frequency, power, table rendering."""

from repro.reports.benchjson import (
    bench_record,
    config_summary,
    engine_summary,
    read_bench_json,
    sweep_record,
    utilization_from_stats,
    write_bench_json,
)
from repro.reports.frequency import cycles_to_seconds, estimate_mhz
from repro.reports.profile import (
    render_host_profile_report,
    render_profile_report,
)
from repro.reports.power import (
    CPU_PACKAGE_WATTS,
    TABLE4_ROWS,
    cpu_power_watts,
    fit_to_table4,
    fpga_power_watts,
    perf_per_watt_gain,
)
from repro.reports.resources import (
    ResourceReport,
    UnitResources,
    estimate_resources,
)
from repro.reports.tables import bar_chart, render_series, render_table
from repro.reports.visualize import (
    execution_timeline,
    task_graph_dot,
    utilization_summary,
)

__all__ = [
    "bench_record", "config_summary", "engine_summary",
    "read_bench_json", "sweep_record", "utilization_from_stats",
    "write_bench_json", "render_profile_report", "render_host_profile_report",
    "cycles_to_seconds", "estimate_mhz",
    "CPU_PACKAGE_WATTS", "TABLE4_ROWS", "cpu_power_watts", "fit_to_table4",
    "fpga_power_watts", "perf_per_watt_gain",
    "ResourceReport", "UnitResources", "estimate_resources",
    "bar_chart", "render_series", "render_table",
    "execution_timeline", "task_graph_dot", "utilization_summary",
]
