"""Hand-built IR programs used across the test suite.

These mirror the paper's running examples: the Fig 12 ``scale`` parallel
loop, the Fig 3 nested matrix-add loops, and Fig 11-style recursion (fib).
The frontend produces equivalent IR from source text; these builders keep
the pass/hardware tests independent of the frontend.
"""

from repro.ir import (
    I32,
    VOID,
    Function,
    IRBuilder,
    Module,
    const,
    ptr,
    verify_module,
)


def build_scale_module(work_ops: int = 1) -> Module:
    """Fig 12 microbenchmark: ``cilk_for(i=0;i<n;i++) a[i] += work``.

    ``work_ops`` extra integer adds inside the body vary task grain size
    exactly as §V-A does ("10 adders" ... "50 adders").
    """
    m = Module(f"scale_{work_ops}")
    f = Function("scale", [ptr(I32), I32], ["a", "n"], VOID)
    m.add_function(f)
    a, n = f.arguments

    entry = f.add_block("entry")
    cond = f.add_block("cond")
    body = f.add_block("body")
    det = f.add_block("detached")
    latch = f.add_block("latch")
    exit_sync = f.add_block("exit_sync")
    done = f.add_block("done")

    b = IRBuilder(entry)
    i_slot = b.alloca(I32, "i")
    b.store(const(0), i_slot)
    b.br(cond)

    b.position_at_end(cond)
    i = b.load(i_slot, "i.val")
    c = b.icmp("slt", i, n)
    b.condbr(c, body, exit_sync)

    b.position_at_end(body)
    b.detach(det, latch)

    b.position_at_end(det)
    addr = b.gep(a, [i], [4])
    v = b.load(addr)
    acc = v
    for _ in range(max(1, work_ops)):
        acc = b.add(acc, const(1))
    b.store(acc, addr)
    b.reattach(latch)

    b.position_at_end(latch)
    nxt = b.add(i, const(1))
    b.store(nxt, i_slot)
    b.br(cond)

    b.position_at_end(exit_sync)
    b.sync(done)

    b.position_at_end(done)
    b.ret()

    verify_module(m)
    return m


def build_matrix_add_module(rows_stride: int = 4) -> Module:
    """Fig 3 nested parallel loops: ``C[i][j] = A[i][j] + B[i][j]``.

    Outer cilk_for over i spawns inner cilk_for over j, which spawns the
    body — three static tasks (T0 outer control, T1 inner control, T2
    body), exactly the paper's running example.
    """
    m = Module("matrix_add")
    f = Function(
        "matrix_add",
        [ptr(I32), ptr(I32), ptr(I32), I32],
        ["A", "B", "C", "N"],
        VOID,
    )
    m.add_function(f)
    A, B, C, N = f.arguments

    entry = f.add_block("entry")
    ocond = f.add_block("outer_cond")
    obody = f.add_block("outer_body")
    inner_entry = f.add_block("inner_entry")
    icond = f.add_block("inner_cond")
    ibody = f.add_block("inner_body")
    body_det = f.add_block("body_detached")
    ilatch = f.add_block("inner_latch")
    isync = f.add_block("inner_sync")
    idone = f.add_block("inner_done")
    olatch = f.add_block("outer_latch")
    osync = f.add_block("outer_sync")
    odone = f.add_block("outer_done")

    b = IRBuilder(entry)
    i_slot = b.alloca(I32, "i")
    b.store(const(0), i_slot)
    b.br(ocond)

    b.position_at_end(ocond)
    i = b.load(i_slot, "i.val")
    oc = b.icmp("slt", i, N)
    b.condbr(oc, obody, osync)

    b.position_at_end(obody)
    b.detach(inner_entry, olatch)

    # --- inner loop (its own task) ---
    b.position_at_end(inner_entry)
    j_slot = b.alloca(I32, "j")
    b.store(const(0), j_slot)
    b.br(icond)

    b.position_at_end(icond)
    j = b.load(j_slot, "j.val")
    ic = b.icmp("slt", j, N)
    b.condbr(ic, ibody, isync)

    b.position_at_end(ibody)
    b.detach(body_det, ilatch)

    b.position_at_end(body_det)
    a_addr = b.gep(A, [i, j], [4 * rows_stride, 4])
    b_addr = b.gep(B, [i, j], [4 * rows_stride, 4])
    c_addr = b.gep(C, [i, j], [4 * rows_stride, 4])
    av = b.load(a_addr)
    bv = b.load(b_addr)
    s = b.add(av, bv)
    b.store(s, c_addr)
    b.reattach(ilatch)

    b.position_at_end(ilatch)
    jn = b.add(j, const(1))
    b.store(jn, j_slot)
    b.br(icond)

    b.position_at_end(isync)
    b.sync(idone)

    b.position_at_end(idone)
    b.reattach(olatch)

    # --- back in the outer loop ---
    b.position_at_end(olatch)
    i_next = b.add(i, const(1))
    b.store(i_next, i_slot)
    b.br(ocond)

    b.position_at_end(osync)
    b.sync(odone)

    b.position_at_end(odone)
    b.ret()

    verify_module(m)
    return m


def build_fib_module() -> Module:
    """Fig 11-style recursive parallelism: ``fib(n)`` with two spawns.

    Each spawn writes its result through a frame pointer — the
    shared-cache return-value path of §IV-C.
    """
    m = Module("fib")
    f = Function("fib", [I32], ["n"], I32)
    m.add_function(f)
    n = f.arguments[0]

    entry = f.add_block("entry")
    base = f.add_block("base")
    rec = f.add_block("rec")
    s1 = f.add_block("spawn1")
    c1 = f.add_block("cont1")
    s2 = f.add_block("spawn2")
    c2 = f.add_block("cont2")
    join = f.add_block("join")

    b = IRBuilder(entry)
    c = b.icmp("slt", n, const(2))
    b.condbr(c, base, rec)

    b.position_at_end(base)
    b.ret(n)

    b.position_at_end(rec)
    x_slot = b.alloca(I32, "x", in_frame=True)
    y_slot = b.alloca(I32, "y", in_frame=True)
    n1 = b.sub(n, const(1))
    n2 = b.sub(n, const(2))
    b.detach(s1, c1)

    b.position_at_end(s1)
    r1 = b.call(f, [n1])
    b.store(r1, x_slot)
    b.reattach(c1)

    b.position_at_end(c1)
    b.detach(s2, c2)

    b.position_at_end(s2)
    r2 = b.call(f, [n2])
    b.store(r2, y_slot)
    b.reattach(c2)

    b.position_at_end(c2)
    b.sync(join)

    b.position_at_end(join)
    xv = b.load(x_slot)
    yv = b.load(y_slot)
    total = b.add(xv, yv)
    b.ret(total)

    verify_module(m)
    return m


def build_serial_sum_module() -> Module:
    """A purely serial reduction — no parallel markers at all. Used to
    check the toolchain handles sequential functions (single task unit)."""
    m = Module("serial_sum")
    f = Function("sum", [ptr(I32), I32], ["a", "n"], I32)
    m.add_function(f)
    a, n = f.arguments

    entry = f.add_block("entry")
    cond = f.add_block("cond")
    body = f.add_block("body")
    done = f.add_block("done")

    b = IRBuilder(entry)
    i_slot = b.alloca(I32, "i")
    acc_slot = b.alloca(I32, "acc")
    b.store(const(0), i_slot)
    b.store(const(0), acc_slot)
    b.br(cond)

    b.position_at_end(cond)
    i = b.load(i_slot)
    c = b.icmp("slt", i, n)
    b.condbr(c, body, done)

    b.position_at_end(body)
    addr = b.gep(a, [i], [4])
    v = b.load(addr)
    acc = b.load(acc_slot)
    acc2 = b.add(acc, v)
    b.store(acc2, acc_slot)
    i2 = b.add(i, const(1))
    b.store(i2, i_slot)
    b.br(cond)

    b.position_at_end(done)
    result = b.load(acc_slot)
    b.ret(result)

    verify_module(m)
    return m
