"""Shared sweep plumbing for the benchmarks.

Every bench routes its grid through :class:`repro.exp.SweepRunner` — the
same engine behind ``repro sweep`` — so all of them get parallel fan-out,
failure isolation and the content-addressed result cache for free.

Environment knobs (both optional):

* ``REPRO_BENCH_JOBS``  — worker processes per sweep (default: all CPUs).
* ``REPRO_BENCH_CACHE`` — ``off``/``none``/``0`` disables caching; a path
  uses that directory; unset uses the default ``~/.cache/repro``.
  Caching is safe to leave on: every key folds in a fingerprint of the
  whole ``src/repro`` tree, so any code edit rolls the cache.

Benches with bespoke measurements register their own evaluators at
module import; the default ``fork`` start method makes them visible to
pool workers without any plumbing.
"""

import os

from repro.exp import ResultCache, SweepRunner

JOBS_ENV = "REPRO_BENCH_JOBS"
CACHE_ENV = "REPRO_BENCH_CACHE"

_CACHE_OFF = ("off", "none", "0", "false")


def bench_jobs():
    raw = os.environ.get(JOBS_ENV, "").strip()
    if raw:
        return max(1, int(raw))
    return max(1, os.cpu_count() or 1)


def bench_cache():
    raw = os.environ.get(CACHE_ENV, "").strip()
    if raw.lower() in _CACHE_OFF:
        return None
    if raw:
        return ResultCache(raw)
    return ResultCache()


def make_runner(jobs=None, cache="default"):
    """The bench-standard SweepRunner. Pass ``cache=None`` for benches
    that measure host wall-clock (a cache hit would skip the very thing
    being timed)."""
    return SweepRunner(jobs=bench_jobs() if jobs is None else jobs,
                       cache=bench_cache() if cache == "default" else cache)


def file_program_text(path):
    """``program_text`` hook for bench-local evaluators: the bench file
    itself is the program text, so editing a bench's measurement code
    rolls its cache keys (the src/repro fingerprint only covers the
    package)."""
    with open(path, "r") as handle:
        text = handle.read()
    return lambda spec: text


def run_points(runner, specs):
    """Run a sweep and fail the bench loudly on the first broken point.

    The runner's failure isolation still applies — every point ran — but
    a benchmark with a failed point has nothing meaningful to report, so
    surface the structured error as an assertion with its traceback.
    """
    result = runner.run(specs)
    errors = result.errors
    if errors:
        first = errors[0]
        raise AssertionError(
            "sweep point failed: %s\n%s"
            % (first["spec"], first["error"]["traceback"]))
    return result
