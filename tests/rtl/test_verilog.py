"""Tests for the structural Verilog emitter."""

import re

import pytest

from repro.accel import generate
from repro.rtl import emit_top_verilog, emit_txu_verilog
from repro.workloads import REGISTRY

from tests.irprograms import build_matrix_add_module, build_scale_module


class TestTXUVerilog:
    def setup_method(self):
        self.design = generate(build_matrix_add_module())
        self.body = self.design.compiled[2]
        self.text = emit_txu_verilog(self.body)

    def test_module_declared_and_closed(self):
        assert self.text.startswith("module matrix_add_t0_t0_txu")
        assert self.text.rstrip().endswith("endmodule")

    def test_one_instance_per_dataflow_node(self):
        node_count = sum(len(d.nodes) for d in self.body.dfgs.values())
        assert self.text.count("tapas_") == node_count

    def test_dfg_edges_become_port_connections(self):
        # the add node consumes two load outputs
        assert re.search(r"tapas_alu .*\n(.|\n)*in0_data", self.text)
        assert ".in1_data(" in self.text

    def test_wire_widths_follow_types(self):
        assert "wire [31:0]" in self.text      # i32 data
        assert "wire [63:0]" in self.text      # the geps produce pointers


class TestTopVerilog:
    def test_top_instantiates_every_unit(self):
        design = generate(build_matrix_add_module())
        text = emit_top_verilog(design)
        assert text.count("tapas_taskunit") == 3
        assert "tapas_cache" in text
        assert "tapas_tasknetwork" in text

    def test_stage3_parameters_in_instantiations(self):
        design = generate(build_scale_module())
        text = emit_top_verilog(design, queue_depths={"scale.t0": 48},
                                tile_counts={"scale.t0": 4})
        assert ".NTASKS(48)" in text
        assert ".NTILES(4)" in text

    @pytest.mark.parametrize("name", ["dedup", "fibonacci"])
    def test_workloads_emit_balanced_modules(self, name):
        design = generate(REGISTRY.get(name).fresh_module())
        text = emit_top_verilog(design)
        assert text.count("module ") == text.count("endmodule")
        assert text.count("module ") == 1 + len(design.compiled)
