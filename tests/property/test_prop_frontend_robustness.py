"""Robustness: the frontend must fail *cleanly* on arbitrary input.

For any input text, the pipeline either produces a verified module or
raises a FrontendError/IRError with a position — never an unhandled
TypeError/KeyError/RecursionError leaking implementation details.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import FrontendError, IRError
from repro.frontend import compile_source, tokenize

# text biased toward language-looking fragments
_fragments = st.sampled_from([
    "func", "var", "cilk_for", "spawn", "sync", "return", "i32", "f32",
    "{", "}", "(", ")", ";", ",", ":", "*", "+", "-", "=", "==", "<",
    "->", "[", "]", "a", "b", "f", "x", "0", "42", "1.5", "0x1F", "&&",
])


class TestLexerRobustness:
    @given(st.text(max_size=200))
    def test_tokenize_never_hangs_or_crashes_unexpectedly(self, text):
        try:
            tokens = tokenize(text)
            assert tokens[-1].kind == "eof"
        except FrontendError:
            pass  # clean rejection

    @given(st.lists(_fragments, max_size=60))
    def test_fragment_soup_lexes(self, pieces):
        tokens = tokenize(" ".join(pieces))
        assert tokens[-1].kind == "eof"


class TestCompilerRobustness:
    @settings(max_examples=200, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(_fragments, max_size=40))
    def test_compile_source_fails_cleanly(self, pieces):
        source = " ".join(pieces)
        try:
            module = compile_source(source, "fuzz")
        except (FrontendError, IRError):
            return  # a diagnosed rejection is the expected outcome
        # if it compiled, the result must be a verifiable module
        from repro.ir import verify_module

        verify_module(module)

    @settings(max_examples=60, deadline=None)
    @given(st.text(alphabet="func(){};:=i32var \n", max_size=120))
    def test_textlike_noise_fails_cleanly(self, source):
        try:
            compile_source(source, "fuzz")
        except (FrontendError, IRError):
            pass
