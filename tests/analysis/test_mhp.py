"""May-happen-in-parallel analysis: spawn contexts and task-level pairs."""

from repro.frontend import compile_source
from repro.analysis.mhp import spawn_contexts
from repro.passes import extract_tasks


def graph_of(source, name="m"):
    return extract_tasks(compile_source(source, name))


def pair_sids(graph):
    return {(a.sid, b.sid) for a, b in graph.mhp_pairs()}


SERIAL = """
func serial(a: i32*, n: i32) {
  for (var i: i32 = 0; i < n; i = i + 1) {
    a[i] = a[i] + 1;
  }
}
"""

CILK_FOR = """
func double_all(a: i32*, n: i32) {
  cilk_for (var i: i32 = 0; i < n; i = i + 1) {
    a[i] = a[i] * 2;
  }
}
"""

FIB = """
func fib(n: i32) -> i32 {
  if (n < 2) { return n; }
  var x: i32 = spawn fib(n - 1);
  var y: i32 = spawn fib(n - 2);
  sync;
  return x + y;
}
"""

SYNC_SEPARATED = """
func phased(a: i32*, b: i32*, n: i32) {
  cilk_for (var i: i32 = 0; i < n; i = i + 1) {
    a[i] = a[i] + 1;
  }
  cilk_for (var j: i32 = 0; j < n; j = j + 1) {
    b[j] = b[j] + 1;
  }
}
"""

NESTED = """
func grid(a: i32*, n: i32, m: i32) {
  cilk_for (var i: i32 = 0; i < n; i = i + 1) {
    cilk_for (var j: i32 = 0; j < m; j = j + 1) {
      a[i * m + j] = 0;
    }
  }
}
"""


class TestMhpPairs:
    def test_serial_program_has_no_pairs(self):
        assert graph_of(SERIAL).mhp_pairs() == []

    def test_cilk_for_instances_overlap(self):
        graph = graph_of(CILK_FOR)
        root = graph.root_for_function[graph.module.function("double_all")]
        body = next(iter(root.region_spawns.values()))
        # spawned body runs against the spawner AND against other
        # instances of itself (the loop re-reaches the detach)
        assert pair_sids(graph) == {(root.sid, body.sid),
                                    (body.sid, body.sid)}

    def test_recursive_spawns_overlap_themselves(self):
        graph = graph_of(FIB)
        root = graph.root_for_function[graph.module.function("fib")]
        # two sibling direct spawns of fib itself: fib may run in
        # parallel with fib
        assert (root.sid, root.sid) in pair_sids(graph)

    def test_sync_separates_phases(self):
        graph = graph_of(SYNC_SEPARATED)
        phases = [task for task in graph.tasks if task.kind != "function"]
        assert len(phases) == 2
        a, b = sorted(phases, key=lambda t: t.sid)
        # each phase overlaps itself, but the sync orders phase 1 before
        # phase 2: no cross-phase pair
        sids = pair_sids(graph)
        assert (a.sid, a.sid) in sids and (b.sid, b.sid) in sids
        assert (a.sid, b.sid) not in sids

    def test_nested_loops_ancestor_pairs(self):
        graph = graph_of(NESTED)
        sids = pair_sids(graph)
        root = graph.root_for_function[graph.module.function("grid")]
        outer = next(iter(root.region_spawns.values()))
        inner = next(iter(outer.region_spawns.values()))
        # the inner body overlaps the outer body, other inner instances,
        # and the root's continuation (via the spawn subtree)
        assert (outer.sid, inner.sid) in sids
        assert (inner.sid, inner.sid) in sids
        assert (root.sid, inner.sid) in sids


class TestSpawnContexts:
    def test_cilk_for_context_is_self_parallel(self):
        graph = graph_of(CILK_FOR)
        contexts = spawn_contexts(graph)
        assert len(contexts) == 1
        ctx = contexts[0]
        assert ctx.self_parallel
        assert ctx.siblings == []
        assert len(ctx.region) >= 1

    def test_fib_spawns_are_siblings_not_self(self):
        graph = graph_of(FIB)
        contexts = spawn_contexts(graph)
        assert len(contexts) == 2
        first = next(c for c in contexts if c.siblings)
        assert not first.self_parallel
        assert len(first.siblings) == 1

    def test_serial_program_has_no_contexts(self):
        assert spawn_contexts(graph_of(SERIAL)) == []

    def test_describe_mentions_mhp(self):
        graph = graph_of(CILK_FOR)
        assert "may-happen-in-parallel" in graph.describe()
        assert "may-happen-in-parallel" not in graph_of(SERIAL).describe()
