"""Tests for the ``static`` sweep evaluator (analytical model)."""

from repro.exp import SweepRunner, get_evaluator, workload_points
from repro.exp.runner import _eval_static


def test_static_evaluator_is_registered():
    registration = get_evaluator("static")
    assert registration.name == "static"
    # shares the workload evaluator's program-text hook, so cache keys
    # roll when a workload's source changes
    assert registration.program_text is not None


def test_workload_points_evaluator_parameter():
    points = workload_points(["saxpy"], tiles=(1, 2), evaluator="static")
    assert len(points) == 2
    assert all(p["evaluator"] == "static" for p in points)
    default = workload_points(["saxpy"], tiles=(1,))
    assert default[0]["evaluator"] == "workload"


def test_static_point_shape():
    value = _eval_static({"evaluator": "static", "workload": "saxpy",
                          "tiles": 2, "scale": 1, "engine": "event"})
    assert value["engine"] == "static"
    assert value["workload"] == "saxpy"
    assert value["tiles"] == 2
    assert value["cycles"] > 0
    assert value["correct"] is None  # nothing ran, nothing to check
    prediction = value["prediction"]
    assert prediction["schema"] == 1
    assert prediction["predicted_cycles"] == value["cycles"]
    assert prediction["bottlenecks"]
    assert value["top_bottleneck"]


def test_static_sweep_through_runner():
    points = workload_points(["saxpy", "matrix_add"], tiles=(1, 4),
                             evaluator="static")
    result = SweepRunner(jobs=1).run(points)
    assert result.summary["errors"] == 0
    cycles = [record["value"]["cycles"] for record in result.records]
    assert all(c > 0 for c in cycles)


def test_static_sweep_is_deterministic():
    points = workload_points(["fibonacci"], tiles=(2,), scales=2,
                             evaluator="static")
    first = SweepRunner(jobs=1).run(points)
    second = SweepRunner(jobs=1).run(points)
    assert first.values == second.values


def test_static_and_workload_points_share_grid_shape():
    """The two evaluators line up record-for-record over one grid."""
    sim = workload_points(["saxpy"], tiles=(1, 2), scales=1)
    static = workload_points(["saxpy"], tiles=(1, 2), scales=1,
                             evaluator="static")
    for a, b in zip(sim, static):
        assert {k: v for k, v in a.items() if k != "evaluator"} == \
            {k: v for k, v in b.items() if k != "evaluator"}
