"""Bench-results schema: records, sweep summary, schema-2 reader."""

import json

import pytest

from repro.reports.benchjson import (
    BENCH_SCHEMA_VERSION,
    RECORD_KEYS,
    bench_document,
    bench_record,
    read_bench_json,
    sweep_record,
    write_bench_json,
)

SWEEP = {"points": 2, "jobs": 2, "wall_seconds": 1.5,
         "cache_hits": 1, "cache_misses": 1, "errors": 0}


def test_record_carries_every_key():
    record = bench_record("saxpy", cycles=100)
    assert set(RECORD_KEYS) <= set(record)
    assert record["cache_hit"] is None      # not run through the sweeper
    assert record["worker"] is None


def test_document_schema_and_sweep_block():
    doc = bench_document("b", [bench_record("w", cycles=1)], sweep=SWEEP)
    assert doc["schema"] == BENCH_SCHEMA_VERSION == 3
    assert doc["sweep"]["cache_hits"] == 1
    # no sweep block is legal (non-sweep benches)
    assert bench_document("b", [])["sweep"] is None


def test_document_rejects_incomplete_records_and_sweeps():
    with pytest.raises(ValueError):
        bench_document("b", [{"workload": "w"}])
    with pytest.raises(ValueError):
        bench_document("b", [], sweep={"points": 1})


def test_sweep_record_carries_provenance():
    point = {"spec": {"workload": "w"}, "status": "ok", "cache_hit": True,
             "worker": 4242, "seconds": 0.1,
             "value": {"cycles": 77, "stats": None}, "error": None}
    record = sweep_record(point, "w", config={"ntiles": 2})
    assert record["cycles"] == 77
    assert record["cache_hit"] is True
    assert record["worker"] == 4242


def test_sweep_record_structured_error():
    point = {"spec": {"workload": "w"}, "status": "error", "cache_hit": False,
             "worker": 1, "seconds": 0.1, "value": None,
             "error": {"type": "ValueError", "message": "boom",
                       "traceback": "..."}}
    record = sweep_record(point, "w")
    assert record["cycles"] is None
    assert record["metrics"]["error"]["type"] == "ValueError"


def test_write_then_read_roundtrip(tmp_path):
    path = tmp_path / "doc.json"
    write_bench_json(str(path), "b", [bench_record("w", cycles=9)],
                     sweep=SWEEP)
    doc = read_bench_json(str(path))
    assert doc["schema"] == 3
    assert doc["records"][0]["cycles"] == 9
    assert doc["sweep"] == SWEEP


def test_reader_normalises_schema_2(tmp_path):
    """Documents written before the sweep runner existed stay valid:
    the reader lifts them to the schema-3 shape in memory."""
    path = tmp_path / "old.json"
    legacy_record = {"workload": "w", "config": None, "cycles": 5,
                     "utilization": None, "stalls": None, "engine": None,
                     "metrics": {}}
    path.write_text(json.dumps(
        {"bench": "b", "schema": 2, "records": [legacy_record]}))
    doc = read_bench_json(str(path))
    assert doc["schema"] == 3
    assert doc["sweep"] is None
    record = doc["records"][0]
    assert record["cycles"] == 5
    assert record["cache_hit"] is None
    assert record["worker"] is None


def test_reader_rejects_unknown_schema(tmp_path):
    path = tmp_path / "future.json"
    path.write_text(json.dumps({"bench": "b", "schema": 99, "records": []}))
    with pytest.raises(ValueError):
        read_bench_json(str(path))
