"""Simulator throughput: event-driven kernel vs the dense oracle.

Not a paper figure — this measures the *host-side* cost of the cycle
simulator itself. The event engine (wakeup scheduling plus quiescent
fast-forward) must (i) stay bit-identical to the dense engine on every
config here, and (ii) deliver a large wall-clock win on memory-bound
workloads, where most cycles are DRAM-latency quiet spans.

Configurations:

* ``fib`` / ``mergesort`` / ``stencil`` — default configs: activity is
  dense (something fires almost every cycle), so there is little to
  skip. The engine's hot-set scheduling and adaptive dense fallback
  must hold its overhead under 5% of the dense oracle here.
* ``saxpy-membound`` — 1 KB cache, a single MSHR (the paper's §VI notes
  TAPAS has limited support for multiple outstanding misses), 270-cycle
  DRAM latency (the paper's Table V DRAM access time). Nearly every
  cycle is a quiet DRAM wait: the regime the fast-forward optimisation
  targets. Gate: >= 5x speedup.

The cases run through the SweepRunner like every other bench, but with
the result cache disabled and a single worker: this bench measures host
wall-clock, which a cache hit would skip and parallel workers would
perturb.
"""

import time

import sweeplib

from repro.exp import config_from_spec, register_evaluator
from repro.reports import render_table, sweep_record
from repro.workloads import REGISTRY

#: (row name, workload, scale, plain-JSON config overrides)
CASES = [
    ("fib", "fibonacci", 2, {}),
    ("mergesort", "mergesort", 2, {}),
    ("stencil", "stencil", 2, {}),
    ("saxpy-membound", "saxpy", 16,
     {"board": "Arria 10",
      "cache": {"size_bytes": 1024, "mshr_count": 1},
      "dram_latency_cycles": 270}),
]

#: wall-clock gate for the memory-bound case (observers detached)
MEMBOUND_MIN_SPEEDUP = 5.0

#: even on always-hot workloads (fib: something fires nearly every
#: cycle) the event engine's hot-set scheduling must keep its overhead
#: under 5% of the dense oracle
ALWAYS_HOT_MIN_SPEEDUP = 0.95


#: wall-clock repetitions per (case, engine); best-of damps allocator
#: warm-up and scheduler noise, which on a shared single-core host
#: swamps the few percent the always-hot gate is about
MEASURE_REPS = 5


def _eval_throughput_case(spec):
    """Best-of-N seconds for both engines, repetitions interleaved:
    host noise is time-correlated, so alternating dense/event inside
    each rep exposes both engines to the same noisy patches instead of
    letting one engine soak up a slow spell alone."""
    workload = REGISTRY.get(spec["workload"])
    best = {}
    results = {}
    for _ in range(MEASURE_REPS):
        for engine in ("dense", "event"):
            config = config_from_spec(workload, dict(spec, engine=engine))
            start = time.perf_counter()
            result = workload.run(config, scale=spec["scale"])
            seconds = time.perf_counter() - start
            assert result.correct, f"{spec['case']} wrong under {engine}"
            if engine not in best or seconds < best[engine]:
                best[engine] = seconds
                results[engine] = result
    dense, event = results["dense"], results["event"]
    assert dense.cycles == event.cycles, spec["case"]
    engine_stats = event.stats["engine"]
    return {
        "name": spec["case"], "workload": spec["workload"],
        "scale": spec["scale"],
        "cycles": event.cycles,
        "dense_seconds": best["dense"], "event_seconds": best["event"],
        "speedup": (best["dense"] / best["event"]
                    if best["event"] else float("inf")),
        "ticks_executed": engine_stats["ticks_executed"],
        "fast_forwarded_cycles": engine_stats["fast_forwarded_cycles"],
        "stats": event.stats,
        "dense_stats": dense.stats["engine"],
    }


register_evaluator("sim_throughput", _eval_throughput_case,
                   program_text=sweeplib.file_program_text(__file__))


def test_sim_throughput(benchmark, save_result, save_json):
    runner = sweeplib.make_runner(jobs=1, cache=None)
    points = [{"evaluator": "sim_throughput", "case": case,
               "workload": workload, "tiles": 2, "scale": scale,
               "overrides": overrides}
              for case, workload, scale, overrides in CASES]

    def run():
        return sweeplib.run_points(runner, points)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = result.values

    table = render_table(
        ["Case", "Cycles", "Dense s", "Event s", "Speedup",
         "Ticks", "Fast-fwd"],
        [[r["name"], r["cycles"], round(r["dense_seconds"], 3),
          round(r["event_seconds"], 3), f"{r['speedup']:.2f}x",
          r["ticks_executed"], r["fast_forwarded_cycles"]]
         for r in rows],
        title="Simulator throughput — dense oracle vs event-driven kernel")
    save_result("sim_throughput", table)
    save_json("sim_throughput", [
        sweep_record(record, record["value"]["workload"],
                     config={"ntiles": 2, "scale": record["value"]["scale"],
                             "case": record["value"]["name"]},
                     dense_host_seconds=round(
                         record["value"]["dense_seconds"], 6),
                     event_host_seconds=round(
                         record["value"]["event_seconds"], 6),
                     speedup=round(record["value"]["speedup"], 2),
                     ticks_executed=record["value"]["ticks_executed"],
                     fast_forwarded_cycles=record["value"][
                         "fast_forwarded_cycles"])
        for record in result.records], sweep=result.summary)

    by_name = {r["name"]: r for r in rows}
    membound = by_name["saxpy-membound"]
    # the headline gate: fast-forward pays off where cycles are quiet
    assert membound["speedup"] >= MEMBOUND_MIN_SPEEDUP, (
        f"memory-bound speedup {membound['speedup']:.2f}x "
        f"< {MEMBOUND_MIN_SPEEDUP}x")
    assert membound["fast_forwarded_cycles"] > membound["cycles"] // 2
    # dense-activity workloads must not regress: hot-set scheduling
    # (steadily-active components are ticked straight off a flat list,
    # never re-enqueued per cycle) plus the adaptive dense fallback
    # (oracle stepping whenever a sampling window shows nothing to
    # skip) keep the event engine within 5% of the dense oracle
    for name in ("fib", "mergesort", "stencil"):
        assert by_name[name]["speedup"] >= ALWAYS_HOT_MIN_SPEEDUP, (
            f"{name}: event engine {by_name[name]['speedup']:.2f}x dense "
            f"< {ALWAYS_HOT_MIN_SPEEDUP}x on an always-hot workload")
