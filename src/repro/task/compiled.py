"""Compiled task: the Stage-2 artifact a TXU executes.

The HLS generator lowers each static task into this form: per-block
dataflow graphs, spawn specifications for every detach site, frame layout
for in-frame allocas, and the argument binding order (the Args-RAM
layout).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import Alloca, Call, Detach
from repro.ir.values import Value
from repro.passes.dataflow_graph import BlockDFG
from repro.passes.taskgraph import Task


@dataclass
class SpawnSpec:
    """Everything a detach site needs to marshal a spawn at run time."""

    dest_sid: int
    arg_values: List[Value]
    ret_ptr_value: Optional[Value] = None


@dataclass
class CallSpec:
    """A serial (blocking) call site: spawn + wait for the return value."""

    dest_sid: int
    arg_values: List[Value]


@dataclass
class CompiledTask:
    """One task unit's program: what Stage 2 of the toolchain emits."""

    sid: int
    name: str
    task: Task
    entry_block: BasicBlock
    blocks: List[BasicBlock]
    dfgs: Dict[BasicBlock, BlockDFG]
    #: values bound positionally to a spawn's args tuple
    arg_values: List[Value]
    spawn_specs: Dict[Detach, SpawnSpec] = field(default_factory=dict)
    call_specs: Dict[Call, CallSpec] = field(default_factory=dict)
    #: per-instance frame bytes (0 if the task never uses frame slots)
    frame_size: int = 0
    frame_offsets: Dict[Alloca, int] = field(default_factory=dict)

    def dfg(self, block: BasicBlock) -> BlockDFG:
        return self.dfgs[block]

    def owns_block(self, block: BasicBlock) -> bool:
        return block in self.dfgs

    def instruction_count(self) -> int:
        return sum(len(d.nodes) for d in self.dfgs.values())

    def __repr__(self):
        return (f"<CompiledTask sid={self.sid} {self.name} "
                f"blocks={len(self.blocks)} frame={self.frame_size}B>")
