"""Ablation: banked L1 (§VI future work) — an honest negative result.

The paper's §VI names the cache hierarchy as the thing to improve. The
obvious first step — a line-interleaved multi-bank L1 — turns out NOT to
help at these design points, and the reason is architectural: each task
unit reaches memory through its *data box*, which is itself one
request/cycle (Fig 8). A single hot unit therefore cannot exploit bank
parallelism, while every access pays the extra bank-router and
response-merge latency. Lifting the bandwidth wall needs multi-ported
data boxes (or more MSHRs/DRAM bandwidth for the miss-bound codes) —
which is precisely the kind of insight an ablation is for.
"""

import sweeplib

from repro.exp import workload_points
from repro.reports import render_table, sweep_record

NAMES = ["matrix_add", "saxpy", "dedup"]
BANKS = (1, 2, 4)


def test_ablation_banked_cache(benchmark, save_result, save_json,
                               sweep_runner):
    points = []
    for banks in BANKS:
        points += workload_points(NAMES, tiles=(8,), scales=2,
                                  overrides={"cache": {"banks": banks}})

    def run():
        return sweeplib.run_points(sweep_runner, points)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    data = {name: {} for name in NAMES}
    for record in result.records:
        spec = record["spec"]
        data[spec["workload"]][spec["overrides"]["cache"]["banks"]] = \
            record["value"]["cycles"]

    rows = []
    for name in NAMES:
        d = data[name]
        rows.append([name, d[1], d[2], d[4], f"{d[4] / d[1]:.2f}x"])
    text = render_table(
        ["Benchmark", "1 bank", "2 banks", "4 banks", "4-bank cost"],
        rows,
        title="Ablation — banked L1 (negative result: the per-unit data "
              "box is the real port bottleneck)")
    save_result("ablation_banked_cache", text)
    save_json("ablation_banked_cache", [
        sweep_record(record, record["spec"]["workload"],
                     config={"ntiles": 8,
                             "banks": record["spec"]["overrides"][
                                 "cache"]["banks"],
                             "scale": 2})
        for record in result.records], sweep=result.summary)

    for name in NAMES:
        d = data[name]
        # correctness is identical; performance is within ~2.5x either way
        assert 0.4 < d[4] / d[1] < 2.5
        # and banking never helps by more than a few percent here — the
        # data-box port, not the L1 port, is the limiter
        assert d[4] > 0.9 * d[1]
