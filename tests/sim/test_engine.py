"""Tests for the cycle engine, channels and handshake semantics."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import Channel, Component, Simulator
from repro.sim.engine import DEADLOCK_WINDOW


class Producer(Component):
    """Pushes sequential integers as fast as the channel accepts."""

    def __init__(self, name, out, count):
        super().__init__(name)
        self.out = out
        self.remaining = count
        self.next_value = 0

    def tick(self, cycle):
        if self.remaining > 0 and self.out.can_push():
            self.out.push(self.next_value)
            self.next_value += 1
            self.remaining -= 1


class Consumer(Component):
    def __init__(self, name, inp, stall_every=0):
        super().__init__(name)
        self.inp = inp
        self.received = []
        self.stall_every = stall_every

    def tick(self, cycle):
        if self.stall_every and cycle % self.stall_every == 0:
            return  # backpressure
        if self.inp.can_pop():
            self.received.append(self.inp.pop())


class TestChannel:
    def test_push_visible_next_cycle(self):
        ch = Channel("c", capacity=2)
        ch.push(42)
        assert not ch.can_pop()  # registered: not visible same cycle
        ch.commit()
        assert ch.can_pop()
        assert ch.peek() == 42

    def test_double_push_rejected(self):
        ch = Channel("c")
        ch.push(1)
        with pytest.raises(SimulationError, match="two pushes"):
            ch.push(2)

    def test_double_pop_rejected(self):
        ch = Channel("c")
        ch.push(1)
        ch.commit()
        ch.pop()
        with pytest.raises(SimulationError, match="two pops"):
            ch.pop()

    def test_capacity_enforced(self):
        ch = Channel("c", capacity=1)
        ch.push(1)
        ch.commit()
        assert not ch.can_push()
        with pytest.raises(SimulationError, match="full"):
            ch.push(2)

    def test_pop_frees_slot_next_cycle(self):
        ch = Channel("c", capacity=1)
        ch.push(1)
        ch.commit()
        ch.pop()
        # same cycle: slot not free yet
        assert not ch.can_push()
        ch.commit()
        assert ch.can_push()

    def test_fifo_order(self):
        ch = Channel("c", capacity=4)
        for v in (1, 2, 3):
            ch.push(v)
            ch.commit()
        out = []
        while ch.can_pop():
            out.append(ch.pop())
            ch.commit()
        assert out == [1, 2, 3]

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Channel("c", capacity=0)


class TestSimulator:
    def test_producer_consumer_delivers_everything_in_order(self):
        sim = Simulator()
        ch = sim.add_channel("pc", capacity=2)
        sim.add_component(Producer("p", ch, count=50))
        consumer = sim.add_component(Consumer("c", ch))
        sim.run(lambda: len(consumer.received) == 50, max_cycles=1000)
        assert consumer.received == list(range(50))

    def test_backpressure_slows_but_preserves_data(self):
        sim = Simulator()
        ch = sim.add_channel("pc", capacity=1)
        sim.add_component(Producer("p", ch, count=30))
        consumer = sim.add_component(Consumer("c", ch, stall_every=2))
        cycles = sim.run(lambda: len(consumer.received) == 30, max_cycles=5000)
        assert consumer.received == list(range(30))
        assert cycles > 30  # stalls cost time

    def test_throughput_one_per_cycle_when_unblocked(self):
        sim = Simulator()
        ch = sim.add_channel("pc", capacity=4)
        sim.add_component(Producer("p", ch, count=100))
        consumer = sim.add_component(Consumer("c", ch))
        cycles = sim.run(lambda: len(consumer.received) == 100, max_cycles=1000)
        # 1 item/cycle steady state plus small pipeline fill
        assert cycles <= 105

    def test_deadlock_detected(self):
        sim = Simulator()
        ch = sim.add_channel("pc", capacity=1)
        sim.add_component(Consumer("c", ch))  # nothing ever arrives
        with pytest.raises(DeadlockError):
            sim.run(lambda: False, max_cycles=DEADLOCK_WINDOW * 3)

    def test_timeout_raises(self):
        class Spinner(Component):
            def tick(self, cycle):
                pass

            def is_busy(self):
                return True  # always "working", never done

        sim = Simulator()
        sim.add_component(Spinner("s"))
        with pytest.raises(SimulationError, match="exceeded"):
            sim.run(lambda: False, max_cycles=100)

    def test_busy_component_defers_deadlock(self):
        class SlowSource(Component):
            """Delivers one message after a long internal delay."""

            def __init__(self, name, out, delay):
                super().__init__(name)
                self.out = out
                self.delay = delay

            def tick(self, cycle):
                if self.delay > 0:
                    self.delay -= 1
                elif self.delay == 0 and self.out.can_push():
                    self.out.push("late")
                    self.delay = -1

            def is_busy(self):
                return self.delay > 0

        sim = Simulator()
        ch = sim.add_channel("pc", capacity=1)
        sim.add_component(SlowSource("s", ch, delay=DEADLOCK_WINDOW + 100))
        consumer = sim.add_component(Consumer("c", ch))
        sim.run(lambda: consumer.received == ["late"],
                max_cycles=DEADLOCK_WINDOW * 3)
