"""Span-based tracing for the host-side toolchain pipeline.

Every toolchain phase — parse, semantic analysis, lowering, passes,
elaboration, simulation — runs inside a :meth:`SpanTracer.span` block.
The default tracer is disabled (a span is then one flag test and a
``yield None``); CLI entry points enable it, and the recorded spans are
exported into the **same** Chrome-trace/Perfetto document as the guest
cycle timeline (see :func:`host_trace_events` and
``repro.obs.perfetto.chrome_trace(host_spans=...)``), so host seconds
and simulated cycles land in one trace side by side.

Host spans are timestamped in microseconds relative to the tracer's
first span; guest tracks use 1 us == 1 cycle. The tracks live under
separate process groups, so the shared timeline never conflates the
two units.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class Span:
    """One completed phase: a closed ``[start_ns, end_ns)`` interval."""

    name: str
    category: str
    start_ns: int
    end_ns: int
    depth: int
    thread: int
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def seconds(self) -> float:
        return self.duration_ns / 1e9


class SpanTracer:
    """Records nested wall-clock spans; safe across threads.

    Spans nest per thread (the exporter keeps one trace track per
    thread), and the tracer is append-only: a span is recorded when its
    ``with`` block exits, including on exceptions — a crashed phase
    still shows its cost.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.spans: List[Span] = []
        self.epoch_ns: Optional[int] = None
        self._local = threading.local()
        self._lock = threading.Lock()

    # -- lifecycle --------------------------------------------------------

    def enable(self) -> "SpanTracer":
        self.enabled = True
        return self

    def disable(self) -> "SpanTracer":
        self.enabled = False
        return self

    def reset(self) -> None:
        self.spans = []
        self.epoch_ns = None

    # -- recording --------------------------------------------------------

    @contextmanager
    def span(self, name: str, category: str = "toolchain", **args):
        """Time the enclosed block. Disabled tracers yield immediately."""
        if not self.enabled:
            yield None
            return
        depth = getattr(self._local, "depth", 0)
        self._local.depth = depth + 1
        start = time.perf_counter_ns()
        if self.epoch_ns is None:
            self.epoch_ns = start
        try:
            yield self
        finally:
            end = time.perf_counter_ns()
            self._local.depth = depth
            span = Span(name=name, category=category, start_ns=start,
                        end_ns=end, depth=depth,
                        thread=threading.get_ident(), args=dict(args))
            with self._lock:
                self.spans.append(span)

    # -- views ------------------------------------------------------------

    def named(self, name: str) -> List[Span]:
        return [span for span in self.spans if span.name == name]

    def total_seconds(self, name: Optional[str] = None) -> float:
        spans = self.spans if name is None else self.named(name)
        return sum(span.seconds for span in spans)

    def phase_totals(self) -> Dict[str, float]:
        """name -> total seconds, top-level spans only (depth 0), so the
        report never double-counts a phase inside its parent."""
        out: Dict[str, float] = {}
        for span in self.spans:
            if span.depth == 0:
                out[span.name] = out.get(span.name, 0.0) + span.seconds
        return out

    def as_dict(self) -> dict:
        epoch = self.epoch_ns or 0
        return {
            "spans": [
                {"name": span.name, "category": span.category,
                 "start_us": round((span.start_ns - epoch) / 1000.0, 3),
                 "duration_us": round(span.duration_ns / 1000.0, 3),
                 "depth": span.depth, "args": span.args}
                for span in sorted(self.spans, key=lambda s: s.start_ns)
            ],
            "phase_seconds": {name: round(seconds, 6) for name, seconds
                              in sorted(self.phase_totals().items())},
        }


def host_trace_events(tracer: SpanTracer, pid: int,
                      first_tid: int = 0) -> List[dict]:
    """Chrome trace-event dicts for a tracer's spans (no metadata).

    Timestamps are microseconds since the tracer's first span, one trace
    ``tid`` per host thread in first-seen order starting at
    ``first_tid``. The caller owns the ``pid`` and its process_name
    metadata.
    """
    if not tracer.spans or tracer.epoch_ns is None:
        return []
    epoch = tracer.epoch_ns
    tids: Dict[int, int] = {}
    events = []
    for span in sorted(tracer.spans, key=lambda s: s.start_ns):
        tid = tids.setdefault(span.thread, first_tid + len(tids))
        events.append({
            "ph": "X", "cat": f"host:{span.category}", "name": span.name,
            "ts": round((span.start_ns - epoch) / 1000.0, 3),
            "dur": round(span.duration_ns / 1000.0, 3),
            "pid": pid, "tid": tid,
            "args": dict(span.args, depth=span.depth),
        })
    return events


#: the process-wide pipeline tracer, threaded through every toolchain
#: phase; disabled by default (one flag test per phase)
TRACER = SpanTracer(enabled=False)
