"""Ablation: inlining serial callees vs spawning through task units.

Paper §VI ("Task controllers"): the controllers and queuing logic add
latency to the critical path, and statically absorbing suitable work
would eliminate them. This quantifies it on mergesort, whose serial
`merge` runs once per recursion node through a call round trip.
"""

import pytest

from repro.accel import build_accelerator
from repro.ir.types import I32
from repro.passes import inline_calls, prune_unreachable_functions
from repro.reports import bench_record, render_table
from repro.workloads import Mergesort


def run_mergesort(module, n=64):
    import random

    accel = build_accelerator(module, Mergesort().default_config())
    rng = random.Random(17)
    data = [rng.randrange(-1000, 1000) for _ in range(n)]
    base = accel.memory.alloc_array(I32, data)
    result = accel.run("mergesort", [base, 0, n - 1])
    assert accel.memory.read_array(base, I32, n) == sorted(data)
    return result.cycles, len(accel.units)


def test_ablation_inline_serial_callees(benchmark, save_result, save_json):
    def run():
        workload = Mergesort()
        baseline = run_mergesort(workload.fresh_module())
        inlined_module = workload.fresh_module()
        inline_calls(inlined_module, max_insts=200)
        prune_unreachable_functions(inlined_module, ["mergesort"])
        inlined = run_mergesort(inlined_module)
        return {"spawn merge unit": baseline, "inline merge": inlined}

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, cycles, units] for name, (cycles, units) in data.items()]
    text = render_table(["Configuration", "cycles", "task units"], rows,
                        title="Ablation — inlining the serial merge "
                              "(paper §VI: eliminate task controllers)")
    save_result("ablation_inlining", text)
    save_json("ablation_inlining", [
        bench_record("mergesort", config={"variant": name, "n": 64},
                     cycles=cycles, task_units=units)
        for name, (cycles, units) in data.items()])

    base_cycles, base_units = data["spawn merge unit"]
    inl_cycles, inl_units = data["inline merge"]
    assert inl_units == base_units - 1          # controller eliminated
    assert inl_cycles < base_cycles             # round trips removed
