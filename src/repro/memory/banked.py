"""Banked shared-L1 memory system (paper §VI future work).

The evaluated TAPAS system shares a single-ported L1 among all task
units, which is exactly where its memory-bound benchmarks saturate
(Fig 15/16 and the paper's own §VI: "to compete against a multicore
processor we need to improve the overall cache hierarchy, both bandwidth
and latency"). This module builds the natural next step: a
line-interleaved multi-bank L1 where bank ``b`` owns the lines with
``line_addr % banks == b``, giving up to ``banks`` hits per cycle.

Topology per request:  unit -> bank router (demux by address)
                            -> per-bank arbiter over units -> bank cache
and per response:      bank cache -> per-bank demux by unit
                            -> per-unit merge arbiter -> unit.
All banks share one AXI DRAM channel.
"""

from __future__ import annotations

import math
from typing import List

from repro.memory.arbiter import Demux, RoundRobinArbiter, tree_levels
from repro.memory.backing import MainMemory
from repro.memory.cache import Cache, CacheParams
from repro.memory.dram import DRAMModel
from repro.sim import Channel, Simulator


class BankedMemorySystem:
    """Elaborates banks, routers and the shared DRAM into a simulator.

    Exposes ``unit_request[i]`` / ``unit_response[i]`` — the same
    interface the single-cache path offers — plus ``caches`` for stats.
    """

    def __init__(self, sim: Simulator, params: CacheParams,
                 memory: MainMemory, num_units: int, dram_latency: int):
        self.params = params
        banks = params.banks
        line = params.line_bytes
        shift = int(math.log2(banks))

        self.unit_request: List[Channel] = [
            sim.add_channel(f"membank.u{u}.req", 2) for u in range(num_units)]
        self.unit_response: List[Channel] = [
            sim.add_channel(f"membank.u{u}.resp", 2) for u in range(num_units)]

        # unit -> bank routing
        unit_bank_req = [[sim.add_channel(f"membank.u{u}.b{b}.req", 2)
                          for b in range(banks)] for u in range(num_units)]
        for u in range(num_units):
            sim.add_component(Demux(
                f"membank.u{u}.bankrouter", self.unit_request[u],
                unit_bank_req[u], levels=tree_levels(banks),
                route=lambda msg, _line=line, _banks=banks:
                    (msg.addr // _line) % _banks))

        # shared DRAM behind all banks
        dram_req = sim.add_channel("membank.dram.req", 4)
        dram_resp = sim.add_channel("membank.dram.resp", 4)
        self.dram = sim.add_component(DRAMModel(
            "DRAM", dram_req, dram_resp, latency=dram_latency))
        bank_dram_req = [sim.add_channel(f"membank.b{b}.dram.req", 2)
                         for b in range(banks)]
        bank_dram_resp = [sim.add_channel(f"membank.b{b}.dram.resp", 2)
                          for b in range(banks)]
        sim.add_component(RoundRobinArbiter(
            "membank.dram.arb", bank_dram_req, dram_req,
            levels=tree_levels(banks)))
        sim.add_component(Demux(
            "membank.dram.demux", dram_resp, bank_dram_resp,
            levels=tree_levels(banks),
            route=lambda msg, _banks=banks: msg.tag % _banks))

        # banks: arbiter over units -> cache -> demux back to units
        self.caches: List[Cache] = []
        bank_unit_resp = [[sim.add_channel(f"membank.b{b}.u{u}.resp", 2)
                           for u in range(num_units)] for b in range(banks)]
        for b in range(banks):
            bank_req = sim.add_channel(f"membank.b{b}.req", 2)
            bank_resp = sim.add_channel(f"membank.b{b}.resp", 2)
            sim.add_component(RoundRobinArbiter(
                f"membank.b{b}.arb",
                [unit_bank_req[u][b] for u in range(num_units)],
                bank_req, levels=tree_levels(num_units)))
            cache = Cache(f"L1.bank{b}", params.bank_params(), memory,
                          bank_req, bank_resp,
                          bank_dram_req[b], bank_dram_resp[b],
                          index_shift=shift)
            sim.add_component(cache)
            self.caches.append(cache)
            sim.add_component(Demux(
                f"membank.b{b}.unitdemux", bank_resp, bank_unit_resp[b],
                levels=tree_levels(num_units)))

        # per-unit response merge across banks
        for u in range(num_units):
            sim.add_component(RoundRobinArbiter(
                f"membank.u{u}.merge",
                [bank_unit_resp[b][u] for b in range(banks)],
                self.unit_response[u], levels=tree_levels(banks)))

    def stats(self) -> dict:
        total = {"hits": 0, "misses": 0, "loads": 0, "stores": 0,
                 "evictions": 0, "writebacks": 0}
        for cache in self.caches:
            for key in total:
                total[key] += cache.stats()[key]
        accesses = total["hits"] + total["misses"]
        total["hit_rate"] = total["hits"] / accesses if accesses else 0.0
        total["banks"] = len(self.caches)
        return total
