"""Tests for the spawn/join network (SID-routed crossbars)."""


from repro.sim import Simulator
from repro.task import JoinMessage, SpawnMessage, TaskNetwork


def drive(sim, cycles=30):
    for _ in range(cycles):
        sim.tick()


class TestSpawnRouting:
    def test_routes_by_destination_sid(self):
        sim = Simulator()
        net = TaskNetwork(sim, "net", num_units=3)
        net.spawn_out[0].push(SpawnMessage(dest_sid=2, args=(1,),
                                           parent_sid=0, parent_dyid=0))
        net.spawn_out[1].push(SpawnMessage(dest_sid=0, args=(2,),
                                           parent_sid=1, parent_dyid=0))
        drive(sim)
        assert net.spawn_in[2].can_pop()
        assert net.spawn_in[2].pop().args == (1,)
        assert net.spawn_in[0].can_pop()
        assert net.spawn_in[0].pop().args == (2,)
        assert not net.spawn_in[1].can_pop()

    def test_host_port_injects_spawns(self):
        sim = Simulator()
        net = TaskNetwork(sim, "net", num_units=2)
        net.host_spawn.push(SpawnMessage(dest_sid=1, args=("root",),
                                         parent_sid=None, parent_dyid=None))
        drive(sim)
        assert net.spawn_in[1].pop().args == ("root",)

    def test_self_spawn_loops_back(self):
        """Recursion: a unit's spawn routed back to itself."""
        sim = Simulator()
        net = TaskNetwork(sim, "net", num_units=1)
        net.spawn_out[0].push(SpawnMessage(dest_sid=0, args=(9,),
                                           parent_sid=0, parent_dyid=3))
        drive(sim)
        message = net.spawn_in[0].pop()
        assert message.args == (9,)
        assert message.parent_dyid == 3


class TestJoinRouting:
    def test_joins_routed_to_parent_sid(self):
        sim = Simulator()
        net = TaskNetwork(sim, "net", num_units=3)
        net.join_out[2].push(JoinMessage(parent_sid=1, parent_dyid=5,
                                         join_kind="sync"))
        drive(sim)
        message = net.join_in[1].pop()
        assert message.parent_dyid == 5

    def test_many_to_one_joins_all_arrive(self):
        sim = Simulator()
        net = TaskNetwork(sim, "net", num_units=4)
        for sid in (1, 2, 3):
            net.join_out[sid].push(JoinMessage(parent_sid=0,
                                               parent_dyid=sid,
                                               join_kind="sync"))
        got = []
        for _ in range(60):
            sim.tick()
            if net.join_in[0].can_pop():
                got.append(net.join_in[0].pop().parent_dyid)
        assert sorted(got) == [1, 2, 3]

    def test_stats(self):
        sim = Simulator()
        net = TaskNetwork(sim, "net", num_units=2)
        net.spawn_out[0].push(SpawnMessage(dest_sid=1, args=(),
                                           parent_sid=0, parent_dyid=0))
        drive(sim)
        net.spawn_in[1].pop()
        stats = net.stats()
        assert stats["spawns_routed"] == 1
        assert stats["joins_routed"] == 0
