"""Host-side telemetry: metrics, pipeline tracing, host-time
attribution, and the persistent run registry.

The guest machine became observable in ``repro.obs`` (cycle ledgers,
stall attribution, Perfetto traces); this package does the same for the
*host-side* toolchain:

* :class:`MetricsRegistry` — process-local counters, gauges and
  fixed-bucket histograms (disabled by default; a disabled instrument
  mutation is one flag test),
* :class:`SpanTracer` / :data:`TRACER` — span-based tracing over every
  toolchain phase (parse → IR build → passes → elaboration →
  simulation), exported as host-thread tracks into the same
  Chrome-trace document as the guest cycle timeline,
* :class:`HostProfiler` — per-component-class ``perf_counter_ns``
  attribution inside the simulation engines ("where do host seconds
  go"), bit-identical sim cycles on or off,
* the run registry (:func:`run_record` / :func:`append_run` /
  :func:`load_history` / :func:`diff_history`) — a schema'd JSONL
  trajectory under ``results/history/`` behind ``repro history``.
"""

from repro.telemetry.history import (
    DRIFT_METRICS,
    HISTORY_DIR_ENV,
    HISTORY_FILE,
    HISTORY_RECORD_KEYS,
    HISTORY_SCHEMA,
    append_run,
    config_fingerprint,
    default_history_dir,
    diff_history,
    git_rev,
    load_history,
    run_record,
    series_key,
)
from repro.telemetry.hostprof import HostProfiler
from repro.telemetry.metrics import (
    LATENCY_BUCKETS_S,
    METRICS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
)
from repro.telemetry.spans import TRACER, Span, SpanTracer, host_trace_events

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "METRICS",
    "LATENCY_BUCKETS_S", "SIZE_BUCKETS", "exponential_buckets",
    "Span", "SpanTracer", "TRACER", "host_trace_events",
    "HostProfiler",
    "DRIFT_METRICS", "HISTORY_DIR_ENV", "HISTORY_FILE",
    "HISTORY_RECORD_KEYS", "HISTORY_SCHEMA",
    "append_run", "config_fingerprint", "default_history_dir",
    "diff_history", "git_rev", "load_history", "run_record", "series_key",
]
