"""Property tests for the hardware data structures (channel, task queue)."""

from hypothesis import given, strategies as st

from repro.sim import Channel
from repro.task import READY, TaskQueue
from repro.task.messages import SpawnMessage


class TestChannelProperties:
    @given(st.lists(st.booleans(), max_size=200),
           st.integers(min_value=1, max_value=8))
    def test_fifo_order_and_conservation(self, schedule, capacity):
        """Under any push/pop schedule: data pops in push order, nothing
        is lost or duplicated, occupancy never exceeds capacity."""
        channel = Channel("c", capacity=capacity)
        pushed = []
        popped = []
        next_value = 0
        for want_push in schedule:
            if want_push:
                if channel.can_push():
                    channel.push(next_value)
                    pushed.append(next_value)
                    next_value += 1
            else:
                if channel.can_pop():
                    popped.append(channel.pop())
            channel.commit()
            assert len(channel) <= capacity
        # drain
        for _ in range(capacity + 1):
            if channel.can_pop():
                popped.append(channel.pop())
            channel.commit()
        assert popped == pushed

    @given(st.integers(min_value=1, max_value=16))
    def test_capacity_is_reachable(self, capacity):
        channel = Channel("c", capacity=capacity)
        count = 0
        for _ in range(capacity * 2):
            if channel.can_push():
                channel.push(count)
                count += 1
            channel.commit()
        assert len(channel) == capacity


def spawn(args=()):
    return SpawnMessage(dest_sid=0, args=args, parent_sid=1, parent_dyid=0)


class TestTaskQueueProperties:
    @given(st.lists(st.sampled_from(["alloc", "take", "release"]),
                    max_size=120),
           st.integers(min_value=1, max_value=16),
           st.sampled_from(["fifo", "lifo"]))
    def test_lifecycle_invariants(self, actions, depth, policy):
        """Any alloc/dispatch/release interleaving keeps the occupancy
        consistent, never double-allocates a DyID, and take_ready only
        surfaces READY entries."""
        queue = TaskQueue("q", depth, policy)
        live = {}        # dyid -> entry (allocated, not yet released)
        taken = []       # entries dispatched, not yet released
        for action in actions:
            if action == "alloc" and queue.has_free_entry():
                entry = queue.allocate(spawn())
                assert entry.dyid not in live
                assert entry.state == READY
                live[entry.dyid] = entry
            elif action == "take":
                entry = queue.take_ready()
                if entry is not None:
                    assert entry.state == READY
                    taken.append(entry)
            elif action == "release" and taken:
                entry = taken.pop()
                entry.state = "COMPLETE"
                queue.release(entry)
                del live[entry.dyid]
            assert queue.occupancy == len(live)
            assert 0 <= queue.occupancy <= depth

    @given(st.integers(min_value=2, max_value=32))
    def test_fifo_vs_lifo_orders(self, depth):
        fifo = TaskQueue("f", depth, "fifo")
        lifo = TaskQueue("l", depth, "lifo")
        for i in range(depth):
            fifo.allocate(spawn(args=(i,)))
            lifo.allocate(spawn(args=(i,)))
        fifo_order = [fifo.take_ready().args[0] for _ in range(depth)]
        lifo_order = [lifo.take_ready().args[0] for _ in range(depth)]
        assert fifo_order == list(range(depth))
        assert lifo_order == list(reversed(range(depth)))
