"""Achievable-clock model per board.

Fitted to the paper's reported fmax points: Cyclone V designs land between
120 and 223 MHz with a downward trend in design size (Tables III/IV); the
same RTL closes ~2x faster on Arria 10 (Table III: 308 MHz at 28.8k ALMs).
Routing congestion grows with design size, hence the sqrt(ALM) law.
"""

from __future__ import annotations

from repro.accel.config import ARRIA_10, CYCLONE_V, Board

_FMAX_PARAMS = {
    CYCLONE_V.name: (195.0, 0.22, 60.0),
    ARRIA_10.name: (370.0, 0.35, 120.0),
}


def estimate_mhz(board: Board, alms: int) -> float:
    """fmax estimate for a design of ``alms`` on ``board``."""
    f0, slope, floor = _FMAX_PARAMS.get(board.name,
                                        (board.base_mhz * 1.05, 0.25, 60.0))
    mhz = f0 - slope * (max(1, alms) ** 0.5)
    return max(floor, mhz)


def cycles_to_seconds(cycles: int, mhz: float) -> float:
    return cycles / (mhz * 1e6)
