"""The heterogeneous-SoC deployment model (paper §III).

TAPAS targets ARM+FPGA SoC boards: parallel functions become the
accelerator, everything else (initialisation, validation, anything with
system calls) stays on the ARM, and the two sides communicate purely
through shared memory. This example runs a small image pipeline that
way and prints the time ledger across both sides.

Run:  python examples/soc_offload.py
"""

from repro.accel import AcceleratorConfig, HostProgram
from repro.frontend import compile_source
from repro.ir.types import I32

SOURCE = """
// ARM side: decode the "image" (synthetic generator stands in for I/O)
func decode(img: i32*, n: i32) {
  for (var i: i32 = 0; i < n; i = i + 1) {
    img[i] = (i * 37 + 11) % 256;
  }
}

// FPGA side: the parallel hot loop -- brighten with saturation
func brighten(img: i32*, out: i32*, n: i32, delta: i32) {
  cilk_for (var i: i32 = 0; i < n; i = i + 1) {
    var v: i32 = img[i] + delta;
    if (v > 255) { v = 255; }
    out[i] = v;
  }
}

// ARM side: verify / summarise
func checksum(out: i32*, n: i32) -> i32 {
  var total: i32 = 0;
  for (var i: i32 = 0; i < n; i = i + 1) {
    total = total + out[i];
  }
  return total;
}
"""


def main():
    module = compile_source(SOURCE, "pipeline")
    program = HostProgram(module, offload=["brighten"],
                          config=AcceleratorConfig(default_ntiles=4))
    print(program)

    n = 96
    img = program.alloc_array(I32, [0] * n)
    out = program.alloc_array(I32, [0] * n)

    program.call("decode", [img, n])                 # ARM
    program.call("brighten", [img, out, n, 60])      # FPGA
    result = program.call("checksum", [out, n])      # ARM

    expected = sum(min(255, (i * 37 + 11) % 256 + 60) for i in range(n))
    print(f"\nchecksum: {result.retval} (expected {expected}, "
          f"match={result.retval == expected})")

    print("\n=== Time ledger (shared-memory offload, no copies) ===")
    for call in program.history:
        cycles = f", {call.cycles} cycles" if call.cycles else ""
        print(f"{call.function:>9} on {call.where}: "
              f"{call.seconds * 1e6:8.2f} us{cycles}")
    breakdown = program.time_breakdown()
    total = program.elapsed_seconds()
    print(f"\ntotal {total * 1e6:.2f} us  "
          f"(ARM {100 * breakdown['arm'] / total:.0f}%, "
          f"FPGA {100 * breakdown['fpga'] / total:.0f}%)")


if __name__ == "__main__":
    main()
