"""Tests for the analytical performance model (repro.analysis.perf)."""

import glob
import os

import pytest

from repro.accel import AcceleratorConfig, build_accelerator
from repro.analysis.perf import PerfModel, PerfParams, Prediction
from repro.cli import _default_profile_args, _load_module
from repro.errors import TapasError
from repro.memory.backing import MainMemory
from repro.workloads import REGISTRY

PROGRAMS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "..", "..", "examples", "programs")

#: fixtures that intentionally deadlock, race or strand a task — the
#: predictor assumes a well-formed program that runs to completion
_SKIP = {"deadlock_ring", "racy_sum", "dead_task"}

EXAMPLE_PROGRAMS = sorted(
    path for path in glob.glob(os.path.join(PROGRAMS_DIR, "*.cilk"))
    if os.path.splitext(os.path.basename(path))[0] not in _SKIP)

#: per-program gate for the cross-validation band: the static model must
#: land within 3x of the event engine in both directions. Calibrated
#: points sit far inside this (see bench_predict_accuracy); the band is
#: a regression tripwire, not an accuracy claim.
BAND_LOW, BAND_HIGH = 1 / 3.0, 3.0

SIZE = 12


def _predict_program(path: str, tiles: int = 2):
    config = AcceleratorConfig(default_ntiles=tiles)
    module = _load_module(path)
    model = PerfModel(module, config=config)
    entry = module.functions[0].name
    args = _default_profile_args(module.functions[0], MainMemory(), SIZE)
    return model.predict(entry=entry, config=config, args=args, size=SIZE)


def _run_program(path: str, tiles: int = 2):
    config = AcceleratorConfig(default_ntiles=tiles)
    module = _load_module(path)
    accel = build_accelerator(module, config)
    args = _default_profile_args(module.functions[0], accel.memory, SIZE)
    return accel.run(module.functions[0].name, args)


class TestPredictionShape:
    def test_prediction_fields(self):
        workload = REGISTRY.get("saxpy")
        model = PerfModel(workload.fresh_module())
        config = workload.default_config(ntiles=2)
        prepared = workload.prepare(MainMemory(), 1)
        prediction = model.predict(entry=workload.entry, config=config,
                                   args=prepared.args,
                                   size=prepared.work_items)
        assert isinstance(prediction, Prediction)
        assert prediction.cycles > 0
        assert prediction.entry == "saxpy"
        assert prediction.bounds
        assert prediction.bottlenecks
        top = prediction.top_bottleneck
        assert top is prediction.bottlenecks[0]
        # ranked: non-increasing bound cycles
        bounds = [b.bound_cycles for b in prediction.bottlenecks]
        assert bounds == sorted(bounds, reverse=True)
        # shares form a distribution over the reported bottlenecks
        assert abs(sum(b.share for b in prediction.bottlenecks) - 1.0) < 1e-6
        assert prediction.tasks

    def test_as_dict_is_schema_one_and_json_safe(self):
        import json

        workload = REGISTRY.get("matrix_add")
        model = PerfModel(workload.fresh_module())
        config = workload.default_config(ntiles=1)
        prepared = workload.prepare(MainMemory(), 1)
        prediction = model.predict(entry=workload.entry, config=config,
                                   args=prepared.args,
                                   size=prepared.work_items)
        payload = prediction.as_dict()
        assert payload["schema"] == 1
        assert payload["predicted_cycles"] == prediction.cycles
        json.dumps(payload)  # must round-trip

    def test_render_text_mentions_bottlenecks(self):
        workload = REGISTRY.get("saxpy")
        model = PerfModel(workload.fresh_module())
        config = workload.default_config(ntiles=2)
        prepared = workload.prepare(MainMemory(), 1)
        prediction = model.predict(entry=workload.entry, config=config,
                                   args=prepared.args,
                                   size=prepared.work_items)
        text = prediction.render_text()
        assert "predicted cycles" in text
        assert "ranked bottlenecks" in text
        assert prediction.top_bottleneck.component in text

    def test_unknown_entry_raises(self):
        workload = REGISTRY.get("saxpy")
        model = PerfModel(workload.fresh_module())
        with pytest.raises(TapasError):
            model.predict(entry="nonexistent",
                          config=workload.default_config(ntiles=1))


class TestModelBehaviour:
    def test_more_work_predicts_more_cycles(self):
        workload = REGISTRY.get("matrix_add")
        model = PerfModel(workload.fresh_module())
        config = workload.default_config(ntiles=2)
        cycles = []
        for scale in (1, 2, 4):
            prepared = workload.prepare(MainMemory(), scale)
            prediction = model.predict(entry=workload.entry, config=config,
                                       args=prepared.args,
                                       size=prepared.work_items)
            cycles.append(prediction.cycles)
        assert cycles[0] < cycles[1] < cycles[2]

    def test_more_tiles_never_predicts_slower(self):
        workload = REGISTRY.get("stencil")
        model = PerfModel(workload.fresh_module())
        prepared = workload.prepare(MainMemory(), 2)
        cycles = []
        for tiles in (1, 2, 4):
            config = workload.default_config(ntiles=tiles)
            prediction = model.predict(entry=workload.entry, config=config,
                                       args=prepared.args,
                                       size=prepared.work_items)
            cycles.append(prediction.cycles)
        assert cycles[0] >= cycles[1] >= cycles[2]

    def test_model_is_reusable_across_points(self):
        """One model instance serves the whole (tiles, scale) grid."""
        workload = REGISTRY.get("saxpy")
        model = PerfModel(workload.fresh_module())
        prepared = workload.prepare(MainMemory(), 1)
        first = model.predict(entry=workload.entry,
                              config=workload.default_config(ntiles=1),
                              args=prepared.args, size=prepared.work_items)
        again = model.predict(entry=workload.entry,
                              config=workload.default_config(ntiles=1),
                              args=prepared.args, size=prepared.work_items)
        assert first.cycles == again.cycles

    def test_custom_params_change_the_prediction(self):
        workload = REGISTRY.get("saxpy")
        slow = PerfParams(hit_round_trip=120)
        base = PerfModel(workload.fresh_module())
        heavy = PerfModel(workload.fresh_module(), params=slow)
        config = workload.default_config(ntiles=1)
        prepared = workload.prepare(MainMemory(), 1)
        a = base.predict(entry=workload.entry, config=config,
                         args=prepared.args, size=prepared.work_items)
        b = heavy.predict(entry=workload.entry, config=config,
                          args=prepared.args, size=prepared.work_items)
        assert b.cycles > a.cycles

    def test_bottleneck_vocabulary_is_ledger_shaped(self):
        """Predicted reasons reuse the simulator's stall-ledger tags."""
        known = {"memory", "allocator-full", "mshr-full", "execute",
                 "dispatch", "tiles-full", "sync-wait", "call-join",
                 "spawn-network", "dram-backpressure", "resp-backpressure",
                 "mem-backpressure", "cache-backpressure"}
        for name in ("saxpy", "fibonacci", "mergesort"):
            workload = REGISTRY.get(name)
            model = PerfModel(workload.fresh_module())
            config = workload.default_config(ntiles=2)
            prepared = workload.prepare(MainMemory(), 1)
            prediction = model.predict(entry=workload.entry, config=config,
                                       args=prepared.args,
                                       size=prepared.work_items)
            for bottleneck in prediction.bottlenecks:
                assert bottleneck.reason in known, bottleneck


@pytest.mark.parametrize(
    "path", EXAMPLE_PROGRAMS,
    ids=[os.path.splitext(os.path.basename(p))[0]
         for p in EXAMPLE_PROGRAMS])
def test_prediction_tracks_event_engine(path):
    """Every shipped example program: static prediction within the
    gated band of an actual event-engine run, same synthetic inputs."""
    prediction = _predict_program(path)
    result = _run_program(path)
    actual = max(1, result.cycles)
    ratio = prediction.cycles / actual
    assert BAND_LOW <= ratio <= BAND_HIGH, (
        f"{os.path.basename(path)}: predicted {prediction.cycles} vs "
        f"simulated {result.cycles} (ratio {ratio:.2f} outside "
        f"[{BAND_LOW:.2f}, {BAND_HIGH:.2f}])")
