"""Interprocedural value-range analysis and minimal-bitwidth inference.

TAPAS emits a uniform-width datapath per operation; real HLS flows narrow
datapaths and channels to the widths the program can actually produce
(TAPA / Chi et al. make the same move for task-parallel HLS).  This module
infers, for every integer IR value and every register/frame cell, a sound
interval of the values it can take at runtime, and from that a minimal
bitwidth.  The results feed

* the width-aware resource/power models (:mod:`repro.reports.resources`),
* the ``TAP-WIDTH-*`` lint rules (:mod:`repro.analysis.lint`), and
* the dynamic cross-validator that asserts every simulated value stays
  inside its static interval (:mod:`repro.analysis.dynamic`).

Design: a classic flow-sensitive interval analysis per function CFG with
per-bound widening at natural-loop headers, a few narrowing passes, branch
refinement on ``condbr``/``icmp`` edges, and a constant-trip-count
accumulator refinement that bounds ``s = s + delta`` reductions.  The
interprocedural layer iterates function summaries (argument joins over
spawn/call sites, return ranges, frame-cell contents) to a fixpoint with
the same widening operator.  Soundness contract: for every *completing*
execution, every dynamically produced integer value of an instruction lies
inside ``range_of(inst)``; the exact two's-complement semantics being
over-approximated are those of :mod:`repro.ir.opsem`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Call,
    Cast,
    CondBr,
    Detach,
    FCmp,
    ICmp,
    Instruction,
    Load,
    Ret,
    Select,
    Store,
)
from repro.ir.types import IntType
from repro.ir.values import Argument, Constant, Value
from repro.passes.cfg import predecessor_map, reverse_post_order
from repro.passes.loops import find_loops

#: joins at a loop header before the widening operator kicks in
WIDEN_AFTER = 3
#: decreasing (narrowing) passes run after the widened fixpoint
NARROW_PASSES = 3
#: rounds of the interprocedural summary fixpoint before forced widening
SUMMARY_ROUNDS = 8


@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[lo, hi]`` (both bounds inclusive)."""

    lo: int
    hi: int

    def __post_init__(self):
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "Interval") -> Optional["Interval"]:
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        return Interval(lo, hi) if lo <= hi else None

    def widen(self, new: "Interval", full: "Interval") -> "Interval":
        """Per-bound widening: only an unstable bound jumps to the type
        extreme, so stable bounds survive (and narrowing recovers the
        rest)."""
        lo = self.lo if new.lo >= self.lo else full.lo
        hi = self.hi if new.hi <= self.hi else full.hi
        return Interval(lo, hi)

    def is_singleton(self) -> bool:
        return self.lo == self.hi

    def __repr__(self):
        return f"[{self.lo}, {self.hi}]"


def full_range(type_) -> Optional[Interval]:
    """The type's whole value set, or None for non-integer types."""
    if isinstance(type_, IntType):
        return Interval(type_.min_value, type_.max_value)
    return None


def bits_for(interval: Interval) -> int:
    """Minimal datapath width for the interval: unsigned when the interval
    is non-negative, two's-complement signed otherwise."""
    if interval.lo >= 0:
        return max(1, interval.hi.bit_length())
    return 1 + max((-interval.lo - 1).bit_length(), max(interval.hi, 0).bit_length())


# ---------------------------------------------------------------------------
# Transfer functions (must over-approximate repro.ir.opsem exactly)
# ---------------------------------------------------------------------------

def _fits(lo: int, hi: int, full: Interval) -> Optional[Interval]:
    """Candidate bounds survive only if no wrap can occur."""
    if full.lo <= lo and hi <= full.hi:
        return Interval(lo, hi)
    return full


def _tdiv(a: int, b: int) -> int:
    """Truncating (toward-zero) division, matching opsem's sdiv."""
    return abs(a) // abs(b) * (1 if (a >= 0) == (b >= 0) else -1)


def transfer_binop(op: str, a: Interval, b: Interval, type_: IntType) -> Interval:
    full = Interval(type_.min_value, type_.max_value)
    bits = type_.bits
    if op == "add":
        return _fits(a.lo + b.lo, a.hi + b.hi, full)
    if op == "sub":
        return _fits(a.lo - b.hi, a.hi - b.lo, full)
    if op == "mul":
        corners = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi]
        return _fits(min(corners), max(corners), full)
    if op == "sdiv":
        # Divisor 0 traps (SimulationError), so completing runs never see it.
        divisors = {d for d in (b.lo, b.hi, -1, 1)
                    if d != 0 and b.lo <= d <= b.hi}
        if not divisors:
            return full
        corners = [_tdiv(x, d) for x in (a.lo, a.hi) for d in divisors]
        if a.lo <= type_.min_value and -1 in divisors:
            corners.append(type_.min_value)  # INT_MIN / -1 wraps to INT_MIN
        return _fits(min(corners), max(corners), full)
    if op == "srem":
        m = max(abs(b.lo), abs(b.hi))
        if m == 0:
            return full
        lo = 0 if a.lo >= 0 else max(a.lo, -(m - 1))
        hi = 0 if a.hi <= 0 else min(a.hi, m - 1)
        return Interval(lo, hi)
    if op == "and":
        if a.lo >= 0 and b.lo >= 0:
            return Interval(0, min(a.hi, b.hi))
        if a.lo >= 0:
            return Interval(0, a.hi)
        if b.lo >= 0:
            return Interval(0, b.hi)
        return full
    if op in ("or", "xor"):
        if a.lo >= 0 and b.lo >= 0:
            top = max(a.hi, b.hi)
            ceiling = (1 << top.bit_length()) - 1
            lo = max(a.lo, b.lo) if op == "or" else 0
            return _fits(lo, ceiling, full)
        return full
    if op == "shl":
        if 0 <= b.lo and b.hi <= bits - 1:
            corners = [a.lo << b.lo, a.lo << b.hi, a.hi << b.lo, a.hi << b.hi]
            return _fits(min(corners), max(corners), full)
        return full  # shift amount gets masked; bounds scramble
    if op == "ashr":
        if 0 <= b.lo and b.hi <= bits - 1:
            corners = [a.lo >> b.lo, a.lo >> b.hi, a.hi >> b.lo, a.hi >> b.hi]
            return Interval(min(corners), max(corners))
        return full
    if op == "lshr":
        if 0 <= b.lo and b.hi <= bits - 1:
            if a.lo >= 0:
                return Interval(a.lo >> b.hi, a.hi >> b.lo)
            if b.lo >= 1:
                return Interval(0, ((1 << bits) - 1) >> b.lo)
        return full
    if op == "smin":
        return Interval(min(a.lo, b.lo), min(a.hi, b.hi))
    if op == "smax":
        return Interval(max(a.lo, b.lo), max(a.hi, b.hi))
    return full


def transfer_icmp(predicate: str, a: Optional[Interval],
                  b: Optional[Interval]) -> Interval:
    """icmp result: [0, 1], pinned when the ranges decide the comparison."""
    if a is None or b is None:
        return Interval(0, 1)
    decided = {
        "eq": (1, 1) if a.is_singleton() and a == b else
              ((0, 0) if a.meet(b) is None else None),
        "ne": (0, 0) if a.is_singleton() and a == b else
              ((1, 1) if a.meet(b) is None else None),
        "slt": (1, 1) if a.hi < b.lo else ((0, 0) if a.lo >= b.hi else None),
        "sle": (1, 1) if a.hi <= b.lo else ((0, 0) if a.lo > b.hi else None),
        "sgt": (1, 1) if a.lo > b.hi else ((0, 0) if a.hi <= b.lo else None),
        "sge": (1, 1) if a.lo >= b.hi else ((0, 0) if a.hi < b.lo else None),
    }.get(predicate)
    if decided is None:
        return Interval(0, 1)
    return Interval(*decided)


def transfer_cast(kind: str, value: Optional[Interval], src_type,
                  to_type) -> Optional[Interval]:
    full = full_range(to_type)
    if full is None:
        return None  # sitofp / bitcast-to-float: not an integer result
    if kind == "fptosi" or value is None:
        return full
    if kind == "bitcast":
        if isinstance(src_type, IntType) and src_type.bits == to_type.bits:
            return value
        return full
    # opsem implements trunc/sext/zext uniformly as to_type.wrap(value):
    # widening casts preserve the signed value (including "zext"), and
    # trunc keeps it when it already fits.
    if full.lo <= value.lo and value.hi <= full.hi:
        return value
    return full


_NEGATE = {"eq": "ne", "ne": "eq", "slt": "sge", "sge": "slt",
           "sle": "sgt", "sgt": "sle"}


def _at_most(interval: Interval, bound: int) -> Optional[Interval]:
    if interval.lo > bound:
        return None
    return Interval(interval.lo, min(interval.hi, bound))


def _at_least(interval: Interval, bound: int) -> Optional[Interval]:
    if interval.hi < bound:
        return None
    return Interval(max(interval.lo, bound), interval.hi)


def refine_by_predicate(predicate: str, a: Interval,
                        b: Interval) -> Tuple[Optional[Interval], Optional[Interval]]:
    """Refined (a, b) assuming ``a <predicate> b`` holds; None = infeasible."""
    if predicate == "eq":
        met = a.meet(b)
        return met, met
    if predicate == "ne":
        return a, b  # intervals cannot represent a hole
    if predicate == "slt":
        return _at_most(a, b.hi - 1), _at_least(b, a.lo + 1)
    if predicate == "sle":
        return _at_most(a, b.hi), _at_least(b, a.lo)
    if predicate == "sgt":
        return _at_least(a, b.lo + 1), _at_most(b, a.hi - 1)
    if predicate == "sge":
        return _at_least(a, b.lo), _at_most(b, a.hi)
    return a, b


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------

@dataclass
class ModuleRanges:
    """Inferred intervals for one module, plus per-cell/channel widths.

    ``value_ranges`` maps every integer-typed instruction/argument to a
    sound interval; ``cell_ranges`` maps register and frame allocas to the
    interval of values the cell can ever hold.
    """

    module: object
    entry: Optional[str] = None
    value_ranges: Dict[Value, Interval] = field(default_factory=dict)
    cell_ranges: Dict[Alloca, Interval] = field(default_factory=dict)
    arg_ranges: Dict[Function, List[Optional[Interval]]] = field(default_factory=dict)
    ret_ranges: Dict[Function, Optional[Interval]] = field(default_factory=dict)

    def range_of(self, value: Value) -> Optional[Interval]:
        """Sound interval for ``value``, or None for non-integer values."""
        if isinstance(value, Constant):
            if isinstance(value.type, IntType):
                return Interval(value.value, value.value)
            return None
        found = self.value_ranges.get(value)
        if found is not None:
            return found
        return full_range(value.type)

    def bits_of(self, value: Value) -> Optional[int]:
        interval = self.range_of(value)
        return None if interval is None else bits_for(interval)

    def cell_bits(self, alloca: Alloca) -> Optional[int]:
        interval = self.cell_ranges.get(alloca)
        return None if interval is None else bits_for(interval)

    def channel_bits(self, task) -> List[int]:
        """Minimal payload width, in bits, of each spawn-channel argument
        of ``task`` (declared type width when nothing narrower is known)."""
        widths = []
        for value in task.args:
            inferred = self.bits_of(value)
            declared = value.type.size_bytes * 8
            widths.append(min(inferred, declared) if inferred else declared)
        return widths


# ---------------------------------------------------------------------------
# Per-function flow-sensitive analysis
# ---------------------------------------------------------------------------

class _FunctionAnalysis:
    """One function's interval fixpoint, parameterised by summaries."""

    def __init__(self, function: Function, summaries: "_Summaries"):
        self.fn = function
        self.summaries = summaries
        self.rpo = reverse_post_order(function)
        self.preds = predecessor_map(function)
        self.headers = {loop.header for loop in find_loops(function)}
        self.loops = find_loops(function)
        self.register_cells = self._find_register_cells()
        self.env: Dict[Value, Interval] = {}
        #: block -> facts at entry (cells + SSA refinements)
        self.in_facts: Dict[object, Dict[object, Interval]] = {}
        #: (pred, succ) -> facts propagated along that edge
        self.edge_facts: Dict[Tuple[object, object], Dict[object, Interval]] = {}
        self._join_counts: Dict[object, int] = {}
        #: (loop, cell, bound) accumulator clamps from the trip refinement
        self._acc_clamps: List[tuple] = []

    def _find_register_cells(self) -> Set[Alloca]:
        cells = set()
        for inst in self.fn.instructions():
            if isinstance(inst, Alloca) and not inst.in_frame:
                if isinstance(inst.allocated_type, IntType):
                    cells.add(inst)
        return cells

    # -- operand evaluation --------------------------------------------------

    def _operand(self, value: Value, facts: Dict[object, Interval]) -> Optional[Interval]:
        if isinstance(value, Constant):
            if isinstance(value.type, IntType):
                return Interval(value.value, value.value)
            return None
        base = None
        if isinstance(value, Argument):
            args = self.summaries.arg_ranges.get(self.fn)
            if args is not None and value.index < len(args):
                base = args[value.index]
            if base is None:
                base = full_range(value.type)
        else:
            base = self.env.get(value, full_range(value.type))
        if base is None:
            return None
        refined = facts.get(value)
        if refined is not None:
            met = base.meet(refined)
            return met if met is not None else refined
        return base

    # -- block transfer ------------------------------------------------------

    def _transfer(self, block, facts: Dict[object, Interval]):
        """Run the block; returns per-successor out-facts.  ``facts`` is
        mutated as stores update cells; SSA results land in ``self.env``."""
        facts = dict(facts)
        #: cell -> index of last Store to it in this block (branch-refine guard)
        last_store_pos: Dict[Alloca, int] = {}
        load_pos: Dict[Instruction, int] = {}

        for pos, inst in enumerate(block.instructions):
            if isinstance(inst, BinaryOp):
                if isinstance(inst.type, IntType):
                    a = self._operand(inst.lhs, facts)
                    b = self._operand(inst.rhs, facts)
                    if a is None or b is None:
                        result = full_range(inst.type)
                    else:
                        result = transfer_binop(inst.op, a, b, inst.type)
                    self.env[inst] = result
            elif isinstance(inst, ICmp):
                self.env[inst] = transfer_icmp(
                    inst.predicate,
                    self._operand(inst.lhs, facts),
                    self._operand(inst.rhs, facts))
            elif isinstance(inst, FCmp):
                self.env[inst] = Interval(0, 1)
            elif isinstance(inst, Select):
                if isinstance(inst.type, IntType):
                    cond = self._operand(inst.operands[0], facts)
                    t = self._operand(inst.operands[1], facts)
                    f = self._operand(inst.operands[2], facts)
                    if cond == Interval(1, 1):
                        result = t
                    elif cond == Interval(0, 0):
                        result = f
                    else:
                        result = t.join(f) if t and f else None
                    self.env[inst] = result or full_range(inst.type)
            elif isinstance(inst, Cast):
                result = transfer_cast(
                    inst.kind, self._operand(inst.operands[0], facts),
                    inst.operands[0].type, inst.type)
                if result is not None:
                    self.env[inst] = result
            elif isinstance(inst, Load):
                if isinstance(inst.type, IntType):
                    self.env[inst] = self._load_range(inst, facts)
                    load_pos[inst] = pos
            elif isinstance(inst, Store):
                self._store(inst, facts)
                ptr = inst.pointer
                if isinstance(ptr, Alloca):
                    last_store_pos[ptr] = pos
            elif isinstance(inst, Call):
                if isinstance(inst.type, IntType):
                    ret = self.summaries.ret_ranges.get(inst.callee)
                    self.env[inst] = ret or full_range(inst.type)

        return self._successor_facts(block, facts, last_store_pos, load_pos)

    def _load_range(self, inst: Load, facts) -> Interval:
        ptr = inst.pointer
        if isinstance(ptr, Alloca):
            if ptr in self.register_cells:
                cell = facts.get(ptr, Interval(0, 0))
                return cell
            interval = self.summaries.frame_cells.get(ptr)
            if interval is not None:
                return interval
        # real memory (arrays, globals): contents unknown, bounded by type
        return full_range(inst.type)

    def _store(self, inst: Store, facts):
        ptr = inst.pointer
        if isinstance(ptr, Alloca) and ptr in self.register_cells:
            stored = self._operand(inst.value, facts)
            if stored is None:
                stored = full_range(ptr.allocated_type)
            facts[ptr] = stored

    def _successor_facts(self, block, facts, last_store_pos, load_pos):
        term = block.terminator
        outs = {}
        if term is None:
            return outs

        if isinstance(term, CondBr) and isinstance(term.cond, ICmp):
            cmp_ = term.cond
            for succ, assume_true in ((term.if_true, True), (term.if_false, False)):
                branch = dict(facts)
                pred = cmp_.predicate if assume_true else _NEGATE[cmp_.predicate]
                a = self._operand(cmp_.lhs, facts)
                b = self._operand(cmp_.rhs, facts)
                if a is not None and b is not None:
                    ra, rb = refine_by_predicate(pred, a, b)
                    self._apply_refinement(branch, cmp_.lhs, ra, last_store_pos, load_pos)
                    self._apply_refinement(branch, cmp_.rhs, rb, last_store_pos, load_pos)
                # both-successors-same guard: join rather than overwrite
                if succ in outs:
                    outs[succ] = self._join_facts(outs[succ], branch)
                else:
                    outs[succ] = branch
            return outs

        for succ in term.successors():
            out = dict(facts)
            if isinstance(term, Detach) and succ is term.detached:
                # the detached region runs in its own task unit: register
                # cells it never wrote read as 0 there, so weaken to cover
                # both the inherited and the fresh-zero state.
                for key in list(out):
                    if isinstance(key, Alloca):
                        out[key] = out[key].join(Interval(0, 0))
            if succ in outs:
                outs[succ] = self._join_facts(outs[succ], out)
            else:
                outs[succ] = out
        return outs

    def _apply_refinement(self, branch, operand, refined, last_store_pos, load_pos):
        if refined is None or isinstance(operand, Constant):
            return
        current = branch.get(operand)
        branch[operand] = refined if current is None else (
            current.meet(refined) or refined)
        # Propagate to the register cell when the compared value is a load
        # of that cell in this same block with no intervening store.
        if isinstance(operand, Load):
            ptr = operand.pointer
            if (isinstance(ptr, Alloca) and ptr in self.register_cells
                    and operand in load_pos
                    and last_store_pos.get(ptr, -1) < load_pos[operand]):
                cell = branch.get(ptr, Interval(0, 0))
                branch[ptr] = cell.meet(refined) or refined

    @staticmethod
    def _join_facts(a: Dict[object, Interval], b: Dict[object, Interval]):
        """Pointwise join; a key missing on either side is dropped unless it
        is a cell (cells default to [0,0] only at function entry, so a
        missing cell here means 'unknown' and must widen to the join of
        what we have — dropping it is the sound default for SSA
        refinements, full type range is recovered lazily for cells)."""
        out = {}
        for key in a.keys() & b.keys():
            out[key] = a[key].join(b[key])
        for key in (a.keys() ^ b.keys()):
            if isinstance(key, Alloca):
                # one path never constrained the cell: fall back to type range
                source = a.get(key, b.get(key))
                cell_full = full_range(key.allocated_type)
                out[key] = source.join(cell_full) if cell_full else source
        return out

    # -- fixpoint ------------------------------------------------------------

    def run(self):
        entry_facts = {cell: Interval(0, 0) for cell in self.register_cells}
        self.in_facts = {self.fn.entry: entry_facts}
        worklist = list(self.rpo)
        visits = 0
        cap = max(200, 40 * len(self.rpo))
        while worklist:
            block = worklist.pop(0)
            facts = self.in_facts.get(block)
            if facts is None:
                continue
            visits += 1
            outs = self._transfer(block, facts)
            for succ, out in outs.items():
                self.edge_facts[(block, succ)] = out
                old = self.in_facts.get(succ)
                if old is None:
                    new = out
                else:
                    new = self._join_facts(old, out)
                    if succ in self.headers or visits > cap:
                        count = self._join_counts.get(succ, 0) + 1
                        self._join_counts[succ] = count
                        if count >= WIDEN_AFTER:
                            new = self._widen_facts(old, new)
                if new != old:
                    self.in_facts[succ] = new
                    if succ not in worklist:
                        worklist.append(succ)
        # narrowing: decreasing re-evaluation from the widened fixpoint
        for _ in range(NARROW_PASSES):
            changed = False
            for block in self.rpo:
                outs = self._transfer(block, self.in_facts.get(block, {}))
                for succ, out in outs.items():
                    self.edge_facts[(block, succ)] = out
            for block in self.rpo:
                if block is self.fn.entry:
                    continue
                incoming = [self.edge_facts[(p, block)]
                            for p in self.preds.get(block, [])
                            if (p, block) in self.edge_facts]
                if not incoming:
                    continue
                joined = incoming[0]
                for other in incoming[1:]:
                    joined = self._join_facts(joined, other)
                if joined != self.in_facts.get(block):
                    self.in_facts[block] = joined
                    changed = True
            if not changed:
                break
        # final clean pass so env reflects the converged facts
        for block in self.rpo:
            outs = self._transfer(block, self.in_facts.get(block, {}))
            for succ, out in outs.items():
                self.edge_facts[(block, succ)] = out
        self._refine_accumulators()
        if self._acc_clamps:
            # one more pass so downstream blocks (e.g. the post-loop return)
            # see the clamped cell ranges, then re-pin the in-loop values
            for block in self.rpo:
                outs = self._transfer(block, self.in_facts.get(block, {}))
                for succ, out in outs.items():
                    self.edge_facts[(block, succ)] = out
            for loop, cell, bound in self._acc_clamps:
                self._clamp_cell(loop, cell, bound)

    @staticmethod
    def _widen_facts(old, new):
        out = {}
        for key in old.keys() & new.keys():
            type_ = key.allocated_type if isinstance(key, Alloca) else key.type
            full = full_range(type_)
            out[key] = old[key].widen(new[key], full) if full else new[key]
        for key in (old.keys() ^ new.keys()):
            if isinstance(key, Alloca):
                full = full_range(key.allocated_type)
                if full:
                    out[key] = full
        return out

    # -- constant-trip accumulator refinement --------------------------------

    def _refine_accumulators(self):
        """Bound ``s = s +/- delta`` reductions in constant-trip loops:
        the widened fixpoint sends such accumulators to the type extreme,
        but ``T`` trips of a delta in ``[dlo, dhi]`` keep them inside
        ``s_entry + T * [min(0, dlo), max(0, dhi)]``."""
        for loop in self.loops:
            trip = self._trip_bound(loop)
            if trip is None:
                continue
            induction_cell, trips = trip
            for cell in self.register_cells:
                if cell is induction_cell:
                    continue
                bound = self._accumulator_bound(loop, cell, trips)
                if bound is None:
                    continue
                self._acc_clamps.append((loop, cell, bound))
                self._clamp_cell(loop, cell, bound)

    def _loop_entry_facts(self, loop):
        incoming = []
        for pred in self.preds.get(loop.header, []):
            if pred in loop.blocks:
                continue
            facts = self.edge_facts.get((pred, loop.header))
            if facts is not None:
                incoming.append(facts)
        if loop.header is self.fn.entry:
            incoming.append({cell: Interval(0, 0) for cell in self.register_cells})
        if not incoming:
            return None
        joined = incoming[0]
        for other in incoming[1:]:
            joined = self._join_facts(joined, other)
        return joined

    def _trip_bound(self, loop) -> Optional[Tuple[Alloca, int]]:
        """(induction cell, max trips) for ``while (i <lt/le> K)`` loops
        whose only in-loop updates are ``i = i + positive-const``."""
        term = loop.header.terminator
        if not isinstance(term, CondBr) or not isinstance(term.cond, ICmp):
            return None
        cmp_ = term.cond
        if cmp_.predicate not in ("slt", "sle"):
            return None
        if not isinstance(cmp_.lhs, Load) or not isinstance(cmp_.rhs, Constant):
            return None
        cell = cmp_.lhs.pointer
        if not isinstance(cell, Alloca) or cell not in self.register_cells:
            return None
        if cmp_.lhs.parent is not loop.header or term.if_true in (None,):
            return None
        if term.if_true not in loop.blocks:
            return None  # loop continues on the false edge: unusual, skip
        limit = cmp_.rhs.value + (1 if cmp_.predicate == "sle" else 0)
        step = None
        for block in loop.blocks:
            for inst in block.instructions:
                if isinstance(inst, Store) and inst.pointer is cell:
                    s = self._step_of(inst.value, cell)
                    if s is None or s <= 0 or (step is not None and s != step):
                        return None
                    step = s
        if step is None:
            return None
        entry = self._loop_entry_facts(loop)
        if entry is None:
            return None
        start = entry.get(cell, Interval(0, 0))
        trips = max(0, -(-(limit - start.lo) // step))  # ceil division
        return cell, trips

    @staticmethod
    def _step_of(value: Value, cell: Alloca) -> Optional[int]:
        """``value`` is ``load cell + const`` -> the constant, else None."""
        if not isinstance(value, BinaryOp) or value.op != "add":
            return None
        lhs, rhs = value.lhs, value.rhs
        for a, b in ((lhs, rhs), (rhs, lhs)):
            if (isinstance(a, Load) and a.pointer is cell
                    and isinstance(b, Constant)):
                return b.value
        return None

    def _accumulator_bound(self, loop, cell: Alloca, trips: int) -> Optional[Interval]:
        deltas = []
        stores = []
        for block in loop.blocks:
            for inst in block.instructions:
                if isinstance(inst, Store) and inst.pointer is cell:
                    stores.append(inst)
        if not stores:
            return None
        for store in stores:
            value = store.value
            if not isinstance(value, BinaryOp) or value.op not in ("add", "sub"):
                return None
            lhs, rhs = value.lhs, value.rhs
            if isinstance(lhs, Load) and lhs.pointer is cell:
                delta = rhs
            elif (value.op == "add" and isinstance(rhs, Load)
                  and rhs.pointer is cell):
                delta = lhs
            else:
                return None
            if self._depends_on_cell(delta, cell):
                return None
            drange = self.env.get(delta) if isinstance(delta, Instruction) else (
                Interval(delta.value, delta.value)
                if isinstance(delta, Constant) and isinstance(delta.type, IntType)
                else None)
            if drange is None:
                return None
            if value.op == "sub":
                drange = Interval(-drange.hi, -drange.lo)
            deltas.append(drange)
        entry = self._loop_entry_facts(loop)
        if entry is None:
            return None
        start = entry.get(cell, Interval(0, 0))
        dlo = min(d.lo for d in deltas)
        dhi = max(d.hi for d in deltas)
        lo = start.lo + trips * min(0, dlo)
        hi = start.hi + trips * max(0, dhi)
        full = full_range(cell.allocated_type)
        if full is None or lo < full.lo or hi > full.hi:
            return None  # could genuinely wrap: keep the widened range
        return Interval(lo, hi)

    def _depends_on_cell(self, value: Value, cell: Alloca, depth: int = 0) -> bool:
        if depth > 16:
            return True  # conservatively assume dependence
        if isinstance(value, Load) and value.pointer is cell:
            return True
        if isinstance(value, Instruction):
            return any(self._depends_on_cell(op, cell, depth + 1)
                       for op in value.operands)
        return False

    def _clamp_cell(self, loop, cell: Alloca, bound: Interval):
        """Meet the cell, in-loop loads of it, and the accumulating stores'
        values with ``bound`` (all stay within it for any <=T trips)."""
        for block in loop.blocks:
            for inst in block.instructions:
                if isinstance(inst, Load) and inst.pointer is cell:
                    old = self.env.get(inst)
                    if old is not None:
                        self.env[inst] = old.meet(bound) or bound
                elif isinstance(inst, Store) and inst.pointer is cell:
                    value = inst.value
                    if isinstance(value, Instruction):
                        old = self.env.get(value)
                        if old is not None:
                            self.env[value] = old.meet(bound) or bound
        for facts in list(self.in_facts.values()) + list(self.edge_facts.values()):
            old = facts.get(cell)
            if old is not None:
                facts[cell] = old.meet(bound) or bound

    # -- summary extraction ---------------------------------------------------

    def cell_summary(self) -> Dict[Alloca, Interval]:
        """Join of every value each register cell can hold."""
        out: Dict[Alloca, Interval] = {}
        for cell in self.register_cells:
            joined = Interval(0, 0)  # initial contents
            for facts in self.edge_facts.values():
                held = facts.get(cell)
                if held is not None:
                    joined = joined.join(held)
            for facts in self.in_facts.values():
                held = facts.get(cell)
                if held is not None:
                    joined = joined.join(held)
            out[cell] = joined
        return out

    def ret_summary(self) -> Optional[Interval]:
        if not isinstance(self.fn.return_type, IntType):
            return None
        joined = None
        for block in self.fn.blocks:
            term = block.terminator
            if isinstance(term, Ret) and term.value is not None:
                facts = self.in_facts.get(block)
                if facts is None:
                    continue  # unreachable return
                interval = self._operand(term.value, dict(facts))
                if interval is None:
                    return full_range(self.fn.return_type)
                joined = interval if joined is None else joined.join(interval)
        return joined if joined is not None else full_range(self.fn.return_type)


# ---------------------------------------------------------------------------
# Interprocedural driver
# ---------------------------------------------------------------------------

class _Summaries:
    def __init__(self):
        self.arg_ranges: Dict[Function, List[Optional[Interval]]] = {}
        self.ret_ranges: Dict[Function, Optional[Interval]] = {}
        self.frame_cells: Dict[Alloca, Interval] = {}


def _frame_cell_escapes(alloca: Alloca, function: Function) -> bool:
    """True unless every use of the frame cell is a direct load or store
    address (the direct-spawn return path stores through it directly, so
    it stays non-escaping)."""
    for inst in function.instructions():
        for op in inst.operands:
            if op is not alloca:
                continue
            if isinstance(inst, Load) and inst.pointer is alloca:
                continue
            if isinstance(inst, Store) and inst.pointer is alloca and inst.value is not alloca:
                continue
            return True
    return False


def infer_module_ranges(module, design=None, entry: Optional[str] = None) -> ModuleRanges:
    """Infer sound intervals for every integer value in ``module``.

    ``entry`` names the only host-invocable function: its arguments are
    unconstrained, while every other function's arguments are the join of
    its spawn/call-site argument ranges.  With ``entry=None`` (the build
    gate, where any function may be offloaded) all function arguments are
    unconstrained.  ``design`` (a GeneratedDesign) supplies direct-spawn
    return-pointer wiring for frame-cell ranges.
    """
    summaries = _Summaries()
    entry_fn = None
    if entry is not None:
        for function in module.functions:
            if function.name == entry:
                entry_fn = function
    for function in module.functions:
        if entry_fn is None or function is entry_fn:
            summaries.arg_ranges[function] = [
                full_range(a.type) for a in function.arguments]
        else:
            summaries.arg_ranges[function] = [None] * len(function.arguments)

    analyses: Dict[Function, _FunctionAnalysis] = {}
    prev_state = None
    for round_no in range(SUMMARY_ROUNDS + 2):
        analyses = {}
        for function in module.functions:
            analysis = _FunctionAnalysis(function, summaries)
            analysis.run()
            analyses[function] = analysis
        # recompute summaries from this round's results
        new_rets: Dict[Function, Optional[Interval]] = {}
        for function, analysis in analyses.items():
            new_rets[function] = analysis.ret_summary()
        new_args: Dict[Function, List[Optional[Interval]]] = {}
        for function in module.functions:
            if entry_fn is None or function is entry_fn:
                new_args[function] = [full_range(a.type) for a in function.arguments]
            else:
                new_args[function] = [None] * len(function.arguments)
        if entry_fn is not None:
            for function, analysis in analyses.items():
                for inst in function.instructions():
                    callee = None
                    args = ()
                    if isinstance(inst, Call):
                        callee, args = inst.callee, inst.args
                    if callee is None or callee is entry_fn:
                        continue
                    self_args = new_args[callee]
                    for i, arg in enumerate(args):
                        interval = analysis.env.get(arg) if isinstance(arg, Instruction) \
                            else analysis._operand(arg, {})
                        if interval is None:
                            interval = full_range(arg.type)
                        if interval is None:
                            continue
                        current = self_args[i]
                        self_args[i] = interval if current is None else current.join(interval)
                if design is not None:
                    for task in design.graph.tasks:
                        if task.function is not function:
                            continue
                        for spawn in task.direct_spawns.values():
                            if spawn.callee is entry_fn:
                                continue
                            self_args = new_args[spawn.callee]
                            for i, arg in enumerate(spawn.args):
                                interval = analysis.env.get(arg) \
                                    if isinstance(arg, Instruction) \
                                    else analysis._operand(arg, {})
                                if interval is None:
                                    interval = full_range(arg.type)
                                if interval is None:
                                    continue
                                current = self_args[i]
                                self_args[i] = interval if current is None \
                                    else current.join(interval)
            # a function nobody calls keeps None args; treat as unreachable
            # but analyse with full ranges for reporting
            for function in module.functions:
                new_args[function] = [
                    (a if a is not None else full_range(arg.type))
                    for a, arg in zip(new_args[function], function.arguments)]
        # frame cells: direct stores + spawn returns
        new_frames: Dict[Alloca, Interval] = {}
        spawn_writers: Dict[Alloca, List[Function]] = {}
        if design is not None:
            for task in design.graph.tasks:
                for spawn in task.direct_spawns.values():
                    if isinstance(spawn.ret_ptr, Alloca):
                        spawn_writers.setdefault(spawn.ret_ptr, []).append(spawn.callee)
        for function, analysis in analyses.items():
            for inst in function.instructions():
                if not isinstance(inst, Alloca) or not inst.in_frame:
                    continue
                if not isinstance(inst.allocated_type, IntType):
                    continue
                full = full_range(inst.allocated_type)
                if _frame_cell_escapes(inst, function):
                    new_frames[inst] = full
                    continue
                joined = Interval(0, 0)
                for user in function.instructions():
                    if isinstance(user, Store) and user.pointer is inst:
                        stored = analysis.env.get(user.value) \
                            if isinstance(user.value, Instruction) \
                            else analysis._operand(user.value, {})
                        joined = joined.join(stored if stored else full)
                for callee in spawn_writers.get(inst, []):
                    ret = new_rets.get(callee)
                    joined = joined.join(ret if ret else full)
                new_frames[inst] = joined

        state = (
            {f.name: r for f, r in new_rets.items()},
            {f.name: list(map(repr, a)) for f, a in new_args.items()},
            {id(k): repr(v) for k, v in new_frames.items()},
        )
        converged = state == prev_state
        if round_no >= SUMMARY_ROUNDS and not converged:
            # force-widen unstable summaries so the loop terminates soundly
            for function in module.functions:
                old = summaries.ret_ranges.get(function)
                if old != new_rets.get(function):
                    new_rets[function] = full_range(function.return_type)
                old_args = summaries.arg_ranges.get(function, [])
                for i, arg in enumerate(function.arguments):
                    if i < len(old_args) and old_args[i] != new_args[function][i]:
                        new_args[function][i] = full_range(arg.type)
            for cell, interval in list(new_frames.items()):
                if summaries.frame_cells.get(cell) != interval:
                    new_frames[cell] = full_range(cell.allocated_type)
            summaries.ret_ranges = new_rets
            summaries.arg_ranges = new_args
            summaries.frame_cells = new_frames
            # one last round under the widened summaries
            analyses = {}
            for function in module.functions:
                analysis = _FunctionAnalysis(function, summaries)
                analysis.run()
                analyses[function] = analysis
            break
        summaries.ret_ranges = new_rets
        summaries.arg_ranges = new_args
        summaries.frame_cells = new_frames
        if converged:
            break
        prev_state = state

    result = ModuleRanges(module=module, entry=entry)
    result.arg_ranges = dict(summaries.arg_ranges)
    result.ret_ranges = dict(summaries.ret_ranges)
    for function, analysis in analyses.items():
        for value, interval in analysis.env.items():
            if isinstance(value.type, IntType):
                result.value_ranges[value] = interval
        for arg, interval in zip(function.arguments,
                                 summaries.arg_ranges.get(function, [])):
            if interval is not None:
                result.value_ranges[arg] = interval
        result.cell_ranges.update(analysis.cell_summary())
    for cell, interval in summaries.frame_cells.items():
        result.cell_ranges[cell] = interval
    return result


def infer_design_ranges(design, entry: Optional[str] = None) -> ModuleRanges:
    """Range analysis for a :class:`~repro.accel.generator.GeneratedDesign`
    (post-optimisation module + task graph, i.e. exactly what the TXUs
    execute)."""
    return infer_module_ranges(design.module, design=design, entry=entry)
