"""Multicore CPU baseline: the paper's Intel i7 quad-core running Cilk.

The evaluation (§V, Figs 13/16/17) compares TAPAS accelerators against the
*same* Cilk programs on an i7-3.4 GHz. We mirror that by executing the
same IR under a software cost model:

1. A functional interpreter walks the IR, building the dynamic task tree
   and charging per-instruction costs (superscalar-adjusted cycles).
2. Loop-spawned children are grain-coarsened the way the Cilk runtime
   coarsens ``cilk_for`` (recursive range splitting: ~8 chunks per core
   rather than one task per iteration).
3. Runtime on P cores follows the greedy-scheduler bound the Cilk papers
   prove: ``T_P <= T_1 / P + T_inf`` (work / span).

Spawn overhead dominates fine-grain tasks — which is exactly the effect
Fig 13's flat "Software" line shows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import SimulationError
from repro.ir.instructions import (
    GEP,
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    CondBr,
    Detach,
    FCmp,
    ICmp,
    Load,
    Reattach,
    Ret,
    Select,
    Store,
    Sync,
)
from repro.ir.module import Module
from repro.ir.opsem import (
    eval_binop,
    eval_cast,
    eval_fcmp,
    eval_gep,
    eval_icmp,
)
from repro.ir.values import Constant, GlobalVariable, Value
from repro.memory.backing import MainMemory
from repro.passes.dataflow_graph import classify


@dataclass
class CPUCostModel:
    """Per-operation costs in core clock cycles (IPC-adjusted)."""

    frequency_ghz: float = 3.4
    cores: int = 4
    op_cycles: Dict[str, float] = field(default_factory=lambda: {
        "alu": 0.4,        # multi-issue integer
        "gep": 0.3,
        "mul": 1.0,
        "div": 8.0,
        "falu": 1.0,
        "fmul": 1.2,
        "fdiv": 8.0,
        "load": 1.6,       # big L1/L2: near-hit average
        "store": 1.0,
        "regread": 0.2,    # register-allocated after mem2reg
        "regwrite": 0.2,
        "nop": 0.0,
        "control": 0.6,
        "call": 6.0,
        "spawn": 0.0,      # charged separately below
        "sync": 0.0,
    })
    #: parent-side cost of cilk_spawn (frame push, deque ops)
    spawn_overhead_cycles: float = 110.0
    #: child-side cost (steal / resume, cache cold start)
    sched_overhead_cycles: float = 220.0
    #: per-stage-task bookkeeping of an on-the-fly pipeline (Cilk-P
    #: throttling + ordered-stage tracking; Lee et al. 2015 report
    #: per-iteration pipeline overheads in the ~0.5 microsecond range).
    #: Charged to function tasks spawned one-per-iteration from a dynamic
    #: loop — the dedup pattern — which cannot be grain-coarsened.
    pipeline_overhead_cycles: float = 1400.0
    #: cilk_for grain coarsening: ~8 stealable chunks per core
    loop_chunks_per_core: int = 8

    @property
    def loop_chunks(self) -> int:
        return self.loop_chunks_per_core * self.cores

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.frequency_ghz * 1e9)


@dataclass
class TaskNode:
    """One dynamic task in the executed tree.

    ``kind`` drives the overhead model:
      * ``region_loop`` — cilk_for-style iteration region: the Cilk
        runtime grain-coarsens these (divide-and-conquer range split);
      * ``direct_loop`` — a function spawned per-iteration from a dynamic
        loop (the Cilk-P pipeline pattern): full per-task overhead plus
        pipeline bookkeeping, never coarsened;
      * ``plain`` — an ordinary cilk_spawn (recursion etc.).
    """

    name: str
    work_cycles: float = 0.0            # own straight-line cost
    children: List["TaskNode"] = field(default_factory=list)
    kind: str = "plain"

    def total_tasks(self) -> int:
        return 1 + sum(c.total_tasks() for c in self.children)


@dataclass
class CPURunResult:
    retval: Any
    root: TaskNode
    t1_cycles: float       # total work
    tinf_cycles: float     # span (critical path)
    tp_cycles: float       # greedy bound on P cores
    dynamic_tasks: int

    def time_seconds(self, model: CPUCostModel) -> float:
        return model.cycles_to_seconds(self.tp_cycles)


class _RegSlot:
    __slots__ = ("alloca",)

    def __init__(self, alloca):
        self.alloca = alloca


class MulticoreCPU:
    """Functional interpreter + Cilk cost model over a module."""

    MAX_STEPS = 50_000_000

    def __init__(self, module: Module, memory: Optional[MainMemory] = None,
                 model: Optional[CPUCostModel] = None):
        self.module = module
        self.memory = memory or MainMemory()
        self.model = model or CPUCostModel()
        self._steps = 0
        self._loop_detaches_cache: Dict[Any, bool] = {}
        for var in module.globals:
            if var.address is None:
                var.address = self.memory.alloc(var.size_bytes)

    # -- public API ----------------------------------------------------------

    def run(self, function_name: str, args) -> CPURunResult:
        function = self.module.function(function_name)
        if function is None:
            raise SimulationError(f"no function {function_name}")
        self._steps = 0
        root = TaskNode(name=function_name)
        retval = self._run_function(function, list(args), root)
        t1 = self._work(root)
        tinf = self._span(root)
        tp = t1 / self.model.cores + tinf
        return CPURunResult(retval=retval, root=root, t1_cycles=t1,
                            tinf_cycles=tinf, tp_cycles=tp,
                            dynamic_tasks=root.total_tasks())

    # -- cost aggregation --------------------------------------------------

    def _effective_children(self, node: TaskNode):
        """Group coarsenable loop children into Cilk-style grains."""
        loop_kids = [c for c in node.children if c.kind == "region_loop"]
        other_kids = [c for c in node.children if c.kind != "region_loop"]
        if not loop_kids:
            return other_kids, []
        chunks = min(len(loop_kids), self.model.loop_chunks)
        per_chunk = max(1, len(loop_kids) // chunks)
        grouped = []
        for start in range(0, len(loop_kids), per_chunk):
            grouped.append(loop_kids[start:start + per_chunk])
        return other_kids, grouped

    def _child_overhead(self, child: TaskNode) -> float:
        extra = (self.model.pipeline_overhead_cycles
                 if child.kind == "direct_loop" else 0.0)
        return (self.model.spawn_overhead_cycles
                + self.model.sched_overhead_cycles + extra)

    def _work(self, node: TaskNode) -> float:
        singles, grains = self._effective_children(node)
        total = node.work_cycles
        for child in singles:
            total += self._child_overhead(child) + self._work(child)
        for grain in grains:
            total += (self.model.spawn_overhead_cycles
                      + self.model.sched_overhead_cycles)
            total += sum(self._work(c) for c in grain)
        return total

    def _span(self, node: TaskNode) -> float:
        singles, grains = self._effective_children(node)
        best_child = 0.0
        for child in singles:
            best_child = max(best_child,
                             self.model.sched_overhead_cycles + self._span(child))
        for grain in grains:
            grain_span = (self.model.sched_overhead_cycles
                          + sum(self._span(c) for c in grain))
            best_child = max(best_child, grain_span)
        spawn_cost = (len(singles) + len(grains)) * self.model.spawn_overhead_cycles
        return node.work_cycles + spawn_cost + best_child

    # -- interpretation ---------------------------------------------------

    def _charge(self, node: TaskNode, inst):
        node.work_cycles += self.model.op_cycles.get(classify(inst), 0.5)

    def _resolve(self, env, value: Value):
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, GlobalVariable):
            return value.address
        if value in env:
            return env[value]
        raise SimulationError(f"CPU interp: {value.short()} unavailable")

    def _run_function(self, function, args, node: TaskNode):
        env = {}
        regs = {}
        for formal, actual in zip(function.arguments, args):
            env[formal] = actual
        return self._run_region(function.entry, env, regs, node,
                                stop_reattach=False)

    def _run_region(self, entry, env, regs, node: TaskNode,
                    stop_reattach: bool):
        """Interpret from ``entry`` until ret (function) or reattach
        (detached region). Returns the ret value (or None)."""
        block = entry
        while True:
            for inst in block.body():
                self._step(inst, env, regs, node)
            term = block.terminator
            self._charge(node, term)
            self._steps += 1
            if self._steps > self.MAX_STEPS:
                raise SimulationError("CPU interpretation exceeded step limit")

            if isinstance(term, Ret):
                return self._resolve(env, term.value) if term.value is not None else None
            if isinstance(term, Reattach):
                if not stop_reattach:
                    raise SimulationError("reattach outside detached region")
                return None
            if isinstance(term, Br):
                block = term.dest
            elif isinstance(term, CondBr):
                block = term.if_true if self._resolve(env, term.cond) else term.if_false
            elif isinstance(term, Sync):
                block = term.continuation
            elif isinstance(term, Detach):
                child = TaskNode(name=f"{node.name}.child",
                                 kind=self._detach_kind(term))
                node.children.append(child)
                # children run to completion here (functionally equivalent:
                # parent syncs before consuming results)
                self._run_region(term.detached, env, regs, child,
                                 stop_reattach=True)
                block = term.continuation
            else:
                raise SimulationError(f"CPU interp: bad terminator {term.opcode}")

    def _detach_kind(self, detach: Detach) -> str:
        cached = self._loop_detaches_cache.get(detach)
        if cached is not None:
            return cached
        from repro.passes.loops import find_loops

        function = detach.parent.parent
        in_loop = any(detach.parent in loop.blocks
                      for loop in find_loops(function))
        if not in_loop:
            kind = "plain"
        else:
            # a detached region of just [call (, store)?; reattach] is
            # `spawn f(...)` — the Cilk-P pipeline pattern when looped
            body = detach.detached.body()
            is_direct = (isinstance(detach.detached.terminator, Reattach)
                         and len(body) in (1, 2)
                         and isinstance(body[0], Call))
            kind = "direct_loop" if is_direct else "region_loop"
        self._loop_detaches_cache[detach] = kind
        return kind

    def _step(self, inst, env, regs, node: TaskNode):
        self._charge(node, inst)
        self._steps += 1
        if self._steps > self.MAX_STEPS:
            raise SimulationError("CPU interpretation exceeded step limit")

        if isinstance(inst, Alloca):
            if inst.in_frame:
                # software: just a stack slot; allocate a real address
                env[inst] = self.memory.alloc(
                    max(1, inst.allocated_type.size_bytes))
            else:
                env[inst] = _RegSlot(inst)
        elif isinstance(inst, BinaryOp):
            env[inst] = eval_binop(inst.op, inst.type,
                                   self._resolve(env, inst.lhs),
                                   self._resolve(env, inst.rhs))
        elif isinstance(inst, ICmp):
            env[inst] = eval_icmp(inst.predicate,
                                  self._resolve(env, inst.lhs),
                                  self._resolve(env, inst.rhs))
        elif isinstance(inst, FCmp):
            env[inst] = eval_fcmp(inst.predicate,
                                  self._resolve(env, inst.operands[0]),
                                  self._resolve(env, inst.operands[1]))
        elif isinstance(inst, Select):
            cond, if_true, if_false = inst.operands
            env[inst] = (self._resolve(env, if_true)
                         if self._resolve(env, cond)
                         else self._resolve(env, if_false))
        elif isinstance(inst, Cast):
            env[inst] = eval_cast(inst.kind,
                                  self._resolve(env, inst.operands[0]),
                                  inst.type)
        elif isinstance(inst, GEP):
            base = self._resolve(env, inst.base)
            if isinstance(base, _RegSlot):
                raise SimulationError("GEP on register slot")
            env[inst] = eval_gep(base,
                                 [self._resolve(env, i) for i in inst.indices],
                                 inst.strides)
        elif isinstance(inst, Load):
            pointer = self._resolve(env, inst.pointer)
            if isinstance(pointer, _RegSlot):
                env[inst] = regs.get(pointer.alloca, 0)
            else:
                env[inst] = self.memory.read_value(pointer, inst.type)
        elif isinstance(inst, Store):
            pointer = self._resolve(env, inst.pointer)
            value = self._resolve(env, inst.value)
            if isinstance(pointer, _RegSlot):
                regs[pointer.alloca] = value
            else:
                self.memory.write_value(pointer, inst.value.type, value)
        elif isinstance(inst, Call):
            # serial call: same worker, costs roll into this node
            args = [self._resolve(env, a) for a in inst.args]
            result = self._run_function(inst.callee, args, node)
            if not inst.type.is_void():
                env[inst] = result
        else:
            raise SimulationError(f"CPU interp cannot execute {inst.opcode}")


def run_on_cpu(module: Module, function: str, args,
               memory: Optional[MainMemory] = None,
               model: Optional[CPUCostModel] = None) -> CPURunResult:
    """Convenience wrapper: interpret + cost one offload."""
    return MulticoreCPU(module, memory, model).run(function, args)
