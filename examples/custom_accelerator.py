"""Building your own accelerator: a histogram-style custom kernel.

Everything here is public API: write a kernel in the Cilk-like language,
pick Stage-3 parameters per task unit, inspect the generated RTL and the
resource/power estimate, then run against the CPU baseline — the same
workflow the paper's evaluation uses.

Run:  python examples/custom_accelerator.py
"""

from repro.accel import (
    CYCLONE_V,
    AcceleratorConfig,
    TaskUnitParams,
    build_accelerator,
    generate,
)
from repro.baselines import MulticoreCPU
from repro.frontend import compile_source
from repro.ir.types import I32
from repro.memory.backing import MainMemory
from repro.reports import (
    estimate_mhz,
    estimate_resources,
    fpga_power_watts,
)
from repro.rtl import emit_txu

SOURCE = """
// Per-bucket vote counting. Each parallel task scans the whole input
// for its own bucket, so buckets never race (one writer per slot).
func count_bucket(votes: i32*, counts: i32*, n: i32, bucket: i32) {
  var total: i32 = 0;
  for (var i: i32 = 0; i < n; i = i + 1) {
    if (votes[i] == bucket) {
      total = total + 1;
    }
  }
  counts[bucket] = total;
}

func histogram(votes: i32*, counts: i32*, n: i32, buckets: i32) {
  cilk_for (var b: i32 = 0; b < buckets; b = b + 1) {
    count_bucket(votes, counts, n, b);
  }
}
"""


def main():
    module = compile_source(SOURCE, "histogram")

    # Stage 3: the scanning worker gets the tiles; control stays at 1
    config = AcceleratorConfig(unit_params={
        "histogram": TaskUnitParams(ntiles=1),
        "count_bucket": TaskUnitParams(ntiles=4, queue_depth=16),
    })
    accel = build_accelerator(module, config)

    # host data: 256 votes over 8 buckets
    import random
    rng = random.Random(1)
    buckets = 8
    votes = [rng.randrange(buckets) for _ in range(256)]
    base_votes = accel.memory.alloc_array(I32, votes)
    base_counts = accel.memory.alloc_array(I32, [0] * buckets)

    result = accel.run("histogram", [base_votes, base_counts,
                                     len(votes), buckets])
    counts = accel.memory.read_array(base_counts, I32, buckets)
    expected = [votes.count(b) for b in range(buckets)]
    print("=== Custom accelerator: parallel histogram ===")
    print(f"counts  : {counts}")
    print(f"expected: {expected}")
    print(f"match   : {counts == expected}, cycles: {result.cycles}")

    # resource / power estimate (the Stage-3 report)
    report = estimate_resources(accel)
    mhz = estimate_mhz(CYCLONE_V, report.alms)
    watts = fpga_power_watts(report.alms, report.brams, mhz)
    print(f"\nestimate: {report.alms} ALMs, {report.brams} M20K, "
          f"{mhz:.0f} MHz, {watts:.2f} W on {CYCLONE_V.name}")

    # compare with the 4-core CPU model on the same IR
    memory = MainMemory(1 << 22)
    cpu = MulticoreCPU(compile_source(SOURCE, "histogram_cpu"), memory)
    cb = memory.alloc_array(I32, votes)
    cc = memory.alloc_array(I32, [0] * buckets)
    cpu_result = cpu.run("histogram", [cb, cc, len(votes), buckets])
    fpga_s = result.cycles / (mhz * 1e6)
    cpu_s = cpu_result.time_seconds(cpu.model)
    print(f"FPGA {fpga_s*1e6:.1f} us vs CPU {cpu_s*1e6:.1f} us "
          f"-> {cpu_s/fpga_s:.2f}x; perf/W gain ~"
          f"{(cpu_s * 48.0) / (fpga_s * watts):.0f}x")

    # peek at the generated dataflow for the worker
    design = generate(compile_source(SOURCE, "histogram_rtl"))
    print("\n=== Worker TXU (first lines of generated RTL) ===")
    print("\n".join(emit_txu(design.compiled_for("count_bucket"))
                    .splitlines()[:14]))


if __name__ == "__main__":
    main()
