"""Static analysis over the parallel IR (post Stage-1).

TAPAS synthesizes one accelerator per *static task graph*; a determinacy
race in the source program becomes a silicon-level data race between task
units sharing the cache. This package analyses the extracted task graph
*before* accelerator generation:

* :mod:`repro.analysis.mhp`     — may-happen-in-parallel facts from the
  detach/sync structure (which spawn subtrees overlap in time).
* :mod:`repro.analysis.memdep`  — affine memory-dependence / alias
  analysis over load/store/GEP chains, with per-function effect
  summaries so recursion (fib, mergesort) is handled.
* :mod:`repro.analysis.races`   — the determinacy-race detector that
  joins the two: MHP pairs whose footprints may alias with >=1 write.
* :mod:`repro.analysis.diagnostics` — structured diagnostics (codes,
  severities, source locations, text/JSON renderers).
* :mod:`repro.analysis.dynamic` — a trace-based dynamic checker that
  cross-validates the static verdicts against a simulation run.
"""

from repro.analysis.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    Diagnostic,
    DiagnosticReport,
)
from repro.analysis.races import (
    RaceFinding,
    analyze_design,
    analyze_module,
    analyze_task_graph,
    find_races,
)

__all__ = [
    "Diagnostic",
    "DiagnosticReport",
    "RaceFinding",
    "SEVERITY_ERROR",
    "SEVERITY_INFO",
    "SEVERITY_WARNING",
    "analyze_design",
    "analyze_module",
    "analyze_task_graph",
    "find_races",
]
