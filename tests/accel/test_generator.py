"""Unit tests for the Stage-1/2 generator (compile_task, GeneratedDesign)."""

import pytest

from repro.accel import AcceleratorConfig, TaskUnitParams, generate
from repro.accel.config import ARRIA_10, BOARDS, CYCLONE_V
from repro.errors import ConfigError
from repro.workloads import REGISTRY

from tests.irprograms import (
    build_fib_module,
    build_matrix_add_module,
    build_scale_module,
)


class TestGenerate:
    def test_design_has_one_compiled_task_per_graph_task(self):
        design = generate(build_matrix_add_module())
        assert len(design.compiled) == len(design.graph.tasks)
        assert [ct.sid for ct in design.compiled] == [0, 1, 2]

    def test_compiled_for_lookup(self):
        design = generate(build_matrix_add_module())
        assert design.compiled_for("matrix_add").sid == 0
        from repro.errors import SynthesisError

        with pytest.raises(SynthesisError, match="no task named"):
            design.compiled_for("ghost")

    def test_spawn_specs_carry_child_argument_order(self):
        design = generate(build_scale_module())
        root = design.compiled[0]
        child = design.compiled[1]
        (spec,) = root.spawn_specs.values()
        assert spec.dest_sid == child.sid
        assert spec.arg_values == child.arg_values

    def test_direct_spawn_specs_for_recursion(self):
        design = generate(build_fib_module())
        root = design.compiled[0]
        assert len(root.spawn_specs) == 2
        for spec in root.spawn_specs.values():
            assert spec.dest_sid == root.sid      # self-spawn
            assert spec.ret_ptr_value is not None

    def test_frame_layout_distinct_aligned_offsets(self):
        design = generate(build_fib_module())
        root = design.compiled[0]
        offsets = sorted(root.frame_offsets.values())
        assert offsets == [0, 4]
        assert root.frame_size == 8  # rounded to 8 bytes

    def test_no_frames_for_loop_tasks(self):
        design = generate(build_scale_module())
        assert all(ct.frame_size == 0 for ct in design.compiled)

    def test_dfgs_cover_every_owned_block(self):
        design = generate(build_matrix_add_module())
        for ct in design.compiled:
            assert set(ct.dfgs) == set(ct.blocks)
            assert ct.entry_block in ct.dfgs

    def test_call_specs(self):
        design = generate(REGISTRY.get("mergesort").fresh_module())
        ms = design.compiled_for("mergesort")
        (spec,) = ms.call_specs.values()
        assert spec.dest_sid == design.compiled_for("merge").sid
        assert len(spec.arg_values) == 4


class TestConfig:
    def test_params_for_falls_back_to_default(self):
        config = AcceleratorConfig(default_ntiles=3)
        assert config.params_for("anything").ntiles == 3

    def test_unit_override(self):
        config = AcceleratorConfig(
            default_ntiles=1,
            unit_params={"x": TaskUnitParams(ntiles=7, queue_depth=9)})
        assert config.params_for("x").ntiles == 7
        assert config.params_for("x").queue_depth == 9

    def test_with_tiles_rewrites_everything(self):
        config = AcceleratorConfig(
            unit_params={"x": TaskUnitParams(ntiles=2)})
        swept = config.with_tiles(8)
        assert swept.default_ntiles == 8
        assert swept.params_for("x").ntiles == 8
        assert config.params_for("x").ntiles == 2  # original untouched

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigError):
            TaskUnitParams(ntiles=0)
        with pytest.raises(ConfigError):
            TaskUnitParams(queue_depth=0)
        with pytest.raises(ConfigError):
            TaskUnitParams(max_inflight_per_tile=0)

    def test_boards_registry(self):
        assert BOARDS["Cyclone V"] is CYCLONE_V
        assert BOARDS["Arria 10"] is ARRIA_10
        assert ARRIA_10.alm_capacity > 5 * CYCLONE_V.alm_capacity

    def test_dram_latency_from_board(self):
        config = AcceleratorConfig(board=CYCLONE_V)
        # 270 ns at 185 MHz ~ 50 cycles
        assert 40 <= config.effective_dram_latency() <= 60
        fixed = AcceleratorConfig(dram_latency_cycles=33)
        assert fixed.effective_dram_latency() == 33


class TestOptimizeFlag:
    def test_optimize_shrinks_or_preserves_instruction_count(self):
        module_raw = REGISTRY.get("stencil").fresh_module()
        raw = sum(t.instruction_count()
                  for t in generate(module_raw, optimize=False).graph.tasks)
        module_opt = REGISTRY.get("stencil").fresh_module()
        opt = sum(t.instruction_count()
                  for t in generate(module_opt, optimize=True).graph.tasks)
        assert opt <= raw
