"""Ablation: task-queue scheduling and sizing design choices.

The queue dispatch policy (DESIGN.md: LIFO for recursion, mirroring a
work-first Cilk scheduler) and the Ntasks depth bound the live spawn
tree; these runs quantify both effects on the recursive benchmarks.
"""

import sweeplib

from repro.accel import AcceleratorConfig, TaskUnitParams
from repro.errors import DeadlockError
from repro.exp import register_evaluator
from repro.reports import render_table, sweep_record
from repro.workloads import REGISTRY, fib_reference


def _eval_fib_queue(spec):
    """fib(n) under a given queue depth/policy; an undersized queue is
    reported as a ``livelock`` outcome, not a failed point — the
    deadlock *is* the measurement."""
    workload = REGISTRY.get("fibonacci")
    config = AcceleratorConfig(unit_params={
        "fib": TaskUnitParams(ntiles=spec["tiles"],
                              queue_depth=spec["queue_depth"],
                              policy=spec["policy"])})
    accel = workload.build(config)
    try:
        result = accel.run("fib", [spec["n"]])
    except DeadlockError:
        return {"outcome": "livelock", "cycles": None, "peak": None}
    assert result.retval == fib_reference(spec["n"])
    peak = accel.units[0].queue.stats()["peak_occupancy"]
    return {"outcome": "ok", "cycles": result.cycles, "peak": peak}


register_evaluator("ablation_fib_queue", _eval_fib_queue,
                   program_text=sweeplib.file_program_text(__file__))


def _point(n, queue_depth, policy, tiles=4):
    return {"evaluator": "ablation_fib_queue", "n": n,
            "queue_depth": queue_depth, "policy": policy, "tiles": tiles}


def test_ablation_queue_policy(benchmark, save_result, save_json,
                               sweep_runner):
    """LIFO (depth-first) keeps the live spawn tree far smaller than
    FIFO (breadth-first) at equal correctness."""
    points = [_point(12, queue_depth=1024, policy=policy)
              for policy in ("lifo", "fifo")]

    def run():
        return sweeplib.run_points(sweep_runner, points)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    data = {record["spec"]["policy"]:
            (record["value"]["cycles"], record["value"]["peak"])
            for record in result.records}
    assert all(record["value"]["outcome"] == "ok"
               for record in result.records)

    rows = [[p, c, peak] for p, (c, peak) in data.items()]
    text = render_table(["Policy", "cycles", "peak queue occupancy"], rows,
                        title="Ablation — dispatch policy on fib(12)")
    save_result("ablation_policy", text)
    save_json("ablation_policy", [
        sweep_record(record, "fibonacci",
                     config={"ntiles": 4, "queue_depth": 1024,
                             "policy": record["spec"]["policy"], "n": 12},
                     peak_queue_occupancy=record["value"]["peak"])
        for record in result.records], sweep=result.summary)

    # with 4 tiles x 8 in-flight there are ~32 concurrent walkers, which
    # dilutes pure depth-first order — the live tree still shrinks ~25%
    lifo_peak = data["lifo"][1]
    fifo_peak = data["fifo"][1]
    assert lifo_peak < fifo_peak * 0.85, (
        f"LIFO peak {lifo_peak} not smaller than FIFO {fifo_peak}")


def test_ablation_queue_depth_safety(benchmark, save_result, save_json,
                                     sweep_runner):
    """An undersized queue is a circular wait: the engine reports the
    livelock instead of hanging, and a tree-sized queue always works."""
    depths = (8, 64, 512)
    points = [_point(12, queue_depth=depth, policy="lifo")
              for depth in depths]

    def run():
        return sweeplib.run_points(sweep_runner, points)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    data = {record["spec"]["queue_depth"]:
            (record["value"]["outcome"], record["value"]["cycles"],
             record["value"]["peak"])
            for record in result.records}

    rows = [[d, *v] for d, v in data.items()]
    text = render_table(["Depth", "outcome", "cycles", "peak"], rows,
                        title="Ablation — queue depth vs fib(12)'s "
                              "465-task spawn tree")
    save_result("ablation_queue_depth", text)
    save_json("ablation_queue_depth", [
        sweep_record(record, "fibonacci",
                     config={"ntiles": 4,
                             "queue_depth": record["spec"]["queue_depth"],
                             "policy": "lifo", "n": 12},
                     outcome=record["value"]["outcome"],
                     peak_queue_occupancy=record["value"]["peak"])
        for record in result.records], sweep=result.summary)

    assert data[8][0] == "livelock"
    assert data[512][0] == "ok"


def _eval_inflight(spec):
    workload = REGISTRY.get(spec["workload"])
    from repro.accel.generator import generate

    design_units = {}
    for ct in generate(workload.fresh_module()).compiled:
        design_units[ct.name] = TaskUnitParams(
            ntiles=spec["tiles"],
            max_inflight_per_tile=spec["inflight"])
    config = AcceleratorConfig(unit_params=design_units)
    result = workload.run(config=config, scale=spec["scale"])
    assert result.correct
    return {"cycles": result.cycles}


register_evaluator("ablation_inflight", _eval_inflight,
                   program_text=sweeplib.file_program_text(__file__))


def test_ablation_inflight_depth(benchmark, save_result, save_json,
                                 sweep_runner):
    """Per-tile pipelining (Fig 7): deeper in-flight windows raise
    throughput per tile until another resource saturates."""
    inflights = (1, 2, 8)
    points = [{"evaluator": "ablation_inflight", "workload": "stencil",
               "tiles": 2, "scale": 2, "inflight": inflight}
              for inflight in inflights]

    def run():
        return sweeplib.run_points(sweep_runner, points)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    data = {record["spec"]["inflight"]: record["value"]["cycles"]
            for record in result.records}

    rows = [[i, c] for i, c in data.items()]
    text = render_table(["In-flight/tile", "stencil cycles"], rows,
                        title="Ablation — per-tile task pipelining depth")
    save_result("ablation_inflight", text)
    save_json("ablation_inflight", [
        sweep_record(record, "stencil",
                     config={"ntiles": 2,
                             "max_inflight_per_tile":
                                 record["spec"]["inflight"],
                             "scale": 2})
        for record in result.records], sweep=result.summary)
    assert data[8] < data[1] * 0.7
