"""Tests for the heterogeneous-SoC host runtime (ARM + FPGA)."""

import pytest

from repro.accel import AcceleratorConfig, HostProgram
from repro.errors import ConfigError
from repro.frontend import compile_source
from repro.ir.types import I32

SOURCE = """
// host-side: fill the array (the "initialization" the paper keeps on ARM)
func init(a: i32*, n: i32) {
  for (var i: i32 = 0; i < n; i = i + 1) {
    a[i] = i * 3;
  }
}

// fabric-side: the parallel compute
func compute(a: i32*, n: i32) {
  cilk_for (var i: i32 = 0; i < n; i = i + 1) {
    a[i] = a[i] + 100;
  }
}

// host-side: a reduction the application does afterwards
func checksum(a: i32*, n: i32) -> i32 {
  var total: i32 = 0;
  for (var i: i32 = 0; i < n; i = i + 1) {
    total = total + a[i];
  }
  return total;
}
"""


def make_program():
    module = compile_source(SOURCE, "app")
    return HostProgram(module, offload=["compute"],
                       config=AcceleratorConfig(default_ntiles=2))


class TestMixedExecution:
    def test_host_and_fabric_share_one_memory_image(self):
        prog = make_program()
        n = 24
        base = prog.alloc_array(I32, [0] * n)
        prog.call("init", [base, n])          # ARM writes
        prog.call("compute", [base, n])       # FPGA reads+writes
        result = prog.call("checksum", [base, n])  # ARM reads
        expected = sum(i * 3 + 100 for i in range(n))
        assert result.retval == expected
        assert prog.read_array(base, I32, n) == [
            i * 3 + 100 for i in range(n)]

    def test_calls_routed_to_right_side(self):
        prog = make_program()
        base = prog.alloc_array(I32, [0] * 8)
        init_call = prog.call("init", [base, 8])
        compute_call = prog.call("compute", [base, 8])
        assert init_call.where == "arm"
        assert compute_call.where == "fpga"
        assert compute_call.cycles is not None and compute_call.cycles > 0
        assert init_call.cycles is None

    def test_elapsed_ledger(self):
        prog = make_program()
        base = prog.alloc_array(I32, [0] * 8)
        prog.call("init", [base, 8])
        prog.call("compute", [base, 8])
        breakdown = prog.time_breakdown()
        assert breakdown["arm"] > 0
        assert breakdown["fpga"] > 0
        assert prog.elapsed_seconds() == pytest.approx(
            breakdown["arm"] + breakdown["fpga"])

    def test_every_call_recorded(self):
        prog = make_program()
        base = prog.alloc_array(I32, [0] * 4)
        prog.call("init", [base, 4])
        prog.call("compute", [base, 4])
        prog.call("checksum", [base, 4])
        assert [c.function for c in prog.history] == [
            "init", "compute", "checksum"]


class TestValidation:
    def test_unknown_offload_target_rejected(self):
        module = compile_source(SOURCE, "app")
        with pytest.raises(ConfigError, match="offload target"):
            HostProgram(module, offload=["nonexistent"])

    def test_arm_is_slow(self):
        """The paper's context: the in-order ARM host is far slower than
        the fabric at the parallel kernel."""
        prog = make_program()
        n = 64
        base = prog.alloc_array(I32, [0] * n)
        fpga = prog.call("compute", [base, n])
        # run the same function on the ARM via a non-offloaded program
        module = compile_source(SOURCE, "app_arm")
        arm_prog = HostProgram(module, offload=[])
        base2 = arm_prog.alloc_array(I32, [0] * n)
        arm = arm_prog.call("compute", [base2, n])
        assert arm.where == "arm"
        assert arm.seconds > fpga.seconds
